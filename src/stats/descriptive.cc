#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/string_util.h"

namespace vup {

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double ss = 0.0;
  for (double v : values) {
    double d = v - mean;
    ss += d * d;
  }
  return ss / static_cast<double>(values.size() - 1);
}

double StdDev(std::span<const double> values) {
  return std::sqrt(Variance(values));
}

double Min(std::span<const double> values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(values.begin(), values.end());
}

double Max(std::span<const double> values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(values.begin(), values.end());
}

double Quantile(std::span<const double> values, double p) {
  VUP_CHECK(!values.empty()) << "Quantile of empty data";
  VUP_CHECK(p >= 0.0 && p <= 1.0) << "p=" << p;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  double h = p * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(h));
  size_t hi = static_cast<size_t>(std::ceil(h));
  double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double Median(std::span<const double> values) {
  return Quantile(values, 0.5);
}

BoxplotStats Boxplot(std::span<const double> values) {
  VUP_CHECK(!values.empty()) << "Boxplot of empty data";
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());

  BoxplotStats b;
  b.count = sorted.size();
  b.min = sorted.front();
  b.max = sorted.back();
  b.q1 = Quantile(sorted, 0.25);
  b.median = Quantile(sorted, 0.5);
  b.q3 = Quantile(sorted, 0.75);

  double iqr = b.q3 - b.q1;
  double lo_fence = b.q1 - 1.5 * iqr;
  double hi_fence = b.q3 + 1.5 * iqr;

  b.whisker_low = b.q1;
  b.whisker_high = b.q3;
  for (double v : sorted) {
    if (v >= lo_fence) {
      b.whisker_low = v;
      break;
    }
  }
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if (*it <= hi_fence) {
      b.whisker_high = *it;
      break;
    }
  }
  for (double v : sorted) {
    if (v < lo_fence || v > hi_fence) b.outliers.push_back(v);
  }
  return b;
}

std::string BoxplotToString(const BoxplotStats& b) {
  return StrFormat(
      "n=%zu min=%.2f whiskLo=%.2f q1=%.2f med=%.2f q3=%.2f whiskHi=%.2f "
      "max=%.2f outliers=%zu",
      b.count, b.min, b.whisker_low, b.q1, b.median, b.q3, b.whisker_high,
      b.max, b.outliers.size());
}

SummaryStats Summarize(std::span<const double> values) {
  SummaryStats s;
  s.count = values.size();
  if (values.empty()) return s;
  s.mean = Mean(values);
  s.stddev = StdDev(values);
  s.min = Min(values);
  s.q1 = Quantile(values, 0.25);
  s.median = Median(values);
  s.q3 = Quantile(values, 0.75);
  s.max = Max(values);
  return s;
}

}  // namespace vup
