#ifndef VUPRED_STATS_DESCRIPTIVE_H_
#define VUPRED_STATS_DESCRIPTIVE_H_

#include <span>
#include <string>
#include <vector>

namespace vup {

/// Arithmetic mean. Returns 0 for empty input.
double Mean(std::span<const double> values);

/// Unbiased sample variance (n-1 denominator). Returns 0 for n < 2.
double Variance(std::span<const double> values);

/// sqrt(Variance).
double StdDev(std::span<const double> values);

double Min(std::span<const double> values);
double Max(std::span<const double> values);

/// Quantile with linear interpolation between order statistics
/// (type-7, the numpy/R default). `p` in [0, 1]. Requires non-empty input.
double Quantile(std::span<const double> values, double p);

/// Median == Quantile(0.5).
double Median(std::span<const double> values);

/// The five-number summary plus Tukey outlier fences, exactly the statistics
/// drawn by the paper's boxplots (Figure 1b/1c): whiskers at the most extreme
/// observations within 1.5*IQR of the quartiles; anything beyond is an
/// outlier ('+' markers in the paper).
struct BoxplotStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double whisker_low = 0.0;   // Lowest value >= q1 - 1.5*IQR.
  double whisker_high = 0.0;  // Highest value <= q3 + 1.5*IQR.
  std::vector<double> outliers;
  size_t count = 0;

  double iqr() const { return q3 - q1; }
};

/// Computes boxplot statistics. Requires non-empty input.
BoxplotStats Boxplot(std::span<const double> values);

/// One-line rendering of the five-number summary for reports.
std::string BoxplotToString(const BoxplotStats& b);

/// All-in-one descriptive summary.
struct SummaryStats {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
};

SummaryStats Summarize(std::span<const double> values);

}  // namespace vup

#endif  // VUPRED_STATS_DESCRIPTIVE_H_
