#ifndef VUPRED_STATS_ACF_H_
#define VUPRED_STATS_ACF_H_

#include <span>
#include <vector>

#include "common/statusor.h"

namespace vup {

/// Sample autocorrelation function of `series` for lags 0..max_lag.
///
/// Uses the standard biased estimator
///   r(l) = sum_{t=l}^{n-1} (x_t - mean)(x_{t-l} - mean) / sum (x_t - mean)^2,
/// the estimator behind the paper's Figure 2 and its statistics-based feature
/// selection (Section 3). r(0) == 1 by construction; |r(l)| <= 1.
///
/// Errors: InvalidArgument if the series is shorter than max_lag + 1 or has
/// zero variance (autocorrelation undefined for a constant series).
StatusOr<std::vector<double>> Autocorrelation(std::span<const double> series,
                                              size_t max_lag);

/// Approximate 95% white-noise significance bound for an ACF estimated from
/// `n` observations: +/- 1.96 / sqrt(n).
double AcfSignificanceBound(size_t n);

/// Indices of the `k` lags in [1, max_lag] with the largest ACF values,
/// sorted by descending ACF value (ties broken by smaller lag).
/// `acf` is the output of Autocorrelation (index == lag).
/// Returns fewer than k lags when max_lag < k.
std::vector<size_t> TopKLagsByAcf(std::span<const double> acf, size_t k);

}  // namespace vup

#endif  // VUPRED_STATS_ACF_H_
