#ifndef VUPRED_STATS_ACF_H_
#define VUPRED_STATS_ACF_H_

#include <span>
#include <vector>

#include "common/statusor.h"

namespace vup {

/// Sample autocorrelation function of `series` for lags 0..max_lag.
///
/// Uses the standard biased estimator
///   r(l) = sum_{t=l}^{n-1} (x_t - mean)(x_{t-l} - mean) / sum (x_t - mean)^2,
/// the estimator behind the paper's Figure 2 and its statistics-based feature
/// selection (Section 3). r(0) == 1 by construction; |r(l)| <= 1.
///
/// Errors: InvalidArgument if the series is shorter than max_lag + 2 (so the
/// top lag keeps at least 2 overlapping points; a single-term numerator is
/// not an autocorrelation estimate) or has zero variance (autocorrelation
/// undefined for a constant series).
StatusOr<std::vector<double>> Autocorrelation(std::span<const double> series,
                                              size_t max_lag);

/// Approximate 95% white-noise significance bound for an ACF estimated from
/// `n` observations: +/- 1.96 / sqrt(n).
double AcfSignificanceBound(size_t n);

/// Indices of the `k` lags in [1, max_lag] with the largest ACF values,
/// sorted by descending ACF value (ties broken by smaller lag).
/// `acf` is the output of Autocorrelation (index == lag).
/// Returns fewer than k lags when max_lag < k.
/// Non-finite ACF entries (NaN/inf from degenerate numeric input) are
/// ranked as minus-infinity, so selection is deterministic and the sort
/// comparator stays a strict weak ordering.
std::vector<size_t> TopKLagsByAcf(std::span<const double> acf, size_t k);

/// Sliding-window autocorrelation from precomputed running sums.
///
/// The walk-forward evaluation recomputes the training-span ACF at every
/// slide of the window; done directly, each step costs
/// O(window * max_lag). This cache precomputes prefix sums of the series
/// and of the lagged cross products x_t * x_{t-l} once (O(n * max_lag)),
/// after which the ACF of *any* window [begin, end) is assembled in
/// O(window + max_lag):
///   num(l) = C_l - mean * (T1_l + T2_l) + (m - l) * mean^2,
/// with C_l, T1_l, T2_l read off the prefix tables. The window mean and
/// the variance denominator are computed directly over the window with the
/// same operations as Autocorrelation, so the zero-variance
/// (constant-series) and too-short error conditions match it exactly.
///
/// Determinism: for a given (series, max_lag, window) the result is a pure
/// function of the inputs -- there is no accumulated add/subtract drift,
/// because sums are differences of fixed prefix tables. Values agree with
/// Autocorrelation up to floating-point rounding (the numerator is the
/// algebraically expanded form); r(0) is pinned to exactly 1.
class SlidingAcf {
 public:
  /// Copies `series` and builds the prefix tables. O(n * max_lag) time,
  /// O(n * max_lag) memory.
  SlidingAcf(std::span<const double> series, size_t max_lag);

  /// ACF of series[begin, end) for lags 0..max_lag. Same error conditions
  /// as Autocorrelation over that window, plus OutOfRange when the window
  /// exceeds the series.
  StatusOr<std::vector<double>> Window(size_t begin, size_t end) const;

  size_t max_lag() const { return max_lag_; }
  size_t size() const { return series_.size(); }

 private:
  std::vector<double> series_;
  size_t max_lag_;
  std::vector<double> prefix_;  // prefix_[i] = sum of series_[0..i).
  /// Flattened (max_lag x (n+1)) cross-product prefixes: row l-1 holds
  /// Q_l[i] = sum_{t=l}^{i-1} series_[t] * series_[t-l] (zero for i <= l).
  std::vector<double> cross_;
};

}  // namespace vup

#endif  // VUPRED_STATS_ACF_H_
