#include "stats/rolling.h"

#include <algorithm>

#include "common/check.h"

namespace vup {

std::vector<double> RollingSum(std::span<const double> series, size_t window) {
  VUP_CHECK(window >= 1);
  std::vector<double> out(series.size(), 0.0);
  double sum = 0.0;
  for (size_t i = 0; i < series.size(); ++i) {
    sum += series[i];
    if (i >= window) sum -= series[i - window];
    out[i] = sum;
  }
  return out;
}

std::vector<double> RollingMean(std::span<const double> series,
                                size_t window) {
  std::vector<double> sums = RollingSum(series, window);
  for (size_t i = 0; i < sums.size(); ++i) {
    size_t effective = std::min(i + 1, window);
    sums[i] /= static_cast<double>(effective);
  }
  return sums;
}

std::vector<double> Diff(std::span<const double> series) {
  std::vector<double> out;
  if (series.size() < 2) return out;
  out.reserve(series.size() - 1);
  for (size_t i = 1; i < series.size(); ++i) {
    out.push_back(series[i] - series[i - 1]);
  }
  return out;
}

std::vector<double> WeeklyTotals(std::span<const double> daily) {
  std::vector<double> out;
  double sum = 0.0;
  size_t count = 0;
  for (double v : daily) {
    sum += v;
    if (++count == 7) {
      out.push_back(sum);
      sum = 0.0;
      count = 0;
    }
  }
  if (count > 0) out.push_back(sum);
  return out;
}

}  // namespace vup
