#ifndef VUPRED_STATS_ROLLING_H_
#define VUPRED_STATS_ROLLING_H_

#include <span>
#include <vector>

namespace vup {

/// Trailing moving average: out[i] = mean(series[max(0, i-window+1) .. i]).
/// The first window-1 entries average over the shorter available prefix.
/// Requires window >= 1.
std::vector<double> RollingMean(std::span<const double> series, size_t window);

/// Trailing moving sum with the same partial-prefix semantics.
std::vector<double> RollingSum(std::span<const double> series, size_t window);

/// First differences: out[i] = series[i+1] - series[i]; length n-1.
std::vector<double> Diff(std::span<const double> series);

/// Aggregates a daily series into consecutive 7-day (weekly) sums; a
/// trailing partial week is summed as-is. Used for Figure 1(d)'s weekly
/// utilization-hours series.
std::vector<double> WeeklyTotals(std::span<const double> daily);

}  // namespace vup

#endif  // VUPRED_STATS_ROLLING_H_
