#ifndef VUPRED_STATS_ECDF_H_
#define VUPRED_STATS_ECDF_H_

#include <span>
#include <vector>

namespace vup {

/// Empirical Cumulative Distribution Function.
///
/// F(x) is the fraction of observations <= x, the quantity plotted in the
/// paper's Figure 1(a) for per-type daily utilization hours.
class Ecdf {
 public:
  /// Builds from a sample (copied and sorted). Requires non-empty input.
  explicit Ecdf(std::span<const double> sample);

  /// F(x): fraction of the sample <= x. Monotone non-decreasing in x,
  /// 0 below the minimum, 1 at and above the maximum.
  double operator()(double x) const;

  /// Generalized inverse: smallest sample value v with F(v) >= p, p in (0,1].
  double InverseAt(double p) const;

  size_t sample_size() const { return sorted_.size(); }
  double min() const { return sorted_.front(); }
  double max() const { return sorted_.back(); }

  /// Evaluation grid of (x, F(x)) pairs with `points` equally spaced x
  /// values across [min, max]; handy for printing CDF curves.
  std::vector<std::pair<double, double>> Curve(size_t points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace vup

#endif  // VUPRED_STATS_ECDF_H_
