#include "stats/ecdf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace vup {

Ecdf::Ecdf(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  VUP_CHECK(!sorted_.empty()) << "Ecdf of empty sample";
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const {
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::InverseAt(double p) const {
  VUP_CHECK(p > 0.0 && p <= 1.0) << "p=" << p;
  size_t rank = static_cast<size_t>(
      std::max<long long>(0, static_cast<long long>(
          std::ceil(p * static_cast<double>(sorted_.size()))) - 1));
  return sorted_[std::min(rank, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> Ecdf::Curve(size_t points) const {
  VUP_CHECK(points >= 2);
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  double lo = min();
  double hi = max();
  for (size_t i = 0; i < points; ++i) {
    double x = lo + (hi - lo) * static_cast<double>(i) /
                        static_cast<double>(points - 1);
    out.emplace_back(x, (*this)(x));
  }
  return out;
}

}  // namespace vup
