#include "linalg/qr.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace vup {

StatusOr<std::vector<double>> QrLeastSquares(const Matrix& x,
                                             std::span<const double> y) {
  const size_t m = x.rows();
  const size_t n = x.cols();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (y.size() != m) {
    return Status::InvalidArgument("target size does not match design matrix");
  }

  // Working copies: factorization happens in place on `a`, rhs in `b`.
  Matrix a = x;
  std::vector<double> b(y.begin(), y.end());
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);

  // Column squared norms for pivoting.
  std::vector<double> col_norms(n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < m; ++i) col_norms[j] += a(i, j) * a(i, j);
  }
  const double total_norm =
      std::sqrt(std::accumulate(col_norms.begin(), col_norms.end(), 0.0));
  const double tol = std::max(m, n) * 1e-12 * std::max(total_norm, 1.0);

  const size_t steps = std::min(m, n);
  size_t rank = 0;
  for (size_t k = 0; k < steps; ++k) {
    // Pivot: bring the column with the largest remaining norm to position k.
    size_t pivot = k;
    double best = col_norms[k];
    for (size_t j = k + 1; j < n; ++j) {
      if (col_norms[j] > best) {
        best = col_norms[j];
        pivot = j;
      }
    }
    if (pivot != k) {
      for (size_t i = 0; i < m; ++i) std::swap(a(i, k), a(i, pivot));
      std::swap(col_norms[k], col_norms[pivot]);
      std::swap(perm[k], perm[pivot]);
    }

    // Householder vector for column k below the diagonal.
    double norm_x = 0.0;
    for (size_t i = k; i < m; ++i) norm_x += a(i, k) * a(i, k);
    norm_x = std::sqrt(norm_x);
    if (norm_x <= tol) break;  // Remaining columns are numerically dependent.
    ++rank;

    double alpha = a(k, k) >= 0.0 ? -norm_x : norm_x;
    std::vector<double> v(m - k);
    v[0] = a(k, k) - alpha;
    for (size_t i = k + 1; i < m; ++i) v[i - k] = a(i, k);
    double vtv = 0.0;
    for (double vi : v) vtv += vi * vi;
    if (vtv == 0.0) continue;

    a(k, k) = alpha;
    for (size_t i = k + 1; i < m; ++i) a(i, k) = 0.0;

    // Apply the reflector to remaining columns and to the rhs.
    for (size_t j = k + 1; j < n; ++j) {
      double dot = 0.0;
      for (size_t i = k; i < m; ++i) dot += v[i - k] * a(i, j);
      double scale = 2.0 * dot / vtv;
      for (size_t i = k; i < m; ++i) a(i, j) -= scale * v[i - k];
    }
    double dot_b = 0.0;
    for (size_t i = k; i < m; ++i) dot_b += v[i - k] * b[i];
    double scale_b = 2.0 * dot_b / vtv;
    for (size_t i = k; i < m; ++i) b[i] -= scale_b * v[i - k];

    // Downdate column norms.
    for (size_t j = k + 1; j < n; ++j) {
      col_norms[j] -= a(k, j) * a(k, j);
      if (col_norms[j] < 0.0) col_norms[j] = 0.0;
    }
  }

  // Back substitution on the rank x rank leading triangle.
  std::vector<double> w_permuted(n, 0.0);
  for (size_t ii = rank; ii-- > 0;) {
    double sum = b[ii];
    for (size_t j = ii + 1; j < rank; ++j) sum -= a(ii, j) * w_permuted[j];
    w_permuted[ii] = sum / a(ii, ii);
  }

  // Undo the column permutation.
  std::vector<double> w(n, 0.0);
  for (size_t j = 0; j < n; ++j) w[perm[j]] = w_permuted[j];
  return w;
}

}  // namespace vup
