#ifndef VUPRED_LINALG_QR_H_
#define VUPRED_LINALG_QR_H_

#include <vector>

#include "common/statusor.h"
#include "linalg/matrix.h"

namespace vup {

/// Minimum-norm least-squares solve of min_w ||X w - y||_2 via Householder QR
/// with column pivoting. Handles rank-deficient design matrices by zeroing
/// the coefficients of dependent columns (rank-revealing truncation), which
/// makes OLS on collinear windowed features well-defined.
///
/// Requires x.rows() >= 1, x.cols() >= 1, y.size() == x.rows().
StatusOr<std::vector<double>> QrLeastSquares(const Matrix& x,
                                             std::span<const double> y);

}  // namespace vup

#endif  // VUPRED_LINALG_QR_H_
