#include "linalg/cholesky.h"

#include <cmath>

namespace vup {

StatusOr<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::InvalidArgument(
          "matrix is not positive definite (Cholesky pivot <= 0)");
    }
    l(j, j) = std::sqrt(diag);
    for (size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / l(j, j);
    }
  }
  return l;
}

StatusOr<std::vector<double>> CholeskySolve(const Matrix& a,
                                            std::span<const double> b) {
  if (b.size() != a.rows()) {
    return Status::InvalidArgument("rhs size does not match matrix");
  }
  VUP_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  const size_t n = l.rows();
  // Forward substitution: L z = b.
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l(i, k) * z[k];
    z[i] = sum / l(i, i);
  }
  // Backward substitution: L^T x = z.
  std::vector<double> x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = z[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

StatusOr<std::vector<double>> SolveNormalEquations(const Matrix& x,
                                                   std::span<const double> y,
                                                   double ridge) {
  if (y.size() != x.rows()) {
    return Status::InvalidArgument("target size does not match design matrix");
  }
  if (ridge < 0.0) {
    return Status::InvalidArgument("ridge must be non-negative");
  }
  Matrix gram = x.Gram();
  for (size_t i = 0; i < gram.rows(); ++i) gram(i, i) += ridge;
  std::vector<double> xty = x.TransposeMultiplyVec(y);
  return CholeskySolve(gram, xty);
}

}  // namespace vup
