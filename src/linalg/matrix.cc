#include "linalg/matrix.h"

#include <cmath>

#include "common/string_util.h"

namespace vup {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  Matrix m;
  for (const std::vector<double>& row : rows) {
    m.AppendRow(row);
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::Col(size_t c) const {
  VUP_CHECK(c < cols_);
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  VUP_CHECK(cols_ == other.rows_)
      << "shape mismatch: " << rows_ << "x" << cols_ << " * " << other.rows_
      << "x" << other.cols_;
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += a * other(k, j);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::MultiplyVec(std::span<const double> v) const {
  VUP_CHECK(cols_ == v.size());
  std::vector<double> out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    out[i] = Dot(Row(i), v);
  }
  return out;
}

Matrix Matrix::Gram() const {
  Matrix g(cols_, cols_);
  for (size_t i = 0; i < cols_; ++i) {
    for (size_t j = i; j < cols_; ++j) {
      double sum = 0.0;
      for (size_t r = 0; r < rows_; ++r) {
        sum += (*this)(r, i) * (*this)(r, j);
      }
      g(i, j) = sum;
      g(j, i) = sum;
    }
  }
  return g;
}

std::vector<double> Matrix::TransposeMultiplyVec(
    std::span<const double> v) const {
  VUP_CHECK(rows_ == v.size());
  std::vector<double> out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double scale = v[r];
    if (scale == 0.0) continue;
    std::span<const double> row = Row(r);
    for (size_t c = 0; c < cols_; ++c) {
      out[c] += scale * row[c];
    }
  }
  return out;
}

Matrix Matrix::SelectColumns(std::span<const size_t> columns) const {
  Matrix out(rows_, columns.size());
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t j = 0; j < columns.size(); ++j) {
      VUP_CHECK(columns[j] < cols_) << "column " << columns[j];
      out(r, j) = (*this)(r, columns[j]);
    }
  }
  return out;
}

Matrix Matrix::SelectRows(std::span<const size_t> rows) const {
  Matrix out(rows.size(), cols_);
  for (size_t i = 0; i < rows.size(); ++i) {
    VUP_CHECK(rows[i] < rows_) << "row " << rows[i];
    std::span<const double> src = Row(rows[i]);
    std::span<double> dst = out.MutableRow(i);
    for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

void Matrix::AppendRow(std::span<const double> row) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = row.size();
  }
  VUP_CHECK(row.size() == cols_)
      << "row of size " << row.size() << " into matrix with " << cols_
      << " cols";
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

std::string Matrix::ToString() const {
  std::string out = StrFormat("Matrix %zux%zu\n", rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      out += StrFormat("%10.4f ", (*this)(r, c));
    }
    out += "\n";
  }
  return out;
}

double Dot(std::span<const double> a, std::span<const double> b) {
  VUP_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm2(std::span<const double> v) { return std::sqrt(Dot(v, v)); }

std::vector<double> Axpy(std::span<const double> a, double scale,
                         std::span<const double> b) {
  VUP_CHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + scale * b[i];
  return out;
}

}  // namespace vup
