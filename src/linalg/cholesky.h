#ifndef VUPRED_LINALG_CHOLESKY_H_
#define VUPRED_LINALG_CHOLESKY_H_

#include <vector>

#include "common/statusor.h"
#include "linalg/matrix.h"

namespace vup {

/// Cholesky factorization A = L * L^T of a symmetric positive-definite
/// matrix. Returns the lower-triangular factor L, or InvalidArgument when A
/// is not square / not positive definite (within numerical tolerance).
StatusOr<Matrix> CholeskyFactor(const Matrix& a);

/// Solves A x = b for symmetric positive-definite A via Cholesky
/// (forward + backward substitution). b.size() must equal A.rows().
StatusOr<std::vector<double>> CholeskySolve(const Matrix& a,
                                            std::span<const double> b);

/// Solves the ridge-regularized normal equations
///   (X^T X + ridge * I) w = X^T y.
/// With ridge == 0 this is ordinary least squares via normal equations;
/// a small positive ridge guarantees positive definiteness.
StatusOr<std::vector<double>> SolveNormalEquations(const Matrix& x,
                                                   std::span<const double> y,
                                                   double ridge);

}  // namespace vup

#endif  // VUPRED_LINALG_CHOLESKY_H_
