#ifndef VUPRED_LINALG_MATRIX_H_
#define VUPRED_LINALG_MATRIX_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace vup {

/// Dense row-major matrix of doubles.
///
/// Sized for the regression problems in this library (hundreds of rows,
/// tens to a few hundred columns); favors clarity over blocking/vectorized
/// kernels. All index accesses are bounds-checked in debug builds.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix of zeros.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer-style data; all rows must be equal length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of order n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    VUP_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    VUP_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// View of row r as a contiguous span.
  std::span<const double> Row(size_t r) const {
    VUP_DCHECK(r < rows_);
    return std::span<const double>(data_).subspan(r * cols_, cols_);
  }
  std::span<double> MutableRow(size_t r) {
    VUP_DCHECK(r < rows_);
    return std::span<double>(data_).subspan(r * cols_, cols_);
  }

  /// Copies column c.
  std::vector<double> Col(size_t c) const;

  Matrix Transpose() const;

  /// Matrix product; requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product; requires cols() == v.size().
  std::vector<double> MultiplyVec(std::span<const double> v) const;

  /// A^T * A (Gram matrix), computed exploiting symmetry.
  Matrix Gram() const;

  /// A^T * v; requires rows() == v.size().
  std::vector<double> TransposeMultiplyVec(std::span<const double> v) const;

  /// Returns a new matrix keeping only the listed columns, in order.
  Matrix SelectColumns(std::span<const size_t> columns) const;

  /// Returns a new matrix keeping only the listed rows, in order.
  Matrix SelectRows(std::span<const size_t> rows) const;

  /// Appends a row; must match cols() (or sets cols() on the first row).
  void AppendRow(std::span<const double> row);

  /// Raw storage (row-major), for tight numeric loops.
  const std::vector<double>& data() const { return data_; }

  std::string ToString() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Dot product; sizes must match.
double Dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
double Norm2(std::span<const double> v);

/// out = a + scale * b (sizes must match).
std::vector<double> Axpy(std::span<const double> a, double scale,
                         std::span<const double> b);

}  // namespace vup

#endif  // VUPRED_LINALG_MATRIX_H_
