#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace vup::obs {

namespace {

std::atomic<Tracer*> g_active_tracer{nullptr};

/// Innermost open span on this thread. Spans are strictly scoped (RAII),
/// so a plain stack per thread is enough; entries from different tracers
/// can interleave and are told apart by the tracer pointer.
thread_local std::vector<TraceSpan*> t_span_stack;

void AppendNode(const Tracer::Node& node, int depth, std::string* out) {
  char buf[160];
  const double total_ms = node.total_seconds * 1e3;
  const double mean_ms =
      node.count > 0 ? total_ms / static_cast<double>(node.count) : 0.0;
  std::snprintf(buf, sizeof(buf), "%*s%-*s %8llu %12.3fms %10.3fms\n",
                depth * 2, "", std::max(1, 28 - depth * 2),
                node.name.c_str(),
                static_cast<unsigned long long>(node.count), total_ms,
                mean_ms);
  *out += buf;
  for (const std::unique_ptr<Tracer::Node>& child : node.children) {
    AppendNode(*child, depth + 1, out);
  }
}

}  // namespace

Tracer::~Tracer() {
  // Never leave a dangling active tracer behind.
  Tracer* self = this;
  g_active_tracer.compare_exchange_strong(self, nullptr,
                                          std::memory_order_acq_rel);
}

Tracer* Tracer::SetActive(Tracer* tracer) {
  return g_active_tracer.exchange(tracer, std::memory_order_acq_rel);
}

Tracer* Tracer::Active() {
  return g_active_tracer.load(std::memory_order_acquire);
}

void Tracer::Merge(Node* into, const SpanRecord& record) {
  // Children are kept sorted by name; runs are deterministic in shape, so
  // the tree layout is stable across runs even when timings differ.
  auto it = std::lower_bound(
      into->children.begin(), into->children.end(), record.name,
      [](const std::unique_ptr<Node>& node, const std::string& name) {
        return node->name < name;
      });
  if (it == into->children.end() || (*it)->name != record.name) {
    auto node = std::make_unique<Node>();
    node->name = record.name;
    it = into->children.insert(it, std::move(node));
  }
  Node* child = it->get();
  child->count += 1;
  child->total_seconds += record.seconds;
  for (const SpanRecord& grandchild : record.children) {
    Merge(child, grandchild);
  }
}

void Tracer::RecordRoot(SpanRecord&& record) {
  std::lock_guard<std::mutex> lock(mu_);
  Merge(&root_, record);
  ++num_roots_;
}

uint64_t Tracer::num_roots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_roots_;
}

std::unique_ptr<Tracer::Node> Tracer::CloneNode(const Node& node) {
  auto copy = std::make_unique<Node>();
  copy->name = node.name;
  copy->count = node.count;
  copy->total_seconds = node.total_seconds;
  copy->children.reserve(node.children.size());
  for (const std::unique_ptr<Node>& child : node.children) {
    copy->children.push_back(CloneNode(*child));
  }
  return copy;
}

void Tracer::VisitTree(const std::function<void(const Node&)>& visit) const {
  std::unique_ptr<Node> copy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    copy = CloneNode(root_);
  }
  visit(*copy);
}

std::string Tracer::ToString() const {
  std::string out =
      "span                            count        total       mean\n";
  VisitTree([&](const Node& root) {
    for (const std::unique_ptr<Node>& child : root.children) {
      AppendNode(*child, 0, &out);
    }
  });
  return out;
}

TraceSpan::TraceSpan(std::string_view name)
    : tracer_(Tracer::Active()) {
  if (tracer_ == nullptr) return;
  name_ = std::string(name);
  start_ = std::chrono::steady_clock::now();
  t_span_stack.push_back(this);
}

TraceSpan::~TraceSpan() {
  if (tracer_ == nullptr) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_)
          .count();
  if (!t_span_stack.empty() && t_span_stack.back() == this) {
    t_span_stack.pop_back();
  }
  Tracer::SpanRecord record;
  record.name = std::move(name_);
  record.seconds = seconds;
  record.children = std::move(children_);
  // Attach to the innermost open span of the *same* tracer; anything else
  // (other tracer, empty stack) makes this span a root.
  if (!t_span_stack.empty() && t_span_stack.back()->tracer_ == tracer_) {
    t_span_stack.back()->children_.push_back(std::move(record));
  } else {
    tracer_->RecordRoot(std::move(record));
  }
}

}  // namespace vup::obs
