#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vup::obs {

namespace {

bool IsAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

bool IsAlnum(char c) { return IsAlpha(c) || (c >= '0' && c <= '9'); }

/// Canonical instrument key: name + sorted "label=value" pairs. The value
/// separator is U+001F (unit separator), which cannot appear in a valid
/// label name, so distinct label sets never collide.
std::string InstrumentKey(std::string_view name, const LabelSet& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1f';
    key += v;
  }
  return key;
}

LabelSet SortedLabels(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

bool ValidLabels(const LabelSet& labels) {
  for (size_t i = 0; i < labels.size(); ++i) {
    if (!IsValidLabelName(labels[i].first)) return false;
    if (i > 0 && labels[i].first == labels[i - 1].first) return false;
  }
  return true;
}

}  // namespace

bool IsValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  if (!IsAlpha(name[0]) && name[0] != '_' && name[0] != ':') return false;
  for (char c : name) {
    if (!IsAlnum(c) && c != '_' && c != ':') return false;
  }
  return true;
}

bool IsValidLabelName(std::string_view name) {
  if (name.empty()) return false;
  if (!IsAlpha(name[0]) && name[0] != '_') return false;
  for (char c : name) {
    if (!IsAlnum(c) && c != '_') return false;
  }
  return true;
}

std::string_view MetricTypeToString(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

// ---- Histogram --------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  // A misconfigured ladder is a programming error, but observability code
  // must not crash the process: fall back to one catch-all bucket.
  bool ok = !bounds_.empty();
  for (size_t i = 0; ok && i < bounds_.size(); ++i) {
    if (!std::isfinite(bounds_[i])) ok = false;
    if (i > 0 && bounds_[i] <= bounds_[i - 1]) ok = false;
  }
  if (!ok) {
    bounds_ = {std::numeric_limits<double>::max()};
    buckets_ = std::deque<std::atomic<uint64_t>>(2);
  }
}

std::vector<double> Histogram::LatencyBoundsSeconds() {
  // The 1-2-5 ladder from 10 us to 5 s lifted out of serve/serving_stats:
  // sub-millisecond model scoring and multi-second cold loads both land in
  // informative buckets.
  return {10e-6,  20e-6,  50e-6,  100e-6, 200e-6, 500e-6,
          1e-3,   2e-3,   5e-3,   10e-3,  20e-3,  50e-3,
          100e-3, 200e-3, 500e-3, 1.0,    2.0,    5.0};
}

std::vector<double> Histogram::ExponentialBounds(double first, double factor,
                                                 size_t count) {
  std::vector<double> bounds;
  if (!(first > 0) || !(factor > 1) || count == 0) return {1.0};
  bounds.reserve(count);
  double bound = first;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

void Histogram::Record(double value) {
  if (!std::isfinite(value) || value < 0) value = 0;
  size_t bucket = bounds_.size();  // Overflow by default.
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramData Histogram::Snapshot() const {
  HistogramData data;
  data.bounds = bounds_;
  data.counts.reserve(buckets_.size());
  for (const std::atomic<uint64_t>& bucket : buckets_) {
    data.counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  data.count = count_.load(std::memory_order_relaxed);
  data.sum = sum_.load(std::memory_order_relaxed);
  return data;
}

double HistogramData::Quantile(double q) const {
  // Nearest-rank over the bucket counts; the total is derived from the
  // buckets themselves so a mid-flight snapshot stays internally
  // consistent.
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  rank = std::max<uint64_t>(rank, 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      return i < bounds.size() ? bounds[i] : bounds.back();
    }
  }
  return bounds.back();
}

// ---- MetricsSnapshot --------------------------------------------------

void MetricsSnapshot::Normalize() {
  std::stable_sort(families.begin(), families.end(),
                   [](const MetricFamily& a, const MetricFamily& b) {
                     return a.name < b.name;
                   });
  std::vector<MetricFamily> merged;
  for (MetricFamily& family : families) {
    if (!merged.empty() && merged.back().name == family.name) {
      for (MetricSample& sample : family.samples) {
        merged.back().samples.push_back(std::move(sample));
      }
    } else {
      merged.push_back(std::move(family));
    }
  }
  for (MetricFamily& family : merged) {
    std::stable_sort(family.samples.begin(), family.samples.end(),
                     [](const MetricSample& a, const MetricSample& b) {
                       return a.labels < b.labels;
                     });
  }
  families = std::move(merged);
}

const MetricSample* MetricsSnapshot::Find(std::string_view name,
                                          const LabelSet& labels) const {
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const MetricFamily& family : families) {
    if (family.name != name) continue;
    for (const MetricSample& sample : family.samples) {
      LabelSet sample_labels = sample.labels;
      std::sort(sample_labels.begin(), sample_labels.end());
      if (sample_labels == sorted) return &sample;
    }
  }
  return nullptr;
}

double MetricsSnapshot::Value(std::string_view name, const LabelSet& labels,
                              double fallback) const {
  const MetricSample* sample = Find(name, labels);
  return sample != nullptr ? sample->value : fallback;
}

// ---- MetricsRegistry --------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Instrument* MetricsRegistry::GetOrCreate(
    std::string_view name, std::string_view help, MetricType type,
    const LabelSet& labels, const std::function<void(Instrument*)>& make) {
  if (!IsValidMetricName(name)) return nullptr;
  LabelSet sorted = SortedLabels(labels);
  if (!ValidLabels(sorted)) return nullptr;
  const std::string key = InstrumentKey(name, sorted);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instruments_.find(key);
  if (it != instruments_.end()) {
    return it->second->type == type ? it->second.get() : nullptr;
  }
  auto instrument = std::make_unique<Instrument>();
  instrument->name = std::string(name);
  instrument->help = std::string(help);
  instrument->type = type;
  instrument->labels = std::move(sorted);
  make(instrument.get());
  Instrument* raw = instrument.get();
  instruments_.emplace(key, std::move(instrument));
  return raw;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help,
                                     const LabelSet& labels) {
  Instrument* instrument =
      GetOrCreate(name, help, MetricType::kCounter, labels,
                  [](Instrument* i) { i->counter = std::make_unique<Counter>(); });
  return instrument != nullptr ? instrument->counter.get() : nullptr;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 const LabelSet& labels) {
  Instrument* instrument =
      GetOrCreate(name, help, MetricType::kGauge, labels,
                  [](Instrument* i) { i->gauge = std::make_unique<Gauge>(); });
  return instrument != nullptr ? instrument->gauge.get() : nullptr;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         std::vector<double> bounds,
                                         const LabelSet& labels) {
  Instrument* instrument = GetOrCreate(
      name, help, MetricType::kHistogram, labels, [&](Instrument* i) {
        i->histogram = std::make_unique<Histogram>(std::move(bounds));
      });
  return instrument != nullptr ? instrument->histogram.get() : nullptr;
}

uint64_t MetricsRegistry::RegisterCollector(Collector collector) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_collector_id_++;
  collectors_.emplace(id, std::move(collector));
  return id;
}

void MetricsRegistry::UnregisterCollector(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.erase(id);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::vector<Collector> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, instrument] : instruments_) {
      MetricSample sample;
      sample.labels = instrument->labels;
      switch (instrument->type) {
        case MetricType::kCounter:
          sample.value = static_cast<double>(instrument->counter->value());
          break;
        case MetricType::kGauge:
          sample.value = instrument->gauge->value();
          break;
        case MetricType::kHistogram:
          sample.histogram = instrument->histogram->Snapshot();
          break;
      }
      MetricFamily family;
      family.name = instrument->name;
      family.help = instrument->help;
      family.type = instrument->type;
      family.samples.push_back(std::move(sample));
      snapshot.families.push_back(std::move(family));
    }
    collectors.reserve(collectors_.size());
    for (const auto& [id, collector] : collectors_) {
      collectors.push_back(collector);
    }
  }
  // Collectors run outside the registry lock: they take their owners'
  // locks (ServingStats, ModelRegistry) and must not nest under ours.
  for (const Collector& collector : collectors) {
    collector(&snapshot);
  }
  snapshot.Normalize();
  return snapshot;
}

size_t MetricsRegistry::num_instruments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return instruments_.size();
}

}  // namespace vup::obs
