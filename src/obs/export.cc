#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace vup::obs {

namespace {

/// Deterministic value rendering: integral values (every counter and
/// bucket count) print without a decimal point; everything else prints
/// with enough digits to round-trip through strtod.
std::string FormatValue(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (value == std::floor(value) && std::abs(value) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

/// HELP text escaping: backslash and newline only (the format's rule).
std::string EscapeHelp(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void AppendLabels(std::string* out, const LabelSet& labels,
                  const std::string& extra_name = "",
                  const std::string& extra_value = "") {
  if (labels.empty() && extra_name.empty()) return;
  *out += '{';
  bool first = true;
  for (const auto& [name, value] : labels) {
    if (!first) *out += ',';
    first = false;
    *out += name;
    *out += "=\"";
    *out += EscapeLabelValue(value);
    *out += '"';
  }
  if (!extra_name.empty()) {
    if (!first) *out += ',';
    *out += extra_name;
    *out += "=\"";
    *out += extra_value;  // Always a number or +Inf; nothing to escape.
    *out += '"';
  }
  *out += '}';
}

void AppendSampleLine(std::string* out, const std::string& name,
                      const LabelSet& labels, double value,
                      const std::string& extra_name = "",
                      const std::string& extra_value = "") {
  *out += name;
  AppendLabels(out, labels, extra_name, extra_value);
  *out += ' ';
  *out += FormatValue(value);
  *out += '\n';
}

/// JSON string escaping for exporter keys (metric names may embed label
/// values, which can hold anything).
std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

/// `name{k="v",...}` key for the flat JSON shape; plain name when
/// unlabeled.
std::string JsonKey(const std::string& name, const LabelSet& labels,
                    const char* suffix = "") {
  std::string key = name;
  key += suffix;
  if (!labels.empty()) {
    key += '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) key += ',';
      first = false;
      key += k;
      key += "=\"";
      key += EscapeLabelValue(v);
      key += '"';
    }
    key += '}';
  }
  return key;
}

}  // namespace

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string UnescapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '\\' || i + 1 >= value.size()) {
      out += value[i];
      continue;
    }
    ++i;
    switch (value[i]) {
      case '\\':
        out += '\\';
        break;
      case '"':
        out += '"';
        break;
      case 'n':
        out += '\n';
        break;
      default:  // Unknown escape: keep verbatim.
        out += '\\';
        out += value[i];
    }
  }
  return out;
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricFamily& family : snapshot.families) {
    if (!IsValidMetricName(family.name)) continue;
    if (!family.help.empty()) {
      out += "# HELP " + family.name + " " + EscapeHelp(family.help) + "\n";
    }
    out += "# TYPE " + family.name + " ";
    out += MetricTypeToString(family.type);
    out += '\n';
    for (const MetricSample& sample : family.samples) {
      if (family.type != MetricType::kHistogram) {
        AppendSampleLine(&out, family.name, sample.labels, sample.value);
        continue;
      }
      const HistogramData& h = sample.histogram;
      uint64_t cumulative = 0;
      for (size_t i = 0; i < h.counts.size(); ++i) {
        cumulative += h.counts[i];
        const std::string le = i < h.bounds.size()
                                   ? FormatValue(h.bounds[i])
                                   : std::string("+Inf");
        AppendSampleLine(&out, family.name + "_bucket", sample.labels,
                         static_cast<double>(cumulative), "le", le);
      }
      AppendSampleLine(&out, family.name + "_sum", sample.labels, h.sum);
      AppendSampleLine(&out, family.name + "_count", sample.labels,
                       static_cast<double>(cumulative));
    }
  }
  return out;
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n";
  bool first = true;
  auto emit = [&](const std::string& key, double value) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"" + EscapeJson(key) + "\": " + FormatValue(value);
  };
  for (const MetricFamily& family : snapshot.families) {
    for (const MetricSample& sample : family.samples) {
      if (family.type != MetricType::kHistogram) {
        emit(JsonKey(family.name, sample.labels), sample.value);
        continue;
      }
      const HistogramData& h = sample.histogram;
      emit(JsonKey(family.name, sample.labels, "_count"),
           static_cast<double>(h.count));
      emit(JsonKey(family.name, sample.labels, "_sum"), h.sum);
      emit(JsonKey(family.name, sample.labels, "_p50"), h.Quantile(0.50));
      emit(JsonKey(family.name, sample.labels, "_p95"), h.Quantile(0.95));
      emit(JsonKey(family.name, sample.labels, "_p99"), h.Quantile(0.99));
    }
  }
  out += "\n}\n";
  return out;
}

// ---- Parser -----------------------------------------------------------

namespace {

bool Fail(std::string* error, const std::string& message, size_t line_no) {
  if (error != nullptr) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "line %zu: ", line_no);
    *error = buf + message;
  }
  return false;
}

}  // namespace

const ParsedSample* ParsedMetrics::Find(std::string_view name,
                                        const LabelSet& labels) const {
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const ParsedSample& sample : samples) {
    if (sample.name != name) continue;
    LabelSet sample_labels = sample.labels;
    std::sort(sample_labels.begin(), sample_labels.end());
    if (sample_labels == sorted) return &sample;
  }
  return nullptr;
}

double ParsedMetrics::Value(std::string_view name, const LabelSet& labels,
                            double fallback) const {
  const ParsedSample* sample = Find(name, labels);
  return sample != nullptr ? sample->value : fallback;
}

bool ParsePrometheusText(std::string_view text, ParsedMetrics* out,
                         std::string* error) {
  ParsedMetrics parsed;
  size_t line_no = 0;
  size_t at = 0;
  while (at <= text.size()) {
    size_t end = text.find('\n', at);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(at, end - at);
    at = end + 1;
    ++line_no;
    if (line.empty()) {
      if (at > text.size()) break;
      continue;
    }
    if (line[0] == '#') {
      // Only "# TYPE <name> <type>" is retained; HELP and other comments
      // are skipped.
      const std::string_view type_prefix = "# TYPE ";
      if (line.substr(0, type_prefix.size()) == type_prefix) {
        std::string_view rest = line.substr(type_prefix.size());
        size_t space = rest.find(' ');
        if (space == std::string_view::npos) {
          return Fail(error, "malformed TYPE line", line_no);
        }
        parsed.types.emplace_back(std::string(rest.substr(0, space)),
                                  std::string(rest.substr(space + 1)));
      }
      continue;
    }

    ParsedSample sample;
    size_t pos = 0;
    while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
    sample.name = std::string(line.substr(0, pos));
    if (!IsValidMetricName(sample.name)) {
      return Fail(error, "invalid metric name '" + sample.name + "'",
                  line_no);
    }

    if (pos < line.size() && line[pos] == '{') {
      ++pos;
      while (pos < line.size() && line[pos] != '}') {
        size_t eq = line.find('=', pos);
        if (eq == std::string_view::npos) {
          return Fail(error, "label without '='", line_no);
        }
        std::string label(line.substr(pos, eq - pos));
        if (!IsValidLabelName(label)) {
          return Fail(error, "invalid label name '" + label + "'", line_no);
        }
        pos = eq + 1;
        if (pos >= line.size() || line[pos] != '"') {
          return Fail(error, "label value is not quoted", line_no);
        }
        ++pos;
        std::string raw;
        bool closed = false;
        while (pos < line.size()) {
          char c = line[pos];
          if (c == '\\') {
            if (pos + 1 >= line.size()) {
              return Fail(error, "dangling escape in label value", line_no);
            }
            raw += c;
            raw += line[pos + 1];
            pos += 2;
            continue;
          }
          if (c == '"') {
            closed = true;
            ++pos;
            break;
          }
          raw += c;
          ++pos;
        }
        if (!closed) {
          return Fail(error, "unterminated label value", line_no);
        }
        sample.labels.emplace_back(std::move(label),
                                   UnescapeLabelValue(raw));
        if (pos < line.size() && line[pos] == ',') ++pos;
      }
      if (pos >= line.size() || line[pos] != '}') {
        return Fail(error, "unterminated label set", line_no);
      }
      ++pos;
    }

    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size()) {
      return Fail(error, "missing sample value", line_no);
    }
    std::string value_text(line.substr(pos));
    // Trim a timestamp if present (we never emit one, but accept it).
    size_t value_end = value_text.find(' ');
    if (value_end != std::string::npos) value_text.resize(value_end);
    if (value_text == "+Inf") {
      sample.value = std::numeric_limits<double>::infinity();
    } else if (value_text == "-Inf") {
      sample.value = -std::numeric_limits<double>::infinity();
    } else if (value_text == "NaN") {
      sample.value = std::numeric_limits<double>::quiet_NaN();
    } else {
      char* parse_end = nullptr;
      sample.value = std::strtod(value_text.c_str(), &parse_end);
      if (parse_end == value_text.c_str() || *parse_end != '\0') {
        return Fail(error, "non-numeric value '" + value_text + "'",
                    line_no);
      }
    }
    parsed.samples.push_back(std::move(sample));
  }
  if (out != nullptr) *out = std::move(parsed);
  return true;
}

}  // namespace vup::obs
