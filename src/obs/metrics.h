#ifndef VUPRED_OBS_METRICS_H_
#define VUPRED_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vup::obs {

/// Label set of one instrument, e.g. {{"pool", "fleet"}}. Kept sorted by
/// key inside the registry so the same logical set always maps to the same
/// instrument and exports deterministically.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// True for a legal Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*.
bool IsValidMetricName(std::string_view name);

/// True for a legal Prometheus label name: [a-zA-Z_][a-zA-Z0-9_]*.
bool IsValidLabelName(std::string_view name);

/// Monotonic counter. Thread-safe; increments are lock-free.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time value that can go up and down. Thread-safe.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-only view of a histogram's state, for snapshots and quantiles.
struct HistogramData {
  std::vector<double> bounds;    // Finite bucket upper bounds, ascending.
  std::vector<uint64_t> counts;  // One per bound, plus the overflow bucket.
  uint64_t count = 0;
  double sum = 0.0;

  /// Upper bound of the bucket containing quantile `q` in [0, 1] by the
  /// nearest-rank definition. Conservative: never under-reports a sample
  /// that fits the finite buckets. Returns 0 when empty; the last finite
  /// bound for the overflow bucket.
  double Quantile(double q) const;
};

/// Fixed-bound histogram with atomic per-bucket counts: safe to Record
/// from any number of threads and to snapshot concurrently. Generalizes
/// the latency histogram that used to live in serve/serving_stats.
///
/// Samples above the last bound land in an overflow bucket; non-finite or
/// negative samples are clamped to 0 (observability must not crash on a
/// garbage measurement).
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// The 1-2-5 ladder from 10 microseconds to 5 seconds used for request
  /// and task latencies across the project.
  static std::vector<double> LatencyBoundsSeconds();

  /// `count` bounds starting at `first`, each `factor` times the previous.
  /// first > 0, factor > 1, count >= 1.
  static std::vector<double> ExponentialBounds(double first, double factor,
                                               size_t count);

  void Record(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::span<const double> bounds() const { return bounds_; }

  /// Consistent-enough copy for export (relaxed reads; exact once writers
  /// are quiescent).
  HistogramData Snapshot() const;

  /// Convenience: Snapshot().Quantile(q).
  double Quantile(double q) const { return Snapshot().Quantile(q); }

 private:
  std::vector<double> bounds_;
  std::deque<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1 entries.
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// RAII timer: records the elapsed wall seconds into a histogram on
/// destruction. A null histogram disables it (no clock read).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    histogram_->Record(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

enum class MetricType { kCounter = 0, kGauge = 1, kHistogram = 2 };

std::string_view MetricTypeToString(MetricType type);

/// One exported time series: a label set plus either a scalar value
/// (counter, gauge) or histogram data.
struct MetricSample {
  LabelSet labels;
  double value = 0.0;
  HistogramData histogram;  // Only meaningful for kHistogram families.
};

/// All samples of one metric name.
struct MetricFamily {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<MetricSample> samples;
};

/// A point-in-time export of a registry (plus any collector-contributed
/// families). Normalize() before exporting.
struct MetricsSnapshot {
  std::vector<MetricFamily> families;

  /// Merges families with the same name (first family's help/type win) and
  /// sorts families by name and samples by label set, so exports are
  /// byte-deterministic regardless of collection order.
  void Normalize();

  /// The sample of `name` with exactly `labels`, or nullptr.
  const MetricSample* Find(std::string_view name,
                           const LabelSet& labels = {}) const;

  /// Scalar value of `name`/`labels`; `fallback` when absent.
  double Value(std::string_view name, const LabelSet& labels = {},
               double fallback = 0.0) const;
};

/// Process-wide home for instruments. Get* methods create on first use and
/// return the same stable pointer for the same (name, labels) afterwards,
/// so call sites may look instruments up on the hot path or cache the
/// pointer -- both are safe. Instruments live as long as the registry.
///
/// The same name with different label sets forms a labeled family; the
/// same name must always carry the same instrument type (a lookup with a
/// conflicting type returns nullptr, and callers treat a null instrument
/// as "metrics disabled").
///
/// External stat surfaces that keep their own state (ServingStats,
/// ModelRegistry) register a collector instead of duplicating counters:
/// Snapshot() runs every registered collector and merges what they append.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the CLI exports from.
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name, std::string_view help,
                      const LabelSet& labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  const LabelSet& labels = {});
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          std::vector<double> bounds,
                          const LabelSet& labels = {});

  /// Appends families to the snapshot being taken. Must be thread-safe.
  using Collector = std::function<void(MetricsSnapshot*)>;

  /// Registers `collector`; the returned id unregisters it. Collectors
  /// must outlive their registration (unregister in the owner's dtor).
  uint64_t RegisterCollector(Collector collector);
  void UnregisterCollector(uint64_t id);

  /// Owned instruments plus all collector output, normalized.
  MetricsSnapshot Snapshot() const;

  size_t num_instruments() const;

 private:
  struct Instrument {
    std::string name;
    std::string help;
    MetricType type;
    LabelSet labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Finds or creates the instrument; nullptr on an invalid name/labels or
  /// a type conflict with an existing registration. Caller fills exactly
  /// one of the unique_ptrs on creation via `make`.
  Instrument* GetOrCreate(std::string_view name, std::string_view help,
                          MetricType type, const LabelSet& labels,
                          const std::function<void(Instrument*)>& make);

  mutable std::mutex mu_;
  // Key: name + serialized sorted labels. deque-backed values would still
  // need the map for lookup; unique_ptr keeps pointers stable.
  std::map<std::string, std::unique_ptr<Instrument>> instruments_;
  std::map<uint64_t, Collector> collectors_;
  uint64_t next_collector_id_ = 1;
};

/// RAII collector registration.
class ScopedCollector {
 public:
  ScopedCollector() = default;
  ScopedCollector(MetricsRegistry* registry,
                  MetricsRegistry::Collector collector)
      : registry_(registry),
        id_(registry != nullptr
                ? registry->RegisterCollector(std::move(collector))
                : 0) {}
  ~ScopedCollector() { Reset(); }
  ScopedCollector(ScopedCollector&& other) noexcept
      : registry_(other.registry_), id_(other.id_) {
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  ScopedCollector& operator=(ScopedCollector&& other) noexcept {
    if (this != &other) {
      Reset();
      registry_ = other.registry_;
      id_ = other.id_;
      other.registry_ = nullptr;
      other.id_ = 0;
    }
    return *this;
  }

  void Reset() {
    if (registry_ != nullptr && id_ != 0) registry_->UnregisterCollector(id_);
    registry_ = nullptr;
    id_ = 0;
  }

 private:
  MetricsRegistry* registry_ = nullptr;
  uint64_t id_ = 0;
};

}  // namespace vup::obs

#endif  // VUPRED_OBS_METRICS_H_
