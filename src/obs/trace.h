#ifndef VUPRED_OBS_TRACE_H_
#define VUPRED_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace vup::obs {

/// Aggregated timing tree of one traced run.
///
/// Spans record into the process-wide *active* tracer (atomic pointer; no
/// tracer means every span is a disabled no-op costing one atomic load).
/// Each thread keeps its own span stack, so pipeline stages running on
/// pool workers nest correctly under whatever span is open on that worker
/// thread; a span opened on a thread with no enclosing span becomes a
/// root. Finished spans are merged by name path into an aggregate tree --
/// (count, total seconds) per node -- which keeps the report compact no
/// matter how many vehicles or requests a run traces.
///
/// The tracer must stay alive (and is normally kept active) until every
/// span that observed it has destructed.
class Tracer {
 public:
  struct Node {
    std::string name;
    uint64_t count = 0;
    double total_seconds = 0.0;
    std::vector<std::unique_ptr<Node>> children;  // Sorted by name.
  };

  Tracer() = default;
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Installs `tracer` as the process-wide active tracer (null disables
  /// tracing). Returns the previous one.
  static Tracer* SetActive(Tracer* tracer);
  static Tracer* Active();

  /// Number of root spans recorded so far.
  uint64_t num_roots() const;

  /// The aggregate tree rendered as an indented text report:
  ///   name  count  total_ms  mean_ms
  std::string ToString() const;

  /// Runs `visit` on a consistent copy of the aggregate tree root (its
  /// children are the recorded root spans).
  void VisitTree(const std::function<void(const Node&)>& visit) const;

 private:
  friend class TraceSpan;

  struct SpanRecord {
    std::string name;
    double seconds = 0.0;
    std::vector<SpanRecord> children;
  };

  void RecordRoot(SpanRecord&& record);
  static void Merge(Node* into, const SpanRecord& record);
  static std::unique_ptr<Node> CloneNode(const Node& node);

  mutable std::mutex mu_;
  Node root_;  // Synthetic; children are the recorded roots.
  uint64_t num_roots_ = 0;
};

/// RAII span: measures the wall time between construction and destruction
/// and attaches itself to the innermost open span on this thread (or to
/// the tracer as a root). `name` should be a stable stage identifier like
/// "pipeline.clean" or "serve.score".
///
/// Cheap when tracing is off: one relaxed atomic load, no clock read.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool enabled() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<Tracer::SpanRecord> children_;
};

}  // namespace vup::obs

#endif  // VUPRED_OBS_TRACE_H_
