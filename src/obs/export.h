#ifndef VUPRED_OBS_EXPORT_H_
#define VUPRED_OBS_EXPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace vup::obs {

/// Renders a snapshot in the Prometheus text exposition format (version
/// 0.0.4): `# HELP` / `# TYPE` headers per family, histograms as
/// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`. Label
/// values are escaped per the format (backslash, double-quote, newline);
/// any other bytes -- including UTF-8 -- pass through verbatim. Call
/// MetricsSnapshot::Normalize() first for deterministic output.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// Renders a snapshot as the flat `"key": value` JSON object shape used by
/// the CLI's BENCH_serve.json reports. Counters and gauges map to one key
/// each (labels folded into the key as `name{k="v"}`); histograms emit
/// `_count`, `_sum` and conservative `_p50`/`_p95`/`_p99` keys.
std::string ToJson(const MetricsSnapshot& snapshot);

/// Escapes a label value per the exposition format: \ -> \\, " -> \",
/// newline -> \n.
std::string EscapeLabelValue(std::string_view value);

/// Inverse of EscapeLabelValue (lenient: a trailing lone backslash and
/// unknown escapes are kept verbatim).
std::string UnescapeLabelValue(std::string_view value);

/// One parsed sample line of an exposition document.
struct ParsedSample {
  std::string name;
  LabelSet labels;  // Unescaped values, in document order.
  double value = 0.0;
};

/// Parsed exposition document: samples plus the TYPE declarations seen.
struct ParsedMetrics {
  std::vector<ParsedSample> samples;
  std::vector<std::pair<std::string, std::string>> types;  // name -> type.

  const ParsedSample* Find(std::string_view name,
                           const LabelSet& labels = {}) const;
  double Value(std::string_view name, const LabelSet& labels = {},
               double fallback = 0.0) const;
};

/// Strict-enough parser for the subset of the exposition format
/// ToPrometheusText emits; used by the round-trip tests and by anything
/// that wants to diff two metric dumps. Returns false (with a message in
/// `error`) on a malformed document: bad metric/label names, unterminated
/// quotes, missing values, non-numeric values.
bool ParsePrometheusText(std::string_view text, ParsedMetrics* out,
                         std::string* error);

}  // namespace vup::obs

#endif  // VUPRED_OBS_EXPORT_H_
