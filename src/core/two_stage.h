#ifndef VUPRED_CORE_TWO_STAGE_H_
#define VUPRED_CORE_TWO_STAGE_H_

#include <memory>

#include "common/statusor.h"
#include "core/evaluation.h"
#include "core/forecaster.h"
#include "ml/logistic_regression.h"

namespace vup {

/// Configuration of the two-stage forecaster, this repository's
/// implementation of the paper's future-work direction (Section 5: "the
/// use of classification models to predict discrete usage levels").
struct TwoStageConfig {
  /// The regression stage (an ML algorithm; baselines are rejected).
  /// Windowing/selection/scaling settings are shared by both stages.
  ForecasterConfig regression;
  /// The working/idle gate. The strong default L2 matters: the gate sees
  /// ~200 windowed features from ~140 records, and a lightly-regularized
  /// logistic separates the training span perfectly and generalizes badly.
  LogisticRegression::Options classifier = {.l2 = 50.0};
  /// A target day counts as working when hours >= this threshold.
  double working_threshold_hours = 1.0;
  /// P(working) above which the gate opens.
  double decision_threshold = 0.5;
  /// false: hard gate (predict 0 below the threshold, regression output
  /// above). true: soft gate (P(working) * regression output), a
  /// probability-weighted forecast useful for fleet-level planning.
  bool soft_gate = false;
};

/// Two-stage per-vehicle forecaster for the next-day scenario: a logistic
/// classifier decides whether the vehicle works at all on the target day;
/// a regressor trained on working-day records only predicts the hours.
/// Directly attacks the failure mode of Figure 6(a): single-stage
/// regressors hedge between idle days and working-day levels.
class TwoStageForecaster {
 public:
  explicit TwoStageForecaster(TwoStageConfig config);

  /// Trains both stages on records targeting train_begin..train_end-1.
  /// Degenerate training spans (all working or all idle) collapse the gate
  /// to the constant class and train the regressor when possible.
  Status Train(const VehicleDataset& ds, size_t train_begin,
               size_t train_end);

  /// Predicts utilization hours of target row `target_index`
  /// (== ds.num_days() for the one-step-ahead forecast).
  StatusOr<double> PredictTarget(const VehicleDataset& ds,
                                 size_t target_index) const;

  /// P(target day is a working day); 0/1 for degenerate gates.
  StatusOr<double> PredictWorkingProbability(const VehicleDataset& ds,
                                             size_t target_index) const;

  bool trained() const { return trained_; }
  const TwoStageConfig& config() const { return config_; }

 private:
  StatusOr<std::vector<double>> PreparedRow(const VehicleDataset& ds,
                                            size_t target_index) const;

  TwoStageConfig config_;
  bool trained_ = false;

  // Shared feature pipeline state.
  std::vector<WindowColumn> all_columns_;
  std::vector<size_t> selected_columns_;
  StandardScaler scaler_;

  // Stage 1: the gate. When `degenerate_` the training span had a single
  // class and `constant_class_` is used instead of the model.
  LogisticRegression gate_;
  bool degenerate_gate_ = false;
  int constant_class_ = 1;

  // Stage 2: hours regressor (trained on working-day records).
  std::unique_ptr<Regressor> regressor_;
  bool has_regressor_ = false;
  double fallback_hours_ = 0.0;  // Median working-day hours.
};

/// Walk-forward evaluation of the two-stage forecaster with the protocol
/// of EvaluateVehicle (always next-day scenario: the gate exists to handle
/// idle days, which the next-working-day scenario removes).
StatusOr<VehicleEvaluation> EvaluateVehicleTwoStage(
    const VehicleDataset& ds, const EvaluationConfig& eval_config,
    const TwoStageConfig& two_stage_config);

}  // namespace vup

#endif  // VUPRED_CORE_TWO_STAGE_H_
