#include "core/forecaster.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "common/string_util.h"
#include "ml/compact.h"
#include "ml/linear_regression.h"
#include "ml/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vup {

std::string_view AlgorithmToString(Algorithm a) {
  switch (a) {
    case Algorithm::kLastValue:
      return "LV";
    case Algorithm::kMovingAverage:
      return "MA";
    case Algorithm::kLinearRegression:
      return "LR";
    case Algorithm::kLasso:
      return "Lasso";
    case Algorithm::kSvr:
      return "SVR";
    case Algorithm::kGradientBoosting:
      return "GB";
  }
  return "?";
}

StatusOr<std::unique_ptr<Regressor>> MakeRegressor(
    const ForecasterConfig& config) {
  switch (config.algorithm) {
    case Algorithm::kLinearRegression: {
      LinearRegression::Options lr;
      lr.ridge = config.lr_ridge;
      return std::unique_ptr<Regressor>(new LinearRegression(lr));
    }
    case Algorithm::kLasso:
      return std::unique_ptr<Regressor>(new Lasso(config.lasso));
    case Algorithm::kSvr:
      return std::unique_ptr<Regressor>(new Svr(config.svr));
    case Algorithm::kGradientBoosting:
      return std::unique_ptr<Regressor>(new GradientBoosting(config.gb));
    case Algorithm::kLastValue:
    case Algorithm::kMovingAverage:
      return Status::InvalidArgument(
          "baseline algorithms are not trained regressors");
  }
  return Status::Internal("unreachable algorithm");
}

VehicleForecaster::VehicleForecaster(ForecasterConfig config)
    : config_(std::move(config)) {}

Status VehicleForecaster::Train(const VehicleDataset& ds, size_t train_begin,
                                size_t train_end) {
  obs::TraceSpan fit_span("fit");
  trained_ = false;
  if (train_begin >= train_end) {
    return Status::InvalidArgument("empty training span");
  }
  if (train_end > ds.num_days()) {
    return Status::OutOfRange("training span beyond dataset");
  }

  if (IsBaseline()) {
    trained_ = true;  // Baselines read the series at prediction time.
    return Status::OK();
  }

  if (train_begin < config_.windowing.lookback_w) {
    return Status::InvalidArgument(StrFormat(
        "train_begin %zu < lookback_w %zu", train_begin,
        config_.windowing.lookback_w));
  }
  if (train_end - train_begin < 2) {
    return Status::InvalidArgument("need at least 2 training records");
  }

  const bool incremental = config_.incremental_training;
  Matrix x;
  std::vector<double> y;
  if (incremental) {
    VUP_RETURN_IF_ERROR(PrepareIncrementalWindow(ds, train_begin, train_end));
    y = window_builder_->Targets();
  } else {
    StatusOr<WindowedDataset> windowed_or = [&] {
      obs::TraceSpan span("window");
      return BuildWindowedDataset(ds, config_.windowing, train_begin,
                                  train_end - 1);
    }();
    VUP_RETURN_IF_ERROR(windowed_or.status());
    WindowedDataset& windowed = windowed_or.value();
    all_columns_ = std::move(windowed.columns);
    x = std::move(windowed.x);
    y = std::move(windowed.y);
  }

  // Statistics-based feature selection on the training span of the hours
  // series (the days the lookback windows draw from).
  selected_lags_.clear();
  selected_columns_.clear();
  if (config_.use_feature_selection) {
    obs::TraceSpan span("select");
    const size_t w = config_.windowing.lookback_w;
    if (incremental) {
      if (!acf_cache_ || acf_cache_->max_lag() != w) {
        acf_cache_.emplace(std::span<const double>(ds.hours()), w);
      }
      selected_lags_ =
          SelectLagsByAcf(*acf_cache_, train_begin - w, train_end,
                          config_.selection.top_k);
    } else {
      std::span<const double> hours(ds.hours());
      std::span<const double> train_hours =
          hours.subspan(train_begin - w, w + (train_end - train_begin));
      selected_lags_ =
          SelectLagsByAcf(train_hours, w, config_.selection.top_k);
    }
    selected_columns_ = ColumnsForLags(all_columns_, selected_lags_);
    x = incremental ? window_builder_->MaterializeColumns(selected_columns_)
                    : x.SelectColumns(selected_columns_);
  } else if (incremental) {
    obs::TraceSpan span("window");
    x = window_builder_->MaterializeMatrix();
  }

  if (config_.standardize) {
    obs::TraceSpan span("scale");
    VUP_ASSIGN_OR_RETURN(x, scaler_.FitTransform(x));
  }

  VUP_ASSIGN_OR_RETURN(model_, MakeRegressor(config_));
  const bool warm_capable = config_.warm_start.enabled &&
                            AlgorithmSupportsWarmStart(config_.algorithm);
  bool fitted_warm = false;
  if (warm_capable) {
    fitted_warm = ApplyWarmStart(ds, train_begin, train_end, x.cols());
  }
  {
    obs::TraceSpan span("train");
    VUP_RETURN_IF_ERROR(model_->Fit(x, y));
  }
  if (warm_capable) {
    CaptureWarmStartState(train_begin, train_end, fitted_warm);
  }
  trained_ = true;
  return Status::OK();
}

bool AlgorithmSupportsWarmStart(Algorithm algorithm) {
  return algorithm == Algorithm::kLasso || algorithm == Algorithm::kSvr ||
         algorithm == Algorithm::kGradientBoosting;
}

uint64_t WarmStartConfigHash(const ForecasterConfig& config) {
  uint64_t h = kWarmStartHashSeed;
  h = HashCombine(h, static_cast<uint64_t>(config.algorithm));
  h = HashCombine(h, config.windowing.lookback_w);
  h = HashCombine(h, config.windowing.include_target_day_context ? 1 : 0);
  h = HashCombine(h, config.windowing.include_lag_context ? 1 : 0);
  h = HashCombine(h, config.windowing.lag_engine_features);
  h = HashCombine(h, config.selection.top_k);
  h = HashCombine(h, config.use_feature_selection ? 1 : 0);
  h = HashCombine(h, config.standardize ? 1 : 0);
  h = HashDouble(h, config.lr_ridge);
  h = HashDouble(h, config.lasso.alpha);
  h = HashCombine(h, config.lasso.max_iter);
  h = HashDouble(h, config.lasso.tol);
  h = HashCombine(h, config.lasso.fit_intercept ? 1 : 0);
  h = HashDouble(h, config.svr.c);
  h = HashDouble(h, config.svr.epsilon);
  h = HashCombine(h, static_cast<uint64_t>(config.svr.kernel.type));
  h = HashDouble(h, config.svr.kernel.gamma);
  h = HashDouble(h, config.svr.kernel.coef0);
  h = HashCombine(h, static_cast<uint64_t>(config.svr.kernel.degree));
  h = HashDouble(h, config.svr.tol);
  h = HashCombine(h, config.svr.max_sweeps);
  h = HashDouble(h, config.gb.learning_rate);
  h = HashCombine(h, config.gb.n_estimators);
  h = HashCombine(h, static_cast<uint64_t>(config.gb.max_depth));
  h = HashCombine(h, config.gb.min_samples_leaf);
  h = HashCombine(h, static_cast<uint64_t>(config.gb.loss));
  h = HashDouble(h, config.gb.subsample);
  h = HashCombine(h, config.gb.seed);
  h = HashCombine(h, config.warm_start.gb_extra_stages);
  h = HashCombine(h, config.warm_start.gb_max_staleness);
  h = HashCombine(h, config.warm_start.gb_max_trees);
  h = HashCombine(h, config.warm_start.svr_kernel_cache_rows);
  h = HashCombine(h, config.warm_start.svr_warm_max_sweeps);
  return h;
}

bool VehicleForecaster::ApplyWarmStart(const VehicleDataset& ds,
                                       size_t train_begin, size_t train_end,
                                       size_t num_columns) {
  // Dataset identity gate, same key as the incremental caches.
  if (warm_ds_ != &ds || warm_days_ != ds.num_days()) {
    warm_state_.Reset();
    warm_ds_ = &ds;
    warm_days_ = ds.num_days();
  }

  WarmStartKey key;
  key.config_hash = WarmStartConfigHash(config_);
  key.selected_columns = selected_columns_;
  key.num_records = train_end - train_begin;
  key.first_target = train_begin;

  WarmStartDecision decision = WarmStartDecision::kColdStart;
  if (warm_state_.valid) {
    const bool same_problem = warm_state_.key.MatchesProblem(key);
    // Only the add-one-drop-one shift of the sliding walk-forward loop
    // is mappable: the span must have advanced by exactly one target.
    const bool unit_shift =
        warm_state_.key.first_target + 1 == train_begin;
    if (!same_problem || !unit_shift) {
      decision = WarmStartDecision::kInvalidated;
    } else if (config_.algorithm == Algorithm::kGradientBoosting &&
               (warm_state_.gb_warm_fits >=
                    config_.warm_start.gb_max_staleness ||
                warm_state_.gb_trees.size() +
                        config_.warm_start.gb_extra_stages >
                    config_.warm_start.gb_max_trees)) {
      // Scheduled full refresh: the ensemble aged past the staleness cap
      // (or would outgrow the tree budget). A cold start, not an
      // invalidation -- the problem still matches.
      decision = WarmStartDecision::kColdStart;
    } else {
      decision = WarmStartDecision::kWarm;
    }
  }
  RecordWarmStartDecision(decision, AlgorithmToString(config_.algorithm));
  if (decision != WarmStartDecision::kWarm) {
    warm_state_.Reset();
    return false;
  }

  switch (config_.algorithm) {
    case Algorithm::kLasso:
      static_cast<Lasso*>(model_.get())->WarmStart(warm_state_.lasso_coef);
      break;
    case Algorithm::kSvr:
      static_cast<Svr*>(model_.get())
          ->WarmStart(ShiftSvrBetaForward(warm_state_.svr_beta,
                                          config_.svr.c),
                      config_.warm_start.svr_kernel_cache_rows,
                      config_.warm_start.svr_warm_max_sweeps);
      break;
    case Algorithm::kGradientBoosting:
      static_cast<GradientBoosting*>(model_.get())
          ->WarmStart(warm_state_.gb_trees, warm_state_.gb_init,
                      num_columns, config_.warm_start.gb_extra_stages);
      break;
    default:
      return false;
  }
  return true;
}

void VehicleForecaster::CaptureWarmStartState(size_t train_begin,
                                              size_t train_end,
                                              bool fitted_warm) {
  warm_state_.key.config_hash = WarmStartConfigHash(config_);
  warm_state_.key.selected_columns = selected_columns_;
  warm_state_.key.num_records = train_end - train_begin;
  warm_state_.key.first_target = train_begin;
  switch (config_.algorithm) {
    case Algorithm::kLasso:
      warm_state_.lasso_coef =
          static_cast<const Lasso*>(model_.get())->coefficients();
      break;
    case Algorithm::kSvr:
      warm_state_.svr_beta =
          static_cast<const Svr*>(model_.get())->last_full_beta();
      break;
    case Algorithm::kGradientBoosting: {
      const auto* gb = static_cast<const GradientBoosting*>(model_.get());
      warm_state_.gb_trees = gb->trees();
      warm_state_.gb_init = gb->initial_prediction();
      warm_state_.gb_warm_fits = fitted_warm && gb->last_fit_warm_started()
                                     ? warm_state_.gb_warm_fits + 1
                                     : 0;
      break;
    }
    default:
      return;
  }
  warm_state_.valid = true;
}

StatusOr<VehicleForecaster> VehicleForecaster::TrainPooled(
    std::span<const PooledTrainingSpan> members,
    const ForecasterConfig& config) {
  obs::TraceSpan fit_span("fit_pooled");
  if (members.empty()) {
    return Status::InvalidArgument("pooled training needs >= 1 member");
  }
  VehicleForecaster pooled(config);
  if (pooled.IsBaseline()) {
    return Status::InvalidArgument(
        "pooled training needs an ML algorithm, not a baseline");
  }
  const size_t w = config.windowing.lookback_w;

  // Per-member windowed views, validated with Train's requirements.
  std::vector<WindowedDataset> windowed;
  windowed.reserve(members.size());
  size_t total_records = 0;
  for (size_t m = 0; m < members.size(); ++m) {
    const PooledTrainingSpan& member = members[m];
    if (member.dataset == nullptr) {
      return Status::InvalidArgument(
          StrFormat("pooled member %zu carries no dataset", m));
    }
    if (member.train_begin >= member.train_end) {
      return Status::InvalidArgument(
          StrFormat("pooled member %zu has an empty training span", m));
    }
    if (member.train_end > member.dataset->num_days()) {
      return Status::OutOfRange(
          StrFormat("pooled member %zu trains beyond its dataset", m));
    }
    if (member.train_begin < w) {
      return Status::InvalidArgument(
          StrFormat("pooled member %zu: train_begin %zu < lookback_w %zu", m,
                    member.train_begin, w));
    }
    StatusOr<WindowedDataset> view = [&] {
      obs::TraceSpan span("window");
      return BuildWindowedDataset(*member.dataset, config.windowing,
                                  member.train_begin, member.train_end - 1);
    }();
    VUP_RETURN_IF_ERROR(view.status());
    total_records += view.value().num_records();
    windowed.push_back(std::move(view.value()));
  }
  if (total_records < 2) {
    return Status::InvalidArgument("need at least 2 pooled records");
  }
  pooled.all_columns_ = windowed.front().columns;

  // Member-averaged ACF feature selection: every member votes with its
  // training-span ACF; degenerate members (constant/short series) abstain.
  // When all abstain, fall back to the most recent K lags, exactly like
  // the per-vehicle selection.
  pooled.selected_lags_.clear();
  pooled.selected_columns_.clear();
  if (config.use_feature_selection) {
    obs::TraceSpan span("select");
    const size_t k = std::min(config.selection.top_k, w);
    std::vector<double> mean_acf(w + 1, 0.0);
    size_t votes = 0;
    for (const PooledTrainingSpan& member : members) {
      std::span<const double> hours(member.dataset->hours());
      std::span<const double> train_hours = hours.subspan(
          member.train_begin - w, w + (member.train_end - member.train_begin));
      StatusOr<std::vector<double>> acf = Autocorrelation(train_hours, w);
      if (!acf.ok()) continue;
      for (size_t l = 0; l <= w; ++l) mean_acf[l] += acf.value()[l];
      ++votes;
    }
    if (votes > 0) {
      for (double& v : mean_acf) v /= static_cast<double>(votes);
      pooled.selected_lags_ = TopKLagsByAcf(mean_acf, k);
    } else {
      for (size_t l = 1; l <= k; ++l) pooled.selected_lags_.push_back(l);
    }
    std::sort(pooled.selected_lags_.begin(), pooled.selected_lags_.end());
    pooled.selected_columns_ =
        ColumnsForLags(pooled.all_columns_, pooled.selected_lags_);
  }

  // Stack the (selected) member designs in input order.
  Matrix x;
  std::vector<double> y;
  y.reserve(total_records);
  {
    obs::TraceSpan span("window");
    for (WindowedDataset& view : windowed) {
      Matrix rows = config.use_feature_selection
                        ? view.x.SelectColumns(pooled.selected_columns_)
                        : std::move(view.x);
      for (size_t r = 0; r < rows.rows(); ++r) x.AppendRow(rows.Row(r));
      y.insert(y.end(), view.y.begin(), view.y.end());
    }
  }

  if (config.standardize) {
    obs::TraceSpan span("scale");
    VUP_ASSIGN_OR_RETURN(x, pooled.scaler_.FitTransform(x));
  }
  VUP_ASSIGN_OR_RETURN(pooled.model_, MakeRegressor(config));
  {
    obs::TraceSpan span("train");
    VUP_RETURN_IF_ERROR(pooled.model_->Fit(x, y));
  }
  pooled.trained_ = true;
  return pooled;
}

Status VehicleForecaster::PrepareIncrementalWindow(const VehicleDataset& ds,
                                                   size_t train_begin,
                                                   size_t train_end) {
  obs::TraceSpan span("window");
  // Advance/rebuild totals are deterministic for a given evaluation
  // schedule; only span timings vary run to run.
  struct WindowCounters {
    obs::Counter* advances;
    obs::Counter* rebuilds;
  };
  static const WindowCounters counters = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return WindowCounters{
        registry.GetCounter(
            "vupred_window_incremental_advances_total",
            "Sliding training windows advanced in place (rows reused)."),
        registry.GetCounter(
            "vupred_window_incremental_rebuilds_total",
            "Sliding-window builder full (re)builds."),
    };
  }();

  if (incremental_ds_ != &ds || incremental_days_ != ds.num_days()) {
    window_builder_.reset();
    acf_cache_.reset();
    incremental_ds_ = &ds;
    incremental_days_ = ds.num_days();
  }

  const size_t count = train_end - train_begin;
  if (window_builder_ && window_builder_->num_records() == count &&
      train_begin >= window_builder_->first_target()) {
    VUP_RETURN_IF_ERROR(
        window_builder_->AdvanceTo(ds, train_begin, train_end - 1));
    counters.advances->Increment(1);
  } else {
    // First call, a growing span (expanding strategy), or a backward move:
    // fall back to a full build, identical in cost to the naive path.
    VUP_ASSIGN_OR_RETURN(SlidingWindowBuilder builder,
                         SlidingWindowBuilder::Create(ds, config_.windowing,
                                                      train_begin,
                                                      train_end - 1));
    window_builder_ = std::move(builder);
    counters.rebuilds->Increment(1);
  }
  all_columns_ = window_builder_->columns();
  return Status::OK();
}

StatusOr<double> VehicleForecaster::PredictTarget(const VehicleDataset& ds,
                                                  size_t target_index) const {
  if (!trained_) return Status::FailedPrecondition("forecaster not trained");

  double prediction = 0.0;
  if (IsBaseline()) {
    if (target_index == 0 || target_index > ds.num_days()) {
      return Status::InvalidArgument("baseline needs at least one past day");
    }
    std::span<const double> history(ds.hours().data(), target_index);
    if (config_.algorithm == Algorithm::kLastValue) {
      VUP_ASSIGN_OR_RETURN(prediction, LastValueBaseline().Predict(history));
    } else {
      VUP_ASSIGN_OR_RETURN(
          prediction,
          MovingAverageBaseline(config_.ma_period).Predict(history));
    }
  } else {
    VUP_ASSIGN_OR_RETURN(
        std::vector<double> row,
        BuildFeatureRowForTarget(ds, config_.windowing, target_index));
    if (config_.use_feature_selection) {
      std::vector<double> selected;
      selected.reserve(selected_columns_.size());
      for (size_t c : selected_columns_) selected.push_back(row[c]);
      row = std::move(selected);
    }
    if (config_.standardize) {
      VUP_ASSIGN_OR_RETURN(row, scaler_.TransformRow(row));
    }
    VUP_ASSIGN_OR_RETURN(prediction, model_->PredictOne(row));
  }

  if (config_.clamp_predictions) {
    prediction = std::clamp(prediction, 0.0, 24.0);
  }
  return prediction;
}

namespace {

constexpr const char* kForecasterMagic = "vupred-forecaster v1";

/// Reads the next non-empty "key values..." line and checks the key.
StatusOr<std::vector<std::string>> ExpectLine(std::istream& is,
                                              std::string_view key) {
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (Trim(line).empty()) continue;
    std::vector<std::string> tokens;
    for (const std::string& t : Split(std::string(Trim(line)), ' ')) {
      if (!t.empty()) tokens.push_back(t);
    }
    if (tokens.empty() || tokens[0] != key) {
      return Status::InvalidArgument("expected '" + std::string(key) +
                                     "', got '" +
                                     (tokens.empty() ? "" : tokens[0]) + "'");
    }
    tokens.erase(tokens.begin());
    return tokens;
  }
  return Status::InvalidArgument("unexpected end of forecaster stream");
}

StatusOr<long long> ExpectIntLine(std::istream& is, std::string_view key) {
  VUP_ASSIGN_OR_RETURN(std::vector<std::string> rest, ExpectLine(is, key));
  if (rest.size() != 1) {
    return Status::InvalidArgument("expected one value for '" +
                                   std::string(key) + "'");
  }
  return ParseInt(rest[0]);
}

StatusOr<std::vector<size_t>> ExpectIndexVector(std::istream& is,
                                                std::string_view key) {
  VUP_ASSIGN_OR_RETURN(std::vector<std::string> rest, ExpectLine(is, key));
  if (rest.empty()) {
    return Status::InvalidArgument("missing count for '" + std::string(key) +
                                   "'");
  }
  VUP_ASSIGN_OR_RETURN(long long count, ParseInt(rest[0]));
  if (count < 0 || static_cast<size_t>(count) != rest.size() - 1) {
    return Status::InvalidArgument("index vector size mismatch for '" +
                                   std::string(key) + "'");
  }
  std::vector<size_t> out;
  out.reserve(static_cast<size_t>(count));
  for (size_t i = 1; i < rest.size(); ++i) {
    VUP_ASSIGN_OR_RETURN(long long v, ParseInt(rest[i]));
    if (v < 0) return Status::InvalidArgument("negative index");
    out.push_back(static_cast<size_t>(v));
  }
  return out;
}

void WriteIndexVector(std::ostream& os, const char* key,
                      const std::vector<size_t>& v) {
  os << key << " " << v.size();
  for (size_t x : v) os << " " << x;
  os << "\n";
}

}  // namespace

Status VehicleForecaster::Save(std::ostream& os) const {
  if (!trained_) {
    return Status::FailedPrecondition("cannot save an untrained forecaster");
  }
  if (IsBaseline()) {
    return Status::Unimplemented(
        "baseline forecasters carry no state to save");
  }
  os << kForecasterMagic << "\n";
  os << "algorithm " << AlgorithmToString(config_.algorithm) << "\n";
  os << "lookback_w " << config_.windowing.lookback_w << "\n";
  os << "include_target_day_context "
     << (config_.windowing.include_target_day_context ? 1 : 0) << "\n";
  os << "include_lag_context "
     << (config_.windowing.include_lag_context ? 1 : 0) << "\n";
  os << "lag_engine_features " << config_.windowing.lag_engine_features
     << "\n";
  os << "top_k " << config_.selection.top_k << "\n";
  os << "use_feature_selection " << (config_.use_feature_selection ? 1 : 0)
     << "\n";
  os << "standardize " << (config_.standardize ? 1 : 0) << "\n";
  os << "clamp_predictions " << (config_.clamp_predictions ? 1 : 0) << "\n";
  WriteIndexVector(os, "selected_lags", selected_lags_);
  WriteIndexVector(os, "selected_columns", selected_columns_);
  if (config_.standardize) {
    VUP_RETURN_IF_ERROR(SaveScaler(scaler_, os));
  }
  VUP_RETURN_IF_ERROR(SaveRegressor(*model_, os));
  os << "end-forecaster\n";
  if (!os) return Status::DataLoss("stream write failed");
  return Status::OK();
}

StatusOr<VehicleForecaster> VehicleForecaster::Load(std::istream& is) {
  // Magic line.
  {
    std::string line;
    if (!std::getline(is, line)) {
      return Status::InvalidArgument("empty forecaster stream");
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line != kForecasterMagic) {
      return Status::InvalidArgument("not a vupred-forecaster v1 stream");
    }
  }

  ForecasterConfig config;
  VUP_ASSIGN_OR_RETURN(std::vector<std::string> alg,
                       ExpectLine(is, "algorithm"));
  if (alg.size() != 1) {
    return Status::InvalidArgument("malformed algorithm line");
  }
  bool found = false;
  for (int a = 0; a < kNumAlgorithms; ++a) {
    if (AlgorithmToString(static_cast<Algorithm>(a)) == alg[0]) {
      config.algorithm = static_cast<Algorithm>(a);
      found = true;
    }
  }
  if (!found) {
    return Status::InvalidArgument("unknown algorithm: " + alg[0]);
  }

  // Untrusted stream: bound the structural sizes before they drive any
  // allocation (MakeWindowColumns reserves lookback_w * feature columns).
  constexpr long long kMaxStructural = 1 << 16;
  VUP_ASSIGN_OR_RETURN(long long lookback, ExpectIntLine(is, "lookback_w"));
  if (lookback < 1 || lookback > kMaxStructural) {
    return Status::InvalidArgument("lookback_w out of range");
  }
  config.windowing.lookback_w = static_cast<size_t>(lookback);
  VUP_ASSIGN_OR_RETURN(long long tdc,
                       ExpectIntLine(is, "include_target_day_context"));
  config.windowing.include_target_day_context = tdc != 0;
  VUP_ASSIGN_OR_RETURN(long long lc,
                       ExpectIntLine(is, "include_lag_context"));
  config.windowing.include_lag_context = lc != 0;
  VUP_ASSIGN_OR_RETURN(long long lef,
                       ExpectIntLine(is, "lag_engine_features"));
  if (lef < 0 || lef > kMaxStructural) {
    return Status::InvalidArgument("lag_engine_features out of range");
  }
  config.windowing.lag_engine_features = static_cast<size_t>(lef);
  VUP_ASSIGN_OR_RETURN(long long top_k, ExpectIntLine(is, "top_k"));
  if (top_k < 0 || top_k > kMaxStructural) {
    return Status::InvalidArgument("top_k out of range");
  }
  config.selection.top_k = static_cast<size_t>(top_k);
  VUP_ASSIGN_OR_RETURN(long long ufs,
                       ExpectIntLine(is, "use_feature_selection"));
  config.use_feature_selection = ufs != 0;
  VUP_ASSIGN_OR_RETURN(long long std_flag, ExpectIntLine(is, "standardize"));
  config.standardize = std_flag != 0;
  VUP_ASSIGN_OR_RETURN(long long clamp,
                       ExpectIntLine(is, "clamp_predictions"));
  config.clamp_predictions = clamp != 0;

  VehicleForecaster forecaster(config);
  VUP_ASSIGN_OR_RETURN(forecaster.selected_lags_,
                       ExpectIndexVector(is, "selected_lags"));
  VUP_ASSIGN_OR_RETURN(forecaster.selected_columns_,
                       ExpectIndexVector(is, "selected_columns"));
  forecaster.all_columns_ = MakeWindowColumns(config.windowing);
  for (size_t c : forecaster.selected_columns_) {
    if (c >= forecaster.all_columns_.size()) {
      return Status::InvalidArgument("selected column index out of range");
    }
  }
  if (config.standardize) {
    VUP_ASSIGN_OR_RETURN(forecaster.scaler_, LoadScaler(is));
  }
  VUP_ASSIGN_OR_RETURN(forecaster.model_, LoadRegressor(is));
  VUP_ASSIGN_OR_RETURN(std::vector<std::string> end,
                       ExpectLine(is, "end-forecaster"));
  if (!end.empty()) {
    return Status::InvalidArgument("trailing tokens after end-forecaster");
  }
  forecaster.trained_ = true;
  return forecaster;
}

size_t VehicleForecaster::ResidentBytes() const {
  size_t bytes = sizeof(*this);
  if (model_ != nullptr) bytes += model_->ResidentBytes();
  bytes += (scaler_.means().capacity() + scaler_.scales().capacity()) *
           sizeof(double);
  bytes += all_columns_.capacity() * sizeof(WindowColumn);
  bytes += (selected_lags_.capacity() + selected_columns_.capacity()) *
           sizeof(size_t);
  return bytes;
}

StatusOr<VehicleForecaster> VehicleForecaster::FromParts(
    const ForecasterConfig& config, std::vector<size_t> selected_lags,
    std::vector<size_t> selected_columns, StandardScaler scaler,
    std::unique_ptr<Regressor> model) {
  VehicleForecaster forecaster(config);
  if (forecaster.IsBaseline()) {
    return Status::InvalidArgument(
        "baseline forecasters carry no model state");
  }
  if (model == nullptr || !model->fitted()) {
    return Status::InvalidArgument("FromParts needs a fitted model");
  }
  if (config.standardize && !scaler.fitted()) {
    return Status::InvalidArgument("standardize set but scaler unfitted");
  }
  forecaster.all_columns_ = MakeWindowColumns(config.windowing);
  for (size_t c : selected_columns) {
    if (c >= forecaster.all_columns_.size()) {
      return Status::InvalidArgument("selected column index out of range");
    }
  }
  forecaster.selected_lags_ = std::move(selected_lags);
  forecaster.selected_columns_ = std::move(selected_columns);
  forecaster.scaler_ = std::move(scaler);
  forecaster.model_ = std::move(model);
  forecaster.trained_ = true;
  return forecaster;
}

StatusOr<std::string> VehicleForecaster::SaveCompact() const {
  if (!trained_) {
    return Status::FailedPrecondition("cannot save an untrained forecaster");
  }
  if (IsBaseline()) {
    return Status::Unimplemented(
        "baseline forecasters carry no state to save");
  }
  CompactPipelineHeader header;
  header.algorithm = static_cast<int>(config_.algorithm);
  header.lookback_w = static_cast<uint32_t>(config_.windowing.lookback_w);
  header.lag_engine_features =
      static_cast<uint32_t>(config_.windowing.lag_engine_features);
  header.top_k = static_cast<uint32_t>(config_.selection.top_k);
  header.use_feature_selection = config_.use_feature_selection;
  header.standardize = config_.standardize;
  header.clamp_predictions = config_.clamp_predictions;
  header.include_target_day_context =
      config_.windowing.include_target_day_context;
  header.include_lag_context = config_.windowing.include_lag_context;
  header.selected_lags.reserve(selected_lags_.size());
  for (size_t lag : selected_lags_) {
    header.selected_lags.push_back(static_cast<uint32_t>(lag));
  }
  header.selected_columns.reserve(selected_columns_.size());
  for (size_t col : selected_columns_) {
    header.selected_columns.push_back(static_cast<uint32_t>(col));
  }
  return EncodeCompactPipeline(
      header, config_.standardize ? &scaler_ : nullptr, *model_);
}

StatusOr<VehicleForecaster> VehicleForecaster::LoadCompact(
    std::span<const uint8_t> bytes, std::shared_ptr<const void> owner) {
  VUP_ASSIGN_OR_RETURN(DecodedCompactPipeline decoded,
                       DecodeCompactPipeline(bytes, std::move(owner)));
  ForecasterConfig config;
  // The decoder only emits the four ML algorithm codes, which are the
  // integer values of the Algorithm enum.
  config.algorithm = static_cast<Algorithm>(decoded.header.algorithm);
  config.windowing.lookback_w = decoded.header.lookback_w;
  config.windowing.lag_engine_features = decoded.header.lag_engine_features;
  config.windowing.include_target_day_context =
      decoded.header.include_target_day_context;
  config.windowing.include_lag_context = decoded.header.include_lag_context;
  config.selection.top_k = decoded.header.top_k;
  config.use_feature_selection = decoded.header.use_feature_selection;
  config.standardize = decoded.header.standardize;
  config.clamp_predictions = decoded.header.clamp_predictions;
  std::vector<size_t> lags(decoded.header.selected_lags.begin(),
                           decoded.header.selected_lags.end());
  std::vector<size_t> cols(decoded.header.selected_columns.begin(),
                           decoded.header.selected_columns.end());
  // Column-range validation against MakeWindowColumns happens in
  // FromParts, exactly as the text Load path; a compact bundle whose
  // columns fall outside the window set is rejected, not served.
  StatusOr<VehicleForecaster> forecaster =
      FromParts(config, std::move(lags), std::move(cols),
                std::move(decoded.scaler), std::move(decoded.model));
  if (!forecaster.ok() &&
      forecaster.status().code() == StatusCode::kInvalidArgument) {
    // Structural lies that pass the CRC are still corruption from the
    // serving path's point of view.
    return Status::DataLoss("compact bundle failed pipeline validation: " +
                            forecaster.status().message());
  }
  return forecaster;
}

}  // namespace vup
