#ifndef VUPRED_CORE_FORECASTER_H_
#define VUPRED_CORE_FORECASTER_H_

#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "common/statusor.h"
#include "core/feature_selection.h"
#include "core/windowing.h"
#include "ml/baselines.h"
#include "ml/gradient_boosting.h"
#include "ml/lasso.h"
#include "ml/model.h"
#include "ml/scaler.h"
#include "ml/svr.h"
#include "ml/warm_start.h"
#include "pipeline/dataset.h"

namespace vup {

/// The six forecasting methods the paper compares (Section 3):
/// two naive baselines and four regression algorithms.
enum class Algorithm : int {
  kLastValue = 0,        // LV baseline.
  kMovingAverage = 1,    // MA baseline, period 30.
  kLinearRegression = 2,
  kLasso = 3,            // alpha = 0.1.
  kSvr = 4,              // rbf, C=10, eps=0.1.
  kGradientBoosting = 5, // lr=0.1, 100 stumps, LAD.
};

inline constexpr int kNumAlgorithms = 6;

std::string_view AlgorithmToString(Algorithm a);

/// Per-vehicle forecaster configuration: algorithm plus the methodology
/// knobs (lookback window, ACF feature selection, scaling).
struct ForecasterConfig {
  Algorithm algorithm = Algorithm::kSvr;
  WindowingConfig windowing;
  FeatureSelectionConfig selection;
  bool use_feature_selection = true;
  /// Standardize features before the regressor (required for sane SVR
  /// distances, harmless elsewhere).
  bool standardize = true;
  /// Clamp predictions to the physical range [0, 24] hours.
  bool clamp_predictions = true;
  /// Reuse windowing/ACF state across consecutive Train calls on the same
  /// dataset: a sliding training span advances a ring-buffer design matrix
  /// (SlidingWindowBuilder) and reads the training-span ACF from
  /// precomputed running sums (SlidingAcf) instead of rebuilding both from
  /// scratch each step. The windowed matrix is bit-identical to the naive
  /// build; the ACF agrees up to floating-point rounding (see SlidingAcf).
  /// Disable to force the naive full-rebuild path (the reference baseline
  /// that `vupred core-bench` compares against). Not serialized by Save:
  /// it changes how training runs, not what a trained pipeline is.
  bool incremental_training = true;

  /// Warm-start solver state across consecutive Train calls on the same
  /// dataset (the walk-forward refit loop): SVR resumes SMO from the
  /// previous window's dual vector mapped through the add-one-drop-one
  /// row shift, Lasso resumes coordinate descent from the previous
  /// coefficients, and GB appends gb_extra_stages boosting stages to the
  /// previous ensemble instead of refitting all n_estimators stages.
  /// Applies only when the training span advanced by exactly one target
  /// with an unchanged record count; anything else (expanding windows,
  /// retrain_every > 1, a dataset switch, a lag-set or hyper-parameter
  /// change) invalidates the captured state and fits cold -- each
  /// decision is counted in vupred_train_warmstart_*_total{algorithm=}.
  ///
  /// Off by default: warm starts legitimately change the iterate path,
  /// so predictions are equivalent to a cold fit only within documented
  /// tolerances (DESIGN.md section 14), not bitwise; the incremental
  /// path keeps its exact naive-rebuild equivalence unless this is
  /// explicitly opted in. Not serialized by Save, like
  /// incremental_training: it changes how training runs, not what a
  /// trained pipeline is.
  struct WarmStartOptions {
    bool enabled = false;
    /// Boosting stages appended per warm GB fit.
    size_t gb_extra_stages = 10;
    /// Consecutive warm GB fits before a forced full refit (staleness
    /// cap): bounds how far the adopted ensemble may drift from the
    /// window it is applied to.
    size_t gb_max_staleness = 8;
    /// Ensemble size that forces a full GB refit regardless of staleness.
    size_t gb_max_trees = 400;
    /// LRU capacity (rows) of the SVR kernel-row cache.
    size_t svr_kernel_cache_rows = 256;
    /// Sweep budget for warm SVR fits. The cold SMO is budget-bound on
    /// real windows (it exhausts Svr::Options::max_sweeps rather than
    /// meeting the sweep-improvement tolerance), so a warm fit resuming
    /// from the adjacent window's solution gets a proportionally smaller
    /// budget -- the GB analogue is gb_extra_stages vs n_estimators. The
    /// equivalence tolerances of DESIGN.md section 14 certify the result.
    size_t svr_warm_max_sweeps = 15;
  };
  WarmStartOptions warm_start;

  size_t ma_period = 30;  // Moving-average baseline period.
  /// LR on wide windowed designs needs Tikhonov stabilization (see
  /// LinearRegression::Options::ridge): with ~200 standardized columns and
  /// ~140 records, plain OLS interpolates and extrapolates wildly. This
  /// plays the role of scikit-learn's minimum-norm lstsq solution.
  double lr_ridge = 25.0;
  Lasso::Options lasso;
  Svr::Options svr;
  GradientBoosting::Options gb;
};

/// Builds an unfitted regressor for an ML algorithm with the paper's
/// hyper-parameters from `config`. InvalidArgument for baseline algorithms
/// (they are not trained models).
StatusOr<std::unique_ptr<Regressor>> MakeRegressor(
    const ForecasterConfig& config);

/// Fingerprint of the algorithm and every hyper-parameter that shapes the
/// training problem (windowing, selection, scaling, per-algorithm options
/// and the warm-start knobs themselves). Any change produces a different
/// hash, so captured warm-start state from the old configuration is
/// invalidated rather than replayed. Exposed for the warm-start
/// regression suite.
uint64_t WarmStartConfigHash(const ForecasterConfig& config);

/// True when `algorithm` has a warm-start path (Lasso, SVR, GB).
bool AlgorithmSupportsWarmStart(Algorithm algorithm);

/// One member of a pooled training set: a vehicle's dataset plus the
/// half-open target span its records are drawn from (same semantics as
/// VehicleForecaster::Train's train_begin/train_end).
struct PooledTrainingSpan {
  const VehicleDataset* dataset = nullptr;
  size_t train_begin = 0;
  size_t train_end = 0;
};

/// One vehicle's end-to-end forecasting pipeline:
/// windowing -> ACF lag selection -> standardization -> regressor.
/// Baselines (LV, MA) skip the pipeline and read the hours series directly.
class VehicleForecaster {
 public:
  explicit VehicleForecaster(ForecasterConfig config);

  /// Trains on records whose target rows are train_begin..train_end-1
  /// (half-open, indices into `ds`). Requirements: for ML algorithms,
  /// train_begin >= lookback_w and at least 2 records. For baselines this
  /// records the training span end and succeeds trivially.
  Status Train(const VehicleDataset& ds, size_t train_begin,
               size_t train_end);

  /// Trains one *pooled* model on the stacked windowed records of several
  /// vehicles (the per-cluster / global models of the serving hierarchy).
  /// Lags are selected on the member-averaged training-span ACF, the
  /// scaler is fit on the stacked design matrix, and the result is a
  /// regular trained forecaster: PredictTarget scores any member (or
  /// cold-start) vehicle's dataset, Save/Load round-trips it like a
  /// per-vehicle model. Members are stacked in input order, so the result
  /// is deterministic in (members, config). Requirements: ML algorithm
  /// (baselines carry no pooled state), >= 1 member, per-member spans as
  /// in Train, >= 2 stacked records in total.
  static StatusOr<VehicleForecaster> TrainPooled(
      std::span<const PooledTrainingSpan> members,
      const ForecasterConfig& config);

  /// Predicts utilization hours of target row `target_index`
  /// (may equal ds.num_days() for the one-step-ahead forecast).
  /// FailedPrecondition before Train.
  StatusOr<double> PredictTarget(const VehicleDataset& ds,
                                 size_t target_index) const;

  const ForecasterConfig& config() const { return config_; }
  bool trained() const { return trained_; }

  /// Lags selected at the last Train (empty for baselines or when feature
  /// selection is off).
  const std::vector<size_t>& selected_lags() const { return selected_lags_; }

  /// Column indices (into the full window-column set) the model consumes;
  /// empty when feature selection is off.
  const std::vector<size_t>& selected_columns() const {
    return selected_columns_;
  }

  /// Fitted scaler (meaningful only when config().standardize).
  const StandardScaler& scaler() const { return scaler_; }

  /// Trained regressor, or nullptr before Train / for baselines.
  const Regressor* regressor() const { return model_.get(); }

  /// Approximate heap bytes this trained pipeline keeps resident (model
  /// weights, scaler state, column tables) -- the unit of the serving
  /// registry's byte-budgeted cache. Compact (mmap-backed) pipelines
  /// report only bookkeeping; their weights live in clean mapped pages.
  size_t ResidentBytes() const;

  /// Persists the trained pipeline (config, selected columns, scaler,
  /// model) as text, so a model trained centrally can be applied at the
  /// edge without retraining. FailedPrecondition before Train;
  /// Unimplemented for baseline algorithms (they carry no state).
  Status Save(std::ostream& os) const;

  /// Restores a pipeline written by Save.
  static StatusOr<VehicleForecaster> Load(std::istream& is);

  /// Persists the trained pipeline as a compact binary bundle
  /// (ml/compact.h): fixed layout, CRC-framed, mmap-able. Same
  /// preconditions as Save. Prediction parity vs the text bundle is
  /// bitwise for LR and tolerance-bounded for Lasso/SVR/GB (DESIGN.md
  /// section 15).
  StatusOr<std::string> SaveCompact() const;

  /// Restores a pipeline written by SaveCompact. The forecaster scores in
  /// place over `bytes` and keeps `owner` alive, so pass the MappedFile
  /// (or heap buffer) backing them. Error contract as
  /// DecodeCompactPipeline.
  static StatusOr<VehicleForecaster> LoadCompact(
      std::span<const uint8_t> bytes, std::shared_ptr<const void> owner);

  /// Reassembles a trained forecaster from already-validated parts (the
  /// compact decode path), with Load's structural validation: ML
  /// algorithm only, fitted model, selected columns within the window
  /// column set, fitted scaler iff config.standardize.
  static StatusOr<VehicleForecaster> FromParts(
      const ForecasterConfig& config, std::vector<size_t> selected_lags,
      std::vector<size_t> selected_columns, StandardScaler scaler,
      std::unique_ptr<Regressor> model);

 private:
  bool IsBaseline() const {
    return config_.algorithm == Algorithm::kLastValue ||
           config_.algorithm == Algorithm::kMovingAverage;
  }

  /// Advances (or rebuilds) the cached sliding-window builder so it covers
  /// targets train_begin..train_end-1 of `ds`.
  Status PrepareIncrementalWindow(const VehicleDataset& ds, size_t train_begin,
                                  size_t train_end);

  /// Decides warm vs cold for the upcoming fit (counting the decision in
  /// the vupred_train_warmstart_* metrics), arms the freshly built model_
  /// with the captured payload on a hit, and returns whether it did.
  /// Called after lag selection (the key covers selected_columns_) and
  /// before model_->Fit; `num_columns` is the design-matrix width.
  bool ApplyWarmStart(const VehicleDataset& ds, size_t train_begin,
                      size_t train_end, size_t num_columns);

  /// Captures the fitted model's solver state as the next warm-start
  /// payload. `fitted_warm` says whether this fit itself resumed from a
  /// payload (drives the GB staleness counter).
  void CaptureWarmStartState(size_t train_begin, size_t train_end,
                             bool fitted_warm);

  ForecasterConfig config_;
  bool trained_ = false;

  // ML pipeline state.
  std::unique_ptr<Regressor> model_;
  StandardScaler scaler_;
  std::vector<WindowColumn> all_columns_;
  std::vector<size_t> selected_lags_;
  std::vector<size_t> selected_columns_;

  // Incremental-training caches (config_.incremental_training). Valid only
  // for the dataset identified by incremental_ds_/incremental_days_; Train
  // resets them when it sees a different dataset. The identity key is the
  // dataset's address plus its day count, so a caller mutating a dataset
  // in place between Train calls must not reuse its address -- the
  // evaluation pipeline never does (datasets are immutable once built).
  std::optional<SlidingWindowBuilder> window_builder_;
  std::optional<SlidingAcf> acf_cache_;
  const void* incremental_ds_ = nullptr;
  size_t incremental_days_ = 0;

  // Warm-start solver state (config_.warm_start.enabled), dataset-keyed
  // exactly like the incremental caches above: state captured on one
  // dataset is never replayed onto another.
  WarmStartState warm_state_;
  const void* warm_ds_ = nullptr;
  size_t warm_days_ = 0;
};

}  // namespace vup

#endif  // VUPRED_CORE_FORECASTER_H_
