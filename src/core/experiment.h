#ifndef VUPRED_CORE_EXPERIMENT_H_
#define VUPRED_CORE_EXPERIMENT_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/retry.h"
#include "common/statusor.h"
#include "core/evaluation.h"
#include "telemetry/fault_injector.h"
#include "telemetry/fleet.h"

namespace vup {

/// Generates, cleans and assembles the model-ready dataset of one fleet
/// vehicle: the full preparation pipeline of Section 2 on the fast
/// generation path. When `injector` is non-null, the generated daily
/// stream is routed through it (tagged by vehicle id) before cleaning, so
/// the pipeline is exercised on realistically corrupted telemetry.
StatusOr<VehicleDataset> PrepareVehicleDataset(
    const Fleet& fleet, size_t index,
    const FaultInjector* injector = nullptr);

/// Fleet-experiment options.
struct ExperimentOptions {
  /// Evaluate at most this many vehicles (deterministic subsample of the
  /// eligible ones). The paper evaluates all 2 239; benches subsample.
  size_t max_vehicles = 30;
  /// Skip vehicles with fewer days of history than this.
  size_t min_days = 500;
  /// Skip vehicles whose series has fewer working days than this
  /// (degenerate, mostly-parked units).
  size_t min_working_days = 60;
  uint64_t subsample_seed = 7;

  /// Telemetry fault injection applied to every vehicle's stream before
  /// cleaning, plus control-plane outage channels consulted during the
  /// run. The default (all-zero) profile disables injection entirely.
  FaultProfile faults;
  uint64_t fault_seed = 99;

  /// Bounded-attempt retry for the per-vehicle fetch/prepare and training
  /// stages. Backoff never wall-blocks inside the runner (no sleep is
  /// installed); the schedule still bounds the attempt count.
  RetryOptions retry;

  /// When a vehicle's primary training/evaluation fails after retries,
  /// fall back to this naive baseline instead of quarantining outright.
  bool degrade_to_baseline = true;
  Algorithm fallback_algorithm = Algorithm::kMovingAverage;

  /// Worker threads for the per-vehicle train/evaluate loop. 1 (default)
  /// runs the reference serial path; N > 1 scores vehicles concurrently on
  /// a ThreadPool and folds results in selection order, so every output --
  /// metrics, degradation report, retry counts -- is byte-identical to the
  /// serial run.
  size_t jobs = 1;
};

/// Terminal state of one vehicle within a fleet run.
enum class VehicleOutcome : int {
  kEvaluated = 0,    // Primary configuration succeeded.
  kDegraded = 1,     // Fell back to the naive baseline.
  kQuarantined = 2,  // Every recovery path failed; excluded from metrics.
};

std::string_view VehicleOutcomeToString(VehicleOutcome outcome);

/// Per-vehicle robustness record.
struct VehicleDegradation {
  size_t vehicle_index = 0;
  int64_t vehicle_id = 0;
  VehicleOutcome outcome = VehicleOutcome::kEvaluated;
  size_t retries = 0;  // Re-attempts consumed across all stages.
  Status reason;       // OK for kEvaluated; the terminal error otherwise.
};

/// Fleet-level robustness observability: what failed, what recovered, what
/// was excluded. Counts always reconcile:
/// vehicles_evaluated + vehicles_degraded + vehicles_quarantined ==
/// vehicles.size() == the number of attempted vehicles.
struct DegradationReport {
  size_t vehicles_evaluated = 0;
  size_t vehicles_degraded = 0;
  size_t vehicles_quarantined = 0;
  size_t total_retries = 0;
  std::vector<VehicleDegradation> vehicles;  // One entry per attempt.

  std::string ToString() const;
};

/// One experiment's outcome.
struct ExperimentResult {
  FleetEvaluation fleet;
  std::vector<size_t> vehicle_indices;  // Vehicles evaluated (or attempted).
  DegradationReport degradation;
  double wall_seconds = 0.0;
};

/// Orchestrates per-vehicle evaluations across a fleet with dataset
/// caching, so comparing several algorithms/configurations on the same
/// vehicles only pays preparation once.
///
/// Fault tolerance: a vehicle whose preparation or training fails is
/// retried per ExperimentOptions::retry, then degraded to the configured
/// baseline, and only quarantined (with a Status-carrying reason) when
/// every path fails. A single failing vehicle therefore never aborts the
/// fleet run; Run only errors when *no* vehicle is eligible at all.
class ExperimentRunner {
 public:
  /// `fleet` must outlive the runner.
  explicit ExperimentRunner(const Fleet* fleet);

  ExperimentRunner(const ExperimentRunner&) = delete;
  ExperimentRunner& operator=(const ExperimentRunner&) = delete;

  /// The cached dataset of one vehicle (prepared on first use). Reflects
  /// the fault configuration of the most recent SelectVehicles/Run call;
  /// the cache is invalidated whenever that configuration changes.
  StatusOr<const VehicleDataset*> Dataset(size_t index);

  /// Deterministic subsample of vehicles eligible under `options`.
  std::vector<size_t> SelectVehicles(const ExperimentOptions& options);

  /// Trains and evaluates every selected vehicle per Section 4.1 with
  /// per-vehicle error isolation, and aggregates to the fleet level.
  /// Quarantined vehicles are excluded from FleetEvaluation explicitly
  /// (fleet.vehicles_quarantined) and itemized in result.degradation.
  StatusOr<ExperimentResult> Run(const EvaluationConfig& config,
                                 const ExperimentOptions& options);

  const Fleet& fleet() const { return *fleet_; }

 private:
  /// Everything Run decides about one vehicle, produced independently per
  /// vehicle so the loop can run serial or on a pool and fold results in
  /// selection order either way.
  struct VehicleRunOutcome {
    VehicleDegradation entry;
    std::optional<VehicleEvaluation> evaluation;  // Set unless quarantined.
  };

  /// Installs the fault injector implied by `options`, dropping cached
  /// datasets when the fault configuration changed.
  void ConfigureFaults(const ExperimentOptions& options);

  /// The fetch -> train/evaluate -> degrade pipeline of one vehicle.
  /// Deterministic per vehicle and safe to call concurrently once the
  /// vehicle's dataset is cached (SelectVehicles warms the cache).
  VehicleRunOutcome RunOneVehicle(size_t index,
                                  const EvaluationConfig& config,
                                  const ExperimentOptions& options,
                                  const RetryPolicy& policy,
                                  const FaultInjector* injector);

  const Fleet* fleet_;
  std::mutex cache_mu_;  // Guards cache_ (Dataset may run on pool workers).
  std::map<size_t, VehicleDataset> cache_;
  std::optional<FaultInjector> injector_;
  uint64_t fault_sig_ = 0;
};

}  // namespace vup

#endif  // VUPRED_CORE_EXPERIMENT_H_
