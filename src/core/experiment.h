#ifndef VUPRED_CORE_EXPERIMENT_H_
#define VUPRED_CORE_EXPERIMENT_H_

#include <map>
#include <vector>

#include "common/statusor.h"
#include "core/evaluation.h"
#include "telemetry/fleet.h"

namespace vup {

/// Generates, cleans and assembles the model-ready dataset of one fleet
/// vehicle: the full preparation pipeline of Section 2 on the fast
/// generation path.
StatusOr<VehicleDataset> PrepareVehicleDataset(const Fleet& fleet,
                                               size_t index);

/// Fleet-experiment options.
struct ExperimentOptions {
  /// Evaluate at most this many vehicles (deterministic subsample of the
  /// eligible ones). The paper evaluates all 2 239; benches subsample.
  size_t max_vehicles = 30;
  /// Skip vehicles with fewer days of history than this.
  size_t min_days = 500;
  /// Skip vehicles whose series has fewer working days than this
  /// (degenerate, mostly-parked units).
  size_t min_working_days = 60;
  uint64_t subsample_seed = 7;
};

/// One experiment's outcome.
struct ExperimentResult {
  FleetEvaluation fleet;
  std::vector<size_t> vehicle_indices;  // Vehicles evaluated (or attempted).
  double wall_seconds = 0.0;
};

/// Orchestrates per-vehicle evaluations across a fleet with dataset
/// caching, so comparing several algorithms/configurations on the same
/// vehicles only pays preparation once.
class ExperimentRunner {
 public:
  /// `fleet` must outlive the runner.
  explicit ExperimentRunner(const Fleet* fleet);

  ExperimentRunner(const ExperimentRunner&) = delete;
  ExperimentRunner& operator=(const ExperimentRunner&) = delete;

  /// The cached dataset of one vehicle (prepared on first use).
  StatusOr<const VehicleDataset*> Dataset(size_t index);

  /// Deterministic subsample of vehicles eligible under `options`.
  std::vector<size_t> SelectVehicles(const ExperimentOptions& options);

  /// Trains and evaluates every selected vehicle per Section 4.1 and
  /// aggregates to the fleet level.
  StatusOr<ExperimentResult> Run(const EvaluationConfig& config,
                                 const ExperimentOptions& options);

  const Fleet& fleet() const { return *fleet_; }

 private:
  const Fleet* fleet_;
  std::map<size_t, VehicleDataset> cache_;
};

}  // namespace vup

#endif  // VUPRED_CORE_EXPERIMENT_H_
