#include "core/usage_levels.h"

#include <algorithm>

#include "common/string_util.h"
#include "core/feature_selection.h"
#include "core/windowing.h"

namespace vup {

std::string_view UsageLevelToString(UsageLevel level) {
  switch (level) {
    case UsageLevel::kIdle:
      return "Idle";
    case UsageLevel::kShort:
      return "Short";
    case UsageLevel::kMedium:
      return "Medium";
    case UsageLevel::kLong:
      return "Long";
  }
  return "?";
}

UsageLevel LevelForHours(double hours) {
  if (hours < 1.0) return UsageLevel::kIdle;
  if (hours < 3.0) return UsageLevel::kShort;
  if (hours < 6.0) return UsageLevel::kMedium;
  return UsageLevel::kLong;
}

int LevelConfusionMatrix::total() const {
  int sum = 0;
  for (const auto& row : counts) {
    for (int v : row) sum += v;
  }
  return sum;
}

double LevelConfusionMatrix::Accuracy() const {
  int n = total();
  if (n == 0) return 0.0;
  int diag = 0;
  for (int i = 0; i < kNumUsageLevels; ++i) {
    diag += counts[static_cast<size_t>(i)][static_cast<size_t>(i)];
  }
  return static_cast<double>(diag) / n;
}

double LevelConfusionMatrix::WithinOneAccuracy() const {
  int n = total();
  if (n == 0) return 0.0;
  int near = 0;
  for (int i = 0; i < kNumUsageLevels; ++i) {
    for (int j = 0; j < kNumUsageLevels; ++j) {
      if (std::abs(i - j) <= 1) {
        near += counts[static_cast<size_t>(i)][static_cast<size_t>(j)];
      }
    }
  }
  return static_cast<double>(near) / n;
}

std::string LevelConfusionMatrix::ToString() const {
  std::string out = StrFormat("%-8s", "true\\pred");
  for (int j = 0; j < kNumUsageLevels; ++j) {
    out += StrFormat(" %7s",
                     std::string(UsageLevelToString(
                                     static_cast<UsageLevel>(j)))
                         .c_str());
  }
  out += "\n";
  for (int i = 0; i < kNumUsageLevels; ++i) {
    out += StrFormat("%-8s",
                     std::string(UsageLevelToString(
                                     static_cast<UsageLevel>(i)))
                         .c_str());
    for (int j = 0; j < kNumUsageLevels; ++j) {
      out += StrFormat(" %7d",
                       counts[static_cast<size_t>(i)][static_cast<size_t>(j)]);
    }
    out += "\n";
  }
  out += StrFormat("accuracy=%.3f within-one=%.3f n=%d\n", Accuracy(),
                   WithinOneAccuracy(), total());
  return out;
}

UsageLevelClassifier::UsageLevelClassifier(Options options)
    : options_(std::move(options)) {}

Status UsageLevelClassifier::Train(const VehicleDataset& ds,
                                   size_t train_begin, size_t train_end) {
  trained_ = false;
  const ForecasterConfig& fc = options_.pipeline;
  if (train_begin >= train_end) {
    return Status::InvalidArgument("empty training span");
  }
  if (train_end > ds.num_days()) {
    return Status::OutOfRange("training span beyond dataset");
  }
  if (train_begin < fc.windowing.lookback_w) {
    return Status::InvalidArgument("train_begin precedes lookback window");
  }
  if (train_end - train_begin < 4) {
    return Status::InvalidArgument("need at least 4 training records");
  }

  VUP_ASSIGN_OR_RETURN(
      WindowedDataset windowed,
      BuildWindowedDataset(ds, fc.windowing, train_begin, train_end - 1));
  all_columns_ = windowed.columns;
  Matrix x = std::move(windowed.x);
  selected_columns_.clear();
  if (fc.use_feature_selection) {
    std::span<const double> hours(ds.hours());
    std::span<const double> train_hours = hours.subspan(
        train_begin - fc.windowing.lookback_w,
        fc.windowing.lookback_w + (train_end - train_begin));
    std::vector<size_t> lags = SelectLagsByAcf(
        train_hours, fc.windowing.lookback_w, fc.selection.top_k);
    selected_columns_ = ColumnsForLags(all_columns_, lags);
    x = x.SelectColumns(selected_columns_);
  }
  VUP_ASSIGN_OR_RETURN(x, scaler_.FitTransform(x));

  const size_t n = windowed.y.size();
  for (int level = 0; level < kNumUsageLevels; ++level) {
    std::vector<int> labels(n);
    int positives = 0;
    for (size_t i = 0; i < n; ++i) {
      labels[i] =
          LevelForHours(windowed.y[i]) == static_cast<UsageLevel>(level) ? 1
                                                                         : 0;
      positives += labels[i];
    }
    PerLevel& slot = models_[static_cast<size_t>(level)];
    slot.prior = static_cast<double>(positives) / static_cast<double>(n);
    if (positives == 0 || positives == static_cast<int>(n)) {
      slot.usable = false;  // Constant class: score by prior.
      continue;
    }
    slot.model = LogisticRegression(options_.logistic);
    Status fitted = slot.model.Fit(x, labels);
    slot.usable = fitted.ok();
  }
  trained_ = true;
  return Status::OK();
}

StatusOr<std::array<double, kNumUsageLevels>>
UsageLevelClassifier::PredictScores(const VehicleDataset& ds,
                                    size_t target_index) const {
  if (!trained_) return Status::FailedPrecondition("classifier not trained");
  VUP_ASSIGN_OR_RETURN(
      std::vector<double> row,
      BuildFeatureRowForTarget(ds, options_.pipeline.windowing,
                               target_index));
  if (options_.pipeline.use_feature_selection) {
    std::vector<double> selected;
    selected.reserve(selected_columns_.size());
    for (size_t c : selected_columns_) selected.push_back(row[c]);
    row = std::move(selected);
  }
  VUP_ASSIGN_OR_RETURN(row, scaler_.TransformRow(row));

  std::array<double, kNumUsageLevels> scores{};
  for (int level = 0; level < kNumUsageLevels; ++level) {
    const PerLevel& slot = models_[static_cast<size_t>(level)];
    if (slot.usable) {
      VUP_ASSIGN_OR_RETURN(scores[static_cast<size_t>(level)],
                           slot.model.PredictProbability(row));
    } else {
      scores[static_cast<size_t>(level)] = slot.prior;
    }
  }
  return scores;
}

StatusOr<UsageLevel> UsageLevelClassifier::PredictTarget(
    const VehicleDataset& ds, size_t target_index) const {
  VUP_ASSIGN_OR_RETURN(auto scores, PredictScores(ds, target_index));
  size_t best = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[best]) best = i;
  }
  return static_cast<UsageLevel>(best);
}

StatusOr<LevelConfusionMatrix> EvaluateUsageLevels(
    const VehicleDataset& ds, const EvaluationConfig& eval_config,
    const UsageLevelClassifier::Options& options) {
  if (eval_config.eval_days == 0 || eval_config.retrain_every == 0) {
    return Status::InvalidArgument("eval_days/retrain_every must be >= 1");
  }
  const size_t n = ds.num_days();
  const size_t w = options.pipeline.windowing.lookback_w;
  const size_t min_target = w + 8;
  if (n < min_target + 1) {
    return Status::InvalidArgument("series too short");
  }
  const size_t first_target = std::max(min_target, n - eval_config.eval_days);

  UsageLevelClassifier classifier(options);
  LevelConfusionMatrix confusion;
  size_t since_retrain = eval_config.retrain_every;
  for (size_t t = first_target; t < n; ++t) {
    if (since_retrain >= eval_config.retrain_every) {
      size_t train_end = t;
      size_t train_begin =
          eval_config.strategy == WindowStrategy::kExpanding
              ? w
              : std::max(w, train_end - std::min(train_end - w,
                                                 eval_config.train_window));
      VUP_RETURN_IF_ERROR(classifier.Train(ds, train_begin, train_end));
      since_retrain = 0;
    }
    ++since_retrain;
    VUP_ASSIGN_OR_RETURN(UsageLevel predicted,
                         classifier.PredictTarget(ds, t));
    UsageLevel actual = LevelForHours(ds.hours()[t]);
    confusion.counts[static_cast<size_t>(actual)]
                    [static_cast<size_t>(predicted)]++;
  }
  return confusion;
}

}  // namespace vup
