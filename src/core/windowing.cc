#include "core/windowing.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"
#include "pipeline/enrich.h"

namespace vup {

std::string WindowColumn::ToString() const {
  if (kind == Kind::kLagFeature) {
    return StrFormat("%s@t-%zu",
                     VehicleDataset::FeatureNames()[feature].c_str(), lag);
  }
  return StrFormat("%s@target", ContextFeatureNames()[feature].c_str());
}

namespace {

/// Number of per-lag-day feature columns under `config`.
size_t LagFeatureCount(const WindowingConfig& config) {
  if (config.include_lag_context) {
    return VehicleDataset::FeatureNames().size();
  }
  return std::min(config.lag_engine_features,
                  VehicleDataset::kNumEngineFeatures);
}

}  // namespace

std::vector<WindowColumn> MakeWindowColumns(const WindowingConfig& config) {
  std::vector<WindowColumn> columns;
  const size_t nf = LagFeatureCount(config);
  columns.reserve(config.lookback_w * nf +
                  (config.include_target_day_context ? kNumContextFeatures
                                                     : 0));
  for (size_t lag = 1; lag <= config.lookback_w; ++lag) {
    for (size_t f = 0; f < nf; ++f) {
      columns.push_back(
          {WindowColumn::Kind::kLagFeature, lag, f});
    }
  }
  if (config.include_target_day_context) {
    for (size_t f = 0; f < kNumContextFeatures; ++f) {
      columns.push_back({WindowColumn::Kind::kTargetContext, 0, f});
    }
  }
  return columns;
}

namespace {

Status ValidateWindowing(const VehicleDataset& ds,
                         const WindowingConfig& config, size_t target_index,
                         bool allow_one_past_end) {
  if (config.lookback_w < 1) {
    return Status::InvalidArgument("lookback_w must be >= 1");
  }
  if (ds.num_days() == 0) {
    // Guard before the subtraction below: num_days() - 1 on an empty
    // dataset wraps to SIZE_MAX and would accept any target index.
    return Status::InvalidArgument("cannot window an empty dataset");
  }
  size_t max_target = ds.num_days() - (allow_one_past_end ? 0 : 1);
  if (target_index > max_target) {
    return Status::OutOfRange(
        StrFormat("target index %zu beyond dataset of %zu days", target_index,
                  ds.num_days()));
  }
  if (target_index < config.lookback_w) {
    return Status::InvalidArgument(
        StrFormat("target index %zu has fewer than w=%zu preceding days",
                  target_index, config.lookback_w));
  }
  return Status::OK();
}

/// Appends the feature row for `target_index` to `out`.
void FillFeatureRow(const VehicleDataset& ds, const WindowingConfig& config,
                    size_t target_index, std::vector<double>* out) {
  const size_t nf = LagFeatureCount(config);
  for (size_t lag = 1; lag <= config.lookback_w; ++lag) {
    std::span<const double> row = ds.FeatureRow(target_index - lag);
    out->insert(out->end(), row.begin(), row.begin() + static_cast<long>(nf));
  }
  if (config.include_target_day_context) {
    Date target_date = target_index < ds.num_days()
                           ? ds.dates()[target_index]
                           : ds.dates().back().AddDays(1);
    std::vector<double> ctx =
        ContextToVector(ComputeContext(target_date, ds.country()));
    out->insert(out->end(), ctx.begin(), ctx.end());
  }
}

}  // namespace

StatusOr<WindowedDataset> BuildWindowedDataset(const VehicleDataset& ds,
                                               const WindowingConfig& config,
                                               size_t first_target,
                                               size_t last_target) {
  if (first_target > last_target) {
    return Status::InvalidArgument("first_target > last_target");
  }
  VUP_RETURN_IF_ERROR(ValidateWindowing(ds, config, first_target, false));
  VUP_RETURN_IF_ERROR(ValidateWindowing(ds, config, last_target, false));

  WindowedDataset out;
  out.columns = MakeWindowColumns(config);
  const size_t num_records = last_target - first_target + 1;
  const size_t num_cols = out.columns.size();
  out.x = Matrix(num_records, num_cols);
  out.y.reserve(num_records);
  out.target_rows.reserve(num_records);

  std::vector<double> row;
  row.reserve(num_cols);
  for (size_t t = first_target; t <= last_target; ++t) {
    row.clear();
    FillFeatureRow(ds, config, t, &row);
    VUP_CHECK(row.size() == num_cols);
    std::span<double> dst = out.x.MutableRow(t - first_target);
    for (size_t c = 0; c < num_cols; ++c) dst[c] = row[c];
    out.y.push_back(ds.hours()[t]);
    out.target_rows.push_back(t);
  }
  return out;
}

StatusOr<std::vector<double>> BuildFeatureRowForTarget(
    const VehicleDataset& ds, const WindowingConfig& config,
    size_t target_index) {
  VUP_RETURN_IF_ERROR(ValidateWindowing(ds, config, target_index, true));
  std::vector<double> row;
  FillFeatureRow(ds, config, target_index, &row);
  return row;
}

void SlidingWindowBuilder::FillPhysicalRow(const VehicleDataset& ds,
                                           size_t physical,
                                           size_t target_index) {
  scratch_.clear();
  FillFeatureRow(ds, config_, target_index, &scratch_);
  VUP_CHECK(scratch_.size() == columns_.size());
  std::span<double> dst = rows_.MutableRow(physical);
  for (size_t c = 0; c < scratch_.size(); ++c) dst[c] = scratch_[c];
  y_[physical] = ds.hours()[target_index];
  targets_[physical] = target_index;
}

StatusOr<SlidingWindowBuilder> SlidingWindowBuilder::Create(
    const VehicleDataset& ds, const WindowingConfig& config,
    size_t first_target, size_t last_target) {
  if (first_target > last_target) {
    return Status::InvalidArgument("first_target > last_target");
  }
  VUP_RETURN_IF_ERROR(ValidateWindowing(ds, config, first_target, false));
  VUP_RETURN_IF_ERROR(ValidateWindowing(ds, config, last_target, false));

  SlidingWindowBuilder b;
  b.config_ = config;
  b.columns_ = MakeWindowColumns(config);
  b.num_records_ = last_target - first_target + 1;
  b.first_target_ = first_target;
  b.head_ = 0;
  b.rows_ = Matrix(b.num_records_, b.columns_.size());
  b.y_.assign(b.num_records_, 0.0);
  b.targets_.assign(b.num_records_, 0);
  b.scratch_.reserve(b.columns_.size());
  for (size_t i = 0; i < b.num_records_; ++i) {
    b.FillPhysicalRow(ds, i, first_target + i);
  }
  return b;
}

Status SlidingWindowBuilder::AdvanceTo(const VehicleDataset& ds,
                                       size_t first_target,
                                       size_t last_target) {
  if (first_target > last_target) {
    return Status::InvalidArgument("first_target > last_target");
  }
  if (last_target - first_target + 1 != num_records_) {
    return Status::InvalidArgument(StrFormat(
        "advance would change record count from %zu to %zu; rebuild instead",
        num_records_, last_target - first_target + 1));
  }
  if (first_target < first_target_) {
    return Status::InvalidArgument(StrFormat(
        "window can only advance forward (at %zu, requested %zu)",
        first_target_, first_target));
  }
  // Validate the whole requested span up front so a failure leaves the
  // builder untouched at its current window.
  VUP_RETURN_IF_ERROR(ValidateWindowing(ds, config_, last_target, false));
  const size_t step = first_target - first_target_;
  if (step == 0) return Status::OK();
  if (step >= num_records_) {
    // Disjoint jump: every row is stale; refill in place.
    head_ = 0;
    for (size_t i = 0; i < num_records_; ++i) {
      FillPhysicalRow(ds, i, first_target + i);
    }
  } else {
    // Evict the `step` oldest records, appending the newly exposed targets
    // last_target - step + 1 .. last_target in their place.
    for (size_t s = 0; s < step; ++s) {
      FillPhysicalRow(ds, head_, this->last_target() + 1 + s);
      head_ = (head_ + 1) % num_records_;
    }
  }
  first_target_ = first_target;
  return Status::OK();
}

std::span<const double> SlidingWindowBuilder::Row(size_t i) const {
  VUP_CHECK(i < num_records_);
  return rows_.Row(Physical(i));
}

double SlidingWindowBuilder::target(size_t i) const {
  VUP_CHECK(i < num_records_);
  return y_[Physical(i)];
}

size_t SlidingWindowBuilder::target_row(size_t i) const {
  VUP_CHECK(i < num_records_);
  return targets_[Physical(i)];
}

WindowedDataset SlidingWindowBuilder::Materialize() const {
  WindowedDataset out;
  out.columns = columns_;
  out.x = MaterializeMatrix();
  out.y = Targets();
  out.target_rows.reserve(num_records_);
  for (size_t i = 0; i < num_records_; ++i) {
    out.target_rows.push_back(targets_[Physical(i)]);
  }
  return out;
}

Matrix SlidingWindowBuilder::MaterializeMatrix() const {
  Matrix x(num_records_, columns_.size());
  for (size_t i = 0; i < num_records_; ++i) {
    std::span<const double> src = rows_.Row(Physical(i));
    std::span<double> dst = x.MutableRow(i);
    for (size_t c = 0; c < src.size(); ++c) dst[c] = src[c];
  }
  return x;
}

Matrix SlidingWindowBuilder::MaterializeColumns(
    std::span<const size_t> cols) const {
  for (size_t c : cols) VUP_CHECK(c < columns_.size());
  Matrix x(num_records_, cols.size());
  for (size_t i = 0; i < num_records_; ++i) {
    std::span<const double> src = rows_.Row(Physical(i));
    std::span<double> dst = x.MutableRow(i);
    for (size_t j = 0; j < cols.size(); ++j) dst[j] = src[cols[j]];
  }
  return x;
}

std::vector<double> SlidingWindowBuilder::Targets() const {
  std::vector<double> y;
  y.reserve(num_records_);
  for (size_t i = 0; i < num_records_; ++i) y.push_back(y_[Physical(i)]);
  return y;
}

}  // namespace vup
