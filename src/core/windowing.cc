#include "core/windowing.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"
#include "pipeline/enrich.h"

namespace vup {

std::string WindowColumn::ToString() const {
  if (kind == Kind::kLagFeature) {
    return StrFormat("%s@t-%zu",
                     VehicleDataset::FeatureNames()[feature].c_str(), lag);
  }
  return StrFormat("%s@target", ContextFeatureNames()[feature].c_str());
}

namespace {

/// Number of per-lag-day feature columns under `config`.
size_t LagFeatureCount(const WindowingConfig& config) {
  if (config.include_lag_context) {
    return VehicleDataset::FeatureNames().size();
  }
  return std::min(config.lag_engine_features,
                  VehicleDataset::kNumEngineFeatures);
}

}  // namespace

std::vector<WindowColumn> MakeWindowColumns(const WindowingConfig& config) {
  std::vector<WindowColumn> columns;
  const size_t nf = LagFeatureCount(config);
  columns.reserve(config.lookback_w * nf +
                  (config.include_target_day_context ? kNumContextFeatures
                                                     : 0));
  for (size_t lag = 1; lag <= config.lookback_w; ++lag) {
    for (size_t f = 0; f < nf; ++f) {
      columns.push_back(
          {WindowColumn::Kind::kLagFeature, lag, f});
    }
  }
  if (config.include_target_day_context) {
    for (size_t f = 0; f < kNumContextFeatures; ++f) {
      columns.push_back({WindowColumn::Kind::kTargetContext, 0, f});
    }
  }
  return columns;
}

namespace {

Status ValidateWindowing(const VehicleDataset& ds,
                         const WindowingConfig& config, size_t target_index,
                         bool allow_one_past_end) {
  if (config.lookback_w < 1) {
    return Status::InvalidArgument("lookback_w must be >= 1");
  }
  size_t max_target = ds.num_days() - (allow_one_past_end ? 0 : 1);
  if (target_index > max_target) {
    return Status::OutOfRange(
        StrFormat("target index %zu beyond dataset of %zu days", target_index,
                  ds.num_days()));
  }
  if (target_index < config.lookback_w) {
    return Status::InvalidArgument(
        StrFormat("target index %zu has fewer than w=%zu preceding days",
                  target_index, config.lookback_w));
  }
  return Status::OK();
}

/// Appends the feature row for `target_index` to `out`.
void FillFeatureRow(const VehicleDataset& ds, const WindowingConfig& config,
                    size_t target_index, std::vector<double>* out) {
  const size_t nf = LagFeatureCount(config);
  for (size_t lag = 1; lag <= config.lookback_w; ++lag) {
    std::span<const double> row = ds.FeatureRow(target_index - lag);
    out->insert(out->end(), row.begin(), row.begin() + static_cast<long>(nf));
  }
  if (config.include_target_day_context) {
    Date target_date = target_index < ds.num_days()
                           ? ds.dates()[target_index]
                           : ds.dates().back().AddDays(1);
    std::vector<double> ctx =
        ContextToVector(ComputeContext(target_date, ds.country()));
    out->insert(out->end(), ctx.begin(), ctx.end());
  }
}

}  // namespace

StatusOr<WindowedDataset> BuildWindowedDataset(const VehicleDataset& ds,
                                               const WindowingConfig& config,
                                               size_t first_target,
                                               size_t last_target) {
  if (first_target > last_target) {
    return Status::InvalidArgument("first_target > last_target");
  }
  VUP_RETURN_IF_ERROR(ValidateWindowing(ds, config, first_target, false));
  VUP_RETURN_IF_ERROR(ValidateWindowing(ds, config, last_target, false));

  WindowedDataset out;
  out.columns = MakeWindowColumns(config);
  const size_t num_records = last_target - first_target + 1;
  const size_t num_cols = out.columns.size();
  out.x = Matrix(num_records, num_cols);
  out.y.reserve(num_records);
  out.target_rows.reserve(num_records);

  std::vector<double> row;
  row.reserve(num_cols);
  for (size_t t = first_target; t <= last_target; ++t) {
    row.clear();
    FillFeatureRow(ds, config, t, &row);
    VUP_CHECK(row.size() == num_cols);
    std::span<double> dst = out.x.MutableRow(t - first_target);
    for (size_t c = 0; c < num_cols; ++c) dst[c] = row[c];
    out.y.push_back(ds.hours()[t]);
    out.target_rows.push_back(t);
  }
  return out;
}

StatusOr<std::vector<double>> BuildFeatureRowForTarget(
    const VehicleDataset& ds, const WindowingConfig& config,
    size_t target_index) {
  VUP_RETURN_IF_ERROR(ValidateWindowing(ds, config, target_index, true));
  std::vector<double> row;
  FillFeatureRow(ds, config, target_index, &row);
  return row;
}

}  // namespace vup
