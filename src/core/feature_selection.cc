#include "core/feature_selection.h"

#include <algorithm>

#include "stats/acf.h"

namespace vup {

std::vector<size_t> SelectLagsByAcf(std::span<const double> hours,
                                    size_t lookback_w, size_t top_k) {
  std::vector<size_t> lags;
  if (lookback_w == 0 || top_k == 0) return lags;
  const size_t k = std::min(top_k, lookback_w);

  StatusOr<std::vector<double>> acf = Autocorrelation(hours, lookback_w);
  if (acf.ok()) {
    lags = TopKLagsByAcf(acf.value(), k);
  } else {
    // Constant or too-short series: fall back to the most recent K days.
    for (size_t l = 1; l <= k; ++l) lags.push_back(l);
  }
  std::sort(lags.begin(), lags.end());
  return lags;
}

std::vector<size_t> ColumnsForLags(std::span<const WindowColumn> columns,
                                   std::span<const size_t> lags) {
  std::vector<size_t> out;
  for (size_t c = 0; c < columns.size(); ++c) {
    const WindowColumn& col = columns[c];
    if (col.kind == WindowColumn::Kind::kTargetContext) {
      out.push_back(c);
      continue;
    }
    if (std::find(lags.begin(), lags.end(), col.lag) != lags.end()) {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace vup
