#include "core/feature_selection.h"

#include <algorithm>

#include "stats/acf.h"

namespace vup {

namespace {

/// Shared tail of both overloads: rank lags from an ACF estimate, or fall
/// back to the most recent K days when the estimate is unavailable
/// (constant or too-short series).
std::vector<size_t> LagsFromAcfOrFallback(
    const StatusOr<std::vector<double>>& acf, size_t k) {
  std::vector<size_t> lags;
  if (acf.ok()) {
    lags = TopKLagsByAcf(acf.value(), k);
  } else {
    for (size_t l = 1; l <= k; ++l) lags.push_back(l);
  }
  std::sort(lags.begin(), lags.end());
  return lags;
}

}  // namespace

std::vector<size_t> SelectLagsByAcf(std::span<const double> hours,
                                    size_t lookback_w, size_t top_k) {
  if (lookback_w == 0 || top_k == 0) return {};
  const size_t k = std::min(top_k, lookback_w);
  return LagsFromAcfOrFallback(Autocorrelation(hours, lookback_w), k);
}

std::vector<size_t> SelectLagsByAcf(const SlidingAcf& acf, size_t begin,
                                    size_t end, size_t top_k) {
  const size_t lookback_w = acf.max_lag();
  if (lookback_w == 0 || top_k == 0) return {};
  const size_t k = std::min(top_k, lookback_w);
  return LagsFromAcfOrFallback(acf.Window(begin, end), k);
}

std::vector<size_t> ColumnsForLags(std::span<const WindowColumn> columns,
                                   std::span<const size_t> lags) {
  std::vector<size_t> out;
  for (size_t c = 0; c < columns.size(); ++c) {
    const WindowColumn& col = columns[c];
    if (col.kind == WindowColumn::Kind::kTargetContext) {
      out.push_back(c);
      continue;
    }
    if (std::find(lags.begin(), lags.end(), col.lag) != lags.end()) {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace vup
