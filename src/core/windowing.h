#ifndef VUPRED_CORE_WINDOWING_H_
#define VUPRED_CORE_WINDOWING_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "linalg/matrix.h"
#include "pipeline/dataset.h"

namespace vup {

/// Training-data generation parameters (Section 3, "Training data
/// generation"): a lookback window SW of w days slides over the training
/// span; each position yields one record whose features are the per-day
/// feature vectors of the w preceding days.
struct WindowingConfig {
  /// w == |SW|: days of history per record. Paper default 140.
  size_t lookback_w = 140;
  /// Append the known-in-advance calendar context of the target day itself
  /// (its day-of-week, holiday flag, ...). The paper enriches records with
  /// contextual information; the target day's calendar is known a priori.
  bool include_target_day_context = true;
  /// Also carry the calendar context of every lag day. Off by default: a
  /// past day's calendar is a deterministic function of its date and adds
  /// only redundant columns; the enrichment ablation bench turns it on.
  bool include_lag_context = false;
  /// How many engine features each lag day contributes (a prefix of
  /// VehicleDataset::FeatureNames(), so 1 == just day_hours). Capped at
  /// kNumEngineFeatures. With K selected days and ~140 training records,
  /// carrying all 10 engine features per day overfits; the defaults keep
  /// the strongly informative ones (hours, fuel, load, rpm).
  size_t lag_engine_features = 4;
};

/// Provenance of one column of the windowed design matrix.
struct WindowColumn {
  enum class Kind {
    kLagFeature,     // Feature `feature` of day (target - lag).
    kTargetContext,  // Context feature `feature` of the target day.
  };
  Kind kind = Kind::kLagFeature;
  size_t lag = 0;      // 1..w for kLagFeature.
  size_t feature = 0;  // Index into VehicleDataset::FeatureNames() for lag
                       // features; into ContextFeatureNames() for context.

  std::string ToString() const;
};

/// The windowed (relational) training view of one vehicle.
struct WindowedDataset {
  Matrix x;                      // One row per record.
  std::vector<double> y;         // Target H_{t+1} per record.
  std::vector<size_t> target_rows;  // Source-dataset row of each target.
  std::vector<WindowColumn> columns;

  size_t num_records() const { return y.size(); }
};

/// Column layout for a given config and dataset feature count (stable:
/// lag-major, i.e. all features of lag 1, then lag 2, ..., then target
/// context).
std::vector<WindowColumn> MakeWindowColumns(const WindowingConfig& config);

/// Builds records whose target rows are `first_target .. last_target`
/// (inclusive, indices into `ds`). Requirements:
///   lookback_w >= 1, first_target >= lookback_w,
///   last_target < ds.num_days(), first_target <= last_target.
StatusOr<WindowedDataset> BuildWindowedDataset(const VehicleDataset& ds,
                                               const WindowingConfig& config,
                                               size_t first_target,
                                               size_t last_target);

/// Builds the feature row for predicting target row `target_index`.
/// `target_index` may equal ds.num_days(): the one-step-ahead forecast
/// beyond the observed series; its calendar context uses the day after the
/// last observed date.
StatusOr<std::vector<double>> BuildFeatureRowForTarget(
    const VehicleDataset& ds, const WindowingConfig& config,
    size_t target_index);

}  // namespace vup

#endif  // VUPRED_CORE_WINDOWING_H_
