#ifndef VUPRED_CORE_WINDOWING_H_
#define VUPRED_CORE_WINDOWING_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "linalg/matrix.h"
#include "pipeline/dataset.h"

namespace vup {

/// Training-data generation parameters (Section 3, "Training data
/// generation"): a lookback window SW of w days slides over the training
/// span; each position yields one record whose features are the per-day
/// feature vectors of the w preceding days.
struct WindowingConfig {
  /// w == |SW|: days of history per record. Paper default 140.
  size_t lookback_w = 140;
  /// Append the known-in-advance calendar context of the target day itself
  /// (its day-of-week, holiday flag, ...). The paper enriches records with
  /// contextual information; the target day's calendar is known a priori.
  bool include_target_day_context = true;
  /// Also carry the calendar context of every lag day. Off by default: a
  /// past day's calendar is a deterministic function of its date and adds
  /// only redundant columns; the enrichment ablation bench turns it on.
  bool include_lag_context = false;
  /// How many engine features each lag day contributes (a prefix of
  /// VehicleDataset::FeatureNames(), so 1 == just day_hours). Capped at
  /// kNumEngineFeatures. With K selected days and ~140 training records,
  /// carrying all 10 engine features per day overfits; the defaults keep
  /// the strongly informative ones (hours, fuel, load, rpm).
  size_t lag_engine_features = 4;
};

/// Provenance of one column of the windowed design matrix.
struct WindowColumn {
  enum class Kind {
    kLagFeature,     // Feature `feature` of day (target - lag).
    kTargetContext,  // Context feature `feature` of the target day.
  };
  Kind kind = Kind::kLagFeature;
  size_t lag = 0;      // 1..w for kLagFeature.
  size_t feature = 0;  // Index into VehicleDataset::FeatureNames() for lag
                       // features; into ContextFeatureNames() for context.

  std::string ToString() const;
};

/// The windowed (relational) training view of one vehicle.
struct WindowedDataset {
  Matrix x;                      // One row per record.
  std::vector<double> y;         // Target H_{t+1} per record.
  std::vector<size_t> target_rows;  // Source-dataset row of each target.
  std::vector<WindowColumn> columns;

  size_t num_records() const { return y.size(); }
};

/// Column layout for a given config and dataset feature count (stable:
/// lag-major, i.e. all features of lag 1, then lag 2, ..., then target
/// context).
std::vector<WindowColumn> MakeWindowColumns(const WindowingConfig& config);

/// Builds records whose target rows are `first_target .. last_target`
/// (inclusive, indices into `ds`). Requirements:
///   lookback_w >= 1, first_target >= lookback_w,
///   last_target < ds.num_days(), first_target <= last_target.
StatusOr<WindowedDataset> BuildWindowedDataset(const VehicleDataset& ds,
                                               const WindowingConfig& config,
                                               size_t first_target,
                                               size_t last_target);

/// Builds the feature row for predicting target row `target_index`.
/// `target_index` may equal ds.num_days(): the one-step-ahead forecast
/// beyond the observed series; its calendar context uses the day after the
/// last observed date.
StatusOr<std::vector<double>> BuildFeatureRowForTarget(
    const VehicleDataset& ds, const WindowingConfig& config,
    size_t target_index);

/// Incrementally maintained sliding-window design matrix.
///
/// The walk-forward evaluation (Section 3, sliding-window strategy) refits
/// at spans [t-TW, t), then [t-TW+s, t+s), ...: consecutive spans share all
/// but `s` records, yet BuildWindowedDataset recopies all |TW| * w * nf
/// doubles each step. This builder keeps the record rows in a ring buffer
/// and advances by overwriting the evicted oldest row(s) with the newly
/// exposed target(s) -- O(s * w * nf) per step instead of O(|TW| * w * nf).
///
/// Invariants:
///  - Physical row order rotates as the window slides; every accessor and
///    materialization exposes the stable *logical* (chronological) view,
///    logical record i == target first_target() + i.
///  - Each row is written by the same code that BuildWindowedDataset uses,
///    so Materialize()/MaterializeColumns() are bit-identical to a fresh
///    build over the same span (feature values are pure functions of the
///    dataset, config and target index).
///  - The builder holds no reference to the dataset; callers pass the same
///    dataset (unchanged) to Create and every AdvanceTo.
class SlidingWindowBuilder {
 public:
  /// Builds the initial window over targets `first_target..last_target`
  /// (inclusive). Same requirements/errors as BuildWindowedDataset.
  static StatusOr<SlidingWindowBuilder> Create(const VehicleDataset& ds,
                                               const WindowingConfig& config,
                                               size_t first_target,
                                               size_t last_target);

  /// Slides the window forward so it covers `first_target..last_target`.
  /// The span must keep the same record count and must not move backwards
  /// (InvalidArgument otherwise; callers rebuild via Create instead).
  /// Advancing by >= num_records() refills every row but is still valid.
  Status AdvanceTo(const VehicleDataset& ds, size_t first_target,
                   size_t last_target);

  size_t num_records() const { return num_records_; }
  size_t first_target() const { return first_target_; }
  size_t last_target() const { return first_target_ + num_records_ - 1; }
  const std::vector<WindowColumn>& columns() const { return columns_; }

  /// Feature row of logical record i (0 == oldest target in the window).
  std::span<const double> Row(size_t i) const;
  /// Target value / source-dataset row of logical record i.
  double target(size_t i) const;
  size_t target_row(size_t i) const;

  /// Full logical view; bit-identical to
  /// BuildWindowedDataset(ds, config, first_target(), last_target()).
  WindowedDataset Materialize() const;
  /// Design matrix alone, logical row order.
  Matrix MaterializeMatrix() const;
  /// Design matrix restricted to `cols`, logical row order; bit-identical
  /// to Materialize().x.SelectColumns(cols).
  Matrix MaterializeColumns(std::span<const size_t> cols) const;
  /// Targets in logical order.
  std::vector<double> Targets() const;

 private:
  SlidingWindowBuilder() = default;

  size_t Physical(size_t logical) const {
    return (head_ + logical) % num_records_;
  }
  void FillPhysicalRow(const VehicleDataset& ds, size_t physical,
                       size_t target_index);

  WindowingConfig config_;
  std::vector<WindowColumn> columns_;
  size_t num_records_ = 0;
  size_t first_target_ = 0;
  size_t head_ = 0;  // Physical row index of logical record 0.
  Matrix rows_;      // num_records_ x columns_.size(), ring order.
  std::vector<double> y_;         // Ring order, parallel to rows_.
  std::vector<size_t> targets_;   // Ring order, parallel to rows_.
  std::vector<double> scratch_;   // Row assembly buffer.
};

}  // namespace vup

#endif  // VUPRED_CORE_WINDOWING_H_
