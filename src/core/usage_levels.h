#ifndef VUPRED_CORE_USAGE_LEVELS_H_
#define VUPRED_CORE_USAGE_LEVELS_H_

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "core/evaluation.h"
#include "core/forecaster.h"
#include "ml/logistic_regression.h"
#include "ml/scaler.h"

namespace vup {

/// Discrete usage levels, the paper's future-work prediction target
/// (Section 5: "the use of classification models to predict discrete usage
/// levels"). Bucket boundaries follow the shape of Figure 1(a).
enum class UsageLevel : int {
  kIdle = 0,    // < 1 h.
  kShort = 1,   // [1, 3) h.
  kMedium = 2,  // [3, 6) h.
  kLong = 3,    // >= 6 h.
};

inline constexpr int kNumUsageLevels = 4;

std::string_view UsageLevelToString(UsageLevel level);

/// Maps daily utilization hours to a level.
UsageLevel LevelForHours(double hours);

/// Row-normalized confusion counts for the level classifier.
struct LevelConfusionMatrix {
  std::array<std::array<int, kNumUsageLevels>, kNumUsageLevels> counts{};

  int total() const;
  /// Fraction of exactly-right predictions.
  double Accuracy() const;
  /// Fraction within one level of the truth (idle predicted short counts).
  double WithinOneAccuracy() const;
  std::string ToString() const;
};

/// One-vs-rest stack of logistic classifiers over the same windowed
/// feature pipeline the regression forecaster uses. Predicts the usage
/// level of the next day.
class UsageLevelClassifier {
 public:
  struct Options {
    /// Shared feature pipeline settings (algorithm field is ignored).
    ForecasterConfig pipeline;
    /// Strongly regularized by default: each one-vs-rest head fits ~200
    /// windowed features from ~140 records.
    LogisticRegression::Options logistic = {.l2 = 50.0};
  };

  explicit UsageLevelClassifier(Options options);

  /// Trains the one-vs-rest stack on records targeting
  /// train_begin..train_end-1. Levels absent from the training span
  /// receive a constant-score model (never predicted unless trained).
  Status Train(const VehicleDataset& ds, size_t train_begin,
               size_t train_end);

  /// Most probable level of target row `target_index`.
  StatusOr<UsageLevel> PredictTarget(const VehicleDataset& ds,
                                     size_t target_index) const;

  /// Per-level scores (one-vs-rest probabilities, not normalized).
  StatusOr<std::array<double, kNumUsageLevels>> PredictScores(
      const VehicleDataset& ds, size_t target_index) const;

  bool trained() const { return trained_; }

 private:
  Options options_;
  bool trained_ = false;
  std::vector<WindowColumn> all_columns_;
  std::vector<size_t> selected_columns_;
  StandardScaler scaler_;
  struct PerLevel {
    bool usable = false;
    double prior = 0.0;  // Training frequency, fallback score.
    LogisticRegression model;
  };
  std::array<PerLevel, kNumUsageLevels> models_;
};

/// Walk-forward evaluation of the level classifier: trains on the
/// preceding window per the strategy and accumulates a confusion matrix
/// over the last eval_days targets (protocol of Section 4.1 adapted to
/// classification).
StatusOr<LevelConfusionMatrix> EvaluateUsageLevels(
    const VehicleDataset& ds, const EvaluationConfig& eval_config,
    const UsageLevelClassifier::Options& options);

}  // namespace vup

#endif  // VUPRED_CORE_USAGE_LEVELS_H_
