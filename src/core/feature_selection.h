#ifndef VUPRED_CORE_FEATURE_SELECTION_H_
#define VUPRED_CORE_FEATURE_SELECTION_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/statusor.h"
#include "core/windowing.h"
#include "stats/acf.h"

namespace vup {

/// Statistics-based feature selection (Section 3): the autocorrelation
/// function of the vehicle's utilization-hours series decides which of the
/// w lookback days are kept. The K lags with maximal ACF survive; only the
/// features of those days enter the model.
struct FeatureSelectionConfig {
  /// K: number of day-lags kept. Paper default 20, optimum reported in
  /// [10, 30].
  size_t top_k = 20;
};

/// Picks the top-K lags in [1, lookback_w] by ACF of `hours` (typically the
/// training span of the series). Returned ascending.
///
/// Degenerate series (constant, or shorter than lookback_w + 2 so the top
/// lag lacks 2 overlapping points) make the ACF undefined; the fallback
/// keeps the K most recent lags (1..K), the natural uninformed prior.
std::vector<size_t> SelectLagsByAcf(std::span<const double> hours,
                                    size_t lookback_w, size_t top_k);

/// Same selection, evaluated from a SlidingAcf cache over the full hours
/// series: the window [begin, end) plays the role of the training span.
/// acf.max_lag() plays the role of lookback_w, and the fallback semantics
/// (constant or too-short window -> most recent K lags) are identical to
/// the span overload.
std::vector<size_t> SelectLagsByAcf(const SlidingAcf& acf, size_t begin,
                                    size_t end, size_t top_k);

/// Maps selected lags to the column indices of a windowed design matrix:
/// keeps every kLagFeature column whose lag is selected plus every
/// kTargetContext column. Returned in the columns' original order.
std::vector<size_t> ColumnsForLags(std::span<const WindowColumn> columns,
                                   std::span<const size_t> lags);

}  // namespace vup

#endif  // VUPRED_CORE_FEATURE_SELECTION_H_
