#include "core/experiment.h"

#include <chrono>

#include "common/check.h"
#include "common/random.h"
#include "pipeline/cleaning.h"

namespace vup {

StatusOr<VehicleDataset> PrepareVehicleDataset(const Fleet& fleet,
                                               size_t index) {
  VehicleDailySeries series = fleet.GenerateDailySeries(index);
  if (series.days.empty()) {
    return Status::InvalidArgument("vehicle has no generated history");
  }
  CleaningReport report;
  VUP_ASSIGN_OR_RETURN(
      std::vector<DailyUsageRecord> cleaned,
      CleanDailyRecords(series.days, series.days.front().date,
                        series.days.back().date, CleaningOptions(), &report));
  return VehicleDataset::Build(series.info, cleaned,
                               fleet.CountryOf(series.info));
}

ExperimentRunner::ExperimentRunner(const Fleet* fleet) : fleet_(fleet) {
  VUP_CHECK(fleet_ != nullptr);
}

StatusOr<const VehicleDataset*> ExperimentRunner::Dataset(size_t index) {
  auto it = cache_.find(index);
  if (it == cache_.end()) {
    VUP_ASSIGN_OR_RETURN(VehicleDataset ds,
                         PrepareVehicleDataset(*fleet_, index));
    it = cache_.emplace(index, std::move(ds)).first;
  }
  return &it->second;
}

std::vector<size_t> ExperimentRunner::SelectVehicles(
    const ExperimentOptions& options) {
  // Deterministic shuffle of all indices, then keep the first eligible
  // max_vehicles. Eligibility needs the dataset, so test lazily.
  std::vector<size_t> order(fleet_->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(SplitMix64(options.subsample_seed ^ fleet_->config().seed));
  rng.Shuffle(&order);

  std::vector<size_t> selected;
  for (size_t index : order) {
    if (selected.size() >= options.max_vehicles) break;
    StatusOr<const VehicleDataset*> ds = Dataset(index);
    if (!ds.ok()) continue;
    const VehicleDataset& d = *ds.value();
    if (d.num_days() < options.min_days) continue;
    size_t working = 0;
    for (double h : d.hours()) {
      if (h >= 1.0) ++working;
    }
    if (working < options.min_working_days) continue;
    selected.push_back(index);
  }
  return selected;
}

StatusOr<ExperimentResult> ExperimentRunner::Run(
    const EvaluationConfig& config, const ExperimentOptions& options) {
  auto start = std::chrono::steady_clock::now();
  ExperimentResult result;
  result.vehicle_indices = SelectVehicles(options);
  if (result.vehicle_indices.empty()) {
    return Status::FailedPrecondition(
        "no eligible vehicles under the experiment options");
  }
  std::vector<StatusOr<VehicleEvaluation>> evaluations;
  evaluations.reserve(result.vehicle_indices.size());
  for (size_t index : result.vehicle_indices) {
    VUP_ASSIGN_OR_RETURN(const VehicleDataset* ds, Dataset(index));
    evaluations.push_back(EvaluateVehicle(*ds, config));
  }
  result.fleet = AggregateFleet(evaluations);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace vup
