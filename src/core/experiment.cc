#include "core/experiment.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/cleaning.h"

namespace vup {

namespace {

/// Global cleaning counters, resolved once. Totals are deterministic for a
/// given fleet seed; only timings (spans) vary run to run.
struct CleaningCounters {
  obs::Counter* records;
  obs::Counter* missing_filled;
  obs::Counter* duplicates_dropped;
  obs::Counter* values_clamped;
  obs::Counter* non_finite_fixed;
};

void CountCleaning(const CleaningReport& report) {
  static const CleaningCounters c = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return CleaningCounters{
        registry.GetCounter("vupred_clean_records_total",
                            "Daily records emitted by the cleaning stage."),
        registry.GetCounter("vupred_clean_missing_days_filled_total",
                            "Calendar gaps filled with zero-usage records."),
        registry.GetCounter("vupred_clean_duplicates_dropped_total",
                            "Duplicate same-day records dropped."),
        registry.GetCounter("vupred_clean_values_clamped_total",
                            "Out-of-physical-range values clamped."),
        registry.GetCounter("vupred_clean_non_finite_fixed_total",
                            "NaN/inf values replaced with zero."),
    };
  }();
  c.records->Increment(report.output_records);
  c.missing_filled->Increment(report.missing_days_filled);
  c.duplicates_dropped->Increment(report.duplicates_dropped);
  c.values_clamped->Increment(report.values_clamped);
  c.non_finite_fixed->Increment(report.non_finite_fixed);
}

}  // namespace

StatusOr<VehicleDataset> PrepareVehicleDataset(const Fleet& fleet,
                                               size_t index,
                                               const FaultInjector* injector) {
  obs::TraceSpan prepare_span("prepare");
  VehicleDailySeries series = [&] {
    obs::TraceSpan span("ingest");
    return fleet.GenerateDailySeries(index);
  }();
  if (series.days.empty()) {
    return Status::InvalidArgument("vehicle has no generated history");
  }
  // The cleaning window is anchored on the clean series' coverage: faults
  // may drop or skew edge days, but the vehicle's reporting period is
  // known to the server independently of any one delivery.
  const Date start = series.days.front().date;
  const Date end = series.days.back().date;
  if (injector != nullptr && injector->profile().AnyStreamFaults()) {
    series.days = injector->CorruptDaily(
        std::move(series.days),
        static_cast<uint64_t>(series.info.vehicle_id));
    if (series.days.empty()) {
      return Status::DataLoss("fault injection dropped the entire stream");
    }
  }
  CleaningReport report;
  StatusOr<std::vector<DailyUsageRecord>> cleaned = [&] {
    obs::TraceSpan span("clean");
    return CleanDailyRecords(std::move(series.days), start, end,
                             CleaningOptions(), &report);
  }();
  VUP_RETURN_IF_ERROR(cleaned.status());
  CountCleaning(report);
  obs::TraceSpan enrich_span("enrich");
  return VehicleDataset::Build(series.info, cleaned.value(),
                               fleet.CountryOf(series.info));
}

std::string_view VehicleOutcomeToString(VehicleOutcome outcome) {
  switch (outcome) {
    case VehicleOutcome::kEvaluated:
      return "Evaluated";
    case VehicleOutcome::kDegraded:
      return "Degraded";
    case VehicleOutcome::kQuarantined:
      return "Quarantined";
  }
  return "?";
}

std::string DegradationReport::ToString() const {
  std::string out = StrFormat(
      "evaluated=%zu degraded=%zu quarantined=%zu retries=%zu",
      vehicles_evaluated, vehicles_degraded, vehicles_quarantined,
      total_retries);
  for (const VehicleDegradation& v : vehicles) {
    if (v.outcome == VehicleOutcome::kEvaluated) continue;
    out += StrFormat(
        "\n  vehicle %lld: %s (%zu retries): %s",
        static_cast<long long>(v.vehicle_id),
        std::string(VehicleOutcomeToString(v.outcome)).c_str(), v.retries,
        v.reason.ToString().c_str());
  }
  return out;
}

ExperimentRunner::ExperimentRunner(const Fleet* fleet) : fleet_(fleet) {
  VUP_CHECK(fleet_ != nullptr);
}

void ExperimentRunner::ConfigureFaults(const ExperimentOptions& options) {
  uint64_t sig =
      options.faults.AnyFaults()
          ? SplitMix64(options.faults.Fingerprint() ^
                       SplitMix64(options.fault_seed))
          : 0;
  if (sig == fault_sig_ && (injector_.has_value() == (sig != 0))) return;
  fault_sig_ = sig;
  cache_.clear();
  if (sig != 0) {
    injector_.emplace(options.faults, options.fault_seed);
  } else {
    injector_.reset();
  }
}

StatusOr<const VehicleDataset*> ExperimentRunner::Dataset(size_t index) {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(index);
    if (it != cache_.end()) return &it->second;
  }
  // Prepare outside the lock (the expensive part); std::map pointers are
  // stable across inserts, so handing out &it->second is safe.
  const FaultInjector* injector =
      injector_.has_value() ? &*injector_ : nullptr;
  VUP_ASSIGN_OR_RETURN(VehicleDataset ds,
                       PrepareVehicleDataset(*fleet_, index, injector));
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.emplace(index, std::move(ds)).first;
  return &it->second;
}

std::vector<size_t> ExperimentRunner::SelectVehicles(
    const ExperimentOptions& options) {
  ConfigureFaults(options);
  // Deterministic shuffle of all indices, then keep the first eligible
  // max_vehicles. Eligibility needs the dataset, so test lazily.
  std::vector<size_t> order(fleet_->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(SplitMix64(options.subsample_seed ^ fleet_->config().seed));
  rng.Shuffle(&order);

  std::vector<size_t> selected;
  for (size_t index : order) {
    if (selected.size() >= options.max_vehicles) break;
    StatusOr<const VehicleDataset*> ds = Dataset(index);
    if (!ds.ok()) continue;
    const VehicleDataset& d = *ds.value();
    if (d.num_days() < options.min_days) continue;
    size_t working = 0;
    for (double h : d.hours()) {
      if (h >= 1.0) ++working;
    }
    if (working < options.min_working_days) continue;
    selected.push_back(index);
  }
  return selected;
}

ExperimentRunner::VehicleRunOutcome ExperimentRunner::RunOneVehicle(
    size_t index, const EvaluationConfig& config,
    const ExperimentOptions& options, const RetryPolicy& policy,
    const FaultInjector* injector) {
  // On pool workers this span becomes a root of its own thread-local tree;
  // the aggregate tracer merges all "vehicle" trees by name, so per-vehicle
  // spans survive --jobs=N unchanged.
  obs::TraceSpan vehicle_span("vehicle");
  VehicleRunOutcome outcome;
  VehicleDegradation& entry = outcome.entry;
  entry.vehicle_index = index;
  entry.vehicle_id = fleet_->vehicle(index).vehicle_id;
  const uint64_t tag = static_cast<uint64_t>(entry.vehicle_id);

  // Stage 1: fetch/prepare the dataset (retryable; the injector models a
  // flaky or hard-down report source).
  const int source_down =
      injector != nullptr ? injector->SourceFailuresFor(tag) : 0;
  const VehicleDataset* ds = nullptr;
  Status fetched = policy.Run(
      [&](int attempt) -> Status {
        if (attempt < source_down) {
          return Status::DataLoss(StrFormat(
              "injected source outage (attempt %d of %d down)", attempt + 1,
              source_down));
        }
        StatusOr<const VehicleDataset*> d = Dataset(index);
        if (!d.ok()) return d.status();
        ds = d.value();
        return Status::OK();
      },
      &entry.retries);
  if (!fetched.ok()) {
    entry.outcome = VehicleOutcome::kQuarantined;
    entry.reason = fetched;
    return outcome;
  }

  // Stage 2: primary training/evaluation (retryable; the injector models
  // a crashing training backend).
  const int training_down =
      injector != nullptr ? injector->TrainingFailuresFor(tag) : 0;
  StatusOr<VehicleEvaluation> evaluation =
      Status::Internal("evaluation not attempted");
  Status trained = policy.Run(
      [&](int attempt) -> Status {
        if (attempt < training_down) {
          return Status::Internal(StrFormat(
              "injected training failure (attempt %d of %d down)",
              attempt + 1, training_down));
        }
        evaluation = EvaluateVehicle(*ds, config);
        return evaluation.status();
      },
      &entry.retries);

  if (trained.ok()) {
    entry.outcome = VehicleOutcome::kEvaluated;
    outcome.evaluation = std::move(evaluation).value();
  } else if (options.degrade_to_baseline) {
    // Stage 3: graceful degradation to a naive baseline. Baselines carry
    // no trained state, so the injected training channel does not apply.
    EvaluationConfig fallback = config;
    fallback.forecaster.algorithm = options.fallback_algorithm;
    fallback.forecaster.use_feature_selection = false;
    fallback.forecaster.windowing.lookback_w =
        std::min<size_t>(fallback.forecaster.windowing.lookback_w, 7);
    StatusOr<VehicleEvaluation> degraded = EvaluateVehicle(*ds, fallback);
    if (degraded.ok()) {
      entry.outcome = VehicleOutcome::kDegraded;
      entry.reason = trained;
      outcome.evaluation = std::move(degraded).value();
    } else {
      entry.outcome = VehicleOutcome::kQuarantined;
      entry.reason = degraded.status();
    }
  } else {
    entry.outcome = VehicleOutcome::kQuarantined;
    entry.reason = trained;
  }
  return outcome;
}

StatusOr<ExperimentResult> ExperimentRunner::Run(
    const EvaluationConfig& config, const ExperimentOptions& options) {
  auto start = std::chrono::steady_clock::now();
  ConfigureFaults(options);
  ExperimentResult result;
  result.vehicle_indices = SelectVehicles(options);
  if (result.vehicle_indices.empty()) {
    return Status::FailedPrecondition(
        "no eligible vehicles under the experiment options");
  }

  // No sleep function: fleet orchestration retries in-process and must
  // never wall-block; the attempt budget alone bounds the work.
  const RetryPolicy policy(options.retry);
  const FaultInjector* injector =
      injector_.has_value() ? &*injector_ : nullptr;

  // Per-vehicle pipelines are independent and deterministic, so they can
  // run serially or on a pool; the fold below always consumes the slots in
  // selection order, which makes --jobs=N byte-identical to --jobs=1.
  const size_t n = result.vehicle_indices.size();
  std::vector<VehicleRunOutcome> slots(n);
  if (options.jobs <= 1) {
    for (size_t i = 0; i < n; ++i) {
      slots[i] = RunOneVehicle(result.vehicle_indices[i], config, options,
                               policy, injector);
    }
  } else {
    ThreadPool pool({options.jobs, n + 1, "fleet"});
    for (size_t i = 0; i < n; ++i) {
      const size_t index = result.vehicle_indices[i];
      Status submitted = pool.Submit([&, i, index]() -> Status {
        slots[i] =
            RunOneVehicle(index, config, options, policy, injector);
        return Status::OK();
      });
      if (!submitted.ok()) {
        // Cannot happen before Shutdown; fall back to inline just in case.
        slots[i] = RunOneVehicle(index, config, options, policy, injector);
      }
    }
    VUP_RETURN_IF_ERROR(pool.Shutdown());
  }

  std::vector<StatusOr<VehicleEvaluation>> evaluations;
  evaluations.reserve(n);
  DegradationReport& report = result.degradation;
  for (VehicleRunOutcome& outcome : slots) {
    switch (outcome.entry.outcome) {
      case VehicleOutcome::kEvaluated:
        ++report.vehicles_evaluated;
        break;
      case VehicleOutcome::kDegraded:
        ++report.vehicles_degraded;
        break;
      case VehicleOutcome::kQuarantined:
        ++report.vehicles_quarantined;
        break;
    }
    if (outcome.evaluation.has_value()) {
      evaluations.push_back(std::move(*outcome.evaluation));
    }
    report.total_retries += outcome.entry.retries;
    report.vehicles.push_back(std::move(outcome.entry));
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry
      .GetCounter("vupred_fleet_vehicles_evaluated_total",
                  "Vehicles evaluated on the primary algorithm.")
      ->Increment(report.vehicles_evaluated);
  registry
      .GetCounter("vupred_fleet_vehicles_degraded_total",
                  "Vehicles degraded to the fallback baseline.")
      ->Increment(report.vehicles_degraded);
  registry
      .GetCounter("vupred_fleet_vehicles_quarantined_total",
                  "Vehicles excluded after exhausting retries.")
      ->Increment(report.vehicles_quarantined);
  registry
      .GetCounter("vupred_fleet_retries_total",
                  "Per-vehicle pipeline retries across all stages.")
      ->Increment(report.total_retries);

  // Quarantined vehicles are excluded here on purpose, and visibly so:
  // the fleet aggregate carries the exclusion count alongside the means.
  result.fleet = AggregateFleet(evaluations);
  result.fleet.vehicles_quarantined = report.vehicles_quarantined;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace vup
