#ifndef VUPRED_CORE_INTERVALS_H_
#define VUPRED_CORE_INTERVALS_H_

#include <span>
#include <vector>

#include "common/statusor.h"
#include "core/evaluation.h"

namespace vup {

/// A point forecast with a confidence band.
struct ForecastInterval {
  double lower = 0.0;
  double point = 0.0;
  double upper = 0.0;

  double width() const { return upper - lower; }
  bool Contains(double value) const {
    return value >= lower && value <= upper;
  }
};

/// Empirical-residual interval estimator: the paper's evaluation goal (iii),
/// "estimate the prediction errors to get confidence intervals for the
/// estimations" (Section 4).
///
/// Calibrates on walk-forward residuals (actual - predicted) from a
/// held-out span, then brackets any new point forecast with the residual
/// quantiles at the requested confidence. Distribution-free; asymmetric
/// residuals (common in the next-day scenario, where misses are one-sided)
/// produce asymmetric bands.
class ResidualIntervalEstimator {
 public:
  /// `confidence` in (0, 1), e.g. 0.9 for an 80%-central band at
  /// quantiles (0.05, 0.95)... precisely: the band covers `confidence`
  /// centrally, i.e. quantiles ((1-c)/2, (1+c)/2).
  explicit ResidualIntervalEstimator(double confidence = 0.9);

  /// Calibrates from aligned predictions and actuals (walk-forward
  /// hold-out output). InvalidArgument when sizes mismatch or fewer than 5
  /// residuals are available.
  Status Fit(std::span<const double> predictions,
             std::span<const double> actuals);

  /// Convenience: calibrate straight from an evaluation result.
  Status Fit(const VehicleEvaluation& evaluation);

  bool fitted() const { return fitted_; }
  double confidence() const { return confidence_; }
  /// Calibrated residual quantiles (additive offsets around the point).
  double lower_offset() const { return lower_offset_; }
  double upper_offset() const { return upper_offset_; }

  /// Brackets a point forecast; the band is clamped to the physical
  /// [0, 24] hours range. FailedPrecondition before Fit.
  StatusOr<ForecastInterval> IntervalFor(double point_forecast) const;

 private:
  double confidence_;
  bool fitted_ = false;
  double lower_offset_ = 0.0;
  double upper_offset_ = 0.0;
};

/// Out-of-sample coverage of the residual intervals.
struct CoverageResult {
  /// Fraction of test actuals inside their interval. Should approach the
  /// nominal confidence when residuals are stationary.
  double coverage = 0.0;
  double mean_width = 0.0;
  size_t calibration_points = 0;
  size_t test_points = 0;
};

/// Splits a walk-forward evaluation temporally: the first
/// `calibration_fraction` of the eval span calibrates the residual
/// quantiles, the rest measures empirical coverage -- the protocol a
/// deployment would use to attach bands to live forecasts.
StatusOr<CoverageResult> EvaluateIntervalCoverage(
    const VehicleEvaluation& evaluation, double confidence = 0.9,
    double calibration_fraction = 0.5);

}  // namespace vup

#endif  // VUPRED_CORE_INTERVALS_H_
