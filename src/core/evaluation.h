#ifndef VUPRED_CORE_EVALUATION_H_
#define VUPRED_CORE_EVALUATION_H_

#include <string_view>
#include <vector>

#include "calendar/date.h"
#include "common/statusor.h"
#include "core/forecaster.h"
#include "pipeline/dataset.h"

namespace vup {

/// The paper's two problem variants (Section 3).
enum class Scenario : int {
  kNextDay = 0,         // Predict tomorrow, idle days included.
  kNextWorkingDay = 1,  // Predict the next day with >= 1 h of use.
};

std::string_view ScenarioToString(Scenario s);

/// The paper's two hold-out strategies (Section 4.1 / Figure 3).
enum class WindowStrategy : int {
  kSliding = 0,    // Fixed-size training history.
  kExpanding = 1,  // All preceding days.
};

std::string_view WindowStrategyToString(WindowStrategy s);

/// Per-vehicle hold-out evaluation configuration.
struct EvaluationConfig {
  Scenario scenario = Scenario::kNextDay;
  WindowStrategy strategy = WindowStrategy::kSliding;
  /// TW: training targets per model fit under the sliding strategy
  /// (ignored by expanding). Paper pairs this with the lookback w; both
  /// default to 140.
  size_t train_window = 140;
  /// Number of trailing target days evaluated.
  size_t eval_days = 120;
  /// Retrain cadence in evaluated targets: 1 retrains per slide like the
  /// paper; larger values trade fidelity for speed in large sweeps.
  size_t retrain_every = 1;
  /// Threshold defining a working day for kNextWorkingDay.
  double working_day_min_hours = 1.0;

  ForecasterConfig forecaster;
};

/// Evaluation outcome for one vehicle.
struct VehicleEvaluation {
  double pe = 0.0;   // The paper's Percentage Error over the eval span.
  double mae = 0.0;
  size_t num_predictions = 0;
  std::vector<Date> dates;        // Target dates, aligned with the below.
  std::vector<double> actuals;
  std::vector<double> predictions;
};

/// Runs the hold-out walk-forward evaluation of Section 4.1 on one
/// vehicle's dataset: for each of the last eval_days targets, (re)train on
/// the preceding window per the strategy, predict, and accumulate errors.
///
/// Errors: InvalidArgument when the series is too short for
/// lookback + training + evaluation under the given configuration.
StatusOr<VehicleEvaluation> EvaluateVehicle(const VehicleDataset& ds,
                                            const EvaluationConfig& config);

/// Fleet-level aggregate (Steps 5-6 of Section 4.1): per-vehicle PEs and
/// their average across vehicles.
struct FleetEvaluation {
  double mean_pe = 0.0;
  double median_pe = 0.0;
  double mean_mae = 0.0;
  size_t vehicles_evaluated = 0;
  size_t vehicles_skipped = 0;  // Too little data / degenerate PE.
  /// Vehicles excluded from aggregation entirely because every recovery
  /// path failed (set by ExperimentRunner; see DegradationReport for the
  /// per-vehicle reasons). Explicitly surfaced so fleet metrics are never
  /// silently computed over a shrunken denominator.
  size_t vehicles_quarantined = 0;
  std::vector<double> per_vehicle_pe;
};

/// Aggregates per-vehicle evaluations, skipping non-finite PEs.
FleetEvaluation AggregateFleet(
    const std::vector<StatusOr<VehicleEvaluation>>& evaluations);

}  // namespace vup

#endif  // VUPRED_CORE_EVALUATION_H_
