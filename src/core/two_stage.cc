#include "core/two_stage.h"

#include <algorithm>

#include "common/string_util.h"
#include "ml/metrics.h"
#include "stats/descriptive.h"

namespace vup {

TwoStageForecaster::TwoStageForecaster(TwoStageConfig config)
    : config_(std::move(config)) {}

Status TwoStageForecaster::Train(const VehicleDataset& ds, size_t train_begin,
                                 size_t train_end) {
  trained_ = false;
  degenerate_gate_ = false;
  has_regressor_ = false;
  const ForecasterConfig& fc = config_.regression;
  if (fc.algorithm == Algorithm::kLastValue ||
      fc.algorithm == Algorithm::kMovingAverage) {
    return Status::InvalidArgument(
        "two-stage regression stage must be an ML algorithm");
  }
  if (train_begin >= train_end) {
    return Status::InvalidArgument("empty training span");
  }
  if (train_end > ds.num_days()) {
    return Status::OutOfRange("training span beyond dataset");
  }
  if (train_begin < fc.windowing.lookback_w) {
    return Status::InvalidArgument("train_begin precedes lookback window");
  }
  if (train_end - train_begin < 4) {
    return Status::InvalidArgument("need at least 4 training records");
  }

  VUP_ASSIGN_OR_RETURN(
      WindowedDataset windowed,
      BuildWindowedDataset(ds, fc.windowing, train_begin, train_end - 1));
  all_columns_ = windowed.columns;

  Matrix x = std::move(windowed.x);
  selected_columns_.clear();
  if (fc.use_feature_selection) {
    std::span<const double> hours(ds.hours());
    std::span<const double> train_hours = hours.subspan(
        train_begin - fc.windowing.lookback_w,
        fc.windowing.lookback_w + (train_end - train_begin));
    std::vector<size_t> lags = SelectLagsByAcf(
        train_hours, fc.windowing.lookback_w, fc.selection.top_k);
    selected_columns_ = ColumnsForLags(all_columns_, lags);
    x = x.SelectColumns(selected_columns_);
  }
  VUP_ASSIGN_OR_RETURN(x, scaler_.FitTransform(x));

  // Stage 1: working/idle labels.
  std::vector<int> labels(windowed.y.size());
  int positives = 0;
  for (size_t i = 0; i < windowed.y.size(); ++i) {
    labels[i] = windowed.y[i] >= config_.working_threshold_hours ? 1 : 0;
    positives += labels[i];
  }
  if (positives == 0 || positives == static_cast<int>(labels.size())) {
    degenerate_gate_ = true;
    constant_class_ = positives == 0 ? 0 : 1;
  } else {
    gate_ = LogisticRegression(config_.classifier);
    VUP_RETURN_IF_ERROR(gate_.Fit(x, labels));
  }

  // Stage 2: hours regression on working-day records only.
  std::vector<size_t> working_rows;
  std::vector<double> working_hours;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 1) {
      working_rows.push_back(i);
      working_hours.push_back(windowed.y[i]);
    }
  }
  fallback_hours_ = working_hours.empty() ? 0.0 : Median(working_hours);
  if (working_rows.size() >= 2) {
    Matrix x_working = x.SelectRows(working_rows);
    VUP_ASSIGN_OR_RETURN(regressor_, MakeRegressor(fc));
    Status fitted = regressor_->Fit(x_working, working_hours);
    if (fitted.ok()) {
      has_regressor_ = true;
    }
    // A failed stage-2 fit (e.g. too few working days for the solver)
    // falls back to the median working-day hours.
  }

  trained_ = true;
  return Status::OK();
}

StatusOr<std::vector<double>> TwoStageForecaster::PreparedRow(
    const VehicleDataset& ds, size_t target_index) const {
  VUP_ASSIGN_OR_RETURN(
      std::vector<double> row,
      BuildFeatureRowForTarget(ds, config_.regression.windowing,
                               target_index));
  if (config_.regression.use_feature_selection) {
    std::vector<double> selected;
    selected.reserve(selected_columns_.size());
    for (size_t c : selected_columns_) selected.push_back(row[c]);
    row = std::move(selected);
  }
  return scaler_.TransformRow(row);
}

StatusOr<double> TwoStageForecaster::PredictWorkingProbability(
    const VehicleDataset& ds, size_t target_index) const {
  if (!trained_) return Status::FailedPrecondition("forecaster not trained");
  if (degenerate_gate_) return constant_class_ == 1 ? 1.0 : 0.0;
  VUP_ASSIGN_OR_RETURN(std::vector<double> row,
                       PreparedRow(ds, target_index));
  return gate_.PredictProbability(row);
}

StatusOr<double> TwoStageForecaster::PredictTarget(
    const VehicleDataset& ds, size_t target_index) const {
  if (!trained_) return Status::FailedPrecondition("forecaster not trained");
  VUP_ASSIGN_OR_RETURN(double p_working,
                       PredictWorkingProbability(ds, target_index));

  double hours = fallback_hours_;
  if (has_regressor_) {
    VUP_ASSIGN_OR_RETURN(std::vector<double> row,
                         PreparedRow(ds, target_index));
    VUP_ASSIGN_OR_RETURN(hours, regressor_->PredictOne(row));
  }
  hours = std::clamp(hours, 0.0, 24.0);

  if (config_.soft_gate) {
    return p_working * hours;
  }
  return p_working >= config_.decision_threshold ? hours : 0.0;
}

StatusOr<VehicleEvaluation> EvaluateVehicleTwoStage(
    const VehicleDataset& ds, const EvaluationConfig& eval_config,
    const TwoStageConfig& two_stage_config) {
  if (eval_config.eval_days == 0) {
    return Status::InvalidArgument("eval_days must be >= 1");
  }
  if (eval_config.retrain_every == 0) {
    return Status::InvalidArgument("retrain_every must be >= 1");
  }
  const size_t n = ds.num_days();
  const size_t w = two_stage_config.regression.windowing.lookback_w;
  const size_t min_train_records = 8;
  const size_t min_target = w + min_train_records;
  if (n < min_target + 1) {
    return Status::InvalidArgument(StrFormat(
        "series of %zu rows too short for lookback %zu + training", n, w));
  }
  const size_t first_target = std::max(min_target, n - eval_config.eval_days);

  TwoStageForecaster forecaster(two_stage_config);
  VehicleEvaluation out;
  size_t since_retrain = eval_config.retrain_every;
  for (size_t t = first_target; t < n; ++t) {
    if (since_retrain >= eval_config.retrain_every) {
      size_t train_end = t;
      size_t train_begin =
          eval_config.strategy == WindowStrategy::kExpanding
              ? w
              : std::max(w, train_end - std::min(train_end - w,
                                                 eval_config.train_window));
      VUP_RETURN_IF_ERROR(forecaster.Train(ds, train_begin, train_end));
      since_retrain = 0;
    }
    ++since_retrain;
    VUP_ASSIGN_OR_RETURN(double pred, forecaster.PredictTarget(ds, t));
    out.dates.push_back(ds.dates()[t]);
    out.actuals.push_back(ds.hours()[t]);
    out.predictions.push_back(pred);
  }
  out.num_predictions = out.predictions.size();
  out.pe = PercentageError(out.predictions, out.actuals);
  out.mae = MeanAbsoluteError(out.predictions, out.actuals);
  return out;
}

}  // namespace vup
