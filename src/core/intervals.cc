#include "core/intervals.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"
#include "stats/descriptive.h"

namespace vup {

ResidualIntervalEstimator::ResidualIntervalEstimator(double confidence)
    : confidence_(confidence) {
  VUP_CHECK(confidence > 0.0 && confidence < 1.0)
      << "confidence=" << confidence;
}

Status ResidualIntervalEstimator::Fit(std::span<const double> predictions,
                                      std::span<const double> actuals) {
  fitted_ = false;
  if (predictions.size() != actuals.size()) {
    return Status::InvalidArgument("prediction/actual size mismatch");
  }
  if (predictions.size() < 5) {
    return Status::InvalidArgument(StrFormat(
        "need at least 5 residuals to calibrate, got %zu",
        predictions.size()));
  }
  std::vector<double> residuals(predictions.size());
  for (size_t i = 0; i < predictions.size(); ++i) {
    residuals[i] = actuals[i] - predictions[i];
  }
  double alpha = (1.0 - confidence_) / 2.0;
  lower_offset_ = Quantile(residuals, alpha);
  upper_offset_ = Quantile(residuals, 1.0 - alpha);
  fitted_ = true;
  return Status::OK();
}

Status ResidualIntervalEstimator::Fit(const VehicleEvaluation& evaluation) {
  return Fit(evaluation.predictions, evaluation.actuals);
}

StatusOr<ForecastInterval> ResidualIntervalEstimator::IntervalFor(
    double point_forecast) const {
  if (!fitted_) {
    return Status::FailedPrecondition("interval estimator not calibrated");
  }
  ForecastInterval interval;
  interval.point = point_forecast;
  interval.lower = std::clamp(point_forecast + lower_offset_, 0.0, 24.0);
  interval.upper = std::clamp(point_forecast + upper_offset_, 0.0, 24.0);
  return interval;
}

StatusOr<CoverageResult> EvaluateIntervalCoverage(
    const VehicleEvaluation& evaluation, double confidence,
    double calibration_fraction) {
  if (calibration_fraction <= 0.0 || calibration_fraction >= 1.0) {
    return Status::InvalidArgument(
        "calibration_fraction must be in (0, 1)");
  }
  const size_t n = evaluation.predictions.size();
  size_t split = static_cast<size_t>(calibration_fraction *
                                     static_cast<double>(n));
  if (split < 5 || n - split < 1) {
    return Status::InvalidArgument(
        "evaluation too short to split for coverage measurement");
  }

  ResidualIntervalEstimator estimator(confidence);
  VUP_RETURN_IF_ERROR(estimator.Fit(
      std::span<const double>(evaluation.predictions).subspan(0, split),
      std::span<const double>(evaluation.actuals).subspan(0, split)));

  CoverageResult result;
  result.calibration_points = split;
  size_t covered = 0;
  double width_sum = 0.0;
  for (size_t i = split; i < n; ++i) {
    VUP_ASSIGN_OR_RETURN(ForecastInterval interval,
                         estimator.IntervalFor(evaluation.predictions[i]));
    if (interval.Contains(evaluation.actuals[i])) ++covered;
    width_sum += interval.width();
  }
  result.test_points = n - split;
  result.coverage =
      static_cast<double>(covered) / static_cast<double>(result.test_points);
  result.mean_width = width_sum / static_cast<double>(result.test_points);
  return result;
}

}  // namespace vup
