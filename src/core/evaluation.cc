#include "core/evaluation.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "ml/metrics.h"
#include "obs/trace.h"
#include "stats/descriptive.h"

namespace vup {

std::string_view ScenarioToString(Scenario s) {
  switch (s) {
    case Scenario::kNextDay:
      return "NextDay";
    case Scenario::kNextWorkingDay:
      return "NextWorkingDay";
  }
  return "?";
}

std::string_view WindowStrategyToString(WindowStrategy s) {
  switch (s) {
    case WindowStrategy::kSliding:
      return "Sliding";
    case WindowStrategy::kExpanding:
      return "Expanding";
  }
  return "?";
}

StatusOr<VehicleEvaluation> EvaluateVehicle(const VehicleDataset& ds,
                                            const EvaluationConfig& config) {
  if (config.eval_days == 0) {
    return Status::InvalidArgument("eval_days must be >= 1");
  }
  if (config.retrain_every == 0) {
    return Status::InvalidArgument("retrain_every must be >= 1");
  }

  // Scenario view: the next-working-day variant compresses the series to
  // working days, so step t -> t+1 skips idleness.
  const VehicleDataset working =
      config.scenario == Scenario::kNextWorkingDay
          ? ds.CompressToWorkingDays(config.working_day_min_hours)
          : VehicleDataset(ds);

  const size_t n = working.num_days();
  const size_t w = config.forecaster.windowing.lookback_w;
  const size_t min_train_records = 8;

  // First evaluable target: needs a lookback window plus a minimally-sized
  // training span before it.
  const size_t min_target = w + min_train_records;
  if (n < min_target + 1) {
    return Status::InvalidArgument(StrFormat(
        "series of %zu rows too short for lookback %zu + training", n, w));
  }
  const size_t first_target = std::max(min_target, n - config.eval_days);

  VehicleForecaster forecaster(config.forecaster);
  VehicleEvaluation out;
  size_t since_retrain = config.retrain_every;  // Force initial training.
  for (size_t t = first_target; t < n; ++t) {
    if (since_retrain >= config.retrain_every) {
      size_t train_end = t;  // Targets strictly before t.
      size_t train_begin =
          config.strategy == WindowStrategy::kExpanding
              ? w
              : std::max(w, train_end - std::min(train_end - w,
                                                 config.train_window));
      VUP_RETURN_IF_ERROR(forecaster.Train(working, train_begin, train_end));
      since_retrain = 0;
    }
    ++since_retrain;

    StatusOr<double> pred_or = [&] {
      obs::TraceSpan span("predict");
      return forecaster.PredictTarget(working, t);
    }();
    VUP_RETURN_IF_ERROR(pred_or.status());
    const double pred = pred_or.value();
    out.dates.push_back(working.dates()[t]);
    out.actuals.push_back(working.hours()[t]);
    out.predictions.push_back(pred);
  }

  out.num_predictions = out.predictions.size();
  out.pe = PercentageError(out.predictions, out.actuals);
  out.mae = MeanAbsoluteError(out.predictions, out.actuals);
  return out;
}

FleetEvaluation AggregateFleet(
    const std::vector<StatusOr<VehicleEvaluation>>& evaluations) {
  FleetEvaluation fleet;
  std::vector<double> maes;
  for (const StatusOr<VehicleEvaluation>& e : evaluations) {
    if (!e.ok() || !std::isfinite(e.value().pe)) {
      ++fleet.vehicles_skipped;
      continue;
    }
    fleet.per_vehicle_pe.push_back(e.value().pe);
    maes.push_back(e.value().mae);
  }
  fleet.vehicles_evaluated = fleet.per_vehicle_pe.size();
  if (fleet.vehicles_evaluated > 0) {
    fleet.mean_pe = Mean(fleet.per_vehicle_pe);
    fleet.median_pe = Median(fleet.per_vehicle_pe);
    fleet.mean_mae = Mean(maes);
  }
  return fleet;
}

}  // namespace vup
