#include "calendar/holiday.h"

#include <algorithm>

#include "common/check.h"

namespace vup {

Date EasterSunday(int year) {
  // Anonymous Gregorian computus (Meeus/Jones/Butcher).
  int a = year % 19;
  int b = year / 100;
  int c = year % 100;
  int d = b / 4;
  int e = b % 4;
  int f = (b + 8) / 25;
  int g = (b - f + 1) / 3;
  int h = (19 * a + b - d - g + 15) % 30;
  int i = c / 4;
  int k = c % 4;
  int l = (32 + 2 * e + 2 * i - h - k) % 7;
  int m = (a + 11 * h + 22 * l) / 451;
  int month = (h + l - 7 * m + 114) / 31;
  int day = ((h + l - 7 * m + 114) % 31) + 1;
  return Date::FromYmd(year, month, day).value();
}

HolidayRule HolidayRule::Fixed(std::string name, int month, int day) {
  VUP_CHECK(month >= 1 && month <= 12);
  VUP_CHECK(day >= 1 && day <= 31);
  HolidayRule r;
  r.kind = Kind::kFixedDate;
  r.name = std::move(name);
  r.month = month;
  r.day = day;
  return r;
}

HolidayRule HolidayRule::EasterBased(std::string name, int offset) {
  HolidayRule r;
  r.kind = Kind::kEasterOffset;
  r.name = std::move(name);
  r.easter_offset = offset;
  return r;
}

HolidayRule HolidayRule::NthWeekday(std::string name, int month,
                                    Weekday weekday, int nth) {
  VUP_CHECK(month >= 1 && month <= 12);
  VUP_CHECK(nth == -1 || (nth >= 1 && nth <= 5));
  HolidayRule r;
  r.kind = Kind::kNthWeekdayOfMonth;
  r.name = std::move(name);
  r.month = month;
  r.weekday = weekday;
  r.nth = nth;
  return r;
}

namespace {

/// Resolves a rule to its (single) date in `year`; returns false when the
/// rule has no occurrence that year (e.g. 5th Monday of a 4-Monday month).
bool ResolveRule(const HolidayRule& rule, int year, Date* out) {
  switch (rule.kind) {
    case HolidayRule::Kind::kFixedDate: {
      StatusOr<Date> d = Date::FromYmd(year, rule.month, rule.day);
      if (!d.ok()) return false;  // E.g. Feb 29 rule in a non-leap year.
      *out = d.value();
      return true;
    }
    case HolidayRule::Kind::kEasterOffset: {
      *out = EasterSunday(year).AddDays(rule.easter_offset);
      return true;
    }
    case HolidayRule::Kind::kNthWeekdayOfMonth: {
      Date first = Date::FromYmd(year, rule.month, 1).value();
      int first_wd = static_cast<int>(first.weekday());
      int target_wd = static_cast<int>(rule.weekday);
      int offset_to_first = (target_wd - first_wd + 7) % 7;
      if (rule.nth == -1) {
        // Last occurrence: walk back from the end of the month.
        int dim = Date::DaysInMonth(year, rule.month);
        Date last = Date::FromYmd(year, rule.month, dim).value();
        int last_wd = static_cast<int>(last.weekday());
        int back = (last_wd - target_wd + 7) % 7;
        *out = last.AddDays(-back);
        return true;
      }
      int day_of_month = 1 + offset_to_first + (rule.nth - 1) * 7;
      if (day_of_month > Date::DaysInMonth(year, rule.month)) return false;
      *out = Date::FromYmd(year, rule.month, day_of_month).value();
      return true;
    }
  }
  return false;
}

}  // namespace

bool WeekendRule::IsRestDay(Weekday d) const {
  return std::find(rest_days.begin(), rest_days.end(), d) != rest_days.end();
}

WeekendRule WeekendRule::SaturdaySunday() {
  return WeekendRule{{Weekday::kSaturday, Weekday::kSunday}};
}

WeekendRule WeekendRule::FridaySaturday() {
  return WeekendRule{{Weekday::kFriday, Weekday::kSaturday}};
}

WeekendRule WeekendRule::SundayOnly() {
  return WeekendRule{{Weekday::kSunday}};
}

HolidayCalendar::HolidayCalendar(std::vector<HolidayRule> rules)
    : rules_(std::move(rules)) {}

void HolidayCalendar::AddRule(HolidayRule rule) {
  rules_.push_back(std::move(rule));
}

bool HolidayCalendar::IsHoliday(const Date& date) const {
  for (const HolidayRule& rule : rules_) {
    Date resolved;
    if (ResolveRule(rule, date.year(), &resolved) && resolved == date) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> HolidayCalendar::HolidaysOn(const Date& date) const {
  std::vector<std::string> names;
  for (const HolidayRule& rule : rules_) {
    Date resolved;
    if (ResolveRule(rule, date.year(), &resolved) && resolved == date) {
      names.push_back(rule.name);
    }
  }
  return names;
}

std::vector<Date> HolidayCalendar::HolidaysInYear(int year) const {
  std::vector<Date> dates;
  for (const HolidayRule& rule : rules_) {
    Date resolved;
    if (ResolveRule(rule, year, &resolved) && resolved.year() == year) {
      dates.push_back(resolved);
    }
  }
  std::sort(dates.begin(), dates.end());
  return dates;
}

}  // namespace vup
