#ifndef VUPRED_CALENDAR_HOLIDAY_H_
#define VUPRED_CALENDAR_HOLIDAY_H_

#include <string>
#include <vector>

#include "calendar/date.h"

namespace vup {

/// Gregorian Easter Sunday for `year` (anonymous Gregorian computus).
Date EasterSunday(int year);

/// A single holiday-generation rule. Rules are calendar-year generators:
/// each rule produces at most one holiday per year.
struct HolidayRule {
  enum class Kind {
    kFixedDate,         // Same month/day every year (e.g. Dec 25).
    kEasterOffset,      // Offset in days from Easter Sunday (e.g. -2 == Good Friday).
    kNthWeekdayOfMonth, // E.g. 4th Thursday of November. nth in 1..5;
                        // nth == -1 means the last such weekday of the month.
  };

  Kind kind = Kind::kFixedDate;
  std::string name;
  int month = 1;      // kFixedDate / kNthWeekdayOfMonth
  int day = 1;        // kFixedDate
  int easter_offset = 0;                  // kEasterOffset
  Weekday weekday = Weekday::kMonday;     // kNthWeekdayOfMonth
  int nth = 1;                            // kNthWeekdayOfMonth

  static HolidayRule Fixed(std::string name, int month, int day);
  static HolidayRule EasterBased(std::string name, int offset);
  static HolidayRule NthWeekday(std::string name, int month, Weekday weekday,
                                int nth);
};

/// Which days of the week are the rest days. Most of the world rests
/// Saturday+Sunday; several countries use Friday+Saturday.
struct WeekendRule {
  std::vector<Weekday> rest_days = {Weekday::kSaturday, Weekday::kSunday};

  bool IsRestDay(Weekday d) const;

  static WeekendRule SaturdaySunday();
  static WeekendRule FridaySaturday();
  static WeekendRule SundayOnly();
};

/// A country's public-holiday calendar: a set of rules evaluated per year,
/// with an internal per-year cache.
class HolidayCalendar {
 public:
  HolidayCalendar() = default;
  explicit HolidayCalendar(std::vector<HolidayRule> rules);

  void AddRule(HolidayRule rule);

  /// True if `date` is a public holiday under this calendar.
  bool IsHoliday(const Date& date) const;

  /// Names of all holidays falling on `date` (usually zero or one).
  std::vector<std::string> HolidaysOn(const Date& date) const;

  /// All holiday dates in `year`, sorted ascending.
  std::vector<Date> HolidaysInYear(int year) const;

  const std::vector<HolidayRule>& rules() const { return rules_; }

 private:
  std::vector<HolidayRule> rules_;
};

}  // namespace vup

#endif  // VUPRED_CALENDAR_HOLIDAY_H_
