#include "calendar/date.h"

#include <array>
#include <ostream>

#include "common/string_util.h"

namespace vup {

namespace {

// Howard Hinnant's days_from_civil (http://howardhinnant.github.io/date_algorithms.html).
int32_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);           // [0, 399]
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(d) - 1;                                    // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;          // [0, 146096]
  return era * 146097 + static_cast<int32_t>(doe) - 719468;
}

// Howard Hinnant's civil_from_days.
void CivilFromDays(int32_t z, int* y_out, int* m_out, int* d_out) {
  z += 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);        // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;           // [0, 399]
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);        // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                             // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                     // [1, 31]
  const unsigned m = mp < 10 ? mp + 3 : mp - 9;                        // [1, 12]
  *y_out = y + (m <= 2);
  *m_out = static_cast<int>(m);
  *d_out = static_cast<int>(d);
}

}  // namespace

std::string_view WeekdayToString(Weekday d) {
  switch (d) {
    case Weekday::kMonday:
      return "Monday";
    case Weekday::kTuesday:
      return "Tuesday";
    case Weekday::kWednesday:
      return "Wednesday";
    case Weekday::kThursday:
      return "Thursday";
    case Weekday::kFriday:
      return "Friday";
    case Weekday::kSaturday:
      return "Saturday";
    case Weekday::kSunday:
      return "Sunday";
  }
  return "?";
}

bool Date::IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int Date::DaysInMonth(int year, int month) {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[static_cast<size_t>(month - 1)];
}

StatusOr<Date> Date::FromYmd(int year, int month, int day) {
  if (month < 1 || month > 12) {
    return Status::InvalidArgument(
        StrFormat("month out of range: %d", month));
  }
  int dim = DaysInMonth(year, month);
  if (day < 1 || day > dim) {
    return Status::InvalidArgument(
        StrFormat("day out of range for %d-%02d: %d", year, month, day));
  }
  return Date(DaysFromCivil(year, month, day));
}

StatusOr<Date> Date::Parse(std::string_view text) {
  std::vector<std::string> parts = Split(std::string(Trim(text)), '-');
  if (parts.size() != 3) {
    return Status::InvalidArgument("date must be YYYY-MM-DD, got '" +
                                   std::string(text) + "'");
  }
  VUP_ASSIGN_OR_RETURN(long long y, ParseInt(parts[0]));
  VUP_ASSIGN_OR_RETURN(long long m, ParseInt(parts[1]));
  VUP_ASSIGN_OR_RETURN(long long d, ParseInt(parts[2]));
  return FromYmd(static_cast<int>(y), static_cast<int>(m),
                 static_cast<int>(d));
}

int Date::year() const {
  int y, m, d;
  CivilFromDays(days_, &y, &m, &d);
  return y;
}

int Date::month() const {
  int y, m, d;
  CivilFromDays(days_, &y, &m, &d);
  return m;
}

int Date::day() const {
  int y, m, d;
  CivilFromDays(days_, &y, &m, &d);
  return d;
}

Weekday Date::weekday() const {
  // Day 0 (1970-01-01) was a Thursday.
  int32_t wd = (days_ % 7 + 7 + 3) % 7;  // 0 == Monday
  return static_cast<Weekday>(wd);
}

int Date::day_of_year() const {
  int y, m, d;
  CivilFromDays(days_, &y, &m, &d);
  StatusOr<Date> jan1 = FromYmd(y, 1, 1);
  return days_ - jan1.value().day_number() + 1;
}

int Date::iso_week() const {
  // ISO week 1 is the week containing the first Thursday of the year.
  // Equivalent: week number of the Thursday in this date's week.
  int32_t thursday =
      days_ - static_cast<int32_t>(weekday()) + 3;  // Thursday of this week
  Date th = Date(thursday);
  int y, m, d;
  CivilFromDays(th.days_, &y, &m, &d);
  Date jan1 = FromYmd(y, 1, 1).value();
  return (th.days_ - jan1.days_) / 7 + 1;
}

int Date::iso_week_year() const {
  int32_t thursday = days_ - static_cast<int32_t>(weekday()) + 3;
  int y, m, d;
  CivilFromDays(thursday, &y, &m, &d);
  return y;
}

std::string Date::ToString() const {
  int y, m, d;
  CivilFromDays(days_, &y, &m, &d);
  return StrFormat("%04d-%02d-%02d", y, m, d);
}

std::ostream& operator<<(std::ostream& os, const Date& date) {
  return os << date.ToString();
}

}  // namespace vup
