#ifndef VUPRED_CALENDAR_SEASON_H_
#define VUPRED_CALENDAR_SEASON_H_

#include <string_view>

#include "calendar/date.h"

namespace vup {

/// Earth hemisphere, used to flip meteorological seasons.
enum class Hemisphere : int {
  kNorthern = 0,
  kSouthern = 1,
};

/// Meteorological season. Numbering follows the northern-hemisphere cycle
/// starting at winter (Dec-Feb).
enum class Season : int {
  kWinter = 0,
  kSpring = 1,
  kSummer = 2,
  kAutumn = 3,
};

std::string_view SeasonToString(Season s);
std::string_view HemisphereToString(Hemisphere h);

/// Meteorological season for `month` (1..12) in `hemisphere`.
/// Northern: Dec-Feb winter, Mar-May spring, Jun-Aug summer, Sep-Nov autumn;
/// the southern hemisphere is shifted by half a year.
Season SeasonForMonth(int month, Hemisphere hemisphere);

/// Convenience overload.
inline Season SeasonForDate(const Date& date, Hemisphere hemisphere) {
  return SeasonForMonth(date.month(), hemisphere);
}

}  // namespace vup

#endif  // VUPRED_CALENDAR_SEASON_H_
