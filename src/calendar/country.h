#ifndef VUPRED_CALENDAR_COUNTRY_H_
#define VUPRED_CALENDAR_COUNTRY_H_

#include <string>
#include <string_view>
#include <vector>

#include "calendar/date.h"
#include "calendar/holiday.h"
#include "calendar/season.h"
#include "common/statusor.h"

namespace vup {

/// Coarse world region, used as a spatial contextual feature.
enum class Region : int {
  kEurope = 0,
  kNorthAmerica = 1,
  kSouthAmerica = 2,
  kAfrica = 3,
  kAsia = 4,
  kOceania = 5,
  kMiddleEast = 6,
};

std::string_view RegionToString(Region r);

/// Static description of a country: identity, geography, rest-day
/// convention, and public-holiday calendar. Drives the contextual
/// enrichment of CAN-bus data (holiday/working-day flags, season).
struct Country {
  std::string code;   // ISO-3166-ish two-letter code, or synthetic "Xnn".
  std::string name;
  Region region = Region::kEurope;
  Hemisphere hemisphere = Hemisphere::kNorthern;
  WeekendRule weekend;
  HolidayCalendar holidays;

  /// A non-working day is a weekend rest day or a public holiday.
  bool IsWorkingDay(const Date& date) const {
    return !weekend.IsRestDay(date.weekday()) && !holidays.IsHoliday(date);
  }
};

/// Registry of the 151 countries in the reproduced dataset: a curated set of
/// real countries (realistic holiday rules) padded with synthetic countries
/// to the paper's count. The registry is immutable and built once.
class CountryRegistry {
 public:
  /// Singleton accessor (the registry is static data).
  static const CountryRegistry& Global();

  /// Total number of countries (== 151, matching the paper).
  size_t size() const { return countries_.size(); }

  const Country& at(size_t index) const;

  /// Lookup by code; NotFound if absent.
  StatusOr<const Country*> Find(std::string_view code) const;

  const std::vector<Country>& countries() const { return countries_; }

 private:
  CountryRegistry();

  std::vector<Country> countries_;
};

}  // namespace vup

#endif  // VUPRED_CALENDAR_COUNTRY_H_
