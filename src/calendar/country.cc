#include "calendar/country.h"

#include "common/check.h"
#include "common/random.h"
#include "common/string_util.h"

namespace vup {

std::string_view RegionToString(Region r) {
  switch (r) {
    case Region::kEurope:
      return "Europe";
    case Region::kNorthAmerica:
      return "NorthAmerica";
    case Region::kSouthAmerica:
      return "SouthAmerica";
    case Region::kAfrica:
      return "Africa";
    case Region::kAsia:
      return "Asia";
    case Region::kOceania:
      return "Oceania";
    case Region::kMiddleEast:
      return "MiddleEast";
  }
  return "?";
}

namespace {

HolidayCalendar WesternChristianCalendar() {
  HolidayCalendar cal;
  cal.AddRule(HolidayRule::Fixed("New Year's Day", 1, 1));
  cal.AddRule(HolidayRule::EasterBased("Good Friday", -2));
  cal.AddRule(HolidayRule::EasterBased("Easter Monday", 1));
  cal.AddRule(HolidayRule::Fixed("Labour Day", 5, 1));
  cal.AddRule(HolidayRule::Fixed("Christmas Day", 12, 25));
  cal.AddRule(HolidayRule::Fixed("St. Stephen's Day", 12, 26));
  return cal;
}

HolidayCalendar MinimalSecularCalendar() {
  HolidayCalendar cal;
  cal.AddRule(HolidayRule::Fixed("New Year's Day", 1, 1));
  cal.AddRule(HolidayRule::Fixed("Labour Day", 5, 1));
  return cal;
}

Country MakeCountry(std::string code, std::string name, Region region,
                    Hemisphere hemisphere, WeekendRule weekend,
                    HolidayCalendar holidays) {
  Country c;
  c.code = std::move(code);
  c.name = std::move(name);
  c.region = region;
  c.hemisphere = hemisphere;
  c.weekend = std::move(weekend);
  c.holidays = std::move(holidays);
  return c;
}

std::vector<Country> BuildCuratedCountries() {
  std::vector<Country> out;
  const WeekendRule satsun = WeekendRule::SaturdaySunday();
  const WeekendRule frisat = WeekendRule::FridaySaturday();

  // --- Europe ---
  {
    HolidayCalendar italy = WesternChristianCalendar();
    italy.AddRule(HolidayRule::Fixed("Epiphany", 1, 6));
    italy.AddRule(HolidayRule::Fixed("Liberation Day", 4, 25));
    italy.AddRule(HolidayRule::Fixed("Republic Day", 6, 2));
    italy.AddRule(HolidayRule::Fixed("Ferragosto", 8, 15));
    italy.AddRule(HolidayRule::Fixed("All Saints' Day", 11, 1));
    italy.AddRule(HolidayRule::Fixed("Immaculate Conception", 12, 8));
    out.push_back(MakeCountry("IT", "Italy", Region::kEurope,
                              Hemisphere::kNorthern, satsun, std::move(italy)));
  }
  {
    HolidayCalendar germany = WesternChristianCalendar();
    germany.AddRule(HolidayRule::EasterBased("Ascension Day", 39));
    germany.AddRule(HolidayRule::EasterBased("Whit Monday", 50));
    germany.AddRule(HolidayRule::Fixed("German Unity Day", 10, 3));
    out.push_back(MakeCountry("DE", "Germany", Region::kEurope,
                              Hemisphere::kNorthern, satsun,
                              std::move(germany)));
  }
  {
    HolidayCalendar france = WesternChristianCalendar();
    france.AddRule(HolidayRule::Fixed("Victory Day", 5, 8));
    france.AddRule(HolidayRule::Fixed("Bastille Day", 7, 14));
    france.AddRule(HolidayRule::Fixed("Assumption", 8, 15));
    france.AddRule(HolidayRule::Fixed("Armistice Day", 11, 11));
    out.push_back(MakeCountry("FR", "France", Region::kEurope,
                              Hemisphere::kNorthern, satsun,
                              std::move(france)));
  }
  {
    HolidayCalendar uk;
    uk.AddRule(HolidayRule::Fixed("New Year's Day", 1, 1));
    uk.AddRule(HolidayRule::EasterBased("Good Friday", -2));
    uk.AddRule(HolidayRule::EasterBased("Easter Monday", 1));
    uk.AddRule(HolidayRule::NthWeekday("Early May Bank Holiday", 5,
                                       Weekday::kMonday, 1));
    uk.AddRule(HolidayRule::NthWeekday("Spring Bank Holiday", 5,
                                       Weekday::kMonday, -1));
    uk.AddRule(HolidayRule::NthWeekday("Summer Bank Holiday", 8,
                                       Weekday::kMonday, -1));
    uk.AddRule(HolidayRule::Fixed("Christmas Day", 12, 25));
    uk.AddRule(HolidayRule::Fixed("Boxing Day", 12, 26));
    out.push_back(MakeCountry("GB", "United Kingdom", Region::kEurope,
                              Hemisphere::kNorthern, satsun, std::move(uk)));
  }
  {
    HolidayCalendar spain = WesternChristianCalendar();
    spain.AddRule(HolidayRule::Fixed("Epiphany", 1, 6));
    spain.AddRule(HolidayRule::Fixed("National Day", 10, 12));
    spain.AddRule(HolidayRule::Fixed("Constitution Day", 12, 6));
    out.push_back(MakeCountry("ES", "Spain", Region::kEurope,
                              Hemisphere::kNorthern, satsun,
                              std::move(spain)));
  }
  {
    HolidayCalendar pl = WesternChristianCalendar();
    pl.AddRule(HolidayRule::Fixed("Constitution Day", 5, 3));
    pl.AddRule(HolidayRule::Fixed("Independence Day", 11, 11));
    out.push_back(MakeCountry("PL", "Poland", Region::kEurope,
                              Hemisphere::kNorthern, satsun, std::move(pl)));
  }
  {
    HolidayCalendar nl = WesternChristianCalendar();
    nl.AddRule(HolidayRule::Fixed("King's Day", 4, 27));
    out.push_back(MakeCountry("NL", "Netherlands", Region::kEurope,
                              Hemisphere::kNorthern, satsun, std::move(nl)));
  }
  {
    HolidayCalendar se = WesternChristianCalendar();
    se.AddRule(HolidayRule::Fixed("National Day", 6, 6));
    out.push_back(MakeCountry("SE", "Sweden", Region::kEurope,
                              Hemisphere::kNorthern, satsun, std::move(se)));
  }
  {
    HolidayCalendar ru = MinimalSecularCalendar();
    ru.AddRule(HolidayRule::Fixed("Orthodox Christmas", 1, 7));
    ru.AddRule(HolidayRule::Fixed("Defender of the Fatherland Day", 2, 23));
    ru.AddRule(HolidayRule::Fixed("Victory Day", 5, 9));
    ru.AddRule(HolidayRule::Fixed("Russia Day", 6, 12));
    out.push_back(MakeCountry("RU", "Russia", Region::kEurope,
                              Hemisphere::kNorthern, satsun, std::move(ru)));
  }
  {
    HolidayCalendar tr = MinimalSecularCalendar();
    tr.AddRule(HolidayRule::Fixed("Republic Day", 10, 29));
    out.push_back(MakeCountry("TR", "Turkey", Region::kEurope,
                              Hemisphere::kNorthern, satsun, std::move(tr)));
  }

  // --- North America ---
  {
    HolidayCalendar us;
    us.AddRule(HolidayRule::Fixed("New Year's Day", 1, 1));
    us.AddRule(HolidayRule::NthWeekday("Memorial Day", 5, Weekday::kMonday, -1));
    us.AddRule(HolidayRule::Fixed("Independence Day", 7, 4));
    us.AddRule(HolidayRule::NthWeekday("Labor Day", 9, Weekday::kMonday, 1));
    us.AddRule(HolidayRule::NthWeekday("Thanksgiving", 11, Weekday::kThursday, 4));
    us.AddRule(HolidayRule::Fixed("Christmas Day", 12, 25));
    out.push_back(MakeCountry("US", "United States", Region::kNorthAmerica,
                              Hemisphere::kNorthern, satsun, std::move(us)));
  }
  {
    HolidayCalendar ca;
    ca.AddRule(HolidayRule::Fixed("New Year's Day", 1, 1));
    ca.AddRule(HolidayRule::EasterBased("Good Friday", -2));
    ca.AddRule(HolidayRule::Fixed("Canada Day", 7, 1));
    ca.AddRule(HolidayRule::NthWeekday("Labour Day", 9, Weekday::kMonday, 1));
    ca.AddRule(HolidayRule::NthWeekday("Thanksgiving", 10, Weekday::kMonday, 2));
    ca.AddRule(HolidayRule::Fixed("Christmas Day", 12, 25));
    out.push_back(MakeCountry("CA", "Canada", Region::kNorthAmerica,
                              Hemisphere::kNorthern, satsun, std::move(ca)));
  }
  {
    HolidayCalendar mx = MinimalSecularCalendar();
    mx.AddRule(HolidayRule::Fixed("Independence Day", 9, 16));
    mx.AddRule(HolidayRule::Fixed("Revolution Day", 11, 20));
    mx.AddRule(HolidayRule::Fixed("Christmas Day", 12, 25));
    out.push_back(MakeCountry("MX", "Mexico", Region::kNorthAmerica,
                              Hemisphere::kNorthern, satsun, std::move(mx)));
  }

  // --- South America ---
  {
    HolidayCalendar br = WesternChristianCalendar();
    br.AddRule(HolidayRule::EasterBased("Carnival Monday", -48));
    br.AddRule(HolidayRule::EasterBased("Carnival Tuesday", -47));
    br.AddRule(HolidayRule::Fixed("Independence Day", 9, 7));
    out.push_back(MakeCountry("BR", "Brazil", Region::kSouthAmerica,
                              Hemisphere::kSouthern, satsun, std::move(br)));
  }
  {
    HolidayCalendar ar = WesternChristianCalendar();
    ar.AddRule(HolidayRule::Fixed("May Revolution", 5, 25));
    ar.AddRule(HolidayRule::Fixed("Independence Day", 7, 9));
    out.push_back(MakeCountry("AR", "Argentina", Region::kSouthAmerica,
                              Hemisphere::kSouthern, satsun, std::move(ar)));
  }
  {
    HolidayCalendar cl = WesternChristianCalendar();
    cl.AddRule(HolidayRule::Fixed("Independence Day", 9, 18));
    out.push_back(MakeCountry("CL", "Chile", Region::kSouthAmerica,
                              Hemisphere::kSouthern, satsun, std::move(cl)));
  }

  // --- Africa ---
  {
    HolidayCalendar za = WesternChristianCalendar();
    za.AddRule(HolidayRule::Fixed("Freedom Day", 4, 27));
    za.AddRule(HolidayRule::Fixed("Day of Reconciliation", 12, 16));
    out.push_back(MakeCountry("ZA", "South Africa", Region::kAfrica,
                              Hemisphere::kSouthern, satsun, std::move(za)));
  }
  {
    HolidayCalendar eg = MinimalSecularCalendar();
    eg.AddRule(HolidayRule::Fixed("Revolution Day", 7, 23));
    out.push_back(MakeCountry("EG", "Egypt", Region::kAfrica,
                              Hemisphere::kNorthern, frisat, std::move(eg)));
  }
  {
    HolidayCalendar ng = WesternChristianCalendar();
    ng.AddRule(HolidayRule::Fixed("Independence Day", 10, 1));
    out.push_back(MakeCountry("NG", "Nigeria", Region::kAfrica,
                              Hemisphere::kNorthern, satsun, std::move(ng)));
  }

  // --- Asia ---
  {
    HolidayCalendar jp = MinimalSecularCalendar();
    jp.AddRule(HolidayRule::Fixed("Foundation Day", 2, 11));
    jp.AddRule(HolidayRule::Fixed("Showa Day", 4, 29));
    jp.AddRule(HolidayRule::Fixed("Constitution Day", 5, 3));
    jp.AddRule(HolidayRule::Fixed("Children's Day", 5, 5));
    out.push_back(MakeCountry("JP", "Japan", Region::kAsia,
                              Hemisphere::kNorthern, satsun, std::move(jp)));
  }
  {
    HolidayCalendar cn = MinimalSecularCalendar();
    cn.AddRule(HolidayRule::Fixed("National Day", 10, 1));
    cn.AddRule(HolidayRule::Fixed("National Day Holiday", 10, 2));
    cn.AddRule(HolidayRule::Fixed("National Day Holiday", 10, 3));
    out.push_back(MakeCountry("CN", "China", Region::kAsia,
                              Hemisphere::kNorthern, satsun, std::move(cn)));
  }
  {
    HolidayCalendar in = MinimalSecularCalendar();
    in.AddRule(HolidayRule::Fixed("Republic Day", 1, 26));
    in.AddRule(HolidayRule::Fixed("Independence Day", 8, 15));
    in.AddRule(HolidayRule::Fixed("Gandhi Jayanti", 10, 2));
    out.push_back(MakeCountry("IN", "India", Region::kAsia,
                              Hemisphere::kNorthern, satsun, std::move(in)));
  }
  {
    HolidayCalendar kr = MinimalSecularCalendar();
    kr.AddRule(HolidayRule::Fixed("Liberation Day", 8, 15));
    out.push_back(MakeCountry("KR", "South Korea", Region::kAsia,
                              Hemisphere::kNorthern, satsun, std::move(kr)));
  }

  // --- Middle East ---
  {
    HolidayCalendar ae = MinimalSecularCalendar();
    ae.AddRule(HolidayRule::Fixed("National Day", 12, 2));
    out.push_back(MakeCountry("AE", "United Arab Emirates",
                              Region::kMiddleEast, Hemisphere::kNorthern,
                              frisat, std::move(ae)));
  }
  {
    HolidayCalendar sa = MinimalSecularCalendar();
    sa.AddRule(HolidayRule::Fixed("National Day", 9, 23));
    out.push_back(MakeCountry("SA", "Saudi Arabia", Region::kMiddleEast,
                              Hemisphere::kNorthern, frisat, std::move(sa)));
  }
  {
    HolidayCalendar il = MinimalSecularCalendar();
    out.push_back(MakeCountry("IL", "Israel", Region::kMiddleEast,
                              Hemisphere::kNorthern, frisat, std::move(il)));
  }

  // --- Oceania ---
  {
    HolidayCalendar au;
    au.AddRule(HolidayRule::Fixed("New Year's Day", 1, 1));
    au.AddRule(HolidayRule::Fixed("Australia Day", 1, 26));
    au.AddRule(HolidayRule::EasterBased("Good Friday", -2));
    au.AddRule(HolidayRule::EasterBased("Easter Monday", 1));
    au.AddRule(HolidayRule::Fixed("Anzac Day", 4, 25));
    au.AddRule(HolidayRule::Fixed("Christmas Day", 12, 25));
    au.AddRule(HolidayRule::Fixed("Boxing Day", 12, 26));
    out.push_back(MakeCountry("AU", "Australia", Region::kOceania,
                              Hemisphere::kSouthern, satsun, std::move(au)));
  }
  {
    HolidayCalendar nz;
    nz.AddRule(HolidayRule::Fixed("New Year's Day", 1, 1));
    nz.AddRule(HolidayRule::Fixed("Waitangi Day", 2, 6));
    nz.AddRule(HolidayRule::EasterBased("Good Friday", -2));
    nz.AddRule(HolidayRule::EasterBased("Easter Monday", 1));
    nz.AddRule(HolidayRule::Fixed("Christmas Day", 12, 25));
    nz.AddRule(HolidayRule::Fixed("Boxing Day", 12, 26));
    out.push_back(MakeCountry("NZ", "New Zealand", Region::kOceania,
                              Hemisphere::kSouthern, satsun, std::move(nz)));
  }

  return out;
}

/// Pads the curated list with synthetic countries until the registry holds
/// the paper's 151 countries. Synthetic countries draw region, hemisphere and
/// a plausible holiday calendar deterministically from their index.
void PadWithSyntheticCountries(std::vector<Country>* countries,
                               size_t target) {
  Rng rng(0xC0UL);  // Fixed seed: the registry is part of the dataset spec.
  static constexpr Region kRegions[] = {
      Region::kEurope,     Region::kNorthAmerica, Region::kSouthAmerica,
      Region::kAfrica,     Region::kAsia,         Region::kOceania,
      Region::kMiddleEast,
  };
  size_t index = 0;
  while (countries->size() < target) {
    Region region = kRegions[rng.UniformInt(0, 6)];
    Hemisphere hemisphere;
    switch (region) {
      case Region::kSouthAmerica:
      case Region::kOceania:
        hemisphere = Hemisphere::kSouthern;
        break;
      case Region::kAfrica:
        hemisphere = rng.Bernoulli(0.5) ? Hemisphere::kSouthern
                                        : Hemisphere::kNorthern;
        break;
      default:
        hemisphere = Hemisphere::kNorthern;
        break;
    }
    WeekendRule weekend = (region == Region::kMiddleEast && rng.Bernoulli(0.7))
                              ? WeekendRule::FridaySaturday()
                              : WeekendRule::SaturdaySunday();
    HolidayCalendar cal = rng.Bernoulli(0.6) ? WesternChristianCalendar()
                                             : MinimalSecularCalendar();
    // One synthetic national day, unique-ish per country.
    int month = static_cast<int>(rng.UniformInt(1, 12));
    int day = static_cast<int>(rng.UniformInt(1, 28));
    cal.AddRule(HolidayRule::Fixed("National Day", month, day));
    Country c;
    c.code = StrFormat("X%02zu", index);
    c.name = StrFormat("Synthetic Country %zu", index);
    c.region = region;
    c.hemisphere = hemisphere;
    c.weekend = std::move(weekend);
    c.holidays = std::move(cal);
    countries->push_back(std::move(c));
    ++index;
  }
}

}  // namespace

CountryRegistry::CountryRegistry() {
  countries_ = BuildCuratedCountries();
  PadWithSyntheticCountries(&countries_, 151);
}

const CountryRegistry& CountryRegistry::Global() {
  // Never destroyed: avoids static-destruction-order issues.
  static const CountryRegistry& registry = *new CountryRegistry();
  return registry;
}

const Country& CountryRegistry::at(size_t index) const {
  VUP_CHECK(index < countries_.size()) << "country index " << index;
  return countries_[index];
}

StatusOr<const Country*> CountryRegistry::Find(std::string_view code) const {
  for (const Country& c : countries_) {
    if (c.code == code) return &c;
  }
  return Status::NotFound("no country with code '" + std::string(code) + "'");
}

}  // namespace vup
