#ifndef VUPRED_CALENDAR_DATE_H_
#define VUPRED_CALENDAR_DATE_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/statusor.h"

namespace vup {

/// Days of the week, ISO-8601 ordering (Monday first).
enum class Weekday : int {
  kMonday = 0,
  kTuesday = 1,
  kWednesday = 2,
  kThursday = 3,
  kFriday = 4,
  kSaturday = 5,
  kSunday = 6,
};

std::string_view WeekdayToString(Weekday d);

/// A calendar date in the proleptic Gregorian calendar.
///
/// Internally a day count since the Unix epoch (1970-01-01 == day 0), so
/// date arithmetic, ordering and hashing are O(1). Conversions use the
/// public-domain civil-calendar algorithms by Howard Hinnant.
class Date {
 public:
  /// Constructs 1970-01-01. Prefer the factories below.
  Date() : days_(0) {}

  /// Validated construction from year/month/day.
  static StatusOr<Date> FromYmd(int year, int month, int day);

  /// Construction from a day count since 1970-01-01.
  static Date FromDayNumber(int32_t days) { return Date(days); }

  /// Parses "YYYY-MM-DD".
  static StatusOr<Date> Parse(std::string_view text);

  static bool IsLeapYear(int year);
  static int DaysInMonth(int year, int month);

  int year() const;
  int month() const;   // 1..12
  int day() const;     // 1..31
  int32_t day_number() const { return days_; }

  Weekday weekday() const;
  int day_of_year() const;  // 1..366

  /// ISO-8601 week number (1..53) and the year that week belongs to
  /// (may differ from year() around January 1st).
  int iso_week() const;
  int iso_week_year() const;

  Date AddDays(int n) const { return Date(days_ + n); }

  /// Renders as "YYYY-MM-DD".
  std::string ToString() const;

  friend auto operator<=>(const Date&, const Date&) = default;

  /// Number of days from `other` to `*this`.
  int32_t operator-(const Date& other) const { return days_ - other.days_; }

 private:
  explicit Date(int32_t days) : days_(days) {}

  int32_t days_;  // Days since 1970-01-01.
};

std::ostream& operator<<(std::ostream& os, const Date& date);

}  // namespace vup

#endif  // VUPRED_CALENDAR_DATE_H_
