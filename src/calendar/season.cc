#include "calendar/season.h"

#include "common/check.h"

namespace vup {

std::string_view SeasonToString(Season s) {
  switch (s) {
    case Season::kWinter:
      return "Winter";
    case Season::kSpring:
      return "Spring";
    case Season::kSummer:
      return "Summer";
    case Season::kAutumn:
      return "Autumn";
  }
  return "?";
}

std::string_view HemisphereToString(Hemisphere h) {
  switch (h) {
    case Hemisphere::kNorthern:
      return "Northern";
    case Hemisphere::kSouthern:
      return "Southern";
  }
  return "?";
}

Season SeasonForMonth(int month, Hemisphere hemisphere) {
  VUP_CHECK(month >= 1 && month <= 12) << "month=" << month;
  // Northern-hemisphere mapping: Dec,Jan,Feb -> winter, etc.
  Season northern;
  if (month == 12 || month <= 2) {
    northern = Season::kWinter;
  } else if (month <= 5) {
    northern = Season::kSpring;
  } else if (month <= 8) {
    northern = Season::kSummer;
  } else {
    northern = Season::kAutumn;
  }
  if (hemisphere == Hemisphere::kNorthern) return northern;
  // Shift by two seasons for the southern hemisphere.
  return static_cast<Season>((static_cast<int>(northern) + 2) % 4);
}

}  // namespace vup
