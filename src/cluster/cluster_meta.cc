#include "cluster/cluster_meta.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <istream>
#include <limits>
#include <sstream>
#include <system_error>

#include "common/string_util.h"
#include "telemetry/taxonomy.h"

namespace vup::cluster {

namespace fs = std::filesystem;

namespace {

constexpr const char* kMetaFile = "clusters.meta";
constexpr const char* kMetaMagic = "vupred-clusters v1";
constexpr const char* kMetaEnd = "end-clusters";

// Structural caps: counts beyond these are garbage (or an attack), not a
// fleet. They bound every allocation a hostile stream can drive.
constexpr long long kMaxDim = 1 << 16;
constexpr long long kMaxClusters = 1 << 16;
constexpr long long kMaxVehicles = 100'000'000;

/// Atomic small-file write: temp name, then rename over the target (same
/// discipline as the registry's CURRENT/meta installs).
Status WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open for writing: " + tmp);
    }
    out << content;
    out.flush();
    if (!out) return Status::DataLoss("write failed: " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("cannot install " + path + ": " + ec.message());
  }
  return Status::OK();
}

/// Reads the next line; it must be newline-terminated (a writer killed
/// mid-line leaves a partial final line, which must parse as truncation,
/// not as a shorter-but-plausible value).
StatusOr<std::string> NextLine(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("unexpected end of clusters.meta");
  }
  if (in.eof()) {
    return Status::InvalidArgument(
        "clusters.meta line not newline-terminated (truncated?)");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

/// Next line split on spaces; token 0 must equal `key`. Returns the rest.
StatusOr<std::vector<std::string>> ExpectTokens(std::istream& in,
                                                std::string_view key) {
  VUP_ASSIGN_OR_RETURN(std::string line, NextLine(in));
  std::vector<std::string> tokens;
  for (const std::string& t : Split(std::string(Trim(line)), ' ')) {
    if (!t.empty()) tokens.push_back(t);
  }
  if (tokens.empty() || tokens[0] != key) {
    return Status::InvalidArgument(
        "expected '" + std::string(key) + "' line, got '" +
        (tokens.empty() ? std::string() : tokens[0]) + "'");
  }
  tokens.erase(tokens.begin());
  return tokens;
}

StatusOr<long long> ExpectInt(std::istream& in, std::string_view key) {
  VUP_ASSIGN_OR_RETURN(std::vector<std::string> rest, ExpectTokens(in, key));
  if (rest.size() != 1) {
    return Status::InvalidArgument("expected one value for '" +
                                   std::string(key) + "'");
  }
  return ParseInt(rest[0]);
}

/// Parses `count` doubles from `tokens` starting at `offset`; all finite.
StatusOr<std::vector<double>> ParseDoubles(
    const std::vector<std::string>& tokens, size_t offset, size_t count,
    std::string_view what) {
  if (tokens.size() != offset + count) {
    return Status::InvalidArgument("value count mismatch in " +
                                   std::string(what));
  }
  std::vector<double> out;
  out.reserve(count);
  for (size_t i = offset; i < tokens.size(); ++i) {
    VUP_ASSIGN_OR_RETURN(double v, ParseDouble(tokens[i]));
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("non-finite value in " +
                                     std::string(what));
    }
    out.push_back(v);
  }
  return out;
}

void WriteDoubles(std::ostringstream& os, const std::vector<double>& v) {
  for (double x : v) os << " " << StrFormat("%.17g", x);
}

}  // namespace

int64_t ClusterModelId(int cluster_id) { return -1000 - cluster_id; }

int64_t TypeModelId(int vehicle_type) { return -2000 - vehicle_type; }

StatusOr<int> ClustersMeta::ClusterOf(int64_t vehicle_id) const {
  for (const VehicleAssignment& v : vehicles) {
    if (v.vehicle_id == vehicle_id) return v.cluster_id;
  }
  return Status::NotFound(
      StrFormat("vehicle %lld not in clusters.meta",
                static_cast<long long>(vehicle_id)));
}

StatusOr<int> ClustersMeta::TypeOf(int64_t vehicle_id) const {
  for (const VehicleAssignment& v : vehicles) {
    if (v.vehicle_id == vehicle_id) return v.vehicle_type;
  }
  return Status::NotFound(
      StrFormat("vehicle %lld not in clusters.meta",
                static_cast<long long>(vehicle_id)));
}

StatusOr<int> ClustersMeta::AssignProfile(const UsageProfile& profile) const {
  if (centroids.empty()) {
    return Status::FailedPrecondition("clusters.meta holds no centroids");
  }
  VUP_ASSIGN_OR_RETURN(std::vector<double> point, scaling.Apply(profile));
  double best = std::numeric_limits<double>::infinity();
  int best_c = 0;
  for (size_t c = 0; c < centroids.size(); ++c) {
    if (centroids[c].size() != point.size()) {
      return Status::InvalidArgument("centroid dimension mismatch");
    }
    double d = 0.0;
    for (size_t i = 0; i < point.size(); ++i) {
      const double delta = point[i] - centroids[c][i];
      d += delta * delta;
    }
    if (d < best) {
      best = d;
      best_c = static_cast<int>(c);
    }
  }
  return best_c;
}

StatusOr<ClustersMeta> ClustersMeta::Parse(std::istream& in) {
  {
    VUP_ASSIGN_OR_RETURN(std::string magic, NextLine(in));
    if (Trim(magic) != kMetaMagic) {
      return Status::InvalidArgument(std::string("not a ") + kMetaMagic +
                                     " stream");
    }
  }

  ClustersMeta meta;
  VUP_ASSIGN_OR_RETURN(long long seed, ExpectInt(in, "seed"));
  meta.seed = static_cast<uint64_t>(seed);

  VUP_ASSIGN_OR_RETURN(long long acf_lags, ExpectInt(in, "acf_lags"));
  if (acf_lags < 1 || acf_lags > kMaxDim) {
    return Status::InvalidArgument("acf_lags out of range");
  }
  meta.acf_lags = static_cast<size_t>(acf_lags);

  {
    VUP_ASSIGN_OR_RETURN(std::vector<std::string> rest,
                         ExpectTokens(in, "inertia"));
    if (rest.size() != 1) {
      return Status::InvalidArgument("expected one value for 'inertia'");
    }
    VUP_ASSIGN_OR_RETURN(meta.inertia, ParseDouble(rest[0]));
    if (!std::isfinite(meta.inertia) || meta.inertia < 0.0) {
      return Status::InvalidArgument("inertia out of range");
    }
  }

  long long dim = 0;
  {
    VUP_ASSIGN_OR_RETURN(std::vector<std::string> rest,
                         ExpectTokens(in, "scaling_mean"));
    if (rest.empty()) {
      return Status::InvalidArgument("missing scaling_mean count");
    }
    VUP_ASSIGN_OR_RETURN(dim, ParseInt(rest[0]));
    if (dim < 1 || dim > kMaxDim) {
      return Status::InvalidArgument("profile dimension out of range");
    }
    VUP_ASSIGN_OR_RETURN(
        meta.scaling.mean,
        ParseDoubles(rest, 1, static_cast<size_t>(dim), "scaling_mean"));
  }
  {
    VUP_ASSIGN_OR_RETURN(std::vector<std::string> rest,
                         ExpectTokens(in, "scaling_std"));
    if (rest.empty() || rest[0] != StrFormat("%lld", dim)) {
      return Status::InvalidArgument("scaling_std count mismatch");
    }
    VUP_ASSIGN_OR_RETURN(
        meta.scaling.std,
        ParseDoubles(rest, 1, static_cast<size_t>(dim), "scaling_std"));
    for (double s : meta.scaling.std) {
      if (s <= 0.0) {
        return Status::InvalidArgument("scaling_std must be positive");
      }
    }
  }

  VUP_ASSIGN_OR_RETURN(long long k, ExpectInt(in, "centroids"));
  if (k < 1 || k > kMaxClusters) {
    return Status::InvalidArgument("cluster count out of range");
  }
  meta.centroids.reserve(static_cast<size_t>(k));
  for (long long c = 0; c < k; ++c) {
    VUP_ASSIGN_OR_RETURN(std::vector<std::string> rest,
                         ExpectTokens(in, "centroid"));
    if (rest.size() < 2 || rest[0] != StrFormat("%lld", c) ||
        rest[1] != StrFormat("%lld", dim)) {
      return Status::InvalidArgument(
          StrFormat("malformed centroid line %lld", c));
    }
    VUP_ASSIGN_OR_RETURN(
        std::vector<double> centroid,
        ParseDoubles(rest, 2, static_cast<size_t>(dim), "centroid"));
    meta.centroids.push_back(std::move(centroid));
  }

  VUP_ASSIGN_OR_RETURN(long long num_vehicles, ExpectInt(in, "vehicles"));
  if (num_vehicles < 0 || num_vehicles > kMaxVehicles) {
    return Status::InvalidArgument("vehicle count out of range");
  }
  meta.vehicles.reserve(static_cast<size_t>(num_vehicles));
  int64_t prev_id = std::numeric_limits<int64_t>::min();
  for (long long i = 0; i < num_vehicles; ++i) {
    VUP_ASSIGN_OR_RETURN(std::vector<std::string> rest,
                         ExpectTokens(in, "vehicle"));
    if (rest.size() != 3) {
      return Status::InvalidArgument("malformed vehicle line");
    }
    VehicleAssignment v;
    VUP_ASSIGN_OR_RETURN(long long id, ParseInt(rest[0]));
    VUP_ASSIGN_OR_RETURN(long long cluster, ParseInt(rest[1]));
    VUP_ASSIGN_OR_RETURN(long long type, ParseInt(rest[2]));
    if (cluster < 0 || cluster >= k) {
      return Status::InvalidArgument("vehicle cluster id out of range");
    }
    if (type < 0 || type >= kNumVehicleTypes) {
      return Status::InvalidArgument("vehicle type out of range");
    }
    v.vehicle_id = id;
    v.cluster_id = static_cast<int>(cluster);
    v.vehicle_type = static_cast<int>(type);
    if (v.vehicle_id <= prev_id) {
      return Status::InvalidArgument(
          "vehicle ids must be strictly ascending");
    }
    prev_id = v.vehicle_id;
    meta.vehicles.push_back(v);
  }

  {
    VUP_ASSIGN_OR_RETURN(std::string end, NextLine(in));
    if (Trim(end) != kMetaEnd) {
      return Status::InvalidArgument("missing end-clusters sentinel");
    }
  }
  std::string trailing;
  while (std::getline(in, trailing)) {
    if (!Trim(trailing).empty()) {
      return Status::InvalidArgument("trailing content after end-clusters");
    }
  }
  return meta;
}

std::string ClustersMeta::Serialize() const {
  std::ostringstream os;
  os << kMetaMagic << "\n";
  os << "seed " << seed << "\n";
  os << "acf_lags " << acf_lags << "\n";
  os << "inertia " << StrFormat("%.17g", inertia) << "\n";
  os << "scaling_mean " << scaling.mean.size();
  WriteDoubles(os, scaling.mean);
  os << "\n";
  os << "scaling_std " << scaling.std.size();
  WriteDoubles(os, scaling.std);
  os << "\n";
  os << "centroids " << centroids.size() << "\n";
  for (size_t c = 0; c < centroids.size(); ++c) {
    os << "centroid " << c << " " << centroids[c].size();
    WriteDoubles(os, centroids[c]);
    os << "\n";
  }
  os << "vehicles " << vehicles.size() << "\n";
  for (const VehicleAssignment& v : vehicles) {
    os << "vehicle " << v.vehicle_id << " " << v.cluster_id << " "
       << v.vehicle_type << "\n";
  }
  os << kMetaEnd << "\n";
  return os.str();
}

Status WriteClustersMetaFile(const std::string& directory,
                             const ClustersMeta& meta) {
  return WriteFileAtomic(directory + "/" + kMetaFile, meta.Serialize());
}

StatusOr<ClustersMeta> ReadClustersMetaFile(const std::string& directory) {
  const std::string path = directory + "/" + kMetaFile;
  std::ifstream in(path);
  if (!in) return Status::NotFound("no clusters.meta in " + directory);
  return ClustersMeta::Parse(in);
}

}  // namespace vup::cluster
