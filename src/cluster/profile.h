#ifndef VUPRED_CLUSTER_PROFILE_H_
#define VUPRED_CLUSTER_PROFILE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "pipeline/dataset.h"

namespace vup::cluster {

/// Parameters of profile extraction. The profile dimensionality is a pure
/// function of this config, so every profile of a fleet extracted with the
/// same config is comparable component by component.
struct ProfileConfig {
  /// ACF signature lags: the autocorrelation of the utilization-hours
  /// series is sampled at lags 1..acf_lags (weekly structure needs at
  /// least 7; 14 captures the fortnight echo too).
  size_t acf_lags = 14;
  /// Utilization-distribution quantiles sampled from the hours series.
  /// Fixed ladder {0.1, 0.25, 0.5, 0.75, 0.9}; this is its size.
  static constexpr size_t kNumQuantiles = 5;
};

/// One vehicle's usage signature for fleet clustering: the behavioral
/// fingerprint the hierarchy groups on. Distinct from vup::UsageProfile
/// (telemetry), which is the *generative* profile of the simulator; this
/// one is estimated purely from the observed daily features the
/// forecaster consumes, so it works on real fleets too.
struct UsageProfile {
  int64_t vehicle_id = 0;
  int vehicle_type = 0;  // VehicleType as int, for the one-hot block.

  /// Flattened feature vector, layout (in order):
  ///   [0, num_types)                      vehicle-type one-hot
  ///   [.., +acf_lags)                     ACF of hours at lags 1..L
  ///   [.., +kNumQuantiles)                hours quantiles (10/25/50/75/90)
  ///   [.., +1)                            mean daily hours
  ///   [.., +1)                            stddev of daily hours
  ///   [.., +1)                            share of zero-usage days
  ///   [.., +1)                            working-day vs holiday usage ratio
  std::vector<double> features;

  /// Dimensionality for a config (type one-hot uses kNumVehicleTypes).
  static size_t Dimension(const ProfileConfig& config);
};

/// Extracts the profile of one vehicle from its daily dataset.
///
/// Degenerate inputs degrade to neutral values instead of failing: a
/// constant or too-short hours series gets an all-zero ACF block, and a
/// vehicle with no holiday history gets usage ratio 1. Extraction is a
/// pure function of (dataset, config) -- no RNG -- so profiles are
/// byte-identical across runs and across parallel extraction orders.
StatusOr<UsageProfile> ExtractProfile(const VehicleDataset& ds,
                                      const ProfileConfig& config);

/// Column-wise standardization state for a set of profiles (mean/std per
/// dimension), fit before clustering so hour-scale features cannot drown
/// the one-hot block. Constant columns keep scale 1 (like StandardScaler).
struct ProfileScaling {
  std::vector<double> mean;
  std::vector<double> std;

  static StatusOr<ProfileScaling> Fit(
      const std::vector<UsageProfile>& profiles);

  /// The standardized feature vector of one profile.
  StatusOr<std::vector<double>> Apply(const UsageProfile& profile) const;
};

}  // namespace vup::cluster

#endif  // VUPRED_CLUSTER_PROFILE_H_
