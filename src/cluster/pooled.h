#ifndef VUPRED_CLUSTER_POOLED_H_
#define VUPRED_CLUSTER_POOLED_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/cluster_meta.h"
#include "cluster/kmeans.h"
#include "cluster/profile.h"
#include "common/statusor.h"
#include "core/forecaster.h"
#include "pipeline/dataset.h"

namespace vup::cluster {

/// Extracts profiles, standardizes them, runs seeded k-means and returns
/// the persistable ClustersMeta. Vehicles are recorded in ascending
/// vehicle_id order; everything is deterministic in (datasets, configs),
/// independent of extraction parallelism.
StatusOr<ClustersMeta> BuildFleetClustering(
    const std::vector<VehicleDataset>& datasets,
    const ProfileConfig& profile_config, const KMeansConfig& kmeans_config);

/// Clusters already-extracted profiles (strictly ascending vehicle_id):
/// standardize, seeded k-means, assemble the meta. BuildFleetClustering is
/// exactly sorted extraction + ClusterProfiles, so a caller that extracts
/// profiles in parallel and folds them back in vehicle_id order gets
/// byte-identical meta.
StatusOr<ClustersMeta> ClusterProfiles(
    const std::vector<UsageProfile>& profiles,
    const ProfileConfig& profile_config, const KMeansConfig& kmeans_config);

/// Inertia curve over k = 1..max_k for the same profiles (elbow report).
StatusOr<std::vector<ElbowPoint>> FleetElbowSweep(
    const std::vector<VehicleDataset>& datasets,
    const ProfileConfig& profile_config, const KMeansConfig& kmeans_config,
    size_t max_k);

/// Pooled-training schedule shared by every hierarchy level, so the
/// per-vehicle / per-cluster / global comparison is apples to apples:
/// each vehicle contributes the same training span [train_end -
/// train_window, train_end) with train_end = num_days - holdout_days, and
/// the trailing holdout_days targets are never trained on.
struct PooledTrainingOptions {
  ForecasterConfig forecaster;
  size_t train_window = 140;
  size_t holdout_days = 28;
};

/// One trained pooled bundle, keyed by its reserved registry model id
/// (ClusterModelId / TypeModelId / kGlobalModelId).
struct PooledModel {
  int64_t model_id = 0;
  VehicleForecaster forecaster;
};

/// Trains the pooled hierarchy: one model per cluster present in `meta`,
/// one per vehicle type present, and one global model over every vehicle.
/// Vehicles whose series is too short for the schedule are skipped (a
/// cluster whose members all skip produces no model; serving falls
/// through to the next level). Returned ascending by model_id.
StatusOr<std::vector<PooledModel>> TrainPooledHierarchy(
    const std::vector<VehicleDataset>& datasets, const ClustersMeta& meta,
    const PooledTrainingOptions& options);

/// PE of one hierarchy level over the shared holdout protocol.
struct HierarchyLevelReport {
  double mean_pe = 0.0;
  double median_pe = 0.0;
  size_t vehicles = 0;
  std::vector<double> per_vehicle_pe;
};

/// Per-vehicle vs per-cluster vs global comparison: every vehicle's
/// trailing holdout_days targets are predicted (without refit) by its own
/// model, its cluster's pooled model, and the global pooled model trained
/// on the same schedule.
struct HierarchyEvaluation {
  HierarchyLevelReport per_vehicle;
  HierarchyLevelReport per_cluster;
  HierarchyLevelReport global;
  size_t vehicles_skipped = 0;  // Too short for the schedule.
};

StatusOr<HierarchyEvaluation> EvaluateHierarchy(
    const std::vector<VehicleDataset>& datasets, const ClustersMeta& meta,
    const PooledTrainingOptions& options);

}  // namespace vup::cluster

#endif  // VUPRED_CLUSTER_POOLED_H_
