#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/random.h"

namespace vup::cluster {

namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double delta = a[i] - b[i];
    d += delta * delta;
  }
  return d;
}

/// k-means++ seeding: first center uniform, each next center picked with
/// probability proportional to its squared distance to the nearest chosen
/// center. All draws come from the seeded Rng; when every remaining point
/// coincides with a chosen center (total weight 0) the procedure stops
/// early and returns fewer centers.
std::vector<std::vector<double>> PlusPlusInit(
    const std::vector<std::vector<double>>& points, size_t k, Rng* rng) {
  std::vector<std::vector<double>> centers;
  centers.reserve(k);
  centers.push_back(points[static_cast<size_t>(rng->UniformInt(
      0, static_cast<int64_t>(points.size()) - 1))]);

  std::vector<double> dist(points.size());
  while (centers.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const std::vector<double>& c : centers) {
        best = std::min(best, SquaredDistance(points[i], c));
      }
      dist[i] = best;
      total += best;
    }
    if (total <= 0.0) break;  // All remaining points are duplicates.
    double target = rng->Uniform() * total;
    size_t chosen = points.size() - 1;
    double acc = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      acc += dist[i];
      if (acc >= target) {
        chosen = i;
        break;
      }
    }
    centers.push_back(points[chosen]);
  }
  return centers;
}

}  // namespace

StatusOr<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                              const KMeansConfig& config) {
  if (points.empty()) return Status::InvalidArgument("no points to cluster");
  if (config.k == 0) return Status::InvalidArgument("k must be >= 1");
  const size_t dim = points.front().size();
  if (dim == 0) return Status::InvalidArgument("zero-dimensional points");
  for (const std::vector<double>& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("points have mixed dimensions");
    }
    for (double v : p) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("non-finite point coordinate");
      }
    }
  }

  const size_t k = std::min(config.k, points.size());
  Rng rng(config.seed);
  KMeansResult result;
  result.centroids = PlusPlusInit(points, k, &rng);
  const size_t actual_k = result.centroids.size();
  result.assignments.assign(points.size(), 0);

  for (size_t iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Assignment step: nearest centroid, ties to the lower cluster id.
    for (size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (size_t c = 0; c < actual_k; ++c) {
        const double d = SquaredDistance(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = static_cast<int>(c);
        }
      }
      result.assignments[i] = best_c;
    }

    // Update step.
    std::vector<std::vector<double>> next(actual_k,
                                          std::vector<double>(dim, 0.0));
    std::vector<size_t> counts(actual_k, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      const int c = result.assignments[i];
      ++counts[static_cast<size_t>(c)];
      for (size_t d = 0; d < dim; ++d) {
        next[static_cast<size_t>(c)][d] += points[i][d];
      }
    }
    for (size_t c = 0; c < actual_k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: re-seed on the point farthest from its centroid,
        // deterministically (first index wins ties).
        size_t farthest = 0;
        double worst = -1.0;
        for (size_t i = 0; i < points.size(); ++i) {
          const double d = SquaredDistance(
              points[i],
              result.centroids[static_cast<size_t>(result.assignments[i])]);
          if (d > worst) {
            worst = d;
            farthest = i;
          }
        }
        next[c] = points[farthest];
      } else {
        for (size_t d = 0; d < dim; ++d) {
          next[c][d] /= static_cast<double>(counts[c]);
        }
      }
    }

    double movement = 0.0;
    for (size_t c = 0; c < actual_k; ++c) {
      movement += SquaredDistance(result.centroids[c], next[c]);
    }
    result.centroids = std::move(next);
    if (movement <= config.tolerance) break;
  }

  // Final assignment against the final centroids, then inertia.
  result.inertia = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    int best_c = 0;
    for (size_t c = 0; c < actual_k; ++c) {
      const double d = SquaredDistance(points[i], result.centroids[c]);
      if (d < best) {
        best = d;
        best_c = static_cast<int>(c);
      }
    }
    result.assignments[i] = best_c;
    result.inertia += best;
  }
  return result;
}

StatusOr<std::vector<ElbowPoint>> ElbowSweep(
    const std::vector<std::vector<double>>& points, size_t max_k,
    const KMeansConfig& base_config) {
  if (max_k == 0) return Status::InvalidArgument("max_k must be >= 1");
  std::vector<ElbowPoint> curve;
  const size_t cap = std::min(max_k, points.size());
  for (size_t k = 1; k <= cap; ++k) {
    KMeansConfig config = base_config;
    config.k = k;
    VUP_ASSIGN_OR_RETURN(KMeansResult result, KMeans(points, config));
    curve.push_back({k, result.inertia});
  }
  return curve;
}

}  // namespace vup::cluster
