#ifndef VUPRED_CLUSTER_KMEANS_H_
#define VUPRED_CLUSTER_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/statusor.h"

namespace vup::cluster {

/// Deterministic seeded k-means over standardized profile vectors.
struct KMeansConfig {
  size_t k = 4;
  size_t max_iterations = 100;
  /// Convergence threshold on total centroid movement (squared L2).
  double tolerance = 1e-10;
  /// Seed of the k-means++ initialization (routed through vup::Rng; no
  /// OS entropy source anywhere, so same seed => byte-identical result).
  uint64_t seed = 42;
};

struct KMeansResult {
  /// assignments[i] = cluster of points[i], in [0, k).
  std::vector<int> assignments;
  /// Row-major k x dim centroid matrix.
  std::vector<std::vector<double>> centroids;
  /// Sum of squared distances of every point to its centroid.
  double inertia = 0.0;
  size_t iterations = 0;
};

/// Lloyd's algorithm with k-means++ initialization. Requirements:
/// k >= 1, points non-empty, all points the same dimension; k is capped at
/// the number of *distinct* points reachable by the init (duplicate-heavy
/// inputs may produce empty clusters, which are re-seeded on the farthest
/// point, so every returned centroid owns at least one point).
///
/// Determinism: for a fixed (points, config) the result is byte-identical
/// across runs and platforms -- iteration order is index order, ties in
/// distance go to the lower cluster id, and all randomness comes from the
/// seeded Rng.
StatusOr<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                              const KMeansConfig& config);

/// One elbow-report row: the inertia reached at a given k.
struct ElbowPoint {
  size_t k = 0;
  double inertia = 0.0;
};

/// Runs KMeans for each k in [1, max_k] (capped at points.size()) with the
/// same seed and returns the inertia curve, the input of the elbow choice.
StatusOr<std::vector<ElbowPoint>> ElbowSweep(
    const std::vector<std::vector<double>>& points, size_t max_k,
    const KMeansConfig& base_config);

}  // namespace vup::cluster

#endif  // VUPRED_CLUSTER_KMEANS_H_
