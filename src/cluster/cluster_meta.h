#ifndef VUPRED_CLUSTER_CLUSTER_META_H_
#define VUPRED_CLUSTER_CLUSTER_META_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "cluster/profile.h"

namespace vup::cluster {

/// Reserved model ids of the serving hierarchy. Pooled bundles share the
/// registry's int64 bundle namespace with per-vehicle models (the bundle
/// file name round-trips negative ids), far below any real vehicle id:
///   cluster c  -> -1000 - c
///   type t     -> -2000 - t
///   global     -> -3000
int64_t ClusterModelId(int cluster_id);
int64_t TypeModelId(int vehicle_type);
inline constexpr int64_t kGlobalModelId = -3000;

/// One vehicle's place in the hierarchy.
struct VehicleAssignment {
  int64_t vehicle_id = 0;
  int cluster_id = 0;
  int vehicle_type = 0;
};

/// The persisted clustering of one published fleet: everything a serving
/// process needs to resolve vehicle -> cluster -> type -> global and to
/// assign a *new* vehicle to its nearest cluster (scaling + centroids).
///
/// Persisted as `clusters.meta` (`vupred-clusters v1`) next to the model
/// bundles of a generation, with the same strict, truncation-evident
/// discipline as registry_meta.txt: every line newline-terminated, a
/// final `end-clusters` sentinel, size caps on every count, and a parser
/// that returns Status errors -- never crashes -- on garbage.
struct ClustersMeta {
  uint64_t seed = 42;       // Clustering seed (k-means++ init).
  size_t acf_lags = 14;     // ProfileConfig the profiles were built with.
  double inertia = 0.0;     // Final k-means inertia (elbow evidence).
  ProfileScaling scaling;   // Column standardization of the profiles.
  std::vector<std::vector<double>> centroids;  // k x dim, standardized.
  std::vector<VehicleAssignment> vehicles;     // Ascending vehicle_id.

  size_t k() const { return centroids.size(); }

  /// Cluster of a vehicle; NotFound for vehicles absent from the meta.
  StatusOr<int> ClusterOf(int64_t vehicle_id) const;

  /// Vehicle type recorded for a vehicle; NotFound when absent.
  StatusOr<int> TypeOf(int64_t vehicle_id) const;

  /// Nearest centroid of a standardized-on-the-fly profile: the cold-start
  /// path for vehicles not present in `vehicles`. Ties go to the lower
  /// cluster id.
  StatusOr<int> AssignProfile(const UsageProfile& profile) const;

  /// Strict parse (see above). Errors are InvalidArgument, never crashes.
  static StatusOr<ClustersMeta> Parse(std::istream& in);

  /// Serializes in the format Parse accepts, byte-deterministic for equal
  /// field values.
  std::string Serialize() const;
};

/// Writes `meta` into `directory` as clusters.meta (temp + rename, same
/// atomic-install discipline as generation publish).
Status WriteClustersMetaFile(const std::string& directory,
                             const ClustersMeta& meta);

/// Reads and parses `directory`/clusters.meta. NotFound when the file does
/// not exist (a generation published without clustering).
StatusOr<ClustersMeta> ReadClustersMetaFile(const std::string& directory);

}  // namespace vup::cluster

#endif  // VUPRED_CLUSTER_CLUSTER_META_H_
