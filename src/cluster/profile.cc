#include "cluster/profile.h"

#include <algorithm>
#include <cmath>

#include "stats/acf.h"
#include "telemetry/taxonomy.h"

namespace vup::cluster {

namespace {

constexpr double kQuantileLadder[ProfileConfig::kNumQuantiles] = {
    0.1, 0.25, 0.5, 0.75, 0.9};

/// Nearest-rank quantile of a sorted sample.
double SortedQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank > 0) --rank;
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

size_t UsageProfile::Dimension(const ProfileConfig& config) {
  return static_cast<size_t>(kNumVehicleTypes) + config.acf_lags +
         ProfileConfig::kNumQuantiles + 4;
}

StatusOr<UsageProfile> ExtractProfile(const VehicleDataset& ds,
                                      const ProfileConfig& config) {
  if (config.acf_lags == 0) {
    return Status::InvalidArgument("acf_lags must be >= 1");
  }
  if (ds.num_days() == 0) {
    return Status::InvalidArgument("empty dataset");
  }

  UsageProfile profile;
  profile.vehicle_id = ds.info().vehicle_id;
  profile.vehicle_type = static_cast<int>(ds.info().type);
  profile.features.reserve(UsageProfile::Dimension(config));

  // Vehicle-type one-hot.
  for (int t = 0; t < kNumVehicleTypes; ++t) {
    profile.features.push_back(t == profile.vehicle_type ? 1.0 : 0.0);
  }

  // ACF signature at lags 1..acf_lags, read from the same SlidingAcf
  // prefix tables the incremental trainer uses. Degenerate series (too
  // short or constant) make the ACF undefined; the neutral all-zero
  // signature says "no temporal structure observed" and keeps the profile
  // comparable.
  const std::vector<double>& hours = ds.hours();
  StatusOr<std::vector<double>> acf = [&]() -> StatusOr<std::vector<double>> {
    if (hours.size() < config.acf_lags + 2) {
      return Status::InvalidArgument("series too short for ACF signature");
    }
    SlidingAcf cache(hours, config.acf_lags);
    return cache.Window(0, hours.size());
  }();
  for (size_t lag = 1; lag <= config.acf_lags; ++lag) {
    profile.features.push_back(acf.ok() ? acf.value()[lag] : 0.0);
  }

  // Utilization-distribution quantiles, mean, stddev and zero share.
  std::vector<double> sorted = hours;
  std::sort(sorted.begin(), sorted.end());
  for (double q : kQuantileLadder) {
    profile.features.push_back(SortedQuantile(sorted, q));
  }
  double sum = 0.0;
  size_t zero_days = 0;
  for (double h : hours) {
    sum += h;
    if (h <= 0.0) ++zero_days;
  }
  const double mean = sum / static_cast<double>(hours.size());
  double var = 0.0;
  for (double h : hours) var += (h - mean) * (h - mean);
  var /= static_cast<double>(hours.size());
  profile.features.push_back(mean);
  profile.features.push_back(std::sqrt(var));
  profile.features.push_back(static_cast<double>(zero_days) /
                             static_cast<double>(hours.size()));

  // Working-day vs non-working-day usage ratio: mean hours on working days
  // over mean hours on rest/holiday days. A vehicle never observed on a
  // non-working day (or with an idle rest calendar) gets the neutral ratio
  // 1; the ratio is capped so one 24/7 outlier cannot dominate a cluster
  // distance.
  double work_sum = 0.0, rest_sum = 0.0;
  size_t work_days = 0, rest_days = 0;
  for (size_t day = 0; day < ds.num_days(); ++day) {
    if (ds.country().IsWorkingDay(ds.dates()[day])) {
      work_sum += hours[day];
      ++work_days;
    } else {
      rest_sum += hours[day];
      ++rest_days;
    }
  }
  double ratio = 1.0;
  if (work_days > 0 && rest_days > 0) {
    const double work_mean = work_sum / static_cast<double>(work_days);
    const double rest_mean = rest_sum / static_cast<double>(rest_days);
    if (rest_mean > 0.0) {
      ratio = std::min(work_mean / rest_mean, 24.0);
    } else {
      ratio = work_mean > 0.0 ? 24.0 : 1.0;
    }
  }
  profile.features.push_back(ratio);

  return profile;
}

StatusOr<ProfileScaling> ProfileScaling::Fit(
    const std::vector<UsageProfile>& profiles) {
  if (profiles.empty()) {
    return Status::InvalidArgument("cannot fit scaling on zero profiles");
  }
  const size_t dim = profiles.front().features.size();
  for (const UsageProfile& p : profiles) {
    if (p.features.size() != dim) {
      return Status::InvalidArgument("profiles have mixed dimensions");
    }
  }

  ProfileScaling scaling;
  scaling.mean.assign(dim, 0.0);
  scaling.std.assign(dim, 0.0);
  const double n = static_cast<double>(profiles.size());
  for (const UsageProfile& p : profiles) {
    for (size_t d = 0; d < dim; ++d) scaling.mean[d] += p.features[d];
  }
  for (size_t d = 0; d < dim; ++d) scaling.mean[d] /= n;
  for (const UsageProfile& p : profiles) {
    for (size_t d = 0; d < dim; ++d) {
      const double delta = p.features[d] - scaling.mean[d];
      scaling.std[d] += delta * delta;
    }
  }
  for (size_t d = 0; d < dim; ++d) {
    scaling.std[d] = std::sqrt(scaling.std[d] / n);
    // Constant columns pass through unscaled (their centered value is 0
    // anyway); matches StandardScaler's convention.
    if (scaling.std[d] <= 0.0) scaling.std[d] = 1.0;
  }
  return scaling;
}

StatusOr<std::vector<double>> ProfileScaling::Apply(
    const UsageProfile& profile) const {
  if (profile.features.size() != mean.size()) {
    return Status::InvalidArgument("profile dimension mismatch");
  }
  std::vector<double> out(profile.features.size());
  for (size_t d = 0; d < out.size(); ++d) {
    out[d] = (profile.features[d] - mean[d]) / std[d];
  }
  return out;
}

}  // namespace vup::cluster
