#include "cluster/pooled.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>

#include "ml/metrics.h"
#include "obs/trace.h"

namespace vup::cluster {

namespace {

/// The shared training span of one vehicle under the schedule, or nullopt
/// when the series is too short to honor it.
struct Span {
  size_t train_begin = 0;
  size_t train_end = 0;
};

std::optional<Span> ScheduleSpan(const VehicleDataset& ds,
                                 const PooledTrainingOptions& options) {
  const size_t w = options.forecaster.windowing.lookback_w;
  if (ds.num_days() < options.holdout_days) return std::nullopt;
  const size_t train_end = ds.num_days() - options.holdout_days;
  if (train_end < w + 2) return std::nullopt;
  const size_t train_begin =
      std::max(w, train_end - std::min(train_end - w, options.train_window));
  if (train_end - train_begin < 2) return std::nullopt;
  return Span{train_begin, train_end};
}

double MedianOf(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t mid = values.size() / 2;
  return values.size() % 2 == 1
             ? values[mid]
             : 0.5 * (values[mid - 1] + values[mid]);
}

void FinishReport(HierarchyLevelReport* report) {
  report->vehicles = report->per_vehicle_pe.size();
  if (report->vehicles == 0) return;
  double sum = 0.0;
  for (double pe : report->per_vehicle_pe) sum += pe;
  report->mean_pe = sum / static_cast<double>(report->vehicles);
  report->median_pe = MedianOf(report->per_vehicle_pe);
}

}  // namespace

StatusOr<ClustersMeta> BuildFleetClustering(
    const std::vector<VehicleDataset>& datasets,
    const ProfileConfig& profile_config, const KMeansConfig& kmeans_config) {
  obs::TraceSpan span("cluster.build");
  if (datasets.empty()) {
    return Status::InvalidArgument("no datasets to cluster");
  }

  // Profiles in ascending vehicle_id order: extraction is a pure function
  // per vehicle, so any parallel extraction that folds back in this order
  // yields byte-identical meta.
  std::vector<const VehicleDataset*> ordered;
  ordered.reserve(datasets.size());
  for (const VehicleDataset& ds : datasets) ordered.push_back(&ds);
  std::sort(ordered.begin(), ordered.end(),
            [](const VehicleDataset* a, const VehicleDataset* b) {
              return a->info().vehicle_id < b->info().vehicle_id;
            });
  for (size_t i = 1; i < ordered.size(); ++i) {
    if (ordered[i]->info().vehicle_id == ordered[i - 1]->info().vehicle_id) {
      return Status::InvalidArgument("duplicate vehicle_id in fleet");
    }
  }

  std::vector<UsageProfile> profiles;
  profiles.reserve(ordered.size());
  {
    obs::TraceSpan extract_span("cluster.profiles");
    for (const VehicleDataset* ds : ordered) {
      VUP_ASSIGN_OR_RETURN(UsageProfile profile,
                           ExtractProfile(*ds, profile_config));
      profiles.push_back(std::move(profile));
    }
  }
  return ClusterProfiles(profiles, profile_config, kmeans_config);
}

StatusOr<ClustersMeta> ClusterProfiles(
    const std::vector<UsageProfile>& profiles,
    const ProfileConfig& profile_config, const KMeansConfig& kmeans_config) {
  if (profiles.empty()) {
    return Status::InvalidArgument("no profiles to cluster");
  }
  for (size_t i = 1; i < profiles.size(); ++i) {
    if (profiles[i].vehicle_id <= profiles[i - 1].vehicle_id) {
      return Status::InvalidArgument(
          "profiles must be strictly ascending by vehicle_id");
    }
  }

  VUP_ASSIGN_OR_RETURN(ProfileScaling scaling, ProfileScaling::Fit(profiles));
  std::vector<std::vector<double>> points;
  points.reserve(profiles.size());
  for (const UsageProfile& p : profiles) {
    VUP_ASSIGN_OR_RETURN(std::vector<double> point, scaling.Apply(p));
    points.push_back(std::move(point));
  }

  StatusOr<KMeansResult> result = [&] {
    obs::TraceSpan kmeans_span("cluster.kmeans");
    return KMeans(points, kmeans_config);
  }();
  VUP_RETURN_IF_ERROR(result.status());

  ClustersMeta meta;
  meta.seed = kmeans_config.seed;
  meta.acf_lags = profile_config.acf_lags;
  meta.inertia = result.value().inertia;
  meta.scaling = std::move(scaling);
  meta.centroids = std::move(result.value().centroids);
  meta.vehicles.reserve(profiles.size());
  for (size_t i = 0; i < profiles.size(); ++i) {
    VehicleAssignment v;
    v.vehicle_id = profiles[i].vehicle_id;
    v.cluster_id = result.value().assignments[i];
    v.vehicle_type = profiles[i].vehicle_type;
    meta.vehicles.push_back(v);
  }
  return meta;
}

StatusOr<std::vector<ElbowPoint>> FleetElbowSweep(
    const std::vector<VehicleDataset>& datasets,
    const ProfileConfig& profile_config, const KMeansConfig& kmeans_config,
    size_t max_k) {
  std::vector<UsageProfile> profiles;
  profiles.reserve(datasets.size());
  for (const VehicleDataset& ds : datasets) {
    VUP_ASSIGN_OR_RETURN(UsageProfile profile,
                         ExtractProfile(ds, profile_config));
    profiles.push_back(std::move(profile));
  }
  VUP_ASSIGN_OR_RETURN(ProfileScaling scaling, ProfileScaling::Fit(profiles));
  std::vector<std::vector<double>> points;
  points.reserve(profiles.size());
  for (const UsageProfile& p : profiles) {
    VUP_ASSIGN_OR_RETURN(std::vector<double> point, scaling.Apply(p));
    points.push_back(std::move(point));
  }
  return ElbowSweep(points, max_k, kmeans_config);
}

StatusOr<std::vector<PooledModel>> TrainPooledHierarchy(
    const std::vector<VehicleDataset>& datasets, const ClustersMeta& meta,
    const PooledTrainingOptions& options) {
  obs::TraceSpan span("cluster.train_pooled");

  // Group the trainable member spans per pooled model id. Ordered map +
  // ascending-vehicle iteration keeps stacking order deterministic.
  std::map<int64_t, std::vector<PooledTrainingSpan>> groups;
  std::vector<const VehicleDataset*> ordered;
  ordered.reserve(datasets.size());
  for (const VehicleDataset& ds : datasets) ordered.push_back(&ds);
  std::sort(ordered.begin(), ordered.end(),
            [](const VehicleDataset* a, const VehicleDataset* b) {
              return a->info().vehicle_id < b->info().vehicle_id;
            });

  for (const VehicleDataset* ds : ordered) {
    std::optional<Span> span_of = ScheduleSpan(*ds, options);
    if (!span_of.has_value()) continue;
    StatusOr<int> cluster = meta.ClusterOf(ds->info().vehicle_id);
    if (!cluster.ok()) continue;  // Not part of the clustered fleet.
    PooledTrainingSpan member{ds, span_of->train_begin, span_of->train_end};
    groups[ClusterModelId(cluster.value())].push_back(member);
    groups[TypeModelId(static_cast<int>(ds->info().type))].push_back(member);
    groups[kGlobalModelId].push_back(member);
  }

  std::vector<PooledModel> models;
  models.reserve(groups.size());
  for (const auto& [model_id, members] : groups) {
    StatusOr<VehicleForecaster> pooled =
        VehicleForecaster::TrainPooled(members, options.forecaster);
    if (!pooled.ok()) continue;  // Too few records at this level: no model.
    models.push_back(PooledModel{model_id, std::move(pooled.value())});
  }
  return models;
}

StatusOr<HierarchyEvaluation> EvaluateHierarchy(
    const std::vector<VehicleDataset>& datasets, const ClustersMeta& meta,
    const PooledTrainingOptions& options) {
  obs::TraceSpan span("cluster.evaluate");
  VUP_ASSIGN_OR_RETURN(std::vector<PooledModel> pooled,
                       TrainPooledHierarchy(datasets, meta, options));
  auto find_model = [&pooled](int64_t id) -> const VehicleForecaster* {
    for (const PooledModel& m : pooled) {
      if (m.model_id == id) return &m.forecaster;
    }
    return nullptr;
  };

  HierarchyEvaluation eval;
  for (const VehicleDataset& ds : datasets) {
    std::optional<Span> span_of = ScheduleSpan(ds, options);
    StatusOr<int> cluster = meta.ClusterOf(ds.info().vehicle_id);
    if (!span_of.has_value() || !cluster.ok()) {
      ++eval.vehicles_skipped;
      continue;
    }

    // Per-vehicle model on the same schedule.
    VehicleForecaster own(options.forecaster);
    Status trained = own.Train(ds, span_of->train_begin, span_of->train_end);
    const VehicleForecaster* cluster_model =
        find_model(ClusterModelId(cluster.value()));
    const VehicleForecaster* global_model = find_model(kGlobalModelId);
    if (!trained.ok() || cluster_model == nullptr ||
        global_model == nullptr) {
      ++eval.vehicles_skipped;
      continue;
    }

    std::vector<double> actuals, own_pred, cluster_pred, global_pred;
    bool complete = true;
    for (size_t t = span_of->train_end; t < ds.num_days(); ++t) {
      StatusOr<double> p_own = own.PredictTarget(ds, t);
      StatusOr<double> p_cluster = cluster_model->PredictTarget(ds, t);
      StatusOr<double> p_global = global_model->PredictTarget(ds, t);
      if (!p_own.ok() || !p_cluster.ok() || !p_global.ok()) {
        complete = false;
        break;
      }
      actuals.push_back(ds.hours()[t]);
      own_pred.push_back(p_own.value());
      cluster_pred.push_back(p_cluster.value());
      global_pred.push_back(p_global.value());
    }
    if (!complete || actuals.empty()) {
      ++eval.vehicles_skipped;
      continue;
    }
    const double pe_own = PercentageError(own_pred, actuals);
    const double pe_cluster = PercentageError(cluster_pred, actuals);
    const double pe_global = PercentageError(global_pred, actuals);
    if (!std::isfinite(pe_own) || !std::isfinite(pe_cluster) ||
        !std::isfinite(pe_global)) {
      ++eval.vehicles_skipped;  // Degenerate all-zero holdout.
      continue;
    }
    eval.per_vehicle.per_vehicle_pe.push_back(pe_own);
    eval.per_cluster.per_vehicle_pe.push_back(pe_cluster);
    eval.global.per_vehicle_pe.push_back(pe_global);
  }
  FinishReport(&eval.per_vehicle);
  FinishReport(&eval.per_cluster);
  FinishReport(&eval.global);
  return eval;
}

}  // namespace vup::cluster
