#include "wire/frame.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/crc32.h"
#include "common/string_util.h"

namespace vup::wire {

namespace {

// ---- Little-endian primitives ------------------------------------------

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (uint16_t{p[1]} << 8));
}

uint32_t GetU32(const uint8_t* p) {
  return p[0] | (uint32_t{p[1]} << 8) | (uint32_t{p[2]} << 16) |
         (uint32_t{p[3]} << 24);
}

uint64_t GetU64(const uint8_t* p) {
  return GetU32(p) | (uint64_t{GetU32(p + 4)} << 32);
}

// ---- Channel quantization ----------------------------------------------

/// One quantized channel: value = offset + q * scale, q in [0, max_q];
/// the all-ones sentinel (above max_q by construction) means "invalid".
struct ChannelSpec {
  double offset;
  double scale;
  uint32_t max_q;
};

constexpr ChannelSpec kEngineOn{0.0, 1.0 / 60000.0, 60000};
constexpr ChannelSpec kRpm{0.0, 0.125, 65534};
constexpr ChannelSpec kLoad{0.0, 0.01, 65534};
constexpr ChannelSpec kFuelRate{0.0, 0.05, 65534};
constexpr ChannelSpec kOilPressure{0.0, 0.1, 65534};
constexpr ChannelSpec kCoolant{-60.0, 0.01, 65534};
constexpr ChannelSpec kSpeed{0.0, 1.0 / 256.0, 65534};
constexpr ChannelSpec kHydraulic{-60.0, 0.01, 65534};
constexpr ChannelSpec kFuelLevel{0.0, 0.01, 10000};
constexpr ChannelSpec kEngineHours{0.0, 0.05, 0xFFFFFFFEu};

constexpr uint16_t kSentinel16 = 0xFFFF;
constexpr uint32_t kSentinel32 = 0xFFFFFFFFu;

uint32_t Quantize(const ChannelSpec& spec, double v, uint32_t sentinel) {
  if (!std::isfinite(v)) return sentinel;
  const double q = std::llround((v - spec.offset) / spec.scale);
  if (q < 0 || q > static_cast<double>(spec.max_q)) return sentinel;
  return static_cast<uint32_t>(q);
}

double Dequantize(const ChannelSpec& spec, uint32_t q, uint32_t sentinel) {
  if (q == sentinel) return std::numeric_limits<double>::quiet_NaN();
  return spec.offset + static_cast<double>(q) * spec.scale;
}

uint16_t QuantizeCount(int v) {
  if (v < 0 || v > 65534) return kSentinel16;
  return static_cast<uint16_t>(v);
}

int DequantizeCount(uint16_t q) { return q == kSentinel16 ? -1 : q; }

/// Sane day-number window for wire dates: ~1901..2243. Anything outside is
/// structural corruption, not a plausible fleet report.
constexpr int32_t kMinDayNumber = -25000;
constexpr int32_t kMaxDayNumber = 100000;

void AppendRecord(const AggregatedReport& r, std::string* out) {
  PutU32(out, static_cast<uint32_t>(r.date.day_number()));
  out->push_back(static_cast<char>(r.slot));
  PutU16(out, static_cast<uint16_t>(
                  Quantize(kEngineOn, r.engine_on_fraction, kSentinel16)));
  PutU16(out,
         static_cast<uint16_t>(Quantize(kRpm, r.avg_engine_rpm, kSentinel16)));
  PutU16(out, static_cast<uint16_t>(
                  Quantize(kLoad, r.avg_engine_load_pct, kSentinel16)));
  PutU16(out, static_cast<uint16_t>(
                  Quantize(kFuelRate, r.avg_fuel_rate_lph, kSentinel16)));
  PutU16(out, static_cast<uint16_t>(
                  Quantize(kOilPressure, r.avg_oil_pressure_kpa, kSentinel16)));
  PutU16(out, static_cast<uint16_t>(
                  Quantize(kCoolant, r.avg_coolant_temp_c, kSentinel16)));
  PutU16(out,
         static_cast<uint16_t>(Quantize(kSpeed, r.avg_speed_kmh, kSentinel16)));
  PutU16(out, static_cast<uint16_t>(
                  Quantize(kHydraulic, r.avg_hydraulic_temp_c, kSentinel16)));
  PutU16(out, static_cast<uint16_t>(
                  Quantize(kFuelLevel, r.fuel_level_pct, kSentinel16)));
  PutU32(out, Quantize(kEngineHours, r.engine_hours_total, kSentinel32));
  PutU16(out, QuantizeCount(r.dtc_count));
  PutU16(out, QuantizeCount(r.sample_count));
}

/// Parses one record at `p` (bounds already checked by the caller).
/// False on a structurally invalid record (bad slot / day number).
bool ParseRecord(const uint8_t* p, int64_t vehicle_id, AggregatedReport* r) {
  const int32_t day = static_cast<int32_t>(GetU32(p));
  if (day < kMinDayNumber || day > kMaxDayNumber) return false;
  const uint8_t slot = p[4];
  if (slot >= kSlotsPerDay) return false;
  r->vehicle_id = vehicle_id;
  r->date = Date::FromDayNumber(day);
  r->slot = slot;
  r->engine_on_fraction = Dequantize(kEngineOn, GetU16(p + 5), kSentinel16);
  r->avg_engine_rpm = Dequantize(kRpm, GetU16(p + 7), kSentinel16);
  r->avg_engine_load_pct = Dequantize(kLoad, GetU16(p + 9), kSentinel16);
  r->avg_fuel_rate_lph = Dequantize(kFuelRate, GetU16(p + 11), kSentinel16);
  r->avg_oil_pressure_kpa =
      Dequantize(kOilPressure, GetU16(p + 13), kSentinel16);
  r->avg_coolant_temp_c = Dequantize(kCoolant, GetU16(p + 15), kSentinel16);
  r->avg_speed_kmh = Dequantize(kSpeed, GetU16(p + 17), kSentinel16);
  r->avg_hydraulic_temp_c = Dequantize(kHydraulic, GetU16(p + 19), kSentinel16);
  r->fuel_level_pct = Dequantize(kFuelLevel, GetU16(p + 21), kSentinel16);
  r->engine_hours_total = Dequantize(kEngineHours, GetU32(p + 23), kSentinel32);
  r->dtc_count = DequantizeCount(GetU16(p + 27));
  r->sample_count = DequantizeCount(GetU16(p + 29));
  return true;
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> bytes) { return vup::Crc32(bytes); }

uint32_t Crc32(const void* data, size_t size) {
  return vup::Crc32(data, size);
}

AggregatedReport QuantizeForWire(const AggregatedReport& report) {
  AggregatedReport q = report;
  q.engine_on_fraction =
      Dequantize(kEngineOn,
                 Quantize(kEngineOn, report.engine_on_fraction, kSentinel16),
                 kSentinel16);
  q.avg_engine_rpm = Dequantize(
      kRpm, Quantize(kRpm, report.avg_engine_rpm, kSentinel16), kSentinel16);
  q.avg_engine_load_pct = Dequantize(
      kLoad, Quantize(kLoad, report.avg_engine_load_pct, kSentinel16),
      kSentinel16);
  q.avg_fuel_rate_lph = Dequantize(
      kFuelRate, Quantize(kFuelRate, report.avg_fuel_rate_lph, kSentinel16),
      kSentinel16);
  q.avg_oil_pressure_kpa =
      Dequantize(kOilPressure,
                 Quantize(kOilPressure, report.avg_oil_pressure_kpa,
                          kSentinel16),
                 kSentinel16);
  q.avg_coolant_temp_c = Dequantize(
      kCoolant, Quantize(kCoolant, report.avg_coolant_temp_c, kSentinel16),
      kSentinel16);
  q.avg_speed_kmh = Dequantize(
      kSpeed, Quantize(kSpeed, report.avg_speed_kmh, kSentinel16),
      kSentinel16);
  q.avg_hydraulic_temp_c =
      Dequantize(kHydraulic,
                 Quantize(kHydraulic, report.avg_hydraulic_temp_c,
                          kSentinel16),
                 kSentinel16);
  q.fuel_level_pct = Dequantize(
      kFuelLevel, Quantize(kFuelLevel, report.fuel_level_pct, kSentinel16),
      kSentinel16);
  q.engine_hours_total =
      Dequantize(kEngineHours,
                 Quantize(kEngineHours, report.engine_hours_total,
                          kSentinel32),
                 kSentinel32);
  q.dtc_count = DequantizeCount(QuantizeCount(report.dtc_count));
  q.sample_count = DequantizeCount(QuantizeCount(report.sample_count));
  return q;
}

Status EncodeFrame(int64_t vehicle_id,
                   std::span<const AggregatedReport> reports,
                   std::string* out) {
  if (reports.empty()) {
    return Status::InvalidArgument("empty report batch");
  }
  if (reports.size() > kMaxReportsPerFrame) {
    return Status::InvalidArgument(
        StrFormat("batch of %zu exceeds %zu reports per frame",
                  reports.size(), kMaxReportsPerFrame));
  }
  if (vehicle_id <= 0) {
    return Status::InvalidArgument("non-positive vehicle id");
  }
  for (const AggregatedReport& r : reports) {
    if (r.slot < 0 || r.slot >= kSlotsPerDay) {
      return Status::InvalidArgument(
          StrFormat("slot %d outside [0, %d)", r.slot, kSlotsPerDay));
    }
    if (r.date.day_number() < kMinDayNumber ||
        r.date.day_number() > kMaxDayNumber) {
      return Status::InvalidArgument(
          StrFormat("day number %d outside the wire-representable window",
                    r.date.day_number()));
    }
  }

  const size_t frame_start = out->size();
  const uint32_t payload_len =
      static_cast<uint32_t>(8 + reports.size() * kRecordBytes);
  PutU32(out, kFrameMagic);
  PutU16(out, kWireVersion);
  PutU16(out, static_cast<uint16_t>(reports.size()));
  PutU32(out, payload_len);
  PutU64(out, static_cast<uint64_t>(vehicle_id));
  for (const AggregatedReport& r : reports) AppendRecord(r, out);
  const uint32_t crc = Crc32(out->data() + frame_start,
                             out->size() - frame_start);
  PutU32(out, crc);
  return Status::OK();
}

Status EncodeBatch(std::span<const AggregatedReport> reports,
                   std::string* out, size_t* rejected) {
  size_t rejects = 0;
  // Group by vehicle in first-appearance order: the order a device-side
  // uploader would naturally batch its own backlog.
  std::vector<int64_t> order;
  std::vector<std::vector<const AggregatedReport*>> groups;
  for (const AggregatedReport& r : reports) {
    if (r.vehicle_id <= 0 || r.slot < 0 || r.slot >= kSlotsPerDay ||
        r.date.day_number() < kMinDayNumber ||
        r.date.day_number() > kMaxDayNumber) {
      ++rejects;
      continue;
    }
    size_t g = 0;
    for (; g < order.size(); ++g) {
      if (order[g] == r.vehicle_id) break;
    }
    if (g == order.size()) {
      order.push_back(r.vehicle_id);
      groups.emplace_back();
    }
    groups[g].push_back(&r);
  }
  for (size_t g = 0; g < order.size(); ++g) {
    const std::vector<const AggregatedReport*>& group = groups[g];
    for (size_t at = 0; at < group.size(); at += kMaxReportsPerFrame) {
      const size_t take =
          std::min(kMaxReportsPerFrame, group.size() - at);
      std::vector<AggregatedReport> chunk;
      chunk.reserve(take);
      for (size_t i = 0; i < take; ++i) chunk.push_back(*group[at + i]);
      VUP_RETURN_IF_ERROR(EncodeFrame(order[g], chunk, out));
    }
  }
  if (rejected != nullptr) *rejected = rejects;
  return Status::OK();
}

Status DecodeFrame(std::span<const uint8_t> buffer, DecodedFrame* frame,
                   size_t* consumed) {
  *consumed = 0;
  // Magic: checked byte-by-byte so a short buffer distinguishes "not a
  // frame" from "frame still arriving".
  const uint8_t magic_bytes[4] = {
      static_cast<uint8_t>(kFrameMagic & 0xFF),
      static_cast<uint8_t>((kFrameMagic >> 8) & 0xFF),
      static_cast<uint8_t>((kFrameMagic >> 16) & 0xFF),
      static_cast<uint8_t>((kFrameMagic >> 24) & 0xFF)};
  const size_t magic_avail = std::min<size_t>(buffer.size(), 4);
  for (size_t i = 0; i < magic_avail; ++i) {
    if (buffer[i] != magic_bytes[i]) {
      return Status::DataLoss("bad frame magic");
    }
  }
  if (buffer.size() < kFrameHeaderBytes) {
    return Status::OutOfRange("truncated frame header");
  }

  const uint16_t version = GetU16(buffer.data() + 4);
  const uint16_t report_count = GetU16(buffer.data() + 6);
  const uint32_t payload_len = GetU32(buffer.data() + 8);
  if (version == 0) {
    return Status::DataLoss("frame version 0 is invalid");
  }
  if (payload_len > kMaxPayloadBytes) {
    return Status::DataLoss(
        StrFormat("payload length %u exceeds the %zu-byte cap",
                  payload_len, kMaxPayloadBytes));
  }
  if (version == kWireVersion) {
    if (report_count == 0 || report_count > kMaxReportsPerFrame) {
      return Status::DataLoss(
          StrFormat("report count %u outside [1, %zu]", report_count,
                    kMaxReportsPerFrame));
    }
    if (payload_len != 8 + static_cast<uint32_t>(report_count) *
                               static_cast<uint32_t>(kRecordBytes)) {
      return Status::DataLoss("payload length inconsistent with count");
    }
  }
  const size_t total = kFrameHeaderBytes + payload_len + 4;
  if (buffer.size() < total) {
    return Status::OutOfRange("truncated frame body");
  }

  const uint32_t stored_crc = GetU32(buffer.data() + total - 4);
  const uint32_t actual_crc = Crc32(buffer.first(total - 4));
  if (stored_crc != actual_crc) {
    return Status::DataLoss("frame CRC mismatch");
  }
  if (version > kWireVersion) {
    // Well-formed frame of a future format: skip it whole.
    *consumed = total;
    return Status::Unimplemented(
        StrFormat("wire format version %u (decoder speaks %u)", version,
                  kWireVersion));
  }

  const uint8_t* body = buffer.data() + kFrameHeaderBytes;
  const int64_t vehicle_id = static_cast<int64_t>(GetU64(body));
  if (vehicle_id <= 0) {
    return Status::DataLoss("non-positive vehicle id in frame");
  }
  DecodedFrame out;
  out.vehicle_id = vehicle_id;
  out.version = version;
  // report_count was validated against the cap above, so this reserve is
  // bounded regardless of input bytes.
  out.reports.reserve(report_count);
  for (uint16_t i = 0; i < report_count; ++i) {
    AggregatedReport r;
    if (!ParseRecord(body + 8 + static_cast<size_t>(i) * kRecordBytes,
                     vehicle_id, &r)) {
      return Status::DataLoss(
          StrFormat("record %u structurally invalid", i));
    }
    out.reports.push_back(std::move(r));
  }
  *frame = std::move(out);
  *consumed = total;
  return Status::OK();
}

std::string WireDecoderStats::ToString() const {
  return StrFormat(
      "WireDecoderStats{decoded=%llu reports=%llu corrupt=%llu "
      "version=%llu resyncs=%llu skipped=%llu}",
      static_cast<unsigned long long>(frames_decoded),
      static_cast<unsigned long long>(reports_decoded),
      static_cast<unsigned long long>(frames_rejected_corrupt),
      static_cast<unsigned long long>(frames_rejected_version),
      static_cast<unsigned long long>(resyncs),
      static_cast<unsigned long long>(bytes_skipped));
}

void WireDecoder::Feed(std::span<const uint8_t> bytes,
                       const FrameFn& on_frame) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  size_t offset = 0;
  while (offset < buffer_.size()) {
    const std::span<const uint8_t> rest(buffer_.data() + offset,
                                        buffer_.size() - offset);
    DecodedFrame frame;
    size_t consumed = 0;
    const Status s = DecodeFrame(rest, &frame, &consumed);
    if (s.ok()) {
      ++stats_.frames_decoded;
      stats_.reports_decoded += frame.reports.size();
      if (on_frame) on_frame(frame, rest.first(consumed));
      offset += consumed;
      continue;
    }
    if (s.IsOutOfRange()) break;  // Frame still arriving.
    if (s.IsUnimplemented()) {
      ++stats_.frames_rejected_version;
      offset += consumed;
      continue;
    }
    // Corruption at `offset`: skip at least one byte and scan forward for
    // the next full magic (skip-and-continue resync).
    ++stats_.frames_rejected_corrupt;
    ++stats_.resyncs;
    size_t next = buffer_.size();
    for (size_t i = offset + 1; i + 4 <= buffer_.size(); ++i) {
      if (GetU32(buffer_.data() + i) == kFrameMagic) {
        next = i;
        break;
      }
    }
    if (next == buffer_.size()) {
      // No full magic left: retain the longest strict tail that is a magic
      // prefix (it may complete in the next chunk), discard the rest.
      for (size_t len = std::min<size_t>(3, buffer_.size() - offset - 1);
           len > 0; --len) {
        const size_t start = buffer_.size() - len;
        bool is_prefix = true;
        for (size_t i = 0; i < len; ++i) {
          if (buffer_[start + i] !=
              static_cast<uint8_t>((kFrameMagic >> (8 * i)) & 0xFF)) {
            is_prefix = false;
            break;
          }
        }
        if (is_prefix) {
          next = start;
          break;
        }
      }
    }
    stats_.bytes_skipped += next - offset;
    buffer_.erase(buffer_.begin() + static_cast<ptrdiff_t>(offset),
                  buffer_.begin() + static_cast<ptrdiff_t>(next));
    // Loop continues decoding at `offset`, now the resync point.
  }
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<ptrdiff_t>(offset));
}

}  // namespace vup::wire
