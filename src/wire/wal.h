#ifndef VUPRED_WIRE_WAL_H_
#define VUPRED_WIRE_WAL_H_

#include <cstdint>
#include <fstream>
#include <functional>
#include <span>
#include <string>

#include "common/statusor.h"

namespace vup::wire {

/// Append-only write-ahead log of opaque payloads (encoded wire frames in
/// the ingest tier). Record layout, little-endian:
///
///   u32 magic   "VUPL" (0x56 0x55 0x50 0x4C)
///   u32 length  payload bytes, <= kMaxWalPayloadBytes
///   u32 crc32   IEEE CRC-32 of the payload
///   payload
///
/// The log is truncation-evident: replay walks records from the front and
/// stops at the first record that is short, mis-magicked, or fails its
/// CRC. A torn final record -- the signature of a crash mid-append -- is
/// dropped, never misparsed; the dropped byte count is surfaced so callers
/// can alarm on mid-file corruption (tail_dropped_bytes much larger than
/// one record).
class WriteAheadLog {
 public:
  static constexpr uint32_t kRecordMagic = 0x4C505556u;  // "VUPL" LE.
  static constexpr size_t kRecordHeaderBytes = 12;
  static constexpr size_t kMaxWalPayloadBytes = 16u << 20;

  /// Opens `path` for appending, creating it if absent. The file's
  /// existing contents are preserved (recover first, then append).
  static StatusOr<WriteAheadLog> Open(std::string path);

  WriteAheadLog(WriteAheadLog&&) = default;
  WriteAheadLog& operator=(WriteAheadLog&&) = default;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record and flushes it to the OS. InvalidArgument on an
  /// empty or oversized payload; DataLoss when the write failed (the tail
  /// may be torn, which recovery tolerates).
  Status Append(std::span<const uint8_t> payload);
  Status Append(std::string_view payload);

  /// Truncates the log to empty (after a successful checkpoint).
  Status Reset();

  const std::string& path() const { return path_; }
  uint64_t records_appended() const { return records_appended_; }

  struct ReplayStats {
    uint64_t records = 0;
    uint64_t payload_bytes = 0;
    uint64_t tail_dropped_bytes = 0;  // Torn/corrupt suffix, skipped.
  };

  /// Replays every intact record of the log at `path` through `fn` in
  /// append order. A missing file replays zero records (a fresh server
  /// has no log yet). `fn` returning an error aborts the replay with it.
  static StatusOr<ReplayStats> Replay(
      const std::string& path,
      const std::function<Status(std::span<const uint8_t>)>& fn);

 private:
  explicit WriteAheadLog(std::string path) : path_(std::move(path)) {}

  std::string path_;
  std::ofstream out_;
  uint64_t records_appended_ = 0;
};

}  // namespace vup::wire

#endif  // VUPRED_WIRE_WAL_H_
