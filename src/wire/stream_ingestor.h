#ifndef VUPRED_WIRE_STREAM_INGESTOR_H_
#define VUPRED_WIRE_STREAM_INGESTOR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "common/statusor.h"
#include "pipeline/ingest.h"
#include "wire/frame.h"
#include "wire/wal.h"

namespace vup::wire {

/// Crash-safe session layer between the binary wire and the
/// IngestionStore: decodes frames from a chunked byte stream, journals
/// every accepted frame to an append-only WAL *before* ingesting it, and
/// rebuilds the store bit-identically from checkpoint + WAL after a crash
/// at any byte offset.
///
/// Durability layout under `dir`:
///
///   wal.log         append-only frame journal (WriteAheadLog records)
///   checkpoint.bin  compacted store content as plain encoded frames,
///                   written via temp+rename (atomic replacement)
///
/// Recovery replays checkpoint.bin (if present) and then wal.log through
/// the same decode+ingest path as live traffic. Checkpoint() compacts:
/// it re-encodes the store, atomically replaces checkpoint.bin, then
/// truncates the WAL. A crash between those two steps only re-replays
/// frames already in the checkpoint, which idempotent slot-keyed ingestion
/// absorbs -- content is identical either way.
class StreamIngestor {
 public:
  struct Options {
    std::string dir;  // Created if absent.
    /// Auto-checkpoint after this many accepted frames (0 = manual only).
    size_t checkpoint_every_frames = 0;
  };

  struct SessionStats {
    uint64_t frames_accepted = 0;    // Journaled + ingested.
    uint64_t reports_accepted = 0;   // Ingested (or overwrote a slot).
    uint64_t reports_rejected = 0;   // Store-side payload/grid rejects.
    uint64_t recovered_frames = 0;   // Frames replayed at Open.
    uint64_t recovered_reports = 0;
    uint64_t wal_tail_dropped_bytes = 0;  // Torn tail dropped at Open.
    uint64_t checkpoints = 0;

    std::string ToString() const;
  };

  /// Opens the session: creates `dir` if needed, recovers any existing
  /// checkpoint + WAL into `store` (which should be empty), and readies
  /// the WAL for appends. `store` must outlive the ingestor.
  static StatusOr<StreamIngestor> Open(Options options,
                                       IngestionStore* store);

  StreamIngestor(StreamIngestor&&) = default;
  StreamIngestor& operator=(StreamIngestor&&) = default;

  /// Consumes a chunk of the wire byte stream. Frames may span chunks;
  /// corrupt stretches are resynced past (counted in decoder_stats());
  /// each decoded frame is journaled to the WAL and then ingested.
  /// Returns the first WAL/auto-checkpoint I/O failure, after processing
  /// the whole chunk (decode progress is never lost to an I/O error).
  Status Feed(std::span<const uint8_t> bytes);
  Status Feed(std::string_view bytes);

  /// Compacts: atomically rewrites checkpoint.bin from the store's
  /// current content and truncates the WAL.
  Status Checkpoint();

  const SessionStats& stats() const { return session_stats_; }
  const WireDecoderStats& decoder_stats() const { return decoder_->stats(); }
  const IngestionStore& store() const { return *store_; }

  std::string wal_path() const;
  std::string checkpoint_path() const;

 private:
  StreamIngestor(Options options, IngestionStore* store,
                 WriteAheadLog wal);

  /// Decode+ingest one recovered frame payload (checkpoint or WAL).
  Status RecoverPayload(std::span<const uint8_t> payload);

  Options options_;
  IngestionStore* store_;
  // unique_ptr keeps the decoder's address stable across moves: the Feed
  // callback captures `this` state only through locals.
  std::unique_ptr<WireDecoder> decoder_;
  std::unique_ptr<WriteAheadLog> wal_;
  SessionStats session_stats_;
  uint64_t frames_since_checkpoint_ = 0;
};

}  // namespace vup::wire

#endif  // VUPRED_WIRE_STREAM_INGESTOR_H_
