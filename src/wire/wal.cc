#include "wire/wal.h"

#include <cstring>
#include <vector>

#include "common/string_util.h"
#include "wire/frame.h"

namespace vup::wire {

namespace {

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t GetU32(const uint8_t* p) {
  return p[0] | (uint32_t{p[1]} << 8) | (uint32_t{p[2]} << 16) |
         (uint32_t{p[3]} << 24);
}

}  // namespace

StatusOr<WriteAheadLog> WriteAheadLog::Open(std::string path) {
  WriteAheadLog wal(std::move(path));
  wal.out_.open(wal.path_, std::ios::binary | std::ios::app);
  if (!wal.out_) {
    return Status::Internal("cannot open WAL for append: " + wal.path_);
  }
  return wal;
}

Status WriteAheadLog::Append(std::span<const uint8_t> payload) {
  if (payload.empty()) {
    return Status::InvalidArgument("empty WAL payload");
  }
  if (payload.size() > kMaxWalPayloadBytes) {
    return Status::InvalidArgument(
        StrFormat("WAL payload of %zu bytes exceeds the %zu-byte cap",
                  payload.size(), kMaxWalPayloadBytes));
  }
  // One buffered write per record so a crash tears at most the tail
  // record, which replay detects and drops.
  std::string record;
  record.reserve(kRecordHeaderBytes + payload.size());
  PutU32(&record, kRecordMagic);
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  PutU32(&record, Crc32(payload));
  record.append(reinterpret_cast<const char*>(payload.data()),
                payload.size());
  out_.write(record.data(), static_cast<std::streamsize>(record.size()));
  out_.flush();
  if (!out_) {
    return Status::DataLoss("WAL append failed: " + path_);
  }
  ++records_appended_;
  return Status::OK();
}

Status WriteAheadLog::Append(std::string_view payload) {
  return Append(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size()));
}

Status WriteAheadLog::Reset() {
  out_.close();
  {
    std::ofstream trunc(path_, std::ios::binary | std::ios::trunc);
    if (!trunc) {
      return Status::Internal("cannot truncate WAL: " + path_);
    }
  }
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) {
    return Status::Internal("cannot reopen WAL after truncate: " + path_);
  }
  return Status::OK();
}

StatusOr<WriteAheadLog::ReplayStats> WriteAheadLog::Replay(
    const std::string& path,
    const std::function<Status(std::span<const uint8_t>)>& fn) {
  ReplayStats stats;
  std::ifstream in(path, std::ios::binary);
  if (!in) return stats;  // No log yet: nothing to replay.
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  size_t offset = 0;
  while (offset < bytes.size()) {
    const size_t remaining = bytes.size() - offset;
    if (remaining < kRecordHeaderBytes) break;  // Torn header.
    const uint8_t* p = bytes.data() + offset;
    if (GetU32(p) != kRecordMagic) break;  // Corrupt tail.
    const uint32_t length = GetU32(p + 4);
    if (length == 0 || length > kMaxWalPayloadBytes) break;
    if (remaining < kRecordHeaderBytes + length) break;  // Torn payload.
    const std::span<const uint8_t> payload(p + kRecordHeaderBytes, length);
    if (GetU32(p + 8) != Crc32(payload)) break;  // Corrupt payload.
    VUP_RETURN_IF_ERROR(fn(payload));
    ++stats.records;
    stats.payload_bytes += length;
    offset += kRecordHeaderBytes + length;
  }
  stats.tail_dropped_bytes = bytes.size() - offset;
  return stats;
}

}  // namespace vup::wire
