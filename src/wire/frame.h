#ifndef VUPRED_WIRE_FRAME_H_
#define VUPRED_WIRE_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "telemetry/report.h"

namespace vup::wire {

/// Compact little-endian wire format for AggregatedReport batches: what the
/// on-board device uploads every 10 minutes over a flaky cellular link
/// (paper Section 2). One frame carries 1..kMaxReportsPerFrame reports of a
/// single vehicle.
///
/// Frame layout (all integers little-endian):
///
///   offset  size  field
///   0       4     magic        "VUPW" (0x56 0x55 0x50 0x57)
///   4       2     version      format version, currently 1
///   6       2     report_count 1..kMaxReportsPerFrame
///   8       4     payload_len  byte length of the body; must equal
///                              8 + report_count * kRecordBytes in v1
///   12      8     vehicle_id   body starts here; positive
///   20      ...   records      report_count fixed-size records
///   ...     4     crc32        IEEE CRC-32 of bytes [0, 12 + payload_len)
///
/// Each record (kRecordBytes = 31 bytes):
///
///   i32 day_number     days since 1970-01-01
///   u8  slot           0..143
///   u16 q_engine_on    engine_on_fraction / (1/60000)
///   u16 q_rpm          avg_engine_rpm / 0.125
///   u16 q_load         avg_engine_load_pct / 0.01
///   u16 q_fuel_rate    avg_fuel_rate_lph / 0.05
///   u16 q_oil_pressure avg_oil_pressure_kpa / 0.1
///   u16 q_coolant      (avg_coolant_temp_c + 60) / 0.01
///   u16 q_speed        avg_speed_kmh / (1/256)
///   u16 q_hydraulic    (avg_hydraulic_temp_c + 60) / 0.01
///   u16 q_fuel_level   fuel_level_pct / 0.01
///   u32 q_engine_hours engine_hours_total / 0.05
///   u16 dtc_count
///   u16 sample_count
///
/// Quantized channels reserve the all-ones pattern (0xFFFF / 0xFFFFFFFF) as
/// the J1939-style "invalid / not representable" sentinel: an encoder faced
/// with a non-finite or out-of-range channel ships the sentinel instead of
/// failing, and the decoder surfaces it as NaN (doubles) or -1 (counts) so
/// server-side validation can reject it -- sensor corruption travels the
/// wire explicitly rather than silently clamping.
///
/// Version negotiation: the 12-byte header and the trailing CRC are
/// invariant across versions; only the body layout may change. A decoder
/// that sees a newer version with a sane payload_len and a valid CRC skips
/// the frame whole (counted as version-rejected) and keeps the stream
/// alive; a CRC failure is indistinguishable from corruption and resyncs.
inline constexpr uint32_t kFrameMagic = 0x57505556u;  // "VUPW" LE.
inline constexpr uint16_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr size_t kRecordBytes = 31;
inline constexpr size_t kMaxReportsPerFrame = 1024;
/// Upper bound on payload_len the decoder will ever accept, any version:
/// caps allocation and version-skip distance on attacker-controlled input.
inline constexpr size_t kMaxPayloadBytes =
    8 + kMaxReportsPerFrame * kRecordBytes;
inline constexpr size_t kMaxFrameBytes =
    kFrameHeaderBytes + kMaxPayloadBytes + 4;

/// IEEE CRC-32 (reflected, poly 0xEDB88320), the checksum of every frame
/// and WAL record.
uint32_t Crc32(std::span<const uint8_t> bytes);
uint32_t Crc32(const void* data, size_t size);

/// Round-trips one report's channels through quantization: what a decoder
/// on the other end of the wire will see. Unrepresentable channels come
/// back as NaN / -1. Grid fields (vehicle_id, date, slot) are untouched.
AggregatedReport QuantizeForWire(const AggregatedReport& report);

/// Appends one frame holding `reports` (all for `vehicle_id`, at most
/// kMaxReportsPerFrame) to `out`. InvalidArgument on an empty or oversized
/// batch, a non-positive vehicle id, or a report with a slot outside
/// [0, kSlotsPerDay). Channel values are quantized (see above) and never
/// fail the encode.
Status EncodeFrame(int64_t vehicle_id,
                   std::span<const AggregatedReport> reports,
                   std::string* out);

/// Encodes a mixed-vehicle batch: reports are grouped by vehicle id in
/// first-appearance order and chunked into frames of at most
/// kMaxReportsPerFrame. Reports that cannot be framed (bad slot / id) are
/// skipped and counted in `*rejected` (may be null); the returned status
/// is OK as long as at least one report was encoded or the input was empty.
Status EncodeBatch(std::span<const AggregatedReport> reports,
                   std::string* out, size_t* rejected = nullptr);

/// One decoded frame.
struct DecodedFrame {
  int64_t vehicle_id = 0;
  uint16_t version = kWireVersion;
  std::vector<AggregatedReport> reports;
};

/// Attempts to decode one frame at the start of `buffer`.
///
///   OK                 -- *frame filled, *consumed = frame size.
///   OutOfRange         -- truncated: the buffer ends inside a plausible
///                         frame; feed more bytes (*consumed = 0).
///   DataLoss           -- corrupt: bad magic, impossible lengths, CRC
///                         mismatch, or invalid structural fields.
///                         *consumed = 0; the caller should resync.
///   Unimplemented      -- version skew: a well-formed frame of a newer
///                         format version; *consumed = frame size so the
///                         caller can skip it whole.
///
/// The decoder treats every byte as hostile: all reads are bounds-checked,
/// no allocation is proportional to unvalidated attacker-controlled
/// fields, and a frame is never partially surfaced.
Status DecodeFrame(std::span<const uint8_t> buffer, DecodedFrame* frame,
                   size_t* consumed);

/// Streaming decoder statistics (also exported as vupred_wire_* counters).
struct WireDecoderStats {
  uint64_t frames_decoded = 0;
  uint64_t reports_decoded = 0;
  uint64_t frames_rejected_corrupt = 0;  // Resynced past.
  uint64_t frames_rejected_version = 0;  // Skipped whole.
  uint64_t resyncs = 0;                  // Scans for the next magic.
  uint64_t bytes_skipped = 0;            // Bytes discarded while resyncing.

  std::string ToString() const;
};

/// Incremental frame decoder for a chunked byte stream: frames may span
/// arbitrary chunk boundaries; corruption is skipped by scanning to the
/// next magic (skip-and-continue resync); newer-version frames are skipped
/// whole. Bounded memory: the internal buffer never exceeds one maximum
/// frame plus one chunk.
class WireDecoder {
 public:
  /// Callback per decoded frame; `raw` is the frame's exact encoded bytes
  /// (valid only for the duration of the call), so callers can journal the
  /// frame verbatim.
  using FrameFn =
      std::function<void(const DecodedFrame&, std::span<const uint8_t> raw)>;

  WireDecoder() = default;

  /// Consumes `bytes`, invoking `on_frame` for every complete valid frame.
  void Feed(std::span<const uint8_t> bytes, const FrameFn& on_frame);

  /// Bytes buffered but not yet decodable (a torn tail once the stream
  /// ends; a frame in flight otherwise).
  size_t pending_bytes() const { return buffer_.size(); }

  const WireDecoderStats& stats() const { return stats_; }

 private:
  std::vector<uint8_t> buffer_;
  WireDecoderStats stats_;
};

}  // namespace vup::wire

#endif  // VUPRED_WIRE_FRAME_H_
