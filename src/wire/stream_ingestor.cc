#include "wire/stream_ingestor.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>
#include <vector>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace vup::wire {

namespace fs = std::filesystem;

namespace {

constexpr char kWalFile[] = "wal.log";
constexpr char kCheckpointFile[] = "checkpoint.bin";

/// Process-wide wire/WAL counters on the unified metrics registry.
struct WireCounters {
  obs::Counter* frames_decoded;
  obs::Counter* reports_decoded;
  obs::Counter* frames_rejected_corrupt;
  obs::Counter* frames_rejected_version;
  obs::Counter* resyncs;
  obs::Counter* bytes_skipped;
  obs::Counter* wal_appends;
  obs::Counter* wal_recovered_records;
  obs::Counter* wal_tail_dropped_bytes;
  obs::Counter* checkpoints;
  obs::Counter* ingest_rejects_decode;
};

const WireCounters& GlobalWireCounters() {
  static const WireCounters counters = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
    constexpr char kRejected[] = "vupred_wire_frames_rejected_total";
    constexpr char kRejectedHelp[] =
        "Wire frames rejected by the decoder, labeled by cause.";
    return WireCounters{
        r.GetCounter("vupred_wire_frames_decoded_total",
                     "Wire frames decoded successfully."),
        r.GetCounter("vupred_wire_reports_decoded_total",
                     "Aggregated reports carried by decoded frames."),
        r.GetCounter(kRejected, kRejectedHelp, {{"cause", "corrupt"}}),
        r.GetCounter(kRejected, kRejectedHelp, {{"cause", "version"}}),
        r.GetCounter("vupred_wire_resyncs_total",
                     "Skip-and-continue resyncs after corrupt frames."),
        r.GetCounter("vupred_wire_bytes_skipped_total",
                     "Bytes discarded while resyncing to the next magic."),
        r.GetCounter("vupred_wire_wal_appends_total",
                     "Frames journaled to the ingest write-ahead log."),
        r.GetCounter("vupred_wire_wal_recovered_records_total",
                     "WAL records replayed during crash recovery."),
        r.GetCounter("vupred_wire_wal_tail_dropped_bytes_total",
                     "Torn/corrupt WAL tail bytes dropped at recovery."),
        r.GetCounter("vupred_wire_checkpoints_total",
                     "Checkpoint/compact cycles completed."),
        r.GetCounter("vupred_ingest_rejects_total",
                     "Reports rejected by ingestion, labeled by rejection "
                     "cause.",
                     {{"cause", "decode"}}),
    };
  }();
  return counters;
}

/// Publishes the delta between two decoder-stat snapshots.
void PublishDecoderDelta(const WireDecoderStats& before,
                         const WireDecoderStats& after) {
  const WireCounters& c = GlobalWireCounters();
  c.frames_decoded->Increment(after.frames_decoded - before.frames_decoded);
  c.reports_decoded->Increment(after.reports_decoded -
                               before.reports_decoded);
  c.frames_rejected_corrupt->Increment(after.frames_rejected_corrupt -
                                       before.frames_rejected_corrupt);
  c.frames_rejected_version->Increment(after.frames_rejected_version -
                                       before.frames_rejected_version);
  c.resyncs->Increment(after.resyncs - before.resyncs);
  c.bytes_skipped->Increment(after.bytes_skipped - before.bytes_skipped);
  const uint64_t rejected = (after.frames_rejected_corrupt -
                             before.frames_rejected_corrupt) +
                            (after.frames_rejected_version -
                             before.frames_rejected_version);
  c.ingest_rejects_decode->Increment(rejected);
}

}  // namespace

std::string StreamIngestor::SessionStats::ToString() const {
  return StrFormat(
      "SessionStats{frames=%llu reports=%llu rejected=%llu "
      "recovered_frames=%llu recovered_reports=%llu tail_dropped=%llu "
      "checkpoints=%llu}",
      static_cast<unsigned long long>(frames_accepted),
      static_cast<unsigned long long>(reports_accepted),
      static_cast<unsigned long long>(reports_rejected),
      static_cast<unsigned long long>(recovered_frames),
      static_cast<unsigned long long>(recovered_reports),
      static_cast<unsigned long long>(wal_tail_dropped_bytes),
      static_cast<unsigned long long>(checkpoints));
}

StreamIngestor::StreamIngestor(Options options, IngestionStore* store,
                               WriteAheadLog wal)
    : options_(std::move(options)),
      store_(store),
      decoder_(std::make_unique<WireDecoder>()),
      wal_(std::make_unique<WriteAheadLog>(std::move(wal))) {}

std::string StreamIngestor::wal_path() const {
  return (fs::path(options_.dir) / kWalFile).string();
}

std::string StreamIngestor::checkpoint_path() const {
  return (fs::path(options_.dir) / kCheckpointFile).string();
}

StatusOr<StreamIngestor> StreamIngestor::Open(Options options,
                                              IngestionStore* store) {
  if (store == nullptr) {
    return Status::InvalidArgument("null ingestion store");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::Internal(
        StrFormat("cannot create ingest dir %s: %s", options.dir.c_str(),
                  ec.message().c_str()));
  }
  const std::string wal_file =
      (fs::path(options.dir) / kWalFile).string();
  const std::string checkpoint_file =
      (fs::path(options.dir) / kCheckpointFile).string();

  VUP_ASSIGN_OR_RETURN(WriteAheadLog wal, WriteAheadLog::Open(wal_file));
  StreamIngestor ingestor(std::move(options), store, std::move(wal));

  // Recovery step 1: the checkpoint, a plain concatenation of encoded
  // frames (best-effort decoded -- a damaged checkpoint yields what it
  // can; the WAL behind it still replays).
  std::ifstream checkpoint(checkpoint_file, std::ios::binary);
  if (checkpoint) {
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(checkpoint)),
                               std::istreambuf_iterator<char>());
    VUP_RETURN_IF_ERROR(ingestor.RecoverPayload(
        std::span<const uint8_t>(bytes.data(), bytes.size())));
  }

  // Recovery step 2: the WAL, one frame per record, torn tail dropped.
  VUP_ASSIGN_OR_RETURN(
      WriteAheadLog::ReplayStats replayed,
      WriteAheadLog::Replay(
          ingestor.wal_path(),
          [&ingestor](std::span<const uint8_t> payload) -> Status {
            return ingestor.RecoverPayload(payload);
          }));
  ingestor.session_stats_.wal_tail_dropped_bytes =
      replayed.tail_dropped_bytes;
  GlobalWireCounters().wal_recovered_records->Increment(replayed.records);
  GlobalWireCounters().wal_tail_dropped_bytes->Increment(
      replayed.tail_dropped_bytes);
  return ingestor;
}

Status StreamIngestor::RecoverPayload(std::span<const uint8_t> payload) {
  // Same decode+ingest path as live traffic, through a scratch decoder so
  // recovery bytes never interleave with a live stream's pending tail.
  WireDecoder recovery_decoder;
  const WireDecoderStats before = recovery_decoder.stats();
  recovery_decoder.Feed(
      payload, [this](const DecodedFrame& frame,
                      std::span<const uint8_t> raw) {
        (void)raw;
        ++session_stats_.recovered_frames;
        for (const AggregatedReport& report : frame.reports) {
          if (store_->Ingest(report).ok()) {
            ++session_stats_.recovered_reports;
          } else {
            ++session_stats_.reports_rejected;
          }
        }
      });
  PublishDecoderDelta(before, recovery_decoder.stats());
  return Status::OK();
}

Status StreamIngestor::Feed(std::span<const uint8_t> bytes) {
  Status first_error;
  const WireDecoderStats before = decoder_->stats();
  decoder_->Feed(bytes, [this, &first_error](
                            const DecodedFrame& frame,
                            std::span<const uint8_t> raw) {
    // Journal before ingest: a frame the store has seen but the WAL has
    // not would vanish on crash. If the journal write fails the frame is
    // dropped whole (and the error surfaced) so the store never runs
    // ahead of its durability.
    Status journaled = wal_->Append(raw);
    if (!journaled.ok()) {
      if (first_error.ok()) first_error = std::move(journaled);
      return;
    }
    GlobalWireCounters().wal_appends->Increment();
    ++session_stats_.frames_accepted;
    ++frames_since_checkpoint_;
    for (const AggregatedReport& report : frame.reports) {
      if (store_->Ingest(report).ok()) {
        ++session_stats_.reports_accepted;
      } else {
        ++session_stats_.reports_rejected;
      }
    }
    if (options_.checkpoint_every_frames > 0 &&
        frames_since_checkpoint_ >= options_.checkpoint_every_frames) {
      Status checkpointed = Checkpoint();
      if (!checkpointed.ok() && first_error.ok()) {
        first_error = std::move(checkpointed);
      }
    }
  });
  PublishDecoderDelta(before, decoder_->stats());
  return first_error;
}

Status StreamIngestor::Feed(std::string_view bytes) {
  return Feed(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()));
}

Status StreamIngestor::Checkpoint() {
  // Re-encode the full store content as frames.
  std::string encoded;
  for (int64_t vehicle_id : store_->VehicleIds()) {
    const std::vector<AggregatedReport> reports =
        store_->ReportsOf(vehicle_id);
    for (size_t at = 0; at < reports.size(); at += kMaxReportsPerFrame) {
      const size_t take =
          std::min(kMaxReportsPerFrame, reports.size() - at);
      VUP_RETURN_IF_ERROR(EncodeFrame(
          vehicle_id,
          std::span<const AggregatedReport>(reports.data() + at, take),
          &encoded));
    }
  }

  // Temp + rename: readers (and recovery) only ever see the old or the
  // new checkpoint, never a torn one.
  const std::string path = checkpoint_path();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open checkpoint for writing: " + tmp);
    }
    out.write(encoded.data(),
              static_cast<std::streamsize>(encoded.size()));
    out.flush();
    if (!out) return Status::DataLoss("checkpoint write failed: " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal(StrFormat("checkpoint rename failed: %s",
                                      ec.message().c_str()));
  }
  // Truncate the journal last: a crash between rename and truncate only
  // re-replays frames the checkpoint already holds (idempotent).
  VUP_RETURN_IF_ERROR(wal_->Reset());
  ++session_stats_.checkpoints;
  frames_since_checkpoint_ = 0;
  GlobalWireCounters().checkpoints->Increment();
  return Status::OK();
}

}  // namespace vup::wire
