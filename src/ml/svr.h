#ifndef VUPRED_ML_SVR_H_
#define VUPRED_ML_SVR_H_

#include <memory>
#include <vector>

#include "ml/kernel.h"
#include "ml/model.h"

namespace vup {

/// Epsilon-insensitive Support Vector Regression.
///
/// Solves the standard dual in the collapsed variables beta_i = alpha_i -
/// alpha_i^* in [-C, C]:
///
///   min_beta  1/2 beta^T K beta - y^T beta + epsilon * ||beta||_1
///   s.t.      sum_i beta_i = 0
///
/// with an SMO-style pairwise coordinate descent: each step moves a pair
/// (beta_i += delta, beta_j -= delta), keeping the equality constraint
/// satisfied; the optimal delta of the piecewise-quadratic one-dimensional
/// subproblem is found analytically over its sign regions.
///
/// The paper's configuration is kernel=rbf, C=10, epsilon=0.1. For gamma,
/// see KernelParams: gamma <= 0 resolves to 1/num_features at fit time.
class Svr : public Regressor {
 public:
  struct Options {
    double c = 10.0;
    double epsilon = 0.1;
    KernelParams kernel;
    /// Stop when the best pair improvement in a full sweep is below tol.
    double tol = 1e-5;
    size_t max_sweeps = 300;
  };

  Svr() = default;
  explicit Svr(Options options) : options_(options) {}

  /// Reconstructs a fitted model from serialized state (ml/serialize.h).
  /// `options.kernel.gamma` must be the resolved (positive) value.
  static Svr FromState(Options options, Matrix support_vectors,
                       std::vector<double> beta, double bias,
                       size_t num_features) {
    Svr m(options);
    m.support_ = std::move(support_vectors);
    m.beta_ = std::move(beta);
    m.bias_ = bias;
    m.num_features_ = num_features;
    m.fitted_ = true;
    return m;
  }

  const Options& options() const { return options_; }
  const Matrix& support_vectors() const { return support_; }
  const std::vector<double>& dual_coefficients() const { return beta_; }
  size_t num_features() const { return num_features_; }

  Status Fit(const Matrix& x, std::span<const double> y) override;
  StatusOr<double> PredictOne(std::span<const double> features) const override;
  std::string name() const override { return "SVR"; }
  std::unique_ptr<Regressor> Clone() const override {
    return std::make_unique<Svr>(options_);
  }
  bool fitted() const override { return fitted_; }

  /// Number of support vectors (beta != 0) after fitting.
  size_t num_support_vectors() const { return support_.rows(); }
  double bias() const { return bias_; }
  size_t sweeps_run() const { return sweeps_run_; }

 private:
  Options options_;
  bool fitted_ = false;
  size_t num_features_ = 0;
  Matrix support_;                 // Support vectors, one per row.
  std::vector<double> beta_;       // Dual coefficient per support vector.
  double bias_ = 0.0;
  size_t sweeps_run_ = 0;
};

}  // namespace vup

#endif  // VUPRED_ML_SVR_H_
