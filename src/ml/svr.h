#ifndef VUPRED_ML_SVR_H_
#define VUPRED_ML_SVR_H_

#include <memory>
#include <optional>
#include <vector>

#include "ml/kernel.h"
#include "ml/model.h"

namespace vup {

/// Epsilon-insensitive Support Vector Regression.
///
/// Solves the standard dual in the collapsed variables beta_i = alpha_i -
/// alpha_i^* in [-C, C]:
///
///   min_beta  1/2 beta^T K beta - y^T beta + epsilon * ||beta||_1
///   s.t.      sum_i beta_i = 0
///
/// with an SMO-style pairwise coordinate descent: each step moves a pair
/// (beta_i += delta, beta_j -= delta), keeping the equality constraint
/// satisfied; the optimal delta of the piecewise-quadratic one-dimensional
/// subproblem is found analytically over its sign regions.
///
/// The paper's configuration is kernel=rbf, C=10, epsilon=0.1. For gamma,
/// see KernelParams: gamma <= 0 resolves to 1/num_features at fit time.
class Svr : public Regressor {
 public:
  struct Options {
    double c = 10.0;
    double epsilon = 0.1;
    KernelParams kernel;
    /// Stop when the best pair improvement in a full sweep is below tol.
    double tol = 1e-5;
    size_t max_sweeps = 300;
  };

  /// Diagnostics of the last Fit (cold or warm).
  struct FitStats {
    bool warm_started = false;
    size_t sweeps = 0;
    /// Most rows simultaneously out of the shrinking working set.
    size_t shrunk_rows_peak = 0;
    /// Rows brought back by the final full KKT pass(es): nonzero means
    /// the shrinking heuristic skipped a row that was still violating.
    size_t kkt_reactivations = 0;
    /// Number of full KKT passes that found a violation and resumed.
    size_t unshrink_passes = 0;
    KernelRowCache::Stats kernel_cache;  // Zero for the cold (full-Gram) path.
  };

  Svr() = default;
  explicit Svr(Options options) : options_(options) {}

  /// Reconstructs a fitted model from serialized state (ml/serialize.h).
  /// `options.kernel.gamma` must be the resolved (positive) value.
  static Svr FromState(Options options, Matrix support_vectors,
                       std::vector<double> beta, double bias,
                       size_t num_features) {
    Svr m(options);
    m.support_ = std::move(support_vectors);
    m.beta_ = std::move(beta);
    m.bias_ = bias;
    m.num_features_ = num_features;
    m.fitted_ = true;
    return m;
  }

  const Options& options() const { return options_; }
  const Matrix& support_vectors() const { return support_; }
  const std::vector<double>& dual_coefficients() const { return beta_; }
  size_t num_features() const { return num_features_; }

  /// Arms the next Fit to resume SMO from `beta0` (one dual coefficient
  /// per training row of the upcoming design matrix) instead of zero,
  /// solving over a `kernel_cache_rows`-row LRU kernel cache instead of
  /// the precomputed full Gram matrix, with a shrinking heuristic that
  /// drops bound-clamped, KKT-satisfied rows from the working set.
  ///
  /// Consumed by the next Fit whatever its outcome; silently ignored
  /// (cold fit) when beta0's length does not match the row count. The
  /// starting point is clamped to the box and repaired to sum(beta) = 0,
  /// so any beta0 is safe -- a good one (the previous adjacent window's
  /// solution through ShiftSvrBetaForward) just converges in far fewer
  /// sweeps.
  ///
  /// Convergence contract: the warm path stops on the same
  /// sweep-improvement tolerance as the cold path, then runs a full
  /// first-order KKT pass over ALL rows -- shrunk ones included -- and
  /// resumes sweeping with everything reactivated if a violating pair
  /// remains (within sqrt(tol); see DESIGN.md section 14). Shrinking
  /// therefore never changes what "converged" means, only how much work
  /// reaching it takes.
  ///
  /// `max_sweeps` caps the warm fit's sweep count (0 means inherit
  /// options_.max_sweeps). On problems where the cold solver is
  /// budget-bound -- it exhausts max_sweeps instead of meeting tol --
  /// neither tolerance fires early, so the warm win comes from this
  /// reduced budget: the shifted previous solution starts close enough
  /// that far fewer sweeps reach the same neighborhood (the equivalence
  /// harness certifies how close; see DESIGN.md section 14).
  void WarmStart(std::vector<double> beta0, size_t kernel_cache_rows,
                 size_t max_sweeps = 0);

  Status Fit(const Matrix& x, std::span<const double> y) override;
  StatusOr<double> PredictOne(std::span<const double> features) const override;
  std::string name() const override { return "SVR"; }
  std::unique_ptr<Regressor> Clone() const override {
    return std::make_unique<Svr>(options_);
  }
  bool fitted() const override { return fitted_; }
  size_t ResidentBytes() const override {
    return sizeof(*this) +
           (support_.rows() * support_.cols() + beta_.capacity() +
            full_beta_.capacity()) *
               sizeof(double);
  }

  /// Number of support vectors (beta != 0) after fitting.
  size_t num_support_vectors() const { return support_.rows(); }
  double bias() const { return bias_; }
  size_t sweeps_run() const { return sweeps_run_; }
  const FitStats& last_fit_stats() const { return fit_stats_; }

  /// The full-length dual vector of the last Fit (one beta per training
  /// row, zeros included) -- the payload a warm start resumes from.
  const std::vector<double>& last_full_beta() const { return full_beta_; }

  /// Dual objective value 1/2 b^T K b - y^T b + eps*||b||_1 at the last
  /// Fit's solution; the scalar the equivalence harness compares between
  /// cold and warm fits.
  double last_dual_objective() const { return dual_objective_; }

 private:
  struct WarmRequest {
    std::vector<double> beta0;
    size_t kernel_cache_rows = 0;
    size_t max_sweeps = 0;  // 0 = inherit options_.max_sweeps.
  };

  /// Warm SMO over the kernel-row cache with shrinking; `beta` is the
  /// sanitized starting point (box-clamped, sum repaired).
  void SolveWarm(const Matrix& x, std::span<const double> y,
                 const KernelParams& kernel, std::vector<double>& beta,
                 std::vector<double>& f, size_t kernel_cache_rows,
                 size_t max_sweeps);

  /// Shared fit tail: bias from free-SV KKT conditions, support-vector
  /// compaction, dual objective, resolved-kernel capture.
  void FinishFit(const Matrix& x, std::span<const double> y,
                 const std::vector<double>& beta,
                 const std::vector<double>& f, const KernelParams& kernel);

  Options options_;
  bool fitted_ = false;
  size_t num_features_ = 0;
  Matrix support_;                 // Support vectors, one per row.
  std::vector<double> beta_;       // Dual coefficient per support vector.
  std::vector<double> full_beta_;  // Dual coefficient per training row.
  double bias_ = 0.0;
  double dual_objective_ = 0.0;
  size_t sweeps_run_ = 0;
  FitStats fit_stats_;
  std::optional<WarmRequest> warm_request_;
};

}  // namespace vup

#endif  // VUPRED_ML_SVR_H_
