#include "ml/kernel.h"

#include <cmath>

#include "common/check.h"

namespace vup {

std::string_view KernelTypeToString(KernelType t) {
  switch (t) {
    case KernelType::kRbf:
      return "rbf";
    case KernelType::kLinear:
      return "linear";
    case KernelType::kPolynomial:
      return "poly";
  }
  return "?";
}

double KernelParams::EffectiveGamma(size_t num_features) const {
  if (gamma > 0.0) return gamma;
  VUP_CHECK(num_features > 0);
  return 1.0 / static_cast<double>(num_features);
}

double KernelFunction(const KernelParams& params, std::span<const double> a,
                      std::span<const double> b) {
  VUP_CHECK(a.size() == b.size());
  double g = params.EffectiveGamma(a.size());
  switch (params.type) {
    case KernelType::kRbf: {
      double sq = 0.0;
      for (size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        sq += d * d;
      }
      return std::exp(-g * sq);
    }
    case KernelType::kLinear:
      return Dot(a, b);
    case KernelType::kPolynomial:
      return std::pow(g * Dot(a, b) + params.coef0, params.degree);
  }
  return 0.0;
}

Matrix KernelMatrix(const KernelParams& params, const Matrix& x) {
  const size_t n = x.rows();
  Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double v = KernelFunction(params, x.Row(i), x.Row(j));
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

}  // namespace vup
