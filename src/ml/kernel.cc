#include "ml/kernel.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"

namespace vup {

std::string_view KernelTypeToString(KernelType t) {
  switch (t) {
    case KernelType::kRbf:
      return "rbf";
    case KernelType::kLinear:
      return "linear";
    case KernelType::kPolynomial:
      return "poly";
  }
  return "?";
}

double KernelParams::EffectiveGamma(size_t num_features) const {
  if (gamma > 0.0) return gamma;
  VUP_CHECK(num_features > 0);
  return 1.0 / static_cast<double>(num_features);
}

double KernelFunction(const KernelParams& params, std::span<const double> a,
                      std::span<const double> b) {
  VUP_CHECK(a.size() == b.size());
  double g = params.EffectiveGamma(a.size());
  switch (params.type) {
    case KernelType::kRbf: {
      double sq = 0.0;
      for (size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        sq += d * d;
      }
      return std::exp(-g * sq);
    }
    case KernelType::kLinear:
      return Dot(a, b);
    case KernelType::kPolynomial:
      return std::pow(g * Dot(a, b) + params.coef0, params.degree);
  }
  return 0.0;
}

Matrix KernelMatrix(const KernelParams& params, const Matrix& x) {
  const size_t n = x.rows();
  Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double v = KernelFunction(params, x.Row(i), x.Row(j));
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

namespace {

struct KernelCacheCounters {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
};

const KernelCacheCounters& GlobalKernelCacheCounters() {
  static const KernelCacheCounters counters = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return KernelCacheCounters{
        registry.GetCounter("vupred_kernel_cache_hits_total",
                            "Kernel-row cache lookups served from memory."),
        registry.GetCounter("vupred_kernel_cache_misses_total",
                            "Kernel-row cache lookups that computed a row."),
        registry.GetCounter("vupred_kernel_cache_evictions_total",
                            "Kernel rows evicted by the LRU policy."),
    };
  }();
  return counters;
}

}  // namespace

KernelRowCache::KernelRowCache(const KernelParams& params, const Matrix& x,
                               size_t capacity)
    : params_(params),
      x_(&x),
      // >= 2 keeps both rows of the current SMO pair resident (see the
      // span-lifetime contract in the header).
      capacity_(std::max<size_t>(capacity, 2)),
      entries_(x.rows()) {
  if (params_.gamma <= 0.0 && x.cols() > 0) {
    params_.gamma = params_.EffectiveGamma(x.cols());
  }
}

std::span<const double> KernelRowCache::Row(size_t i) {
  VUP_CHECK(i < x_->rows());
  const KernelCacheCounters& counters = GlobalKernelCacheCounters();
  Entry& entry = entries_[i];
  if (!entry.values.empty()) {
    ++stats_.hits;
    if (counters.hits != nullptr) counters.hits->Increment(1);
    lru_.splice(lru_.begin(), lru_, entry.lru_pos);
    return entry.values;
  }

  ++stats_.misses;
  if (counters.misses != nullptr) counters.misses->Increment(1);
  const size_t n = x_->rows();
  entry.values.resize(n);
  std::span<const double> xi = x_->Row(i);
  for (size_t j = 0; j < n; ++j) {
    // Symmetry fill: every supported kernel is bitwise-symmetric (see the
    // header), so K(i, j) can be read off an already-cached row j instead
    // of re-evaluating. The j == i guard matters: entries_[i].values was
    // just resized, so it would otherwise read back a zero.
    const Entry& other = entries_[j];
    entry.values[j] = (j != i && !other.values.empty())
                          ? other.values[i]
                          : KernelFunction(params_, xi, x_->Row(j));
  }
  lru_.push_front(i);
  entry.lru_pos = lru_.begin();
  ++cached_;

  if (cached_ > capacity_) {
    size_t victim = lru_.back();
    lru_.pop_back();
    entries_[victim].values = {};  // Frees the row; slot stays.
    --cached_;
    ++stats_.evictions;
    if (counters.evictions != nullptr) counters.evictions->Increment(1);
  }
  return entry.values;
}

}  // namespace vup
