#ifndef VUPRED_ML_LOGISTIC_REGRESSION_H_
#define VUPRED_ML_LOGISTIC_REGRESSION_H_

#include <span>
#include <vector>

#include "common/statusor.h"
#include "linalg/matrix.h"

namespace vup {

/// L2-regularized binary logistic regression fitted with iteratively
/// reweighted least squares (Newton's method on the log-likelihood).
///
/// Supports the paper's future-work direction ("the use of classification
/// models to predict discrete usage levels", Section 5): the two-stage
/// forecaster uses it to predict whether the vehicle works at all on the
/// target day, and the usage-level classifier builds one-vs-rest stacks of
/// it.
class LogisticRegression {
 public:
  struct Options {
    /// L2 penalty on the coefficients (not the intercept). Also keeps the
    /// IRLS Hessian positive definite under separable data.
    double l2 = 1e-2;
    size_t max_iter = 50;
    /// Convergence threshold on the max absolute coefficient update.
    double tol = 1e-8;
    bool fit_intercept = true;
  };

  LogisticRegression() = default;
  explicit LogisticRegression(Options options) : options_(options) {}

  /// Reconstructs a fitted model from serialized state (ml/serialize.h).
  static LogisticRegression FromState(Options options,
                                      std::vector<double> coefficients,
                                      double intercept) {
    LogisticRegression m(options);
    m.coef_ = std::move(coefficients);
    m.intercept_ = intercept;
    m.fitted_ = true;
    return m;
  }

  const Options& options() const { return options_; }

  /// Trains on labels y in {0, 1}. InvalidArgument on shape mismatch,
  /// labels outside {0,1}, or single-class data (use the prior instead).
  Status Fit(const Matrix& x, std::span<const int> y);

  /// P(y == 1 | features).
  StatusOr<double> PredictProbability(std::span<const double> features) const;

  /// Hard decision at `threshold` on the probability.
  StatusOr<int> PredictClass(std::span<const double> features,
                             double threshold = 0.5) const;

  bool fitted() const { return fitted_; }
  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }
  size_t iterations_run() const { return iterations_run_; }

 private:
  Options options_;
  bool fitted_ = false;
  std::vector<double> coef_;
  double intercept_ = 0.0;
  size_t iterations_run_ = 0;
};

/// Numerically-stable logistic sigmoid.
double Sigmoid(double z);

}  // namespace vup

#endif  // VUPRED_ML_LOGISTIC_REGRESSION_H_
