#include "ml/grid_search.h"

#include <limits>
#include <numeric>
#include <utility>

#include "common/thread_pool.h"
#include "ml/metrics.h"

namespace vup {

std::vector<ParamMap> ParamGrid::Combinations() const {
  std::vector<ParamMap> out = {ParamMap{}};
  for (const auto& [name, values] : axes) {
    std::vector<ParamMap> next;
    next.reserve(out.size() * values.size());
    for (const ParamMap& base : out) {
      for (double v : values) {
        ParamMap extended = base;
        extended[name] = v;
        next.push_back(std::move(extended));
      }
    }
    out = std::move(next);
  }
  return out;
}

StatusOr<GridSearchResult> GridSearch(const RegressorFactory& factory,
                                      const ParamGrid& grid, const Matrix& x,
                                      std::span<const double> y,
                                      const GridSearchOptions& options) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("target size does not match design matrix");
  }
  if (options.validation_fraction <= 0.0 ||
      options.validation_fraction >= 1.0) {
    return Status::InvalidArgument("validation_fraction must be in (0, 1)");
  }
  const size_t n = x.rows();
  size_t n_valid = static_cast<size_t>(options.validation_fraction *
                                       static_cast<double>(n));
  n_valid = std::max<size_t>(n_valid, 1);
  if (n_valid >= n) {
    return Status::InvalidArgument("not enough rows for a train/valid split");
  }
  const size_t n_train = n - n_valid;

  std::vector<size_t> train_rows(n_train), valid_rows(n_valid);
  std::iota(train_rows.begin(), train_rows.end(), 0);
  std::iota(valid_rows.begin(), valid_rows.end(), n_train);
  Matrix x_train = x.SelectRows(train_rows);
  Matrix x_valid = x.SelectRows(valid_rows);
  std::vector<double> y_train(y.begin(), y.begin() + static_cast<long>(n_train));
  std::vector<double> y_valid(y.begin() + static_cast<long>(n_train), y.end());

  // Models are built serially up front (the factory runs on this thread and
  // keeps the serial path's abort-on-null behavior); fitting and scoring of
  // independent combinations then runs serially or on a pool.
  const std::vector<ParamMap> combinations = grid.Combinations();
  std::vector<std::unique_ptr<Regressor>> models;
  models.reserve(combinations.size());
  for (const ParamMap& params : combinations) {
    std::unique_ptr<Regressor> model = factory(params);
    if (model == nullptr) {
      return Status::InvalidArgument("factory returned null model");
    }
    models.push_back(std::move(model));
  }

  auto evaluate = [&](Regressor& model) -> StatusOr<double> {
    VUP_RETURN_IF_ERROR(model.Fit(x_train, y_train));
    VUP_ASSIGN_OR_RETURN(std::vector<double> pred, model.Predict(x_valid));
    switch (options.metric) {
      case GridMetric::kMae:
        return MeanAbsoluteError(pred, y_valid);
      case GridMetric::kRmse:
        return RootMeanSquaredError(pred, y_valid);
      case GridMetric::kPercentageError:
        return PercentageError(pred, y_valid);
    }
    return Status::Internal("unreachable grid metric");
  };

  std::vector<StatusOr<double>> slots(
      combinations.size(), StatusOr<double>(Status::Internal("unevaluated")));
  if (options.jobs <= 1) {
    for (size_t i = 0; i < combinations.size(); ++i) {
      slots[i] = evaluate(*models[i]);
    }
  } else {
    ThreadPool pool({options.jobs, combinations.size() + 1, "grid"});
    for (size_t i = 0; i < combinations.size(); ++i) {
      Status submitted = pool.Submit([&, i]() -> Status {
        slots[i] = evaluate(*models[i]);
        return Status::OK();
      });
      if (!submitted.ok()) {
        // Cannot happen before Shutdown; fall back to inline just in case.
        slots[i] = evaluate(*models[i]);
      }
    }
    VUP_RETURN_IF_ERROR(pool.Shutdown());
  }

  // Fold in combination order: scores keep grid order, ties on best_score
  // keep the earliest combination, and the all-failed status is the last
  // failure in grid order -- all byte-identical to the serial fold.
  GridSearchResult result;
  result.best_score = std::numeric_limits<double>::infinity();
  Status last_failure = Status::OK();
  for (size_t i = 0; i < combinations.size(); ++i) {
    if (!slots[i].ok()) {
      last_failure = slots[i].status();
      continue;
    }
    const double score = slots[i].value();
    result.scores.emplace_back(combinations[i], score);
    if (score < result.best_score) {
      result.best_score = score;
      result.best_params = combinations[i];
    }
  }
  if (result.scores.empty()) {
    if (!last_failure.ok()) return last_failure;
    return Status::InvalidArgument("empty parameter grid evaluation");
  }
  return result;
}

}  // namespace vup
