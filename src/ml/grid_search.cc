#include "ml/grid_search.h"

#include <limits>
#include <numeric>

#include "ml/metrics.h"

namespace vup {

std::vector<ParamMap> ParamGrid::Combinations() const {
  std::vector<ParamMap> out = {ParamMap{}};
  for (const auto& [name, values] : axes) {
    std::vector<ParamMap> next;
    next.reserve(out.size() * values.size());
    for (const ParamMap& base : out) {
      for (double v : values) {
        ParamMap extended = base;
        extended[name] = v;
        next.push_back(std::move(extended));
      }
    }
    out = std::move(next);
  }
  return out;
}

StatusOr<GridSearchResult> GridSearch(const RegressorFactory& factory,
                                      const ParamGrid& grid, const Matrix& x,
                                      std::span<const double> y,
                                      const GridSearchOptions& options) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("target size does not match design matrix");
  }
  if (options.validation_fraction <= 0.0 ||
      options.validation_fraction >= 1.0) {
    return Status::InvalidArgument("validation_fraction must be in (0, 1)");
  }
  const size_t n = x.rows();
  size_t n_valid = static_cast<size_t>(options.validation_fraction *
                                       static_cast<double>(n));
  n_valid = std::max<size_t>(n_valid, 1);
  if (n_valid >= n) {
    return Status::InvalidArgument("not enough rows for a train/valid split");
  }
  const size_t n_train = n - n_valid;

  std::vector<size_t> train_rows(n_train), valid_rows(n_valid);
  std::iota(train_rows.begin(), train_rows.end(), 0);
  std::iota(valid_rows.begin(), valid_rows.end(), n_train);
  Matrix x_train = x.SelectRows(train_rows);
  Matrix x_valid = x.SelectRows(valid_rows);
  std::vector<double> y_train(y.begin(), y.begin() + static_cast<long>(n_train));
  std::vector<double> y_valid(y.begin() + static_cast<long>(n_train), y.end());

  GridSearchResult result;
  result.best_score = std::numeric_limits<double>::infinity();
  Status last_failure = Status::OK();
  for (const ParamMap& params : grid.Combinations()) {
    std::unique_ptr<Regressor> model = factory(params);
    if (model == nullptr) {
      return Status::InvalidArgument("factory returned null model");
    }
    Status fit = model->Fit(x_train, y_train);
    if (!fit.ok()) {
      last_failure = fit;
      continue;
    }
    StatusOr<std::vector<double>> pred = model->Predict(x_valid);
    if (!pred.ok()) {
      last_failure = pred.status();
      continue;
    }
    double score = 0.0;
    switch (options.metric) {
      case GridMetric::kMae:
        score = MeanAbsoluteError(pred.value(), y_valid);
        break;
      case GridMetric::kRmse:
        score = RootMeanSquaredError(pred.value(), y_valid);
        break;
      case GridMetric::kPercentageError:
        score = PercentageError(pred.value(), y_valid);
        break;
    }
    result.scores.emplace_back(params, score);
    if (score < result.best_score) {
      result.best_score = score;
      result.best_params = params;
    }
  }
  if (result.scores.empty()) {
    if (!last_failure.ok()) return last_failure;
    return Status::InvalidArgument("empty parameter grid evaluation");
  }
  return result;
}

}  // namespace vup
