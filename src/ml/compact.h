#ifndef VUPRED_ML_COMPACT_H_
#define VUPRED_ML_COMPACT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "ml/model.h"
#include "ml/scaler.h"

namespace vup {

/// Compact binary model bundle, `vupc v1`: the fixed-layout, mmap-able
/// twin of the text `vupred-forecaster v1` format, sized for registries
/// holding 10^5..10^6 per-vehicle models where text-bundle parse cost and
/// resident weight bytes dominate serving.
///
/// Layout (little-endian, packed; offsets in bytes):
///
///   0   magic "VUPC"
///   4   u16 version (1)
///   6   u8  algorithm code (2=LR, 3=Lasso, 4=SVR, 5=GB -- the integer
///       values of vup::Algorithm)
///   7   u8  flags (bit0 use_feature_selection, bit1 standardize,
///       bit2 clamp_predictions, bit3 include_target_day_context,
///       bit4 include_lag_context; other bits must be zero)
///   8   u32 lookback_w        20  u32 num_features
///   12  u32 lag_engine_features   24  u32 num_selected_lags
///   16  u32 top_k                 28  u32 num_selected_columns
///   32  u32 selected_lags[], u32 selected_columns[]
///       [standardize] f64 means[nf], f64 scales[nf]
///       zero padding to an 8-byte boundary
///       payload (per algorithm, below)
///   end-4  u32 CRC-32 (IEEE, as the wire frames and MANIFEST) over every
///          preceding byte
///
/// Payloads:
///   LR:    f64 intercept, f64 coef[nf]           (float64: the round-trip
///          contract for LR is BITWISE prediction equality with the text
///          bundle, which float32 weights cannot honor; see DESIGN.md 15)
///   Lasso: f64 intercept, f32 coef[nf]
///   SVR:   u8 kernel type, u32 degree, f64 gamma (resolved, > 0),
///          f64 coef0, f64 bias, u32 num_sv, f64 beta[num_sv],
///          f32 sv[num_sv * nf] row-major
///   GB:    f64 init, f64 learning_rate, u32 num_trees, then per tree:
///          u32 num_nodes + packed 14-byte nodes
///          {u16 feature (0xFFFF = leaf), u16 left, u16 right,
///           f32 threshold, f32 value}; internal nodes must point strictly
///          forward (left/right > own index), so traversal terminates on
///          any bundle that passes validation
///
/// The decoder treats every byte as hostile: size is capped before any
/// allocation, the CRC is verified before the structure is walked, and
/// every count is bounds-checked against both the buffer and hard
/// structural caps. Truncation and bit-rot surface as DataLoss (a wrong
/// magic as InvalidArgument, a newer version as Unimplemented) -- never
/// UB, a crash, or an attacker-sized allocation.
///
/// A decoded model *scores in place*: the returned Regressor reads
/// coefficients, support vectors and tree nodes directly from the bundle
/// bytes (an mmap-ed file stays page-cache backed, never heap-copied).
/// Only O(num_trees) bookkeeping and the scaler vectors are materialized.

inline constexpr uint16_t kCompactVersion = 1;

/// Hard cap on a compact bundle's total size, checked before anything
/// else: 64 MiB holds ~10^6 float32 SVR cells with room to spare.
inline constexpr size_t kMaxCompactBytes = 64ull << 20;

/// Pipeline-shape fields of a compact bundle -- the ml-layer mirror of
/// the ForecasterConfig subset the text format persists. The core layer
/// (VehicleForecaster::SaveCompact/LoadCompact) maps between the two;
/// this struct keeps the codec free of core dependencies.
struct CompactPipelineHeader {
  int algorithm = 0;  // vup::Algorithm integer value; ML algorithms only.
  uint32_t lookback_w = 0;
  uint32_t lag_engine_features = 0;
  uint32_t top_k = 0;
  bool use_feature_selection = false;
  bool standardize = false;
  bool clamp_predictions = false;
  bool include_target_day_context = false;
  bool include_lag_context = false;
  std::vector<uint32_t> selected_lags;
  std::vector<uint32_t> selected_columns;
};

/// A decoded compact bundle: the pipeline header, the materialized scaler
/// (fitted iff header.standardize) and the in-place scoring model.
struct DecodedCompactPipeline {
  CompactPipelineHeader header;
  StandardScaler scaler;
  std::unique_ptr<Regressor> model;
};

/// Serializes a fitted model (LinearRegression, Lasso, Svr or
/// GradientBoosting -- matched by dynamic type) plus its pipeline header
/// and optional scaler into a compact bundle. `scaler` must be fitted
/// with the model's feature width when header.standardize is set (and is
/// ignored otherwise). Unimplemented for model shapes the packed format
/// cannot hold (a GB ensemble wider than 65534 features or deeper than
/// 65535 nodes per tree); FailedPrecondition for an unfitted model.
StatusOr<std::string> EncodeCompactPipeline(
    const CompactPipelineHeader& header, const StandardScaler* scaler,
    const Regressor& model);

/// Validates and decodes a compact bundle. The returned model keeps
/// `owner` alive and reads `bytes` in place, so `bytes` must stay valid
/// as long as `owner` is held (pass the MappedFile, or the heap buffer,
/// that backs them). See the format comment for the error contract.
StatusOr<DecodedCompactPipeline> DecodeCompactPipeline(
    std::span<const uint8_t> bytes, std::shared_ptr<const void> owner);

}  // namespace vup

#endif  // VUPRED_ML_COMPACT_H_
