#ifndef VUPRED_ML_KERNEL_H_
#define VUPRED_ML_KERNEL_H_

#include <cstdint>
#include <list>
#include <span>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "linalg/matrix.h"

namespace vup {

/// Kernel families supported by the SVR. The paper's configuration is RBF.
enum class KernelType : int {
  kRbf = 0,
  kLinear = 1,
  kPolynomial = 2,
};

std::string_view KernelTypeToString(KernelType t);

/// Kernel hyper-parameters.
///   RBF:        k(a,b) = exp(-gamma * ||a-b||^2)
///   Linear:     k(a,b) = a.b
///   Polynomial: k(a,b) = (gamma * a.b + coef0)^degree
/// gamma <= 0 means "auto": 1 / num_features, resolved at evaluation time
/// (the scikit-learn 'auto' convention; on standardized features this keeps
/// RBF distances in a useful range).
struct KernelParams {
  KernelType type = KernelType::kRbf;
  double gamma = -1.0;  // <= 0 -> 1 / num_features.
  double coef0 = 0.0;
  int degree = 3;

  /// Gamma actually used for inputs with `num_features` dimensions.
  double EffectiveGamma(size_t num_features) const;
};

/// k(a, b); sizes must match (checked).
double KernelFunction(const KernelParams& params, std::span<const double> a,
                      std::span<const double> b);

/// Full Gram matrix K_ij = k(row_i, row_j), symmetric.
Matrix KernelMatrix(const KernelParams& params, const Matrix& x);

/// LRU cache of Gram-matrix rows K(i, .) over a fixed design matrix,
/// computed on first access. Lets an SMO solver that only touches a
/// shrinking working set avoid the O(n^2 d) full-Gram precompute while
/// bounding memory to `capacity` rows.
///
/// Determinism: a cached row is bitwise-identical to a fresh recompute
/// (the property the kernel-cache test suite asserts). A miss fills
/// K(i, j) from an already-cached row j where possible -- sound bitwise,
/// not just mathematically, because every supported kernel is exactly
/// symmetric in floating point: RBF squares coordinate differences
/// ((a-b)^2 == (b-a)^2 bitwise), and linear/polynomial reduce to a dot
/// product whose per-term products commute.
///
/// Lifetime of returned spans: a span stays valid while its row is
/// cached. The two most recently accessed rows are never evicted
/// (capacity is clamped to >= 2), so the usual pair-access pattern
/// Row(i) / Row(j) is safe without copying.
///
/// Every hit/miss/eviction also bumps the process-wide counters
/// vupred_kernel_cache_{hits,misses,evictions}_total.
class KernelRowCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  /// `x` must outlive the cache; `params.gamma` should be the resolved
  /// (positive) value so rows do not depend on call-site resolution.
  KernelRowCache(const KernelParams& params, const Matrix& x,
                 size_t capacity);

  /// K(i, .) as a row of length x.rows(); computes and caches on miss.
  std::span<const double> Row(size_t i);

  const Stats& stats() const { return stats_; }
  size_t size() const { return cached_; }
  size_t capacity() const { return capacity_; }

 private:
  /// Per-row slot, directly indexed by row number (the SMO hot path calls
  /// Row() twice per pair step, so lookups must not hash).
  struct Entry {
    std::vector<double> values;  // Empty = not cached.
    std::list<size_t>::iterator lru_pos;
  };

  KernelParams params_;
  const Matrix* x_;
  size_t capacity_;
  size_t cached_ = 0;
  std::list<size_t> lru_;  // Front = most recently used row index.
  std::vector<Entry> entries_;  // One slot per row of x.
  Stats stats_;
};

}  // namespace vup

#endif  // VUPRED_ML_KERNEL_H_
