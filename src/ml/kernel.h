#ifndef VUPRED_ML_KERNEL_H_
#define VUPRED_ML_KERNEL_H_

#include <span>
#include <string_view>

#include "common/statusor.h"
#include "linalg/matrix.h"

namespace vup {

/// Kernel families supported by the SVR. The paper's configuration is RBF.
enum class KernelType : int {
  kRbf = 0,
  kLinear = 1,
  kPolynomial = 2,
};

std::string_view KernelTypeToString(KernelType t);

/// Kernel hyper-parameters.
///   RBF:        k(a,b) = exp(-gamma * ||a-b||^2)
///   Linear:     k(a,b) = a.b
///   Polynomial: k(a,b) = (gamma * a.b + coef0)^degree
/// gamma <= 0 means "auto": 1 / num_features, resolved at evaluation time
/// (the scikit-learn 'auto' convention; on standardized features this keeps
/// RBF distances in a useful range).
struct KernelParams {
  KernelType type = KernelType::kRbf;
  double gamma = -1.0;  // <= 0 -> 1 / num_features.
  double coef0 = 0.0;
  int degree = 3;

  /// Gamma actually used for inputs with `num_features` dimensions.
  double EffectiveGamma(size_t num_features) const;
};

/// k(a, b); sizes must match (checked).
double KernelFunction(const KernelParams& params, std::span<const double> a,
                      std::span<const double> b);

/// Full Gram matrix K_ij = k(row_i, row_j), symmetric.
Matrix KernelMatrix(const KernelParams& params, const Matrix& x);

}  // namespace vup

#endif  // VUPRED_ML_KERNEL_H_
