#include "ml/metrics.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "stats/descriptive.h"

namespace vup {

double PercentageError(std::span<const double> predicted,
                       std::span<const double> actual) {
  VUP_CHECK(predicted.size() == actual.size());
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    num += std::abs(predicted[i] - actual[i]);
    den += std::abs(actual[i]);
  }
  if (den == 0.0) {
    return num == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return 100.0 * num / den;
}

double MeanAbsoluteError(std::span<const double> predicted,
                         std::span<const double> actual) {
  VUP_CHECK(predicted.size() == actual.size());
  if (predicted.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    sum += std::abs(predicted[i] - actual[i]);
  }
  return sum / static_cast<double>(predicted.size());
}

double RootMeanSquaredError(std::span<const double> predicted,
                            std::span<const double> actual) {
  VUP_CHECK(predicted.size() == actual.size());
  if (predicted.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    double d = predicted[i] - actual[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(predicted.size()));
}

double RSquared(std::span<const double> predicted,
                std::span<const double> actual) {
  VUP_CHECK(predicted.size() == actual.size());
  if (predicted.empty()) return 0.0;
  double mean = Mean(actual);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    double r = actual[i] - predicted[i];
    double t = actual[i] - mean;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace vup
