#ifndef VUPRED_ML_SERIALIZE_H_
#define VUPRED_ML_SERIALIZE_H_

#include <iosfwd>
#include <memory>

#include "common/statusor.h"
#include "ml/logistic_regression.h"
#include "ml/model.h"
#include "ml/scaler.h"

namespace vup {

/// Text serialization for trained models, so a per-vehicle model trained
/// overnight can be stored and applied at the edge without retraining.
///
/// Format: a line-oriented `vupred-model v1` block -- human-inspectable,
/// diff-able, platform-independent (doubles round-trip via %.17g). The
/// loader validates structure and sizes and returns InvalidArgument on any
/// malformed input; it never aborts on bad data.
///
/// Supported: LinearRegression, Lasso, SVR, RegressionTree,
/// GradientBoosting (via the Regressor entry points) plus
/// LogisticRegression and StandardScaler (dedicated entry points).
/// Baselines have no state and need no persistence.

/// Writes `model` (must be fitted). Unimplemented for unknown model names.
Status SaveRegressor(const Regressor& model, std::ostream& os);

/// Reads back any model written by SaveRegressor.
StatusOr<std::unique_ptr<Regressor>> LoadRegressor(std::istream& is);

Status SaveScaler(const StandardScaler& scaler, std::ostream& os);
StatusOr<StandardScaler> LoadScaler(std::istream& is);

Status SaveLogistic(const LogisticRegression& model, std::ostream& os);
StatusOr<LogisticRegression> LoadLogistic(std::istream& is);

}  // namespace vup

#endif  // VUPRED_ML_SERIALIZE_H_
