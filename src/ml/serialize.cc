#include "ml/serialize.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/string_util.h"
#include "ml/gradient_boosting.h"
#include "ml/lasso.h"
#include "ml/linear_regression.h"
#include "ml/svr.h"
#include "ml/tree.h"

namespace vup {

namespace {

constexpr const char* kMagic = "vupred-model v1";

/// Upper bounds on deserialized structure sizes. Streams are untrusted
/// (truncated files, bit rot, hostile input): a corrupt count must produce
/// an InvalidArgument, never a multi-gigabyte allocation that turns into
/// std::bad_alloc. The caps sit far above anything the training side
/// produces (thousands of support vectors / nodes at most).
constexpr long long kMaxCount = 1 << 20;         // Rows, nodes, trees.
constexpr long long kMaxMatrixCells = 1 << 26;   // num_sv * num_features.

Status CheckCount(const char* what, long long value, long long max) {
  if (value < 0 || value > max) {
    return Status::InvalidArgument(
        StrFormat("%s out of range: %lld", what, value));
  }
  return Status::OK();
}

void WriteDouble(std::ostream& os, double v) {
  os << StrFormat("%.17g", v);
}

void WriteVector(std::ostream& os, const char* key,
                 std::span<const double> v) {
  os << key << " " << v.size();
  for (double x : v) {
    os << " ";
    WriteDouble(os, x);
  }
  os << "\n";
}

/// Line-oriented reader with typed field extraction.
class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {}

  /// Reads the next non-empty line and splits it on spaces.
  StatusOr<std::vector<std::string>> NextLine() {
    std::string line;
    while (std::getline(is_, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (Trim(line).empty()) continue;
      std::vector<std::string> tokens;
      for (const std::string& t : Split(std::string(Trim(line)), ' ')) {
        if (!t.empty()) tokens.push_back(t);
      }
      return tokens;
    }
    return Status::InvalidArgument("unexpected end of model stream");
  }

  /// Next line must start with `key`; returns the remaining tokens.
  StatusOr<std::vector<std::string>> Expect(std::string_view key) {
    VUP_ASSIGN_OR_RETURN(std::vector<std::string> tokens, NextLine());
    if (tokens.empty() || tokens[0] != key) {
      return Status::InvalidArgument(
          "expected '" + std::string(key) + "', got '" +
          (tokens.empty() ? "" : tokens[0]) + "'");
    }
    tokens.erase(tokens.begin());
    return tokens;
  }

  StatusOr<double> ExpectDouble(std::string_view key) {
    VUP_ASSIGN_OR_RETURN(std::vector<std::string> rest, Expect(key));
    if (rest.size() != 1) {
      return Status::InvalidArgument("expected one value for '" +
                                     std::string(key) + "'");
    }
    return ParseDouble(rest[0]);
  }

  StatusOr<long long> ExpectInt(std::string_view key) {
    VUP_ASSIGN_OR_RETURN(std::vector<std::string> rest, Expect(key));
    if (rest.size() != 1) {
      return Status::InvalidArgument("expected one value for '" +
                                     std::string(key) + "'");
    }
    return ParseInt(rest[0]);
  }

  StatusOr<std::vector<double>> ExpectVector(std::string_view key) {
    VUP_ASSIGN_OR_RETURN(std::vector<std::string> rest, Expect(key));
    if (rest.empty()) {
      return Status::InvalidArgument("missing count for '" +
                                     std::string(key) + "'");
    }
    VUP_ASSIGN_OR_RETURN(long long count, ParseInt(rest[0]));
    if (count < 0 ||
        static_cast<size_t>(count) != rest.size() - 1) {
      return Status::InvalidArgument("vector size mismatch for '" +
                                     std::string(key) + "'");
    }
    std::vector<double> out;
    out.reserve(static_cast<size_t>(count));
    for (size_t i = 1; i < rest.size(); ++i) {
      VUP_ASSIGN_OR_RETURN(double v, ParseDouble(rest[i]));
      out.push_back(v);
    }
    return out;
  }

 private:
  std::istream& is_;
};

Status RequireFitted(const Regressor& model) {
  if (!model.fitted()) {
    return Status::FailedPrecondition("cannot serialize an unfitted model");
  }
  return Status::OK();
}

// ---- Per-type writers -------------------------------------------------

void SaveLinearBody(const LinearRegression& m, std::ostream& os) {
  os << "fit_intercept " << (m.options().fit_intercept ? 1 : 0) << "\n";
  os << "ridge ";
  WriteDouble(os, m.options().ridge);
  os << "\nintercept ";
  WriteDouble(os, m.intercept());
  os << "\n";
  WriteVector(os, "coef", m.coefficients());
}

void SaveLassoBody(const Lasso& m, std::ostream& os) {
  os << "alpha ";
  WriteDouble(os, m.options().alpha);
  os << "\nfit_intercept " << (m.options().fit_intercept ? 1 : 0) << "\n";
  os << "intercept ";
  WriteDouble(os, m.intercept());
  os << "\n";
  WriteVector(os, "coef", m.coefficients());
}

void SaveSvrBody(const Svr& m, std::ostream& os) {
  const Svr::Options& o = m.options();
  os << "c ";
  WriteDouble(os, o.c);
  os << "\nepsilon ";
  WriteDouble(os, o.epsilon);
  os << "\nkernel " << KernelTypeToString(o.kernel.type) << " ";
  WriteDouble(os, o.kernel.gamma);
  os << " ";
  WriteDouble(os, o.kernel.coef0);
  os << " " << o.kernel.degree << "\n";
  os << "num_features " << m.num_features() << "\n";
  os << "bias ";
  WriteDouble(os, m.bias());
  os << "\nnum_sv " << m.support_vectors().rows() << "\n";
  for (size_t r = 0; r < m.support_vectors().rows(); ++r) {
    os << "sv ";
    WriteDouble(os, m.dual_coefficients()[r]);
    for (double v : m.support_vectors().Row(r)) {
      os << " ";
      WriteDouble(os, v);
    }
    os << "\n";
  }
}

void SaveTreeBody(const RegressionTree& m, std::ostream& os) {
  const RegressionTree::Options& o = m.options();
  os << "max_depth " << o.max_depth << "\n";
  os << "min_samples_split " << o.min_samples_split << "\n";
  os << "min_samples_leaf " << o.min_samples_leaf << "\n";
  os << "num_features " << m.num_features() << "\n";
  std::vector<RegressionTree::NodeState> nodes = m.GetState();
  os << "num_nodes " << nodes.size() << "\n";
  for (const RegressionTree::NodeState& n : nodes) {
    os << "node " << n.feature << " ";
    WriteDouble(os, n.threshold);
    os << " " << n.left << " " << n.right << " ";
    WriteDouble(os, n.value);
    os << "\n";
  }
}

void SaveGbBody(const GradientBoosting& m, std::ostream& os) {
  const GradientBoosting::Options& o = m.options();
  os << "learning_rate ";
  WriteDouble(os, o.learning_rate);
  os << "\nloss " << (o.loss == GbLoss::kLeastSquares ? "ls" : "lad")
     << "\n";
  os << "num_features " << m.num_features() << "\n";
  os << "init ";
  WriteDouble(os, m.initial_prediction());
  os << "\nnum_trees " << m.trees().size() << "\n";
  for (const RegressionTree& tree : m.trees()) {
    SaveTreeBody(tree, os);
  }
}

// ---- Per-type readers -------------------------------------------------

StatusOr<std::unique_ptr<Regressor>> LoadLinearBody(Reader& r) {
  LinearRegression::Options o;
  VUP_ASSIGN_OR_RETURN(long long fi, r.ExpectInt("fit_intercept"));
  o.fit_intercept = fi != 0;
  VUP_ASSIGN_OR_RETURN(o.ridge, r.ExpectDouble("ridge"));
  VUP_ASSIGN_OR_RETURN(double intercept, r.ExpectDouble("intercept"));
  VUP_ASSIGN_OR_RETURN(std::vector<double> coef, r.ExpectVector("coef"));
  return std::unique_ptr<Regressor>(new LinearRegression(
      LinearRegression::FromState(o, std::move(coef), intercept)));
}

StatusOr<std::unique_ptr<Regressor>> LoadLassoBody(Reader& r) {
  Lasso::Options o;
  VUP_ASSIGN_OR_RETURN(o.alpha, r.ExpectDouble("alpha"));
  VUP_ASSIGN_OR_RETURN(long long fi, r.ExpectInt("fit_intercept"));
  o.fit_intercept = fi != 0;
  VUP_ASSIGN_OR_RETURN(double intercept, r.ExpectDouble("intercept"));
  VUP_ASSIGN_OR_RETURN(std::vector<double> coef, r.ExpectVector("coef"));
  return std::unique_ptr<Regressor>(
      new Lasso(Lasso::FromState(o, std::move(coef), intercept)));
}

StatusOr<std::unique_ptr<Regressor>> LoadSvrBody(Reader& r) {
  Svr::Options o;
  VUP_ASSIGN_OR_RETURN(o.c, r.ExpectDouble("c"));
  VUP_ASSIGN_OR_RETURN(o.epsilon, r.ExpectDouble("epsilon"));
  VUP_ASSIGN_OR_RETURN(std::vector<std::string> kernel,
                       r.Expect("kernel"));
  if (kernel.size() != 4) {
    return Status::InvalidArgument("malformed kernel line");
  }
  if (kernel[0] == "rbf") {
    o.kernel.type = KernelType::kRbf;
  } else if (kernel[0] == "linear") {
    o.kernel.type = KernelType::kLinear;
  } else if (kernel[0] == "poly") {
    o.kernel.type = KernelType::kPolynomial;
  } else {
    return Status::InvalidArgument("unknown kernel: " + kernel[0]);
  }
  VUP_ASSIGN_OR_RETURN(o.kernel.gamma, ParseDouble(kernel[1]));
  VUP_ASSIGN_OR_RETURN(o.kernel.coef0, ParseDouble(kernel[2]));
  VUP_ASSIGN_OR_RETURN(long long degree, ParseInt(kernel[3]));
  o.kernel.degree = static_cast<int>(degree);

  VUP_ASSIGN_OR_RETURN(long long num_features, r.ExpectInt("num_features"));
  VUP_ASSIGN_OR_RETURN(double bias, r.ExpectDouble("bias"));
  VUP_ASSIGN_OR_RETURN(long long num_sv, r.ExpectInt("num_sv"));
  if (num_features <= 0 || num_sv < 0) {
    return Status::InvalidArgument("invalid SVR dimensions");
  }
  VUP_RETURN_IF_ERROR(CheckCount("num_features", num_features, kMaxCount));
  VUP_RETURN_IF_ERROR(CheckCount("num_sv", num_sv, kMaxCount));
  if (num_sv * num_features > kMaxMatrixCells) {
    return Status::InvalidArgument("support-vector matrix too large");
  }
  Matrix support(static_cast<size_t>(num_sv),
                 static_cast<size_t>(num_features));
  std::vector<double> beta;
  beta.reserve(static_cast<size_t>(num_sv));
  for (long long i = 0; i < num_sv; ++i) {
    VUP_ASSIGN_OR_RETURN(std::vector<std::string> sv, r.Expect("sv"));
    if (sv.size() != static_cast<size_t>(num_features) + 1) {
      return Status::InvalidArgument("support vector size mismatch");
    }
    VUP_ASSIGN_OR_RETURN(double b, ParseDouble(sv[0]));
    beta.push_back(b);
    for (long long c = 0; c < num_features; ++c) {
      VUP_ASSIGN_OR_RETURN(double v,
                           ParseDouble(sv[static_cast<size_t>(c) + 1]));
      support(static_cast<size_t>(i), static_cast<size_t>(c)) = v;
    }
  }
  return std::unique_ptr<Regressor>(new Svr(
      Svr::FromState(o, std::move(support), std::move(beta), bias,
                     static_cast<size_t>(num_features))));
}

StatusOr<RegressionTree> LoadTreeFromBody(Reader& r) {
  RegressionTree::Options o;
  VUP_ASSIGN_OR_RETURN(long long max_depth, r.ExpectInt("max_depth"));
  o.max_depth = static_cast<int>(max_depth);
  VUP_ASSIGN_OR_RETURN(long long mss, r.ExpectInt("min_samples_split"));
  o.min_samples_split = static_cast<size_t>(mss);
  VUP_ASSIGN_OR_RETURN(long long msl, r.ExpectInt("min_samples_leaf"));
  o.min_samples_leaf = static_cast<size_t>(msl);
  VUP_ASSIGN_OR_RETURN(long long num_features, r.ExpectInt("num_features"));
  VUP_ASSIGN_OR_RETURN(long long num_nodes, r.ExpectInt("num_nodes"));
  if (num_features < 0 || num_nodes < 0) {
    return Status::InvalidArgument("invalid tree dimensions");
  }
  VUP_RETURN_IF_ERROR(CheckCount("num_features", num_features, kMaxCount));
  VUP_RETURN_IF_ERROR(CheckCount("num_nodes", num_nodes, kMaxCount));
  std::vector<RegressionTree::NodeState> nodes;
  nodes.reserve(static_cast<size_t>(num_nodes));
  for (long long i = 0; i < num_nodes; ++i) {
    VUP_ASSIGN_OR_RETURN(std::vector<std::string> n, r.Expect("node"));
    if (n.size() != 5) {
      return Status::InvalidArgument("malformed node line");
    }
    RegressionTree::NodeState node;
    VUP_ASSIGN_OR_RETURN(long long feature, ParseInt(n[0]));
    node.feature = static_cast<int>(feature);
    VUP_ASSIGN_OR_RETURN(node.threshold, ParseDouble(n[1]));
    VUP_ASSIGN_OR_RETURN(long long left, ParseInt(n[2]));
    node.left = static_cast<int>(left);
    VUP_ASSIGN_OR_RETURN(long long right, ParseInt(n[3]));
    node.right = static_cast<int>(right);
    VUP_ASSIGN_OR_RETURN(node.value, ParseDouble(n[4]));
    // Structural validation on internal nodes: the split feature must be
    // a real column (PredictOne indexes the feature row unchecked) and
    // children must point strictly forward inside the node array -- the
    // layout Grow emits -- so a corrupt stream can neither read out of
    // bounds nor send traversal into a cycle.
    if (node.feature >= 0) {
      if (feature >= num_features) {
        return Status::InvalidArgument("node split feature out of range");
      }
      if (node.left <= i || node.right <= i || node.left >= num_nodes ||
          node.right >= num_nodes) {
        return Status::InvalidArgument("node child index out of range");
      }
    }
    nodes.push_back(node);
  }
  return RegressionTree::FromState(o, nodes,
                                   static_cast<size_t>(num_features));
}

StatusOr<std::unique_ptr<Regressor>> LoadTreeBody(Reader& r) {
  VUP_ASSIGN_OR_RETURN(RegressionTree tree, LoadTreeFromBody(r));
  return std::unique_ptr<Regressor>(new RegressionTree(std::move(tree)));
}

StatusOr<std::unique_ptr<Regressor>> LoadGbBody(Reader& r) {
  GradientBoosting::Options o;
  VUP_ASSIGN_OR_RETURN(o.learning_rate, r.ExpectDouble("learning_rate"));
  VUP_ASSIGN_OR_RETURN(std::vector<std::string> loss, r.Expect("loss"));
  if (loss.size() != 1 || (loss[0] != "ls" && loss[0] != "lad")) {
    return Status::InvalidArgument("malformed loss line");
  }
  o.loss = loss[0] == "ls" ? GbLoss::kLeastSquares
                           : GbLoss::kLeastAbsoluteDeviation;
  VUP_ASSIGN_OR_RETURN(long long num_features, r.ExpectInt("num_features"));
  VUP_ASSIGN_OR_RETURN(double init, r.ExpectDouble("init"));
  VUP_ASSIGN_OR_RETURN(long long num_trees, r.ExpectInt("num_trees"));
  if (num_features <= 0 || num_trees < 0) {
    return Status::InvalidArgument("invalid ensemble dimensions");
  }
  VUP_RETURN_IF_ERROR(CheckCount("num_features", num_features, kMaxCount));
  VUP_RETURN_IF_ERROR(CheckCount("num_trees", num_trees, kMaxCount));
  o.n_estimators = static_cast<size_t>(num_trees);
  std::vector<RegressionTree> trees;
  trees.reserve(static_cast<size_t>(num_trees));
  for (long long i = 0; i < num_trees; ++i) {
    VUP_ASSIGN_OR_RETURN(RegressionTree tree, LoadTreeFromBody(r));
    trees.push_back(std::move(tree));
  }
  return std::unique_ptr<Regressor>(
      new GradientBoosting(GradientBoosting::FromState(
          o, init, std::move(trees), static_cast<size_t>(num_features))));
}

}  // namespace

Status SaveRegressor(const Regressor& model, std::ostream& os) {
  VUP_RETURN_IF_ERROR(RequireFitted(model));
  const std::string name = model.name();
  os << kMagic << "\n";
  os << "type " << name << "\n";
  if (name == "LR") {
    SaveLinearBody(static_cast<const LinearRegression&>(model), os);
  } else if (name == "Lasso") {
    SaveLassoBody(static_cast<const Lasso&>(model), os);
  } else if (name == "SVR") {
    SaveSvrBody(static_cast<const Svr&>(model), os);
  } else if (name == "Tree") {
    SaveTreeBody(static_cast<const RegressionTree&>(model), os);
  } else if (name == "GB") {
    SaveGbBody(static_cast<const GradientBoosting&>(model), os);
  } else {
    return Status::Unimplemented("no serializer for model '" + name + "'");
  }
  os << "end\n";
  if (!os) return Status::DataLoss("stream write failed");
  return Status::OK();
}

StatusOr<std::unique_ptr<Regressor>> LoadRegressor(std::istream& is) {
  Reader r(is);
  VUP_ASSIGN_OR_RETURN(std::vector<std::string> magic, r.NextLine());
  if (Join(magic, " ") != kMagic) {
    return Status::InvalidArgument("not a vupred-model v1 stream");
  }
  VUP_ASSIGN_OR_RETURN(std::vector<std::string> type, r.Expect("type"));
  if (type.size() != 1) {
    return Status::InvalidArgument("malformed type line");
  }
  StatusOr<std::unique_ptr<Regressor>> model =
      Status::Unimplemented("no loader for model '" + type[0] + "'");
  if (type[0] == "LR") {
    model = LoadLinearBody(r);
  } else if (type[0] == "Lasso") {
    model = LoadLassoBody(r);
  } else if (type[0] == "SVR") {
    model = LoadSvrBody(r);
  } else if (type[0] == "Tree") {
    model = LoadTreeBody(r);
  } else if (type[0] == "GB") {
    model = LoadGbBody(r);
  }
  VUP_RETURN_IF_ERROR(model.status());
  VUP_ASSIGN_OR_RETURN(std::vector<std::string> end, r.NextLine());
  if (end.size() != 1 || end[0] != "end") {
    return Status::InvalidArgument("missing end marker");
  }
  return model;
}

Status SaveScaler(const StandardScaler& scaler, std::ostream& os) {
  if (!scaler.fitted()) {
    return Status::FailedPrecondition("cannot serialize an unfitted scaler");
  }
  os << kMagic << "\n";
  os << "type Scaler\n";
  WriteVector(os, "means", scaler.means());
  WriteVector(os, "scales", scaler.scales());
  os << "end\n";
  if (!os) return Status::DataLoss("stream write failed");
  return Status::OK();
}

StatusOr<StandardScaler> LoadScaler(std::istream& is) {
  Reader r(is);
  VUP_ASSIGN_OR_RETURN(std::vector<std::string> magic, r.NextLine());
  if (Join(magic, " ") != kMagic) {
    return Status::InvalidArgument("not a vupred-model v1 stream");
  }
  VUP_ASSIGN_OR_RETURN(std::vector<std::string> type, r.Expect("type"));
  if (type.size() != 1 || type[0] != "Scaler") {
    return Status::InvalidArgument("stream does not hold a Scaler");
  }
  VUP_ASSIGN_OR_RETURN(std::vector<double> means, r.ExpectVector("means"));
  VUP_ASSIGN_OR_RETURN(std::vector<double> scales,
                       r.ExpectVector("scales"));
  if (means.size() != scales.size()) {
    return Status::InvalidArgument("means/scales size mismatch");
  }
  for (double s : scales) {
    // Fit never produces a non-positive or non-finite scale (constant
    // columns get scale 1); such a value can only come from corruption and
    // would poison every standardized feature downstream.
    if (!(s > 0.0) || !std::isfinite(s)) {
      return Status::InvalidArgument("scaler scale must be finite and > 0");
    }
  }
  VUP_ASSIGN_OR_RETURN(std::vector<std::string> end, r.NextLine());
  if (end.size() != 1 || end[0] != "end") {
    return Status::InvalidArgument("missing end marker");
  }
  return StandardScaler::FromState(std::move(means), std::move(scales));
}

Status SaveLogistic(const LogisticRegression& model, std::ostream& os) {
  if (!model.fitted()) {
    return Status::FailedPrecondition("cannot serialize an unfitted model");
  }
  os << kMagic << "\n";
  os << "type Logistic\n";
  os << "l2 ";
  WriteDouble(os, model.options().l2);
  os << "\nfit_intercept " << (model.options().fit_intercept ? 1 : 0)
     << "\n";
  os << "intercept ";
  WriteDouble(os, model.intercept());
  os << "\n";
  WriteVector(os, "coef", model.coefficients());
  os << "end\n";
  if (!os) return Status::DataLoss("stream write failed");
  return Status::OK();
}

StatusOr<LogisticRegression> LoadLogistic(std::istream& is) {
  Reader r(is);
  VUP_ASSIGN_OR_RETURN(std::vector<std::string> magic, r.NextLine());
  if (Join(magic, " ") != kMagic) {
    return Status::InvalidArgument("not a vupred-model v1 stream");
  }
  VUP_ASSIGN_OR_RETURN(std::vector<std::string> type, r.Expect("type"));
  if (type.size() != 1 || type[0] != "Logistic") {
    return Status::InvalidArgument("stream does not hold a Logistic model");
  }
  LogisticRegression::Options o;
  VUP_ASSIGN_OR_RETURN(o.l2, r.ExpectDouble("l2"));
  VUP_ASSIGN_OR_RETURN(long long fi, r.ExpectInt("fit_intercept"));
  o.fit_intercept = fi != 0;
  VUP_ASSIGN_OR_RETURN(double intercept, r.ExpectDouble("intercept"));
  VUP_ASSIGN_OR_RETURN(std::vector<double> coef, r.ExpectVector("coef"));
  VUP_ASSIGN_OR_RETURN(std::vector<std::string> end, r.NextLine());
  if (end.size() != 1 || end[0] != "end") {
    return Status::InvalidArgument("missing end marker");
  }
  return LogisticRegression::FromState(o, std::move(coef), intercept);
}

}  // namespace vup
