#ifndef VUPRED_ML_METRICS_H_
#define VUPRED_ML_METRICS_H_

#include <span>

namespace vup {

/// The paper's Percentage Error (Section 4.1):
///   PE = 100 * sum_i |pred_i - actual_i| / sum_i |actual_i|.
/// Returns 0 when both sums are zero and +infinity when only the
/// denominator is zero. Sizes must match (checked).
double PercentageError(std::span<const double> predicted,
                       std::span<const double> actual);

/// Mean absolute error.
double MeanAbsoluteError(std::span<const double> predicted,
                         std::span<const double> actual);

/// Root mean squared error.
double RootMeanSquaredError(std::span<const double> predicted,
                            std::span<const double> actual);

/// Coefficient of determination R^2 = 1 - SS_res / SS_tot.
/// Degenerate case: when the actual series is constant (SS_tot == 0),
/// returns 1.0 for exact predictions and 0.0 otherwise.
double RSquared(std::span<const double> predicted,
                std::span<const double> actual);

}  // namespace vup

#endif  // VUPRED_ML_METRICS_H_
