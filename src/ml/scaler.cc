#include "ml/scaler.h"

#include <cmath>

namespace vup {

Status StandardScaler::Fit(const Matrix& x) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("cannot fit scaler on empty matrix");
  }
  const size_t n = x.rows();
  const size_t d = x.cols();
  means_.assign(d, 0.0);
  scales_.assign(d, 1.0);
  for (size_t c = 0; c < d; ++c) {
    double sum = 0.0;
    for (size_t r = 0; r < n; ++r) sum += x(r, c);
    means_[c] = sum / static_cast<double>(n);
  }
  for (size_t c = 0; c < d; ++c) {
    double ss = 0.0;
    for (size_t r = 0; r < n; ++r) {
      double dlt = x(r, c) - means_[c];
      ss += dlt * dlt;
    }
    // Population stddev, like sklearn's StandardScaler.
    double sd = std::sqrt(ss / static_cast<double>(n));
    scales_[c] = sd > 0.0 ? sd : 1.0;
  }
  fitted_ = true;
  return Status::OK();
}

StatusOr<Matrix> StandardScaler::Transform(const Matrix& x) const {
  if (!fitted_) return Status::FailedPrecondition("scaler not fitted");
  if (x.cols() != means_.size()) {
    return Status::InvalidArgument("column count differs from fit");
  }
  Matrix out(x.rows(), x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = (x(r, c) - means_[c]) / scales_[c];
    }
  }
  return out;
}

StatusOr<std::vector<double>> StandardScaler::TransformRow(
    std::span<const double> row) const {
  if (!fitted_) return Status::FailedPrecondition("scaler not fitted");
  if (row.size() != means_.size()) {
    return Status::InvalidArgument("feature count differs from fit");
  }
  std::vector<double> out(row.size());
  for (size_t c = 0; c < row.size(); ++c) {
    out[c] = (row[c] - means_[c]) / scales_[c];
  }
  return out;
}

StatusOr<Matrix> StandardScaler::FitTransform(const Matrix& x) {
  VUP_RETURN_IF_ERROR(Fit(x));
  return Transform(x);
}

}  // namespace vup
