#ifndef VUPRED_ML_LASSO_H_
#define VUPRED_ML_LASSO_H_

#include <memory>
#include <optional>
#include <vector>

#include "ml/model.h"

namespace vup {

/// L1-regularized least squares (Lasso) via cyclic coordinate descent with
/// soft thresholding, minimizing the scikit-learn objective
///   (1 / (2n)) * ||y - Xw - b||^2 + alpha * ||w||_1.
/// The paper's configuration is alpha = 0.1.
class Lasso : public Regressor {
 public:
  struct Options {
    double alpha = 0.1;
    size_t max_iter = 1000;
    /// Convergence: max absolute coefficient change per sweep.
    double tol = 1e-6;
    bool fit_intercept = true;
  };

  Lasso() = default;
  explicit Lasso(Options options) : options_(options) {}

  /// Reconstructs a fitted model from serialized state (ml/serialize.h).
  static Lasso FromState(Options options, std::vector<double> coefficients,
                         double intercept) {
    Lasso m(options);
    m.coef_ = std::move(coefficients);
    m.intercept_ = intercept;
    m.fitted_ = true;
    return m;
  }

  const Options& options() const { return options_; }

  /// Arms the next Fit to start coordinate descent from `coefficients`
  /// (the previous adjacent window's solution) instead of zero: the
  /// residual is recomputed against the new data, the nonzero (active)
  /// coordinates are swept to convergence first, and full verification
  /// sweeps over every coordinate follow until one of them makes no
  /// tol-sized move -- the cold path's exact convergence criterion, so
  /// warm and cold fits share the same fixed points. Consumed by the next
  /// Fit whatever its outcome; silently ignored (cold fit) when the
  /// column count differs.
  void WarmStart(std::vector<double> coefficients);

  Status Fit(const Matrix& x, std::span<const double> y) override;
  StatusOr<double> PredictOne(std::span<const double> features) const override;
  std::string name() const override { return "Lasso"; }
  std::unique_ptr<Regressor> Clone() const override {
    return std::make_unique<Lasso>(options_);
  }
  bool fitted() const override { return fitted_; }
  size_t ResidentBytes() const override {
    return sizeof(*this) + coef_.capacity() * sizeof(double) +
           (warm_coef_ ? warm_coef_->capacity() * sizeof(double) : 0);
  }

  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }
  /// Sweeps run in the last Fit (active-set and full sweeps both count).
  size_t iterations_run() const { return iterations_run_; }
  /// True when the last Fit consumed a WarmStart payload.
  bool last_fit_warm_started() const { return last_fit_warm_started_; }

 private:
  Options options_;
  bool fitted_ = false;
  std::vector<double> coef_;
  double intercept_ = 0.0;
  size_t iterations_run_ = 0;
  bool last_fit_warm_started_ = false;
  std::optional<std::vector<double>> warm_coef_;
};

}  // namespace vup

#endif  // VUPRED_ML_LASSO_H_
