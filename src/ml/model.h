#ifndef VUPRED_ML_MODEL_H_
#define VUPRED_ML_MODEL_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "linalg/matrix.h"

namespace vup {

/// Interface of every trainable regressor in the library (the scikit-learn
/// fit/predict contract). Implementations are deterministic given their
/// options (stochastic ones take an explicit seed in their options struct).
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on design matrix `x` (rows = samples) and targets `y`.
  /// Refitting an already-fitted model restarts from scratch.
  /// InvalidArgument on shape mismatch or empty input.
  virtual Status Fit(const Matrix& x, std::span<const double> y) = 0;

  /// Predicts one sample. FailedPrecondition when not fitted;
  /// InvalidArgument when the feature count differs from training.
  virtual StatusOr<double> PredictOne(std::span<const double> features) const = 0;

  /// Batch prediction; default implementation loops PredictOne.
  virtual StatusOr<std::vector<double>> Predict(const Matrix& x) const {
    std::vector<double> out;
    out.reserve(x.rows());
    for (size_t r = 0; r < x.rows(); ++r) {
      VUP_ASSIGN_OR_RETURN(double v, PredictOne(x.Row(r)));
      out.push_back(v);
    }
    return out;
  }

  /// Short algorithm name for reports ("LR", "Lasso", "SVR", "GB").
  virtual std::string name() const = 0;

  /// Approximate heap bytes a fitted model keeps resident (weights,
  /// support vectors, tree nodes), for byte-budgeted caches. Models that
  /// score in place over externally owned bytes (compact bundles) report
  /// only their own bookkeeping: mapped pages are clean and reclaimable,
  /// so they are not charged against a heap budget.
  virtual size_t ResidentBytes() const { return 0; }

  /// Fresh unfitted copy with identical hyper-parameters.
  virtual std::unique_ptr<Regressor> Clone() const = 0;

  virtual bool fitted() const = 0;
};

}  // namespace vup

#endif  // VUPRED_ML_MODEL_H_
