#ifndef VUPRED_ML_GRID_SEARCH_H_
#define VUPRED_ML_GRID_SEARCH_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ml/model.h"

namespace vup {

/// One hyper-parameter assignment (name -> value).
using ParamMap = std::map<std::string, double>;

/// Builds an unfitted model from a parameter assignment.
using RegressorFactory =
    std::function<std::unique_ptr<Regressor>(const ParamMap&)>;

/// Cartesian hyper-parameter grid. The paper runs "a grid search to fit the
/// model to the analyzed data distribution" (Section 4.2).
struct ParamGrid {
  std::map<std::string, std::vector<double>> axes;

  /// All combinations, lexicographic in axis name then value order.
  /// An empty grid yields one empty assignment.
  std::vector<ParamMap> Combinations() const;
};

enum class GridMetric : int {
  kMae = 0,
  kRmse = 1,
  kPercentageError = 2,
};

struct GridSearchOptions {
  /// Trailing fraction of rows held out for validation. The split is
  /// time-ordered (no shuffling): these are forecasting problems.
  double validation_fraction = 0.25;
  GridMetric metric = GridMetric::kMae;
  /// Worker threads for combination evaluation. 1 evaluates serially; N > 1
  /// fits combinations concurrently on a ThreadPool. Results are folded in
  /// combination order either way, so scores, best_params (earliest
  /// strictly-lowest score wins) and the all-failed error status are
  /// identical to the serial run. Models are constructed by the factory on
  /// the calling thread; only Fit/Predict run on workers, so the factory
  /// itself need not be thread-safe (the models it returns must not share
  /// mutable state).
  size_t jobs = 1;
};

struct GridSearchResult {
  ParamMap best_params;
  double best_score = 0.0;
  /// Every evaluated combination with its validation score.
  std::vector<std::pair<ParamMap, double>> scores;
};

/// Evaluates every grid combination with a time-ordered hold-out split and
/// returns the lowest-scoring one (all metrics are errors: lower is
/// better). Combinations whose Fit fails are skipped; if all fail, the last
/// failure status is returned.
StatusOr<GridSearchResult> GridSearch(const RegressorFactory& factory,
                                      const ParamGrid& grid, const Matrix& x,
                                      std::span<const double> y,
                                      const GridSearchOptions& options);

}  // namespace vup

#endif  // VUPRED_ML_GRID_SEARCH_H_
