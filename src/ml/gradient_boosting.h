#ifndef VUPRED_ML_GRADIENT_BOOSTING_H_
#define VUPRED_ML_GRADIENT_BOOSTING_H_

#include <memory>
#include <optional>
#include <vector>

#include "ml/model.h"
#include "ml/tree.h"

namespace vup {

/// Loss functions for gradient boosting. The paper uses LAD
/// ("loss = lad" in its scikit-learn configuration).
enum class GbLoss : int {
  kLeastSquares = 0,
  kLeastAbsoluteDeviation = 1,
};

/// Gradient-boosted regression trees (Friedman's algorithm).
///
/// Paper configuration: learning_rate=0.1, n_estimators=100, max_depth=1
/// (stumps), loss=lad. For LAD the trees are grown on the gradient signs
/// and each leaf is relabeled with the median residual of its training
/// rows, matching the scikit-learn implementation.
class GradientBoosting : public Regressor {
 public:
  struct Options {
    double learning_rate = 0.1;
    size_t n_estimators = 100;
    int max_depth = 1;
    size_t min_samples_leaf = 1;
    GbLoss loss = GbLoss::kLeastAbsoluteDeviation;
    /// Row fraction sampled (without replacement) per stage; 1.0 disables
    /// stochastic boosting.
    double subsample = 1.0;
    uint64_t seed = 17;
  };

  GradientBoosting() = default;
  explicit GradientBoosting(Options options) : options_(options) {}

  /// Reconstructs a fitted ensemble from serialized state (ml/serialize.h).
  static GradientBoosting FromState(Options options, double init,
                                    std::vector<RegressionTree> trees,
                                    size_t num_features) {
    GradientBoosting m(options);
    m.init_ = init;
    m.trees_ = std::move(trees);
    m.num_features_ = num_features;
    m.fitted_ = true;
    return m;
  }

  const Options& options() const { return options_; }
  const std::vector<RegressionTree>& trees() const { return trees_; }
  size_t num_features() const { return num_features_; }

  /// Arms the next Fit to continue boosting from a previous ensemble
  /// instead of stage 0: `trees` and `init` are adopted as-is, the
  /// ensemble prediction is re-evaluated on the new training window, and
  /// `extra_stages` additional stages are appended with the same stage
  /// arithmetic as a cold fit (so a warm fit of an adjacent window
  /// corrects the ensemble where the one shifted record changed the
  /// residuals). Consumed by the next Fit whatever its outcome; silently
  /// ignored (cold fit) when `num_features` differs from the new design
  /// matrix or `trees` is empty. training_loss_per_stage() then covers
  /// only the appended stages.
  void WarmStart(std::vector<RegressionTree> trees, double init,
                 size_t num_features, size_t extra_stages);

  Status Fit(const Matrix& x, std::span<const double> y) override;
  StatusOr<double> PredictOne(std::span<const double> features) const override;
  std::string name() const override { return "GB"; }
  std::unique_ptr<Regressor> Clone() const override {
    return std::make_unique<GradientBoosting>(options_);
  }
  bool fitted() const override { return fitted_; }
  size_t ResidentBytes() const override {
    size_t bytes = sizeof(*this) +
                   (trees_.capacity() - trees_.size()) *
                       sizeof(RegressionTree) +
                   stage_losses_.capacity() * sizeof(double);
    for (const RegressionTree& tree : trees_) bytes += tree.ResidentBytes();
    return bytes;
  }

  /// Training loss after each stage (length n_estimators); useful for
  /// verifying monotone decrease and for early-stopping studies.
  const std::vector<double>& training_loss_per_stage() const {
    return stage_losses_;
  }
  size_t num_stages() const { return trees_.size(); }
  double initial_prediction() const { return init_; }
  /// True when the last Fit consumed a WarmStart payload.
  bool last_fit_warm_started() const { return last_fit_warm_started_; }

 private:
  struct WarmRequest {
    std::vector<RegressionTree> trees;
    double init = 0.0;
    size_t num_features = 0;
    size_t extra_stages = 0;
  };

  Options options_;
  bool fitted_ = false;
  size_t num_features_ = 0;
  double init_ = 0.0;
  std::vector<RegressionTree> trees_;
  std::vector<double> stage_losses_;
  bool last_fit_warm_started_ = false;
  std::optional<WarmRequest> warm_request_;
};

}  // namespace vup

#endif  // VUPRED_ML_GRADIENT_BOOSTING_H_
