#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "stats/descriptive.h"

namespace vup {

RegressionTree RegressionTree::FromState(Options options,
                                         const std::vector<NodeState>& nodes,
                                         size_t num_features) {
  RegressionTree tree(options);
  tree.nodes_.reserve(nodes.size());
  for (const NodeState& n : nodes) {
    Node node;
    node.feature = n.feature;
    node.threshold = n.threshold;
    node.left = n.left;
    node.right = n.right;
    node.value = n.value;
    tree.nodes_.push_back(node);
  }
  tree.num_features_ = num_features;
  tree.fitted_ = !tree.nodes_.empty();
  return tree;
}

std::vector<RegressionTree::NodeState> RegressionTree::GetState() const {
  std::vector<NodeState> out;
  out.reserve(nodes_.size());
  for (const Node& n : nodes_) {
    out.push_back({n.feature, n.threshold, n.left, n.right, n.value});
  }
  return out;
}

Status RegressionTree::Fit(const Matrix& x, std::span<const double> y) {
  fitted_ = false;
  nodes_.clear();
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (y.size() != x.rows()) {
    return Status::InvalidArgument("target size does not match design matrix");
  }
  if (options_.max_depth < 0) {
    return Status::InvalidArgument("max_depth must be >= 0");
  }
  num_features_ = x.cols();
  std::vector<size_t> indices(x.rows());
  std::iota(indices.begin(), indices.end(), 0);
  Grow(x, y, indices, 0);
  fitted_ = true;
  return Status::OK();
}

int RegressionTree::Grow(const Matrix& x, std::span<const double> y,
                         std::vector<size_t>& indices, int depth) {
  VUP_CHECK(!indices.empty());
  const size_t n = indices.size();

  double sum = 0.0;
  for (size_t i : indices) sum += y[i];
  double mean = sum / static_cast<double>(n);

  int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<size_t>(node_index)].value = mean;

  if (depth >= options_.max_depth || n < options_.min_samples_split) {
    return node_index;
  }

  // Find the best (feature, threshold) split by SSE reduction. With the
  // node SSE fixed, minimizing child SSE == maximizing
  // sum_L^2 / n_L + sum_R^2 / n_R.
  double best_gain = -std::numeric_limits<double>::infinity();
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<size_t> sorted = indices;
  for (size_t f = 0; f < x.cols(); ++f) {
    std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
      return x(a, f) < x(b, f);
    });
    double left_sum = 0.0;
    for (size_t pos = 0; pos + 1 < n; ++pos) {
      left_sum += y[sorted[pos]];
      // Can't split between equal feature values.
      if (x(sorted[pos], f) == x(sorted[pos + 1], f)) continue;
      size_t n_left = pos + 1;
      size_t n_right = n - n_left;
      if (n_left < options_.min_samples_leaf ||
          n_right < options_.min_samples_leaf) {
        continue;
      }
      double right_sum = sum - left_sum;
      double gain = left_sum * left_sum / static_cast<double>(n_left) +
                    right_sum * right_sum / static_cast<double>(n_right);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold =
            0.5 * (x(sorted[pos], f) + x(sorted[pos + 1], f));
      }
    }
  }

  // Split only on a strict SSE reduction: child score must beat the
  // parent's sum^2/n. Otherwise stay a leaf (all rows identical, or the
  // leaf-size constraints forbid every split point).
  double parent_score = sum * sum / static_cast<double>(n);
  if (best_feature < 0 || best_gain <= parent_score + 1e-12) {
    return node_index;
  }

  std::vector<size_t> left_idx, right_idx;
  left_idx.reserve(n);
  right_idx.reserve(n);
  for (size_t i : indices) {
    if (x(i, static_cast<size_t>(best_feature)) <= best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  VUP_CHECK(!left_idx.empty() && !right_idx.empty());

  int left = Grow(x, y, left_idx, depth + 1);
  int right = Grow(x, y, right_idx, depth + 1);
  Node& node = nodes_[static_cast<size_t>(node_index)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

int RegressionTree::LeafIndex(std::span<const double> features) const {
  int idx = 0;
  while (nodes_[static_cast<size_t>(idx)].feature >= 0) {
    const Node& node = nodes_[static_cast<size_t>(idx)];
    idx = features[static_cast<size_t>(node.feature)] <= node.threshold
              ? node.left
              : node.right;
  }
  return idx;
}

StatusOr<double> RegressionTree::PredictOne(
    std::span<const double> features) const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  if (features.size() != num_features_) {
    return Status::InvalidArgument("feature count differs from training");
  }
  return nodes_[static_cast<size_t>(LeafIndex(features))].value;
}

Status RegressionTree::RelabelLeaves(const Matrix& x,
                                     std::span<const double> values,
                                     bool use_median) {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  if (x.rows() != values.size() || x.cols() != num_features_) {
    return Status::InvalidArgument("relabel data shape mismatch");
  }
  std::vector<std::vector<double>> per_leaf(nodes_.size());
  for (size_t r = 0; r < x.rows(); ++r) {
    per_leaf[static_cast<size_t>(LeafIndex(x.Row(r)))].push_back(values[r]);
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].feature >= 0 || per_leaf[i].empty()) continue;
    nodes_[i].value =
        use_median ? Median(per_leaf[i]) : Mean(per_leaf[i]);
  }
  return Status::OK();
}

size_t RegressionTree::num_leaves() const {
  size_t count = 0;
  for (const Node& n : nodes_) {
    if (n.feature < 0) ++count;
  }
  return count;
}

int RegressionTree::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the node array.
  std::vector<std::pair<int, int>> stack = {{0, 0}};
  int max_depth = 0;
  while (!stack.empty()) {
    auto [idx, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& n = nodes_[static_cast<size_t>(idx)];
    if (n.feature >= 0) {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  return max_depth;
}

}  // namespace vup
