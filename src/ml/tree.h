#ifndef VUPRED_ML_TREE_H_
#define VUPRED_ML_TREE_H_

#include <memory>
#include <vector>

#include "ml/model.h"

namespace vup {

/// CART-style regression tree with exact greedy splits minimizing the sum of
/// squared errors. max_depth == 1 yields the decision stumps the paper's
/// Gradient Boosting configuration uses.
class RegressionTree : public Regressor {
 public:
  struct Options {
    int max_depth = 3;
    size_t min_samples_split = 2;
    size_t min_samples_leaf = 1;
  };

  /// Serializable node state (mirrors the internal layout; index 0 is the
  /// root, feature < 0 marks a leaf).
  struct NodeState {
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;
  };

  RegressionTree() = default;
  explicit RegressionTree(Options options) : options_(options) {}

  /// Reconstructs a fitted tree from serialized state (ml/serialize.h).
  static RegressionTree FromState(Options options,
                                  const std::vector<NodeState>& nodes,
                                  size_t num_features);

  /// Current node state, for serialization. Empty when unfitted.
  std::vector<NodeState> GetState() const;

  const Options& options() const { return options_; }
  size_t num_features() const { return num_features_; }

  Status Fit(const Matrix& x, std::span<const double> y) override;
  StatusOr<double> PredictOne(std::span<const double> features) const override;
  std::string name() const override { return "Tree"; }
  std::unique_ptr<Regressor> Clone() const override {
    return std::make_unique<RegressionTree>(options_);
  }
  bool fitted() const override { return fitted_; }
  size_t ResidentBytes() const override {
    return sizeof(*this) + nodes_.capacity() * sizeof(Node);
  }

  /// Replaces each leaf's value with a statistic (median or mean) of
  /// `values` over the training rows routed to that leaf. This is the
  /// leaf-relabeling step LAD gradient boosting needs: trees are grown on
  /// gradient signs but leaves predict the median residual.
  /// `x` must be the training matrix the tree was fitted on.
  Status RelabelLeaves(const Matrix& x, std::span<const double> values,
                       bool use_median);

  size_t num_leaves() const;
  int depth() const;

 private:
  struct Node {
    int feature = -1;  // -1 == leaf.
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;
  };

  /// Recursively grows the subtree over `indices`; returns its node index.
  int Grow(const Matrix& x, std::span<const double> y,
           std::vector<size_t>& indices, int depth);

  /// Index of the leaf a sample lands in.
  int LeafIndex(std::span<const double> features) const;

  Options options_;
  bool fitted_ = false;
  size_t num_features_ = 0;
  std::vector<Node> nodes_;
};

}  // namespace vup

#endif  // VUPRED_ML_TREE_H_
