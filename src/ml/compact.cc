#include "ml/compact.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "common/crc32.h"
#include "common/string_util.h"
#include "linalg/matrix.h"
#include "ml/gradient_boosting.h"
#include "ml/kernel.h"
#include "ml/lasso.h"
#include "ml/linear_regression.h"
#include "ml/svr.h"
#include "ml/tree.h"

namespace vup {
namespace {

// Algorithm codes: the integer values of vup::Algorithm (core layer).
constexpr uint8_t kAlgLr = 2;
constexpr uint8_t kAlgLasso = 3;
constexpr uint8_t kAlgSvr = 4;
constexpr uint8_t kAlgGb = 5;

constexpr uint8_t kFlagFeatureSelection = 1u << 0;
constexpr uint8_t kFlagStandardize = 1u << 1;
constexpr uint8_t kFlagClampPredictions = 1u << 2;
constexpr uint8_t kFlagTargetDayContext = 1u << 3;
constexpr uint8_t kFlagLagContext = 1u << 4;
constexpr uint8_t kKnownFlags =
    kFlagFeatureSelection | kFlagStandardize | kFlagClampPredictions |
    kFlagTargetDayContext | kFlagLagContext;

// Structural caps, enforced on decode before any count-sized allocation
// and on encode so every emitted bundle decodes. kMaxStructural matches
// the text loader's cap for the same fields.
constexpr uint32_t kMaxStructural = 1u << 16;
constexpr uint32_t kMaxCompactFeatures = 1u << 20;
constexpr uint64_t kMaxSvCells = 1ull << 26;  // num_sv * num_features.
constexpr uint32_t kMaxTrees = 1u << 16;
constexpr uint32_t kMaxNodesPerTree = 0xFFFF;  // Indices must fit u16.
constexpr uint16_t kLeafFeature = 0xFFFF;
constexpr size_t kGbNodeBytes = 14;  // u16 x3 + f32 x2, packed.

constexpr size_t kFixedHeaderBytes = 32;
constexpr size_t kMinBundleBytes = kFixedHeaderBytes + 4;  // + CRC.

// ---- little-endian put/get; byte assembly only, so unaligned and
// ---- strict-aliasing safe on any host.

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutF32(std::string* out, float v) {
  PutU32(out, std::bit_cast<uint32_t>(v));
}

void PutF64(std::string* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (uint16_t{p[1]} << 8));
}

uint32_t GetU32(const uint8_t* p) {
  return p[0] | (uint32_t{p[1]} << 8) | (uint32_t{p[2]} << 16) |
         (uint32_t{p[3]} << 24);
}

uint64_t GetU64(const uint8_t* p) {
  return GetU32(p) | (uint64_t{GetU32(p + 4)} << 32);
}

float GetF32(const uint8_t* p) { return std::bit_cast<float>(GetU32(p)); }

double GetF64(const uint8_t* p) { return std::bit_cast<double>(GetU64(p)); }

// Bounds-checked reader over the validated region (header..payload, CRC
// excluded). Every Take failure means the structure claims more bytes
// than the bundle holds.
struct Cursor {
  const uint8_t* p;
  const uint8_t* end;
  const uint8_t* base;  // Buffer start, for alignment padding.

  bool Take(size_t n, const uint8_t** out) {
    if (static_cast<size_t>(end - p) < n) return false;
    *out = p;
    p += n;
    return true;
  }
  bool U8(uint8_t* v) {
    const uint8_t* q;
    if (!Take(1, &q)) return false;
    *v = *q;
    return true;
  }
  bool U32(uint32_t* v) {
    const uint8_t* q;
    if (!Take(4, &q)) return false;
    *v = GetU32(q);
    return true;
  }
  bool F64(double* v) {
    const uint8_t* q;
    if (!Take(8, &q)) return false;
    *v = GetF64(q);
    return true;
  }
};

Status Truncated(const char* what) {
  return Status::DataLoss(StrFormat(
      "compact bundle truncated or corrupt inside %s", what));
}

// In-place scoring model over a decoded bundle's payload bytes. Replicates
// each algorithm's PredictOne arithmetic exactly (see the parity notes per
// branch); keeps `owner` alive so mapped bytes outlive the model.
class CompactModel final : public Regressor {
 public:
  struct TreeRef {
    const uint8_t* nodes = nullptr;
    uint32_t count = 0;
  };

  Status Fit(const Matrix&, std::span<const double>) override {
    return Status::FailedPrecondition(
        "compact model bundles are read-only; train via the text pipeline");
  }

  StatusOr<double> PredictOne(
      std::span<const double> features) const override {
    if (features.size() != nf_) {
      return Status::InvalidArgument("feature count differs from training");
    }
    switch (alg_) {
      case kAlgLr: {
        // Bitwise contract with LinearRegression::PredictOne: same f64
        // coefficients, and on the (guaranteed-by-format) aligned path
        // the very same Dot() the text model calls.
        if (coef_aligned_) {
          std::span<const double> coef(
              reinterpret_cast<const double*>(coef_), nf_);
          return intercept_ + Dot(features, coef);
        }
        double sum = 0.0;
        for (size_t i = 0; i < nf_; ++i) {
          sum += features[i] * GetF64(coef_ + 8 * i);
        }
        return intercept_ + sum;
      }
      case kAlgLasso: {
        double sum = 0.0;
        for (size_t i = 0; i < nf_; ++i) {
          sum += features[i] * static_cast<double>(GetF32(coef_ + 4 * i));
        }
        return intercept_ + sum;
      }
      case kAlgSvr: {
        double sum = bias_;
        for (size_t s = 0; s < num_sv_; ++s) {
          sum += GetF64(beta_ + 8 * s) * Kernel(sv_ + 4 * nf_ * s, features);
        }
        return sum;
      }
      case kAlgGb: {
        double sum = init_;
        for (const TreeRef& tree : trees_) {
          uint32_t idx = 0;
          for (;;) {
            const uint8_t* n = tree.nodes + kGbNodeBytes * idx;
            const uint16_t feature = GetU16(n);
            if (feature == kLeafFeature) {
              sum += learning_rate_ * static_cast<double>(GetF32(n + 10));
              break;
            }
            // Decode validated left/right > idx and < count, so this
            // walk strictly advances and terminates.
            idx = features[feature] <= static_cast<double>(GetF32(n + 6))
                      ? GetU16(n + 2)
                      : GetU16(n + 4);
          }
        }
        return sum;
      }
    }
    return Status::Internal("corrupt compact model state");
  }

  std::string name() const override {
    switch (alg_) {
      case kAlgLr: return "LR";
      case kAlgLasso: return "Lasso";
      case kAlgSvr: return "SVR";
      default: return "GB";
    }
  }

  // Compact models never re-enter training, so the only meaningful clone
  // is another in-place reader over the same (shared-ownership) bytes.
  std::unique_ptr<Regressor> Clone() const override {
    return std::make_unique<CompactModel>(*this);
  }

  bool fitted() const override { return true; }

  // Weights stay in the mapped bundle (clean, reclaimable pages); only
  // this object's bookkeeping is heap-resident.
  size_t ResidentBytes() const override {
    return sizeof(*this) + trees_.capacity() * sizeof(TreeRef);
  }

  // Populated by the decoder.
  std::shared_ptr<const void> owner_;
  uint8_t alg_ = 0;
  size_t nf_ = 0;
  bool coef_aligned_ = false;
  double intercept_ = 0.0;
  const uint8_t* coef_ = nullptr;  // LR: f64[nf]; Lasso: f32[nf].
  // SVR.
  KernelType kernel_type_ = KernelType::kRbf;
  int degree_ = 3;
  double gamma_ = 0.0;
  double coef0_ = 0.0;
  double bias_ = 0.0;
  size_t num_sv_ = 0;
  const uint8_t* beta_ = nullptr;  // f64[num_sv].
  const uint8_t* sv_ = nullptr;    // f32[num_sv * nf], row-major.
  // GB.
  double init_ = 0.0;
  double learning_rate_ = 0.0;
  std::vector<TreeRef> trees_;

 private:
  // KernelFunction(params, support_row, features) with the support row
  // read as float32 from the bundle; same operation order per family.
  double Kernel(const uint8_t* sv_row, std::span<const double> b) const {
    switch (kernel_type_) {
      case KernelType::kRbf: {
        double sq = 0.0;
        for (size_t i = 0; i < nf_; ++i) {
          const double d = static_cast<double>(GetF32(sv_row + 4 * i)) - b[i];
          sq += d * d;
        }
        return std::exp(-gamma_ * sq);
      }
      case KernelType::kLinear:
        return RowDot(sv_row, b);
      case KernelType::kPolynomial:
        return std::pow(gamma_ * RowDot(sv_row, b) + coef0_, degree_);
    }
    return 0.0;
  }

  double RowDot(const uint8_t* sv_row, std::span<const double> b) const {
    double sum = 0.0;
    for (size_t i = 0; i < nf_; ++i) {
      sum += static_cast<double>(GetF32(sv_row + 4 * i)) * b[i];
    }
    return sum;
  }
};

void PadTo8(std::string* out) {
  while (out->size() % 8 != 0) out->push_back('\0');
}

uint8_t EncodeFlags(const CompactPipelineHeader& header) {
  uint8_t flags = 0;
  if (header.use_feature_selection) flags |= kFlagFeatureSelection;
  if (header.standardize) flags |= kFlagStandardize;
  if (header.clamp_predictions) flags |= kFlagClampPredictions;
  if (header.include_target_day_context) flags |= kFlagTargetDayContext;
  if (header.include_lag_context) flags |= kFlagLagContext;
  return flags;
}

}  // namespace

StatusOr<std::string> EncodeCompactPipeline(
    const CompactPipelineHeader& header, const StandardScaler* scaler,
    const Regressor& model) {
  if (!model.fitted()) {
    return Status::FailedPrecondition("cannot encode an unfitted model");
  }

  // Resolve algorithm + feature width from the dynamic model type.
  const auto* lr = dynamic_cast<const LinearRegression*>(&model);
  const auto* lasso = dynamic_cast<const Lasso*>(&model);
  const auto* svr = dynamic_cast<const Svr*>(&model);
  const auto* gb = dynamic_cast<const GradientBoosting*>(&model);
  uint8_t alg = 0;
  size_t nf = 0;
  if (lr != nullptr) {
    alg = kAlgLr;
    nf = lr->coefficients().size();
  } else if (lasso != nullptr) {
    alg = kAlgLasso;
    nf = lasso->coefficients().size();
  } else if (svr != nullptr) {
    alg = kAlgSvr;
    nf = svr->num_features();
  } else if (gb != nullptr) {
    alg = kAlgGb;
    nf = gb->num_features();
  } else {
    return Status::Unimplemented(
        "compact format supports LR/Lasso/SVR/GB models, not " +
        model.name());
  }

  if (nf == 0 || nf > kMaxCompactFeatures) {
    return Status::InvalidArgument(
        StrFormat("model feature width %zu outside compact range", nf));
  }
  if (header.lookback_w == 0 || header.lookback_w > kMaxStructural ||
      header.lag_engine_features > kMaxStructural ||
      header.top_k > kMaxStructural ||
      header.selected_lags.size() > kMaxStructural ||
      header.selected_columns.size() > kMaxStructural) {
    return Status::InvalidArgument(
        "pipeline header field outside compact structural caps");
  }
  if (header.standardize) {
    if (scaler == nullptr || !scaler->fitted() ||
        scaler->means().size() != nf || scaler->scales().size() != nf) {
      return Status::InvalidArgument(
          "standardize set but scaler missing or width-mismatched");
    }
  }

  std::string out;
  out.reserve(kFixedHeaderBytes +
              4 * (header.selected_lags.size() +
                   header.selected_columns.size()) +
              (header.standardize ? 16 * nf : 0) + 16 * nf + 64);
  out.append("VUPC", 4);
  PutU16(&out, kCompactVersion);
  out.push_back(static_cast<char>(alg));
  out.push_back(static_cast<char>(EncodeFlags(header)));
  PutU32(&out, header.lookback_w);
  PutU32(&out, header.lag_engine_features);
  PutU32(&out, header.top_k);
  PutU32(&out, static_cast<uint32_t>(nf));
  PutU32(&out, static_cast<uint32_t>(header.selected_lags.size()));
  PutU32(&out, static_cast<uint32_t>(header.selected_columns.size()));
  for (uint32_t lag : header.selected_lags) PutU32(&out, lag);
  for (uint32_t col : header.selected_columns) PutU32(&out, col);
  if (header.standardize) {
    for (double m : scaler->means()) PutF64(&out, m);
    for (double s : scaler->scales()) PutF64(&out, s);
  }
  PadTo8(&out);

  if (lr != nullptr) {
    PutF64(&out, lr->intercept());
    for (double c : lr->coefficients()) PutF64(&out, c);
  } else if (lasso != nullptr) {
    PutF64(&out, lasso->intercept());
    for (double c : lasso->coefficients()) {
      PutF32(&out, static_cast<float>(c));
    }
  } else if (svr != nullptr) {
    const Matrix& support = svr->support_vectors();
    const std::vector<double>& beta = svr->dual_coefficients();
    if (support.rows() != beta.size() || support.cols() != nf) {
      return Status::Internal("SVR support/beta shape mismatch");
    }
    const uint64_t cells = static_cast<uint64_t>(support.rows()) * nf;
    if (cells > kMaxSvCells) {
      return Status::Unimplemented(
          "SVR support-vector matrix too large for compact format");
    }
    const KernelParams& kernel = svr->options().kernel;
    out.push_back(static_cast<char>(static_cast<int>(kernel.type)));
    PutU32(&out, static_cast<uint32_t>(kernel.degree));
    // Resolved (positive) gamma: decode must not re-derive "auto".
    PutF64(&out, kernel.EffectiveGamma(nf));
    PutF64(&out, kernel.coef0);
    PutF64(&out, svr->bias());
    PutU32(&out, static_cast<uint32_t>(support.rows()));
    for (double b : beta) PutF64(&out, b);
    for (size_t r = 0; r < support.rows(); ++r) {
      std::span<const double> row = support.Row(r);
      for (size_t c = 0; c < nf; ++c) {
        PutF32(&out, static_cast<float>(row[c]));
      }
    }
  } else {
    if (nf >= kLeafFeature) {
      return Status::Unimplemented(
          "GB feature index does not fit the compact u16 node layout");
    }
    const std::vector<RegressionTree>& trees = gb->trees();
    if (trees.size() > kMaxTrees) {
      return Status::Unimplemented("GB ensemble too large for compact format");
    }
    PutF64(&out, gb->initial_prediction());
    PutF64(&out, gb->options().learning_rate);
    PutU32(&out, static_cast<uint32_t>(trees.size()));
    for (const RegressionTree& tree : trees) {
      const std::vector<RegressionTree::NodeState> nodes = tree.GetState();
      if (nodes.empty()) {
        return Status::FailedPrecondition("GB ensemble holds unfitted tree");
      }
      if (nodes.size() > kMaxNodesPerTree) {
        return Status::Unimplemented(
            "GB tree too deep for the compact u16 node layout");
      }
      PutU32(&out, static_cast<uint32_t>(nodes.size()));
      for (size_t i = 0; i < nodes.size(); ++i) {
        const RegressionTree::NodeState& n = nodes[i];
        if (n.feature < 0) {
          PutU16(&out, kLeafFeature);
          PutU16(&out, 0);
          PutU16(&out, 0);
        } else {
          if (static_cast<size_t>(n.feature) >= nf ||
              n.left <= static_cast<int>(i) ||
              n.right <= static_cast<int>(i) ||
              static_cast<size_t>(n.left) >= nodes.size() ||
              static_cast<size_t>(n.right) >= nodes.size()) {
            return Status::Internal("GB tree node state is not well-formed");
          }
          PutU16(&out, static_cast<uint16_t>(n.feature));
          PutU16(&out, static_cast<uint16_t>(n.left));
          PutU16(&out, static_cast<uint16_t>(n.right));
        }
        PutF32(&out, static_cast<float>(n.threshold));
        PutF32(&out, static_cast<float>(n.value));
      }
    }
  }

  if (out.size() + 4 > kMaxCompactBytes) {
    return Status::InvalidArgument("encoded compact bundle exceeds size cap");
  }
  PutU32(&out, Crc32(out.data(), out.size()));
  return out;
}

StatusOr<DecodedCompactPipeline> DecodeCompactPipeline(
    std::span<const uint8_t> bytes, std::shared_ptr<const void> owner) {
  if (bytes.size() > kMaxCompactBytes) {
    return Status::DataLoss("compact bundle implausibly large");
  }
  if (bytes.size() < kMinBundleBytes) {
    return Status::DataLoss("compact bundle truncated (shorter than header)");
  }
  if (std::memcmp(bytes.data(), "VUPC", 4) != 0) {
    return Status::InvalidArgument("not a compact model bundle (bad magic)");
  }
  const uint16_t version = GetU16(bytes.data() + 4);
  if (version != kCompactVersion) {
    return Status::Unimplemented(
        StrFormat("compact bundle version %u not supported (decoder "
                  "understands %u)",
                  version, kCompactVersion));
  }
  // CRC first: one pass rejects truncation and bit-rot before any
  // structural field is trusted.
  const uint32_t stored_crc = GetU32(bytes.data() + bytes.size() - 4);
  const uint32_t actual_crc = Crc32(bytes.data(), bytes.size() - 4);
  if (stored_crc != actual_crc) {
    return Status::DataLoss(
        StrFormat("compact bundle CRC mismatch (stored %u, computed %u): "
                  "truncated or bit-rotted",
                  stored_crc, actual_crc));
  }

  Cursor cur{bytes.data() + 6, bytes.data() + bytes.size() - 4, bytes.data()};
  uint8_t alg = 0;
  uint8_t flags = 0;
  uint32_t lookback_w = 0, lag_engine = 0, top_k = 0;
  uint32_t nf32 = 0, num_lags = 0, num_cols = 0;
  if (!cur.U8(&alg) || !cur.U8(&flags) || !cur.U32(&lookback_w) ||
      !cur.U32(&lag_engine) || !cur.U32(&top_k) || !cur.U32(&nf32) ||
      !cur.U32(&num_lags) || !cur.U32(&num_cols)) {
    return Truncated("fixed header");
  }
  if (alg != kAlgLr && alg != kAlgLasso && alg != kAlgSvr && alg != kAlgGb) {
    return Status::DataLoss(
        StrFormat("compact bundle algorithm code %u unknown", alg));
  }
  if ((flags & ~kKnownFlags) != 0) {
    return Status::DataLoss("compact bundle carries unknown flag bits");
  }
  if (lookback_w == 0 || lookback_w > kMaxStructural ||
      lag_engine > kMaxStructural || top_k > kMaxStructural ||
      num_lags > kMaxStructural || num_cols > kMaxStructural) {
    return Status::DataLoss("compact bundle structural field outside caps");
  }
  if (nf32 == 0 || nf32 > kMaxCompactFeatures) {
    return Status::DataLoss("compact bundle feature width outside caps");
  }
  const size_t nf = nf32;

  DecodedCompactPipeline decoded;
  decoded.header.algorithm = alg;
  decoded.header.lookback_w = lookback_w;
  decoded.header.lag_engine_features = lag_engine;
  decoded.header.top_k = top_k;
  decoded.header.use_feature_selection = (flags & kFlagFeatureSelection) != 0;
  decoded.header.standardize = (flags & kFlagStandardize) != 0;
  decoded.header.clamp_predictions = (flags & kFlagClampPredictions) != 0;
  decoded.header.include_target_day_context =
      (flags & kFlagTargetDayContext) != 0;
  decoded.header.include_lag_context = (flags & kFlagLagContext) != 0;

  decoded.header.selected_lags.reserve(num_lags);
  for (uint32_t i = 0; i < num_lags; ++i) {
    uint32_t lag = 0;
    if (!cur.U32(&lag)) return Truncated("selected lags");
    decoded.header.selected_lags.push_back(lag);
  }
  decoded.header.selected_columns.reserve(num_cols);
  for (uint32_t i = 0; i < num_cols; ++i) {
    uint32_t col = 0;
    if (!cur.U32(&col)) return Truncated("selected columns");
    decoded.header.selected_columns.push_back(col);
  }

  if (decoded.header.standardize) {
    std::vector<double> means(nf), scales(nf);
    for (size_t i = 0; i < nf; ++i) {
      if (!cur.F64(&means[i])) return Truncated("scaler means");
    }
    for (size_t i = 0; i < nf; ++i) {
      if (!cur.F64(&scales[i])) return Truncated("scaler scales");
    }
    for (size_t i = 0; i < nf; ++i) {
      if (!std::isfinite(means[i]) || !std::isfinite(scales[i]) ||
          scales[i] == 0.0) {
        return Status::DataLoss("compact bundle scaler state is invalid");
      }
    }
    decoded.scaler = StandardScaler::FromState(std::move(means),
                                               std::move(scales));
  }

  // Zero padding to the f64-aligned payload.
  while ((cur.p - cur.base) % 8 != 0) {
    uint8_t pad = 0;
    if (!cur.U8(&pad)) return Truncated("alignment padding");
    if (pad != 0) {
      return Status::DataLoss("compact bundle padding bytes are nonzero");
    }
  }

  auto model = std::make_unique<CompactModel>();
  model->owner_ = std::move(owner);
  model->alg_ = alg;
  model->nf_ = nf;

  switch (alg) {
    case kAlgLr: {
      const uint8_t* weights;
      if (!cur.F64(&model->intercept_) || !cur.Take(8 * nf, &weights)) {
        return Truncated("LR weights");
      }
      model->coef_ = weights;
      model->coef_aligned_ =
          reinterpret_cast<uintptr_t>(weights) % alignof(double) == 0;
      break;
    }
    case kAlgLasso: {
      const uint8_t* weights;
      if (!cur.F64(&model->intercept_) || !cur.Take(4 * nf, &weights)) {
        return Truncated("Lasso weights");
      }
      model->coef_ = weights;
      break;
    }
    case kAlgSvr: {
      uint8_t kernel_type = 0;
      uint32_t degree = 0, num_sv = 0;
      if (!cur.U8(&kernel_type) || !cur.U32(&degree) ||
          !cur.F64(&model->gamma_) || !cur.F64(&model->coef0_) ||
          !cur.F64(&model->bias_) || !cur.U32(&num_sv)) {
        return Truncated("SVR header");
      }
      if (kernel_type > static_cast<uint8_t>(KernelType::kPolynomial)) {
        return Status::DataLoss("compact bundle SVR kernel type unknown");
      }
      if (!std::isfinite(model->gamma_) || model->gamma_ <= 0.0) {
        return Status::DataLoss("compact bundle SVR gamma not resolved");
      }
      const uint64_t cells = static_cast<uint64_t>(num_sv) * nf;
      if (cells > kMaxSvCells) {
        return Status::DataLoss("compact bundle SVR matrix outside caps");
      }
      const uint8_t* beta;
      const uint8_t* sv;
      if (!cur.Take(8 * static_cast<size_t>(num_sv), &beta) ||
          !cur.Take(4 * static_cast<size_t>(cells), &sv)) {
        return Truncated("SVR vectors");
      }
      model->kernel_type_ = static_cast<KernelType>(kernel_type);
      model->degree_ = static_cast<int>(degree);
      model->num_sv_ = num_sv;
      model->beta_ = beta;
      model->sv_ = sv;
      break;
    }
    case kAlgGb: {
      uint32_t num_trees = 0;
      if (!cur.F64(&model->init_) || !cur.F64(&model->learning_rate_) ||
          !cur.U32(&num_trees)) {
        return Truncated("GB header");
      }
      if (num_trees > kMaxTrees) {
        return Status::DataLoss("compact bundle GB ensemble outside caps");
      }
      model->trees_.reserve(num_trees);
      for (uint32_t t = 0; t < num_trees; ++t) {
        uint32_t num_nodes = 0;
        if (!cur.U32(&num_nodes)) return Truncated("GB tree header");
        if (num_nodes == 0 || num_nodes > kMaxNodesPerTree) {
          return Status::DataLoss("compact bundle GB tree outside caps");
        }
        const uint8_t* nodes;
        if (!cur.Take(kGbNodeBytes * static_cast<size_t>(num_nodes),
                      &nodes)) {
          return Truncated("GB tree nodes");
        }
        // Internal nodes must point strictly forward so PredictOne's walk
        // terminates on any accepted bundle; leaves must look like the
        // encoder's (zero children).
        for (uint32_t i = 0; i < num_nodes; ++i) {
          const uint8_t* n = nodes + kGbNodeBytes * i;
          const uint16_t feature = GetU16(n);
          const uint16_t left = GetU16(n + 2);
          const uint16_t right = GetU16(n + 4);
          if (feature == kLeafFeature) {
            if (left != 0 || right != 0) {
              return Status::DataLoss("compact bundle GB leaf has children");
            }
          } else if (feature >= nf || left <= i || right <= i ||
                     left >= num_nodes || right >= num_nodes) {
            return Status::DataLoss(
                "compact bundle GB node topology is invalid");
          }
        }
        model->trees_.push_back(CompactModel::TreeRef{nodes, num_nodes});
      }
      break;
    }
  }

  if (cur.p != cur.end) {
    return Status::DataLoss("compact bundle carries trailing bytes");
  }
  decoded.model = std::move(model);
  return decoded;
}

}  // namespace vup
