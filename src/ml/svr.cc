#include "ml/svr.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.h"

namespace vup {

namespace {

/// Objective change of moving the pair by delta:
///   dW = 1/2 * eta * delta^2 + (f_i - f_j) * delta
///        + eps * (|bi + delta| - |bi|) + eps * (|bj - delta| - |bj|).
double PairObjectiveDelta(double delta, double eta, double f_diff, double eps,
                          double bi, double bj) {
  return 0.5 * eta * delta * delta + f_diff * delta +
         eps * (std::abs(bi + delta) - std::abs(bi)) +
         eps * (std::abs(bj - delta) - std::abs(bj));
}

/// Analytic minimizer of the pair subproblem over [lo, hi]. Candidates:
/// stationary points per sign region of (bi + delta, bj - delta), plus the
/// kinks and the box ends. Shared by the cold and warm paths with the same
/// arithmetic and evaluation order, so factoring it out leaves the cold
/// path bitwise-unchanged.
void BestPairStep(double eta, double f_diff, double eps, double bi, double bj,
                  double lo, double hi, double* best_delta,
                  double* best_obj) {
  double candidates[8];
  int num_candidates = 0;
  for (double sa : {-1.0, 1.0}) {
    for (double sb : {-1.0, 1.0}) {
      candidates[num_candidates++] = -(f_diff + eps * (sa - sb)) / eta;
    }
  }
  candidates[num_candidates++] = -bi;  // bi + delta == 0.
  candidates[num_candidates++] = bj;   // bj - delta == 0.
  candidates[num_candidates++] = lo;
  candidates[num_candidates++] = hi;

  *best_delta = 0.0;
  *best_obj = 0.0;
  for (int ci = 0; ci < num_candidates; ++ci) {
    double delta = std::clamp(candidates[ci], lo, hi);
    double obj = PairObjectiveDelta(delta, eta, f_diff, eps, bi, bj);
    if (obj < *best_obj) {
      *best_obj = obj;
      *best_delta = delta;
    }
  }
}

}  // namespace

void Svr::WarmStart(std::vector<double> beta0, size_t kernel_cache_rows,
                    size_t max_sweeps) {
  warm_request_ = WarmRequest{std::move(beta0), kernel_cache_rows, max_sweeps};
}

Status Svr::Fit(const Matrix& x, std::span<const double> y) {
  WarmRequest warm;
  const bool have_warm = warm_request_.has_value();
  if (have_warm) warm = std::move(*warm_request_);
  warm_request_.reset();
  fitted_ = false;
  fit_stats_ = FitStats{};
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (y.size() != x.rows()) {
    return Status::InvalidArgument("target size does not match design matrix");
  }
  if (options_.c <= 0.0) {
    return Status::InvalidArgument("C must be positive");
  }
  if (options_.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be non-negative");
  }

  const size_t n = x.rows();
  num_features_ = x.cols();
  const double c = options_.c;
  const double eps = options_.epsilon;

  KernelParams kernel = options_.kernel;
  if (kernel.gamma <= 0.0) {
    kernel.gamma = kernel.EffectiveGamma(num_features_);
  }

  std::vector<double> beta(n, 0.0);
  // f_i = sum_k beta_k K_ik - y_i (gradient of the smooth part).
  std::vector<double> f(n);
  for (size_t i = 0; i < n; ++i) f[i] = -y[i];

  if (have_warm && warm.beta0.size() == n) {
    fit_stats_.warm_started = true;
    beta = std::move(warm.beta0);
    // Sanitize the starting point: clamp to the box, then repair
    // sum(beta) = 0 by taking the imbalance back out, newest rows first.
    double imbalance = 0.0;
    for (double& b : beta) {
      b = std::clamp(b, -c, c);
      imbalance += b;
    }
    for (size_t i = n; i-- > 0 && imbalance != 0.0;) {
      double take = std::clamp(imbalance, beta[i] - c, beta[i] + c);
      beta[i] -= take;
      imbalance -= take;
    }
    SolveWarm(x, y, kernel, beta, f, warm.kernel_cache_rows,
              warm.max_sweeps == 0 ? options_.max_sweeps : warm.max_sweeps);
  } else {
    Matrix k = KernelMatrix(kernel, x);
    sweeps_run_ = 0;
    for (size_t sweep = 0; sweep < options_.max_sweeps; ++sweep) {
      ++sweeps_run_;
      double sweep_improvement = 0.0;
      for (size_t i = 0; i < n; ++i) {
        // Partner: the index with the largest |f_i - f_k| (steepest pair).
        size_t j = i;
        double best_gap = 0.0;
        for (size_t kk = 0; kk < n; ++kk) {
          double gap = std::abs(f[i] - f[kk]);
          if (kk != i && gap > best_gap) {
            best_gap = gap;
            j = kk;
          }
        }
        if (j == i) continue;

        double eta = k(i, i) + k(j, j) - 2.0 * k(i, j);
        if (eta <= 1e-12) continue;
        double f_diff = f[i] - f[j];
        double bi = beta[i];
        double bj = beta[j];

        // Feasible delta range from the box constraints.
        double lo = std::max(-c - bi, bj - c);
        double hi = std::min(c - bi, bj + c);
        if (lo >= hi) continue;

        double best_delta = 0.0;
        double best_obj = 0.0;
        BestPairStep(eta, f_diff, eps, bi, bj, lo, hi, &best_delta,
                     &best_obj);
        if (best_obj >= -1e-14 || best_delta == 0.0) continue;

        beta[i] += best_delta;
        beta[j] -= best_delta;
        for (size_t kk = 0; kk < n; ++kk) {
          f[kk] += best_delta * (k(i, kk) - k(j, kk));
        }
        sweep_improvement += -best_obj;
      }
      if (sweep_improvement < options_.tol) break;
    }
  }

  FinishFit(x, y, beta, f, kernel);
  return Status::OK();
}

void Svr::SolveWarm(const Matrix& x, std::span<const double> y,
                    const KernelParams& kernel, std::vector<double>& beta,
                    std::vector<double>& f, size_t kernel_cache_rows,
                    size_t max_sweeps) {
  (void)y;  // f already carries -y; y itself is not needed here.
  const size_t n = x.rows();
  const double c = options_.c;
  const double eps = options_.epsilon;
  KernelRowCache cache(kernel, x, kernel_cache_rows);

  // f = K beta - y from the nonzero starting coefficients. A near-optimal
  // beta0 from the adjacent window is sparse (support vectors only), so
  // this touches far fewer kernel rows than a full Gram precompute.
  for (size_t k = 0; k < n; ++k) {
    if (beta[k] == 0.0) continue;
    std::span<const double> row = cache.Row(k);
    for (size_t i = 0; i < n; ++i) f[i] += beta[k] * row[i];
  }

  // First-order KKT machinery: up/down are the one-sided directional
  // derivatives of the dual for increasing/decreasing one coordinate; a
  // pair (i up, j down) is improving iff up(i) + down(j) < 0. kkt_tol =
  // sqrt(tol) bounds the violation any "converged" exit may leave behind
  // (DESIGN.md section 14 documents the resulting equivalence tolerance).
  const double upper = c * (1.0 - 1e-9);
  const double lower = -upper;
  const double kkt_tol = std::sqrt(options_.tol);
  auto up_cost = [&](size_t i) {
    return f[i] + (beta[i] < -1e-12 ? -eps : eps);
  };
  auto down_cost = [&](size_t i) {
    return -f[i] + (beta[i] > 1e-12 ? -eps : eps);
  };
  auto min_costs = [&](bool all_rows, std::span<const char> active,
                       double* m_up, double* m_down) {
    *m_up = std::numeric_limits<double>::infinity();
    *m_down = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      if (!all_rows && !active[i]) continue;
      if (beta[i] < upper) *m_up = std::min(*m_up, up_cost(i));
      if (beta[i] > lower) *m_down = std::min(*m_down, down_cost(i));
    }
  };

  std::vector<char> active(n, 1);
  size_t num_active = n;
  constexpr size_t kShrinkInterval = 4;

  sweeps_run_ = 0;
  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (sweep % kShrinkInterval == 0 && num_active > 2) {
      // Shrink rows that cannot belong to any improving pair: i is
      // useful as the "up" member only if it can move up and its best
      // possible partner (bounded by m_down) still makes the pair
      // improving beyond kkt_tol; symmetrically for "down". Running this
      // at sweep 0 is the point of a warm start: a near-optimal beta0
      // leaves only a handful of violating rows active, so early sweeps
      // cost O(|active|^2) instead of O(n^2).
      double m_up = 0.0;
      double m_down = 0.0;
      min_costs(/*all_rows=*/false, active, &m_up, &m_down);
      for (size_t i = 0; i < n && num_active > 2; ++i) {
        if (!active[i]) continue;
        bool up_useful = beta[i] < upper && up_cost(i) + m_down < -kkt_tol;
        bool down_useful =
            beta[i] > lower && down_cost(i) + m_up < -kkt_tol;
        if (!up_useful && !down_useful) {
          active[i] = 0;
          --num_active;
        }
      }
      fit_stats_.shrunk_rows_peak =
          std::max(fit_stats_.shrunk_rows_peak, n - num_active);
    }

    ++sweeps_run_;
    double sweep_improvement = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      // Partner: largest |f_i - f_k| within the working set.
      size_t j = i;
      double best_gap = 0.0;
      for (size_t kk = 0; kk < n; ++kk) {
        if (!active[kk]) continue;
        double gap = std::abs(f[i] - f[kk]);
        if (kk != i && gap > best_gap) {
          best_gap = gap;
          j = kk;
        }
      }
      if (j == i) continue;

      std::span<const double> row_i = cache.Row(i);
      std::span<const double> row_j = cache.Row(j);
      double eta = row_i[i] + row_j[j] - 2.0 * row_i[j];
      if (eta <= 1e-12) continue;
      double f_diff = f[i] - f[j];
      double bi = beta[i];
      double bj = beta[j];
      double lo = std::max(-c - bi, bj - c);
      double hi = std::min(c - bi, bj + c);
      if (lo >= hi) continue;

      double best_delta = 0.0;
      double best_obj = 0.0;
      BestPairStep(eta, f_diff, eps, bi, bj, lo, hi, &best_delta, &best_obj);
      if (best_obj >= -1e-14 || best_delta == 0.0) continue;

      beta[i] += best_delta;
      beta[j] -= best_delta;
      // Keep f fresh for every row -- shrunk ones included -- so the
      // KKT checks and shrink decisions never need a recompute.
      for (size_t kk = 0; kk < n; ++kk) {
        f[kk] += best_delta * (row_i[kk] - row_j[kk]);
      }
      sweep_improvement += -best_obj;
    }

    // First-order convergence check over ALL rows, every sweep (O(n): f
    // is maintained for shrunk rows too). This is what converts a good
    // beta0 into saved sweeps -- the cold solver's sweep-stall criterion
    // can keep zigzagging in the dual's flat directions long after the
    // solution stopped improving in any meaningful way.
    double m_up = 0.0;
    double m_down = 0.0;
    min_costs(/*all_rows=*/true, active, &m_up, &m_down);
    if (m_up + m_down >= -kkt_tol) break;

    if (sweep_improvement < options_.tol || num_active < 2) {
      // The shrunk working set stalled while a violating pair remains
      // outside it: the shrinking heuristic skipped a row it should not
      // have. Bring everything back and keep sweeping; the reactivations
      // are counted for the shrinking test suite.
      if (num_active == n) {
        // Already sweeping the full set and still stalled: pair steps
        // cannot buy tol-sized progress on this violation (degenerate
        // curvature); stop like the cold path would.
        break;
      }
      size_t reactivated = 0;
      for (size_t i = 0; i < n; ++i) {
        if (!active[i]) {
          active[i] = 1;
          ++reactivated;
        }
      }
      num_active = n;
      ++fit_stats_.unshrink_passes;
      fit_stats_.kkt_reactivations += reactivated;
    }
  }
  fit_stats_.kernel_cache = cache.stats();
}

void Svr::FinishFit(const Matrix& x, std::span<const double> y,
                    const std::vector<double>& beta,
                    const std::vector<double>& f,
                    const KernelParams& kernel) {
  const size_t n = x.rows();
  const double c = options_.c;
  const double eps = options_.epsilon;

  // Bias from the KKT conditions of free support vectors:
  // 0 < beta_i < C  ->  b = -f_i - eps;  -C < beta_i < 0  ->  b = -f_i + eps.
  const double bound_slack = c * (1.0 - 1e-9);
  std::vector<double> bias_estimates;
  for (size_t i = 0; i < n; ++i) {
    if (beta[i] > 1e-12 && beta[i] < bound_slack) {
      bias_estimates.push_back(-f[i] - eps);
    } else if (beta[i] < -1e-12 && beta[i] > -bound_slack) {
      bias_estimates.push_back(-f[i] + eps);
    }
  }
  if (!bias_estimates.empty()) {
    bias_ = Mean(bias_estimates);
  } else {
    // No free SVs (all at bounds or beta == 0): fall back to the feasible
    // midpoint over all points, which reduces to mean(y) when beta == 0.
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) sum += -f[i];
    bias_ = sum / static_cast<double>(n);
  }

  // Dual objective via f = K beta - y:
  //   W = 1/2 b^T f - 1/2 b^T y + eps * ||b||_1.
  dual_objective_ = 0.0;
  for (size_t i = 0; i < n; ++i) {
    dual_objective_ += 0.5 * beta[i] * f[i] - 0.5 * beta[i] * y[i] +
                       eps * std::abs(beta[i]);
  }

  // Keep only support vectors for prediction; the full-length vector
  // stays available as the next warm start's payload.
  std::vector<size_t> sv_rows;
  for (size_t i = 0; i < n; ++i) {
    if (std::abs(beta[i]) > 1e-12) sv_rows.push_back(i);
  }
  support_ = x.SelectRows(sv_rows);
  beta_.clear();
  beta_.reserve(sv_rows.size());
  for (size_t i : sv_rows) beta_.push_back(beta[i]);
  full_beta_ = beta;

  // Remember the resolved kernel (gamma fixed at fit time).
  options_.kernel = kernel;
  fit_stats_.sweeps = sweeps_run_;
  fitted_ = true;
}

StatusOr<double> Svr::PredictOne(std::span<const double> features) const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  if (features.size() != num_features_) {
    return Status::InvalidArgument("feature count differs from training");
  }
  double sum = bias_;
  for (size_t s = 0; s < beta_.size(); ++s) {
    sum += beta_[s] * KernelFunction(options_.kernel, support_.Row(s),
                                     features);
  }
  return sum;
}

}  // namespace vup
