#include "ml/svr.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.h"

namespace vup {

namespace {

/// Objective change of moving the pair by delta:
///   dW = 1/2 * eta * delta^2 + (f_i - f_j) * delta
///        + eps * (|bi + delta| - |bi|) + eps * (|bj - delta| - |bj|).
double PairObjectiveDelta(double delta, double eta, double f_diff, double eps,
                          double bi, double bj) {
  return 0.5 * eta * delta * delta + f_diff * delta +
         eps * (std::abs(bi + delta) - std::abs(bi)) +
         eps * (std::abs(bj - delta) - std::abs(bj));
}

}  // namespace

Status Svr::Fit(const Matrix& x, std::span<const double> y) {
  fitted_ = false;
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (y.size() != x.rows()) {
    return Status::InvalidArgument("target size does not match design matrix");
  }
  if (options_.c <= 0.0) {
    return Status::InvalidArgument("C must be positive");
  }
  if (options_.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be non-negative");
  }

  const size_t n = x.rows();
  num_features_ = x.cols();
  const double c = options_.c;
  const double eps = options_.epsilon;

  KernelParams kernel = options_.kernel;
  if (kernel.gamma <= 0.0) {
    kernel.gamma = kernel.EffectiveGamma(num_features_);
  }
  Matrix k = KernelMatrix(kernel, x);

  std::vector<double> beta(n, 0.0);
  // f_i = sum_k beta_k K_ik - y_i (gradient of the smooth part).
  std::vector<double> f(n);
  for (size_t i = 0; i < n; ++i) f[i] = -y[i];

  sweeps_run_ = 0;
  for (size_t sweep = 0; sweep < options_.max_sweeps; ++sweep) {
    ++sweeps_run_;
    double sweep_improvement = 0.0;
    for (size_t i = 0; i < n; ++i) {
      // Partner: the index with the largest |f_i - f_k| (steepest pair).
      size_t j = i;
      double best_gap = 0.0;
      for (size_t kk = 0; kk < n; ++kk) {
        double gap = std::abs(f[i] - f[kk]);
        if (kk != i && gap > best_gap) {
          best_gap = gap;
          j = kk;
        }
      }
      if (j == i) continue;

      double eta = k(i, i) + k(j, j) - 2.0 * k(i, j);
      if (eta <= 1e-12) continue;
      double f_diff = f[i] - f[j];
      double bi = beta[i];
      double bj = beta[j];

      // Feasible delta range from the box constraints.
      double lo = std::max(-c - bi, bj - c);
      double hi = std::min(c - bi, bj + c);
      if (lo >= hi) continue;

      // Candidate minimizers: stationary points per sign region of
      // (bi + delta, bj - delta), plus the kinks and the box ends.
      double candidates[8];
      int num_candidates = 0;
      for (double sa : {-1.0, 1.0}) {
        for (double sb : {-1.0, 1.0}) {
          candidates[num_candidates++] =
              -(f_diff + eps * (sa - sb)) / eta;
        }
      }
      candidates[num_candidates++] = -bi;  // bi + delta == 0.
      candidates[num_candidates++] = bj;   // bj - delta == 0.
      candidates[num_candidates++] = lo;
      candidates[num_candidates++] = hi;

      double best_delta = 0.0;
      double best_obj = 0.0;
      for (int ci = 0; ci < num_candidates; ++ci) {
        double delta = std::clamp(candidates[ci], lo, hi);
        double obj = PairObjectiveDelta(delta, eta, f_diff, eps, bi, bj);
        if (obj < best_obj) {
          best_obj = obj;
          best_delta = delta;
        }
      }
      if (best_obj >= -1e-14 || best_delta == 0.0) continue;

      beta[i] += best_delta;
      beta[j] -= best_delta;
      for (size_t kk = 0; kk < n; ++kk) {
        f[kk] += best_delta * (k(i, kk) - k(j, kk));
      }
      sweep_improvement += -best_obj;
    }
    if (sweep_improvement < options_.tol) break;
  }

  // Bias from the KKT conditions of free support vectors:
  // 0 < beta_i < C  ->  b = -f_i - eps;  -C < beta_i < 0  ->  b = -f_i + eps.
  const double bound_slack = c * (1.0 - 1e-9);
  std::vector<double> bias_estimates;
  for (size_t i = 0; i < n; ++i) {
    if (beta[i] > 1e-12 && beta[i] < bound_slack) {
      bias_estimates.push_back(-f[i] - eps);
    } else if (beta[i] < -1e-12 && beta[i] > -bound_slack) {
      bias_estimates.push_back(-f[i] + eps);
    }
  }
  if (!bias_estimates.empty()) {
    bias_ = Mean(bias_estimates);
  } else {
    // No free SVs (all at bounds or beta == 0): fall back to the feasible
    // midpoint over all points, which reduces to mean(y) when beta == 0.
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) sum += -f[i];
    bias_ = sum / static_cast<double>(n);
  }

  // Keep only support vectors.
  std::vector<size_t> sv_rows;
  for (size_t i = 0; i < n; ++i) {
    if (std::abs(beta[i]) > 1e-12) sv_rows.push_back(i);
  }
  support_ = x.SelectRows(sv_rows);
  beta_.clear();
  beta_.reserve(sv_rows.size());
  for (size_t i : sv_rows) beta_.push_back(beta[i]);

  // Remember the resolved kernel (gamma fixed at fit time).
  options_.kernel = kernel;
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> Svr::PredictOne(std::span<const double> features) const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  if (features.size() != num_features_) {
    return Status::InvalidArgument("feature count differs from training");
  }
  double sum = bias_;
  for (size_t s = 0; s < beta_.size(); ++s) {
    sum += beta_[s] * KernelFunction(options_.kernel, support_.Row(s),
                                     features);
  }
  return sum;
}

}  // namespace vup
