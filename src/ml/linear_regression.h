#ifndef VUPRED_ML_LINEAR_REGRESSION_H_
#define VUPRED_ML_LINEAR_REGRESSION_H_

#include <memory>
#include <vector>

#include "ml/model.h"

namespace vup {

/// Ordinary least squares fitted via rank-revealing Householder QR,
/// well-defined even on collinear windowed features (dependent columns get
/// zero coefficients). With ridge > 0, solves the Tikhonov-stabilized
/// normal equations instead: on wide windowed designs (more features than
/// records) plain OLS interpolates and extrapolates wildly, so pipeline
/// users pass a small ridge; ridge == 0 keeps exact OLS.
class LinearRegression : public Regressor {
 public:
  struct Options {
    bool fit_intercept = true;
    double ridge = 0.0;  // L2 penalty on coefficients (not the intercept).
  };

  LinearRegression() = default;
  explicit LinearRegression(Options options) : options_(options) {}

  /// Reconstructs a fitted model from serialized state (ml/serialize.h).
  static LinearRegression FromState(Options options,
                                    std::vector<double> coefficients,
                                    double intercept) {
    LinearRegression m(options);
    m.coef_ = std::move(coefficients);
    m.intercept_ = intercept;
    m.fitted_ = true;
    return m;
  }

  const Options& options() const { return options_; }

  Status Fit(const Matrix& x, std::span<const double> y) override;
  StatusOr<double> PredictOne(std::span<const double> features) const override;
  std::string name() const override { return "LR"; }
  std::unique_ptr<Regressor> Clone() const override {
    return std::make_unique<LinearRegression>(options_);
  }
  bool fitted() const override { return fitted_; }
  size_t ResidentBytes() const override {
    return sizeof(*this) + coef_.capacity() * sizeof(double);
  }

  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

 private:
  Options options_;
  bool fitted_ = false;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

}  // namespace vup

#endif  // VUPRED_ML_LINEAR_REGRESSION_H_
