#include "ml/baselines.h"

#include <algorithm>

#include "common/check.h"
#include "stats/descriptive.h"

namespace vup {

StatusOr<double> LastValueBaseline::Predict(
    std::span<const double> history) const {
  if (history.empty()) {
    return Status::InvalidArgument("empty history for last-value baseline");
  }
  return history.back();
}

MovingAverageBaseline::MovingAverageBaseline(size_t period) : period_(period) {
  VUP_CHECK(period_ >= 1);
}

StatusOr<double> MovingAverageBaseline::Predict(
    std::span<const double> history) const {
  if (history.empty()) {
    return Status::InvalidArgument(
        "empty history for moving-average baseline");
  }
  size_t n = std::min(period_, history.size());
  return Mean(history.subspan(history.size() - n, n));
}

}  // namespace vup
