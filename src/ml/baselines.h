#ifndef VUPRED_ML_BASELINES_H_
#define VUPRED_ML_BASELINES_H_

#include <cstddef>
#include <span>

#include "common/statusor.h"

namespace vup {

/// The paper's two naive baselines (Section 3). They forecast directly from
/// the target-series history -- no features, no training -- so they expose a
/// series interface rather than the Regressor fit/predict contract.

/// Predicts the next value as the last observed value (LV).
class LastValueBaseline {
 public:
  /// InvalidArgument on empty history.
  StatusOr<double> Predict(std::span<const double> history) const;
};

/// Predicts the next value as the mean of the last `period` observations
/// (MA). The paper uses period == 30. Shorter histories average what is
/// available.
class MovingAverageBaseline {
 public:
  explicit MovingAverageBaseline(size_t period = 30);

  size_t period() const { return period_; }

  /// InvalidArgument on empty history.
  StatusOr<double> Predict(std::span<const double> history) const;

 private:
  size_t period_;
};

}  // namespace vup

#endif  // VUPRED_ML_BASELINES_H_
