#include "ml/gradient_boosting.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/random.h"
#include "stats/descriptive.h"

namespace vup {

namespace {

double LossValue(GbLoss loss, std::span<const double> y,
                 std::span<const double> f) {
  double sum = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    double r = y[i] - f[i];
    sum += loss == GbLoss::kLeastSquares ? 0.5 * r * r : std::abs(r);
  }
  return sum / static_cast<double>(y.size());
}

}  // namespace

void GradientBoosting::WarmStart(std::vector<RegressionTree> trees,
                                 double init, size_t num_features,
                                 size_t extra_stages) {
  warm_request_ =
      WarmRequest{std::move(trees), init, num_features, extra_stages};
}

Status GradientBoosting::Fit(const Matrix& x, std::span<const double> y) {
  WarmRequest warm;
  const bool have_warm = warm_request_.has_value();
  if (have_warm) warm = std::move(*warm_request_);
  warm_request_.reset();
  fitted_ = false;
  last_fit_warm_started_ = false;
  trees_.clear();
  stage_losses_.clear();
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (y.size() != x.rows()) {
    return Status::InvalidArgument("target size does not match design matrix");
  }
  if (options_.learning_rate <= 0.0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  if (options_.subsample <= 0.0 || options_.subsample > 1.0) {
    return Status::InvalidArgument("subsample must be in (0, 1]");
  }

  const size_t n = x.rows();
  num_features_ = x.cols();

  std::vector<double> f(n);            // Current ensemble prediction.
  size_t stages_to_run = options_.n_estimators;
  const bool warm_started = have_warm && !warm.trees.empty() &&
                            warm.num_features == num_features_;
  if (warm_started) {
    // Resume from the previous ensemble: adopt it and re-evaluate its
    // prediction on the new window, then boost extra_stages more.
    last_fit_warm_started_ = true;
    init_ = warm.init;
    trees_ = std::move(warm.trees);
    stages_to_run = warm.extra_stages;
    for (size_t i = 0; i < n; ++i) {
      double sum = init_;
      for (const RegressionTree& tree : trees_) {
        VUP_ASSIGN_OR_RETURN(double p, tree.PredictOne(x.Row(i)));
        sum += options_.learning_rate * p;
      }
      f[i] = sum;
    }
  } else {
    // Initial constant: mean for LS, median for LAD.
    init_ = options_.loss == GbLoss::kLeastSquares ? Mean(y) : Median(y);
    f.assign(n, init_);
  }

  std::vector<double> gradient(n);     // Negative gradient (pseudo-residual).
  std::vector<double> residual(n);     // y - f, for LAD leaf relabeling.
  Rng rng(options_.seed);

  RegressionTree::Options tree_options;
  tree_options.max_depth = options_.max_depth;
  tree_options.min_samples_leaf = options_.min_samples_leaf;

  trees_.reserve(trees_.size() + stages_to_run);
  stage_losses_.reserve(stages_to_run);
  for (size_t stage = 0; stage < stages_to_run; ++stage) {
    for (size_t i = 0; i < n; ++i) {
      residual[i] = y[i] - f[i];
      gradient[i] = options_.loss == GbLoss::kLeastSquares
                        ? residual[i]
                        : (residual[i] > 0.0   ? 1.0
                           : residual[i] < 0.0 ? -1.0
                                               : 0.0);
    }

    RegressionTree tree(tree_options);
    if (options_.subsample < 1.0) {
      // Stochastic boosting: fit on a row subset, relabel on the subset,
      // update f on all rows.
      std::vector<size_t> perm(n);
      std::iota(perm.begin(), perm.end(), 0);
      rng.Shuffle(&perm);
      size_t m = std::max<size_t>(
          2, static_cast<size_t>(options_.subsample * static_cast<double>(n)));
      perm.resize(std::min(m, n));
      Matrix xs = x.SelectRows(perm);
      std::vector<double> gs, rs;
      gs.reserve(perm.size());
      rs.reserve(perm.size());
      for (size_t i : perm) {
        gs.push_back(gradient[i]);
        rs.push_back(residual[i]);
      }
      VUP_RETURN_IF_ERROR(tree.Fit(xs, gs));
      if (options_.loss == GbLoss::kLeastAbsoluteDeviation) {
        VUP_RETURN_IF_ERROR(tree.RelabelLeaves(xs, rs, /*use_median=*/true));
      }
    } else {
      VUP_RETURN_IF_ERROR(tree.Fit(x, gradient));
      if (options_.loss == GbLoss::kLeastAbsoluteDeviation) {
        VUP_RETURN_IF_ERROR(
            tree.RelabelLeaves(x, residual, /*use_median=*/true));
      }
    }

    for (size_t i = 0; i < n; ++i) {
      StatusOr<double> p = tree.PredictOne(x.Row(i));
      VUP_RETURN_IF_ERROR(p.status());
      f[i] += options_.learning_rate * p.value();
    }
    trees_.push_back(std::move(tree));
    stage_losses_.push_back(LossValue(options_.loss, y, f));
  }

  fitted_ = true;
  return Status::OK();
}

StatusOr<double> GradientBoosting::PredictOne(
    std::span<const double> features) const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  if (features.size() != num_features_) {
    return Status::InvalidArgument("feature count differs from training");
  }
  double sum = init_;
  for (const RegressionTree& tree : trees_) {
    VUP_ASSIGN_OR_RETURN(double p, tree.PredictOne(features));
    sum += options_.learning_rate * p;
  }
  return sum;
}

}  // namespace vup
