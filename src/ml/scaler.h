#ifndef VUPRED_ML_SCALER_H_
#define VUPRED_ML_SCALER_H_

#include <span>
#include <vector>

#include "common/statusor.h"
#include "linalg/matrix.h"

namespace vup {

/// Column-wise standardization of a design matrix to zero mean and unit
/// variance. Constant columns are left centered (scale 1), not divided by
/// zero. Kernel methods (SVR) depend on this for sane distances.
class StandardScaler {
 public:
  /// Learns per-column mean and standard deviation.
  /// InvalidArgument on an empty matrix.
  Status Fit(const Matrix& x);

  bool fitted() const { return fitted_; }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& scales() const { return scales_; }

  /// (x - mean) / scale per column. FailedPrecondition when not fitted,
  /// InvalidArgument on column-count mismatch.
  StatusOr<Matrix> Transform(const Matrix& x) const;
  StatusOr<std::vector<double>> TransformRow(
      std::span<const double> row) const;

  /// Fit followed by Transform.
  StatusOr<Matrix> FitTransform(const Matrix& x);

  /// Reconstructs a fitted scaler from serialized state (ml/serialize.h).
  static StandardScaler FromState(std::vector<double> means,
                                  std::vector<double> scales) {
    StandardScaler s;
    s.means_ = std::move(means);
    s.scales_ = std::move(scales);
    s.fitted_ = !s.means_.empty();
    return s;
  }

 private:
  bool fitted_ = false;
  std::vector<double> means_;
  std::vector<double> scales_;
};

}  // namespace vup

#endif  // VUPRED_ML_SCALER_H_
