#include "ml/linear_regression.h"

#include "linalg/cholesky.h"
#include "linalg/qr.h"
#include "stats/descriptive.h"

namespace vup {

Status LinearRegression::Fit(const Matrix& x, std::span<const double> y) {
  fitted_ = false;
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (y.size() != x.rows()) {
    return Status::InvalidArgument("target size does not match design matrix");
  }
  if (options_.ridge < 0.0) {
    return Status::InvalidArgument("ridge must be non-negative");
  }

  if (options_.ridge > 0.0) {
    // Ridge path: center (to exclude the intercept from the penalty when
    // fit_intercept), then solve (Xc^T Xc + ridge I) w = Xc^T yc.
    const size_t n = x.rows();
    const size_t d = x.cols();
    std::vector<double> x_mean(d, 0.0);
    double y_mean = 0.0;
    if (options_.fit_intercept) {
      for (size_t c = 0; c < d; ++c) {
        double sum = 0.0;
        for (size_t r = 0; r < n; ++r) sum += x(r, c);
        x_mean[c] = sum / static_cast<double>(n);
      }
      y_mean = Mean(y);
    }
    Matrix xc(n, d);
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < d; ++c) xc(r, c) = x(r, c) - x_mean[c];
    }
    std::vector<double> yc(n);
    for (size_t r = 0; r < n; ++r) yc[r] = y[r] - y_mean;
    VUP_ASSIGN_OR_RETURN(coef_,
                         SolveNormalEquations(xc, yc, options_.ridge));
    intercept_ = y_mean;
    for (size_t c = 0; c < d; ++c) intercept_ -= coef_[c] * x_mean[c];
    fitted_ = true;
    return Status::OK();
  }

  if (!options_.fit_intercept) {
    VUP_ASSIGN_OR_RETURN(coef_, QrLeastSquares(x, y));
    intercept_ = 0.0;
    fitted_ = true;
    return Status::OK();
  }

  // Augment with a leading ones column for the intercept.
  Matrix augmented(x.rows(), x.cols() + 1);
  for (size_t r = 0; r < x.rows(); ++r) {
    augmented(r, 0) = 1.0;
    for (size_t c = 0; c < x.cols(); ++c) augmented(r, c + 1) = x(r, c);
  }
  VUP_ASSIGN_OR_RETURN(std::vector<double> w, QrLeastSquares(augmented, y));
  intercept_ = w[0];
  coef_.assign(w.begin() + 1, w.end());
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> LinearRegression::PredictOne(
    std::span<const double> features) const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  if (features.size() != coef_.size()) {
    return Status::InvalidArgument("feature count differs from training");
  }
  return intercept_ + Dot(features, coef_);
}

}  // namespace vup
