#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>

#include "linalg/cholesky.h"

namespace vup {

double Sigmoid(double z) {
  if (z >= 0.0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

Status LogisticRegression::Fit(const Matrix& x, std::span<const int> y) {
  fitted_ = false;
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (y.size() != x.rows()) {
    return Status::InvalidArgument("label size does not match design matrix");
  }
  if (options_.l2 < 0.0) {
    return Status::InvalidArgument("l2 must be non-negative");
  }
  int positives = 0;
  for (int label : y) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument("labels must be 0 or 1");
    }
    positives += label;
  }
  if (positives == 0 || positives == static_cast<int>(y.size())) {
    return Status::InvalidArgument(
        "single-class training data; fit has no information");
  }

  const size_t n = x.rows();
  const size_t d = x.cols();
  // Augmented design with a leading intercept column (unpenalized).
  const size_t da = options_.fit_intercept ? d + 1 : d;
  Matrix xa(n, da);
  for (size_t r = 0; r < n; ++r) {
    size_t c0 = 0;
    if (options_.fit_intercept) {
      xa(r, 0) = 1.0;
      c0 = 1;
    }
    for (size_t c = 0; c < d; ++c) xa(r, c0 + c) = x(r, c);
  }

  std::vector<double> w(da, 0.0);
  std::vector<double> eta(n, 0.0);  // Linear predictor.
  iterations_run_ = 0;
  for (size_t iter = 0; iter < options_.max_iter; ++iter) {
    ++iterations_run_;
    // Gradient and weighted Gram (Newton step on penalized likelihood).
    std::vector<double> grad(da, 0.0);
    Matrix hess(da, da);
    for (size_t r = 0; r < n; ++r) {
      double p = Sigmoid(eta[r]);
      double weight = std::max(p * (1.0 - p), 1e-8);
      double residual = static_cast<double>(y[r]) - p;
      std::span<const double> row = xa.Row(r);
      for (size_t i = 0; i < da; ++i) {
        grad[i] += row[i] * residual;
        for (size_t j = i; j < da; ++j) {
          hess(i, j) += weight * row[i] * row[j];
        }
      }
    }
    for (size_t i = 0; i < da; ++i) {
      for (size_t j = 0; j < i; ++j) hess(i, j) = hess(j, i);
    }
    // Penalty (skip the intercept slot).
    size_t pen_start = options_.fit_intercept ? 1 : 0;
    for (size_t i = pen_start; i < da; ++i) {
      grad[i] -= options_.l2 * w[i];
      hess(i, i) += options_.l2;
    }

    VUP_ASSIGN_OR_RETURN(std::vector<double> step,
                         CholeskySolve(hess, grad));
    double max_step = 0.0;
    for (size_t i = 0; i < da; ++i) {
      w[i] += step[i];
      max_step = std::max(max_step, std::abs(step[i]));
    }
    eta = xa.MultiplyVec(w);
    if (max_step < options_.tol) break;
  }

  if (options_.fit_intercept) {
    intercept_ = w[0];
    coef_.assign(w.begin() + 1, w.end());
  } else {
    intercept_ = 0.0;
    coef_ = w;
  }
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> LogisticRegression::PredictProbability(
    std::span<const double> features) const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  if (features.size() != coef_.size()) {
    return Status::InvalidArgument("feature count differs from training");
  }
  return Sigmoid(intercept_ + Dot(features, coef_));
}

StatusOr<int> LogisticRegression::PredictClass(
    std::span<const double> features, double threshold) const {
  VUP_ASSIGN_OR_RETURN(double p, PredictProbability(features));
  return p >= threshold ? 1 : 0;
}

}  // namespace vup
