#include "ml/lasso.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace vup {

namespace {

double SoftThreshold(double v, double threshold) {
  if (v > threshold) return v - threshold;
  if (v < -threshold) return v + threshold;
  return 0.0;
}

}  // namespace

void Lasso::WarmStart(std::vector<double> coefficients) {
  warm_coef_ = std::move(coefficients);
}

Status Lasso::Fit(const Matrix& x, std::span<const double> y) {
  std::vector<double> warm;
  const bool have_warm = warm_coef_.has_value();
  if (have_warm) warm = std::move(*warm_coef_);
  warm_coef_.reset();
  fitted_ = false;
  last_fit_warm_started_ = false;
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (y.size() != x.rows()) {
    return Status::InvalidArgument("target size does not match design matrix");
  }
  if (options_.alpha < 0.0) {
    return Status::InvalidArgument("alpha must be non-negative");
  }

  const size_t n = x.rows();
  const size_t d = x.cols();

  // Center (intercept handled by centering, the standard trick).
  std::vector<double> x_mean(d, 0.0);
  double y_mean = 0.0;
  if (options_.fit_intercept) {
    for (size_t c = 0; c < d; ++c) {
      double sum = 0.0;
      for (size_t r = 0; r < n; ++r) sum += x(r, c);
      x_mean[c] = sum / static_cast<double>(n);
    }
    y_mean = Mean(y);
  }

  // Work on centered copies.
  Matrix xc(n, d);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) xc(r, c) = x(r, c) - x_mean[c];
  }
  std::vector<double> yc(n);
  for (size_t r = 0; r < n; ++r) yc[r] = y[r] - y_mean;

  // Per-column squared norms; dead (constant) columns stay at zero weight.
  std::vector<double> col_sq(d, 0.0);
  for (size_t c = 0; c < d; ++c) {
    for (size_t r = 0; r < n; ++r) col_sq[c] += xc(r, c) * xc(r, c);
  }

  std::vector<double> residual;
  const double n_alpha = options_.alpha * static_cast<double>(n);

  const bool warm_started = have_warm && warm.size() == d;
  if (warm_started) {
    last_fit_warm_started_ = true;
    coef_ = std::move(warm);
    // Dead (constant) columns stay at zero weight, exactly as cold.
    for (size_t c = 0; c < d; ++c) {
      if (col_sq[c] == 0.0) coef_[c] = 0.0;
    }
    // Recompute the residual of the starting point on the new data.
    residual = yc;
    for (size_t c = 0; c < d; ++c) {
      if (coef_[c] == 0.0) continue;
      for (size_t r = 0; r < n; ++r) residual[r] -= coef_[c] * xc(r, c);
    }
  } else {
    coef_.assign(d, 0.0);
    residual = yc;  // r = yc - Xc w, with w = 0.
  }

  // One coordinate-descent pass over `cols`; returns the largest
  // coefficient move. Shared by the cold full sweeps and the warm
  // active-set sweeps (identical inner arithmetic, so the cold path is
  // bitwise-unchanged).
  auto sweep_columns = [&](std::span<const size_t> cols) {
    ++iterations_run_;
    double max_delta = 0.0;
    for (size_t c : cols) {
      if (col_sq[c] == 0.0) continue;
      double w_old = coef_[c];
      // rho = x_c . (residual + x_c * w_old)
      double rho = 0.0;
      for (size_t r = 0; r < n; ++r) {
        rho += xc(r, c) * residual[r];
      }
      rho += col_sq[c] * w_old;
      double w_new = SoftThreshold(rho, n_alpha) / col_sq[c];
      if (w_new != w_old) {
        double delta = w_new - w_old;
        for (size_t r = 0; r < n; ++r) residual[r] -= delta * xc(r, c);
        coef_[c] = w_new;
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    return max_delta;
  };

  std::vector<size_t> all_cols(d);
  for (size_t c = 0; c < d; ++c) all_cols[c] = c;

  iterations_run_ = 0;
  if (warm_started) {
    // Active-set strategy: polish the nonzero coordinates first (cheap
    // sweeps over a few columns), then run a full verification sweep. A
    // full sweep that still moves something re-derives the active set
    // and repeats; one that does not is the cold path's own convergence
    // criterion, so the fixed point is shared.
    std::vector<size_t> active_cols;
    while (iterations_run_ < options_.max_iter) {
      active_cols.clear();
      for (size_t c = 0; c < d; ++c) {
        if (coef_[c] != 0.0) active_cols.push_back(c);
      }
      while (!active_cols.empty() && iterations_run_ < options_.max_iter &&
             sweep_columns(active_cols) >= options_.tol) {
      }
      if (iterations_run_ >= options_.max_iter) break;
      if (sweep_columns(all_cols) < options_.tol) break;
    }
  } else {
    for (size_t sweep = 0; sweep < options_.max_iter; ++sweep) {
      if (sweep_columns(all_cols) < options_.tol) break;
    }
  }

  intercept_ = y_mean;
  if (options_.fit_intercept) {
    for (size_t c = 0; c < d; ++c) intercept_ -= coef_[c] * x_mean[c];
  }
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> Lasso::PredictOne(std::span<const double> features) const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  if (features.size() != coef_.size()) {
    return Status::InvalidArgument("feature count differs from training");
  }
  return intercept_ + Dot(features, coef_);
}

}  // namespace vup
