#include "ml/warm_start.h"

#include <algorithm>
#include <bit>

#include "obs/metrics.h"

namespace vup {

std::string_view WarmStartDecisionToString(WarmStartDecision d) {
  switch (d) {
    case WarmStartDecision::kWarm:
      return "warm";
    case WarmStartDecision::kColdStart:
      return "cold_start";
    case WarmStartDecision::kInvalidated:
      return "invalidated";
  }
  return "?";
}

uint64_t HashCombine(uint64_t h, uint64_t v) {
  // FNV-1a over the 8 bytes of v.
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (byte * 8)) & 0xffull;
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t HashDouble(uint64_t h, double v) {
  return HashCombine(h, std::bit_cast<uint64_t>(v));
}

std::vector<double> ShiftSvrBetaForward(std::span<const double> prev_beta,
                                        double c) {
  std::vector<double> beta;
  if (prev_beta.empty()) return beta;
  beta.assign(prev_beta.begin() + 1, prev_beta.end());
  beta.push_back(0.0);
  // The dropped oldest coefficient leaves sum(beta) = -prev_beta[0], so
  // +prev_beta[0] must go back in to restore the equality constraint;
  // spread it starting from the newest rows, respecting the box. Total
  // box capacity is 2cn, so the loop always zeroes it.
  double imbalance = prev_beta.front();
  for (size_t i = beta.size(); i-- > 0 && imbalance != 0.0;) {
    double take = std::clamp(imbalance, -c - beta[i], c - beta[i]);
    beta[i] += take;
    imbalance -= take;
  }
  return beta;
}

void RecordWarmStartDecision(WarmStartDecision decision,
                             std::string_view algorithm) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const obs::LabelSet labels = {{"algorithm", std::string(algorithm)}};
  switch (decision) {
    case WarmStartDecision::kWarm: {
      obs::Counter* hits = registry.GetCounter(
          "vupred_train_warmstart_hits_total",
          "Training calls that resumed from the previous window's state.",
          labels);
      if (hits != nullptr) hits->Increment(1);
      return;
    }
    case WarmStartDecision::kInvalidated: {
      obs::Counter* invalidations = registry.GetCounter(
          "vupred_train_warmstart_invalidations_total",
          "Captured warm-start states discarded on a problem mismatch.",
          labels);
      if (invalidations != nullptr) invalidations->Increment(1);
      [[fallthrough]];
    }
    case WarmStartDecision::kColdStart: {
      obs::Counter* cold = registry.GetCounter(
          "vupred_train_warmstart_cold_starts_total",
          "Warm-capable training calls that fit from scratch.", labels);
      if (cold != nullptr) cold->Increment(1);
      return;
    }
  }
}

}  // namespace vup
