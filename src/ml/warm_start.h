#ifndef VUPRED_ML_WARM_START_H_
#define VUPRED_ML_WARM_START_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "ml/tree.h"

namespace vup {

/// Outcome of the warm-start eligibility check for one training call.
enum class WarmStartDecision : int {
  /// A captured state matched the new problem and was applied.
  kWarm = 0,
  /// No applicable state (first fit, or a scheduled full refresh such as
  /// the GB staleness cap): the fit starts from scratch.
  kColdStart = 1,
  /// A captured state existed but no longer matches the problem (lag set,
  /// hyper-parameters, record count, or a non-unit span shift changed) and
  /// was discarded. Also counts as a cold start.
  kInvalidated = 2,
};

std::string_view WarmStartDecisionToString(WarmStartDecision d);

/// Identity of the training problem a warm-start payload was captured on.
/// A payload may only be replayed when everything but the training-span
/// position is unchanged and the span advanced by exactly one target (the
/// add-one-drop-one row shift of the walk-forward loop).
struct WarmStartKey {
  /// Fingerprint of the algorithm and every hyper-parameter that shapes
  /// the optimization problem (see WarmStartConfigHash in core/forecaster).
  uint64_t config_hash = 0;
  /// Design columns after lag selection; a changed lag set changes what
  /// each coefficient means, so it must invalidate.
  std::vector<size_t> selected_columns;
  size_t num_records = 0;
  /// First target row of the training span the payload was captured on.
  size_t first_target = 0;

  /// True when the problems match up to the training-span position
  /// (config, columns and record count agree; first_target is excluded).
  bool MatchesProblem(const WarmStartKey& other) const {
    return config_hash == other.config_hash &&
           num_records == other.num_records &&
           selected_columns == other.selected_columns;
  }
};

/// Cross-window solver state captured after one fit and replayed into the
/// next adjacent-window fit. One instance per forecaster; the payloads are
/// per-algorithm (only the active algorithm's slot is populated).
struct WarmStartState {
  bool valid = false;
  WarmStartKey key;

  /// SVR: the full-length dual vector (one beta per training row, not the
  /// support-vector compaction) of the previous window's solution.
  std::vector<double> svr_beta;

  /// Lasso: coefficients at convergence of the previous window.
  std::vector<double> lasso_coef;

  /// GB: the previous window's ensemble, its constant initial prediction,
  /// and how many consecutive warm fits built on it (the staleness
  /// counter that forces periodic full refits).
  std::vector<RegressionTree> gb_trees;
  double gb_init = 0.0;
  size_t gb_warm_fits = 0;

  void Reset() { *this = WarmStartState(); }
};

/// FNV-1a-style combine of one 64-bit value into a running hash.
uint64_t HashCombine(uint64_t h, uint64_t v);
/// Combines the bit pattern of a double (so 0.1 != 0.1000001 and -0.0 is
/// distinguished from 0.0 -- any representational change invalidates).
uint64_t HashDouble(uint64_t h, double v);

inline constexpr uint64_t kWarmStartHashSeed = 0xcbf29ce484222325ull;

/// Maps the previous window's SVR dual vector through the add-one-drop-one
/// row shift: the oldest record's coefficient is dropped, every survivor
/// keeps its value one slot earlier, and the new record starts at zero.
/// The dropped coefficient's mass is absorbed back into the newest rows
/// (clamped to the box [-c, c]) so the equality constraint sum(beta) = 0
/// still holds at the starting point.
std::vector<double> ShiftSvrBetaForward(std::span<const double> prev_beta,
                                        double c);

/// Bumps the labeled counter for one training decision:
///   vupred_train_warmstart_hits_total{algorithm=...}
///   vupred_train_warmstart_cold_starts_total{algorithm=...}
///   vupred_train_warmstart_invalidations_total{algorithm=...}
/// An invalidation additionally counts as a cold start (the fit that
/// follows it starts from scratch), so hits + cold_starts always equals
/// the number of warm-capable training calls.
void RecordWarmStartDecision(WarmStartDecision decision,
                             std::string_view algorithm);

}  // namespace vup

#endif  // VUPRED_ML_WARM_START_H_
