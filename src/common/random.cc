#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace vup {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97f4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) {
  // Expand the seed through SplitMix64 as recommended by the xoshiro authors.
  uint64_t s = seed;
  for (int i = 0; i < 4; ++i) {
    s = SplitMix64(s);
    state_[i] = s;
  }
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // zeros from any seed, but keep the guard for clarity.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x1ULL;
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  VUP_CHECK(lo <= hi) << "Uniform bounds inverted: " << lo << " > " << hi;
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  VUP_CHECK(lo <= hi) << "UniformInt bounds inverted";
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(NextUint64());
  }
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = NextUint64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) {
  VUP_CHECK(stddev >= 0.0);
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Exponential(double lambda) {
  VUP_CHECK(lambda > 0.0);
  double u;
  do {
    u = Uniform();
  } while (u == 0.0);
  return -std::log(u) / lambda;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

int Rng::Poisson(double mean) {
  VUP_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product method.
    double limit = std::exp(-mean);
    double product = Uniform();
    int count = 0;
    while (product > limit) {
      ++count;
      product *= Uniform();
    }
    return count;
  }
  // Normal approximation for large means, clamped at zero.
  double v = Normal(mean, std::sqrt(mean));
  return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
}

double Rng::Gamma(double shape, double scale) {
  VUP_CHECK(shape > 0.0);
  VUP_CHECK(scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and correct (Marsaglia-Tsang section 6).
    double u;
    do {
      u = Uniform();
    } while (u == 0.0);
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = Uniform();
    if (u == 0.0) continue;
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

Rng Rng::Fork(uint64_t tag) const {
  // Mix the current state with the tag; independent of this generator's
  // future output because Fork does not advance the parent.
  uint64_t mixed = SplitMix64(state_[0] ^ SplitMix64(tag ^ 0xA5A5A5A5DEADBEEFULL));
  return Rng(mixed);
}

}  // namespace vup
