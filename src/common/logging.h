#ifndef VUPRED_COMMON_LOGGING_H_
#define VUPRED_COMMON_LOGGING_H_

#include <sstream>
#include <string>
#include <string_view>

namespace vup {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

std::string_view LogLevelToString(LogLevel level);

/// Sets the minimum level emitted to stderr. Messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Buffers one log record and emits it (with level tag and source location)
/// on destruction. Used only via the VUP_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace vup

/// Usage: VUP_LOG(kInfo) << "trained " << n << " models";
#define VUP_LOG(level)                                   \
  ::vup::internal_logging::LogMessage(                   \
      ::vup::LogLevel::level, __FILE__, __LINE__)

#endif  // VUPRED_COMMON_LOGGING_H_
