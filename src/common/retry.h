#ifndef VUPRED_COMMON_RETRY_H_
#define VUPRED_COMMON_RETRY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"

namespace vup {

/// Bounded-attempt retry configuration. The backoff schedule is fully
/// deterministic (no jitter): attempt k >= 1 waits
/// min(initial_backoff_ms * multiplier^(k-1), max_backoff_ms) before
/// re-running, so tests can assert the exact schedule.
struct RetryOptions {
  /// Total attempts, including the first (>= 1; smaller values are
  /// treated as 1).
  int max_attempts = 3;
  int64_t initial_backoff_ms = 0;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_ms = 60'000;
  /// Error codes considered transient. Anything else fails immediately
  /// without consuming further attempts.
  std::vector<StatusCode> retryable = {StatusCode::kDataLoss,
                                       StatusCode::kInternal};
};

/// Generic retry executor for Status-returning operations: ingestion
/// fetches, per-vehicle training, any fallible stage of the pipeline.
///
/// The sleep function is injected so callers decide whether backoff
/// wall-blocks: pass RetryPolicy::RealSleep() in a service loop, leave it
/// empty (the default) for in-process orchestration and tests, where the
/// schedule is still computed and observable but never blocks.
class RetryPolicy {
 public:
  using SleepFn = std::function<void(int64_t ms)>;

  explicit RetryPolicy(RetryOptions options, SleepFn sleep = SleepFn());

  /// Backoff before retry attempt `attempt` (1-based; attempt 0 is the
  /// initial try and never waits).
  int64_t BackoffMs(int attempt) const;

  bool IsRetryable(const Status& status) const;

  /// Runs `fn(attempt)` with attempt = 0, 1, ... until it returns OK, a
  /// non-retryable error, or attempts are exhausted; returns the final
  /// status. When `retries` is non-null, the number of re-runs (attempts
  /// beyond the first) is added to it.
  Status Run(const std::function<Status(int attempt)>& fn,
             size_t* retries = nullptr) const;

  const RetryOptions& options() const { return options_; }

  /// A SleepFn that actually blocks the calling thread.
  static SleepFn RealSleep();

 private:
  RetryOptions options_;
  SleepFn sleep_;
};

}  // namespace vup

#endif  // VUPRED_COMMON_RETRY_H_
