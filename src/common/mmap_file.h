#ifndef VUPRED_COMMON_MMAP_FILE_H_
#define VUPRED_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "common/statusor.h"

namespace vup {

/// Read-only memory mapping of a whole file. The mapping is private and
/// page-cache backed: touched pages count toward RSS but are clean and
/// reclaimable, so a byte-budgeted model cache can keep many mapped
/// bundles "resident" without owning their bytes on the heap.
///
/// Move-only; the mapping is released on destruction. An empty file maps
/// to an empty span (no syscall-level mapping is held).
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { Reset(); }

  MappedFile(MappedFile&& other) noexcept
      : addr_(other.addr_), size_(other.size_) {
    other.addr_ = nullptr;
    other.size_ = 0;
  }
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      Reset();
      addr_ = other.addr_;
      size_ = other.size_;
      other.addr_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. NotFound when the file does not exist,
  /// InvalidArgument when it is implausibly large for a model artifact
  /// (the size is checked before any mapping, mirroring the registry's
  /// cap-before-allocation discipline), Internal on mmap failure.
  static StatusOr<MappedFile> Open(const std::string& path);

  /// Largest file Open accepts (1 GiB); far above any model bundle, far
  /// below anything that could be one.
  static constexpr size_t kMaxBytes = 1ull << 30;

  const uint8_t* data() const { return static_cast<const uint8_t*>(addr_); }
  size_t size() const { return size_; }
  std::span<const uint8_t> bytes() const {
    return std::span<const uint8_t>(data(), size_);
  }

 private:
  void Reset();

  void* addr_ = nullptr;
  size_t size_ = 0;
};

}  // namespace vup

#endif  // VUPRED_COMMON_MMAP_FILE_H_
