#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

namespace vup {

RetryPolicy::RetryPolicy(RetryOptions options, SleepFn sleep)
    : options_(std::move(options)), sleep_(std::move(sleep)) {
  options_.max_attempts = std::max(options_.max_attempts, 1);
}

int64_t RetryPolicy::BackoffMs(int attempt) const {
  if (attempt <= 0 || options_.initial_backoff_ms <= 0) return 0;
  double ms = static_cast<double>(options_.initial_backoff_ms) *
              std::pow(options_.backoff_multiplier, attempt - 1);
  double cap = static_cast<double>(options_.max_backoff_ms);
  return static_cast<int64_t>(std::min(ms, cap));
}

bool RetryPolicy::IsRetryable(const Status& status) const {
  if (status.ok()) return false;
  for (StatusCode code : options_.retryable) {
    if (status.code() == code) return true;
  }
  return false;
}

Status RetryPolicy::Run(const std::function<Status(int)>& fn,
                        size_t* retries) const {
  Status last;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      if (retries != nullptr) ++*retries;
      if (sleep_) sleep_(BackoffMs(attempt));
    }
    last = fn(attempt);
    if (last.ok() || !IsRetryable(last)) return last;
  }
  return last;
}

RetryPolicy::SleepFn RetryPolicy::RealSleep() {
  return [](int64_t ms) {
    if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  };
}

}  // namespace vup
