#ifndef VUPRED_COMMON_CRC32_H_
#define VUPRED_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace vup {

/// IEEE CRC-32 (reflected, polynomial 0xEDB88320): the checksum of the
/// wire frames, WAL records and registry generation manifests. Shared
/// here so the serving layer can verify model artifacts without pulling
/// in the wire stack.
uint32_t Crc32(std::span<const uint8_t> bytes);
uint32_t Crc32(const void* data, size_t size);

}  // namespace vup

#endif  // VUPRED_COMMON_CRC32_H_
