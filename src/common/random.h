#ifndef VUPRED_COMMON_RANDOM_H_
#define VUPRED_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace vup {

/// Deterministic, seedable pseudo-random generator (xoshiro256** core,
/// SplitMix64 seeding). Every stochastic component of the library takes an
/// explicit seed so fleet generation, tests and benchmarks are reproducible
/// across platforms -- std::mt19937 distributions are not portable across
/// standard library implementations, these are.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via the polar (Marsaglia) method.
  double Normal();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double Normal(double mean, double stddev);

  /// Log-normal: exp(Normal(mu, sigma)). Heavy-tailed positive values.
  double LogNormal(double mu, double sigma);

  /// Exponential with rate `lambda` (> 0).
  double Exponential(double lambda);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Poisson-distributed count with the given mean (>= 0).
  int Poisson(double mean);

  /// Gamma(shape, scale) via Marsaglia-Tsang; shape > 0, scale > 0.
  double Gamma(double shape, double scale);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent child generator; children with distinct tags are
  /// decorrelated from each other and from the parent.
  Rng Fork(uint64_t tag) const;

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// SplitMix64 step: maps any 64-bit value to a well-mixed successor.
/// Exposed for seed derivation in code that needs stable per-entity seeds.
uint64_t SplitMix64(uint64_t x);

}  // namespace vup

#endif  // VUPRED_COMMON_RANDOM_H_
