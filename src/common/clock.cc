#include "common/clock.h"

namespace vup {

namespace {

class RealClock final : public Clock {
 public:
  TimePoint Now() const override { return std::chrono::steady_clock::now(); }
};

}  // namespace

const Clock& Clock::Real() {
  static const RealClock* clock = new RealClock();
  return *clock;
}

}  // namespace vup
