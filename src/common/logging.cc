#include "common/logging.h"

#include <atomic>
#include <iostream>

namespace vup {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

}  // namespace

std::string_view LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LogLevelToString(level) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      g_min_level.load(std::memory_order_relaxed)) {
    std::cerr << stream_.str() << std::endl;
  }
}

}  // namespace internal_logging
}  // namespace vup
