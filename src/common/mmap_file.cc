#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace vup {

void MappedFile::Reset() {
  if (addr_ != nullptr) {
    ::munmap(addr_, size_);
    addr_ = nullptr;
  }
  size_ = 0;
}

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::Internal("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal("cannot stat " + path + ": " +
                            std::strerror(err));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument("not a regular file: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size > kMaxBytes) {
    ::close(fd);
    return Status::InvalidArgument("file implausibly large to map: " + path);
  }
  MappedFile mapped;
  if (size > 0) {
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::Internal("cannot mmap " + path + ": " +
                              std::strerror(err));
    }
    mapped.addr_ = addr;
    mapped.size_ = size;
  }
  ::close(fd);  // The mapping keeps the pages; the descriptor is done.
  return mapped;
}

}  // namespace vup
