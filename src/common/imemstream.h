#ifndef VUPRED_COMMON_IMEMSTREAM_H_
#define VUPRED_COMMON_IMEMSTREAM_H_

#include <istream>
#include <streambuf>
#include <string_view>

namespace vup {

/// std::istream over a caller-owned constant buffer, without copying it:
/// the zero-copy replacement for `std::istringstream(std::string(bytes))`
/// on parse paths that already hold the whole file in memory. The viewed
/// bytes must outlive the stream.
class ImemStream : private std::streambuf, public std::istream {
 public:
  explicit ImemStream(std::string_view bytes)
      : std::istream(static_cast<std::streambuf*>(this)) {
    // setg wants char*; the buffer is never written (no setp, and
    // overflow/pbackfail keep their failing defaults).
    char* base = const_cast<char*>(bytes.data());
    setg(base, base, base + bytes.size());
  }

  ImemStream(const ImemStream&) = delete;
  ImemStream& operator=(const ImemStream&) = delete;
};

}  // namespace vup

#endif  // VUPRED_COMMON_IMEMSTREAM_H_
