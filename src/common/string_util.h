#ifndef VUPRED_COMMON_STRING_UTIL_H_
#define VUPRED_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"

namespace vup {

/// Splits `input` on `delimiter`, keeping empty fields.
/// Split("a,,b", ',') -> {"a", "", "b"}; Split("", ',') -> {""}.
std::vector<std::string> Split(std::string_view input, char delimiter);

/// Joins `parts` with `delimiter` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// Case-sensitive prefix/suffix tests.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lowercases ASCII characters.
std::string ToLower(std::string_view s);

/// Strict numeric parsing: the whole (trimmed) string must be consumed.
StatusOr<double> ParseDouble(std::string_view s);
StatusOr<long long> ParseInt(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace vup

#endif  // VUPRED_COMMON_STRING_UTIL_H_
