#ifndef VUPRED_COMMON_STATUS_H_
#define VUPRED_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace vup {

/// Error codes used across the library. Modeled after the canonical
/// database-system status vocabulary (RocksDB / Abseil style).
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kAlreadyExists = 5,
  kUnimplemented = 6,
  kDataLoss = 7,
  kInternal = 8,
  kDeadlineExceeded = 9,
  kUnavailable = 10,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A Status captures the outcome of an operation that can fail.
///
/// The OK state carries no message and is cheap to construct and copy.
/// Error states carry a code and a message describing the failure.
/// Functions that can fail return `Status` (or `StatusOr<T>` when they also
/// produce a value); exceptions are not used across public API boundaries.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  // Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// Renders as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace vup

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define VUP_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::vup::Status vup_status_tmp_ = (expr);       \
    if (!vup_status_tmp_.ok()) {                  \
      return vup_status_tmp_;                     \
    }                                             \
  } while (false)

#endif  // VUPRED_COMMON_STATUS_H_
