#ifndef VUPRED_COMMON_THREAD_POOL_H_
#define VUPRED_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace vup {

/// Fixed-size worker pool with a bounded task queue, shared by the
/// prediction-serving subsystem and the fleet experiment runner.
///
/// Contract:
///  - Submit enqueues a task, blocking while the queue is at capacity
///    (back-pressure instead of unbounded memory growth). After Shutdown it
///    returns FailedPrecondition and the task is not run.
///  - Tasks return Status. A task that *throws* does not take the process
///    down: the exception is caught and converted to an Internal Status.
///    The first non-OK task status (in completion order) is retained and
///    reported by Wait/Shutdown.
///  - Shutdown is graceful: already-queued tasks are drained and executed,
///    then workers join. The destructor calls Shutdown.
///  - No task is ever lost: every successfully submitted task runs exactly
///    once, even when Shutdown races with producers.
class ThreadPool {
 public:
  struct Options {
    Options() = default;
    Options(size_t workers, size_t capacity, std::string label = {})
        : num_workers(workers),
          queue_capacity(capacity),
          metrics_label(std::move(label)) {}

    /// Worker thread count; clamped to >= 1.
    size_t num_workers = 4;
    /// Maximum queued (not yet running) tasks; clamped to >= 1.
    size_t queue_capacity = 1024;
    /// When non-empty, the pool reports to the global metrics registry as
    /// vupred_threadpool_* with label pool="<metrics_label>": tasks run,
    /// task failures, current queue depth and per-task latency. Empty
    /// (the default) disables metrics entirely.
    std::string metrics_label;
  };

  explicit ThreadPool(Options options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; blocks while the queue is full.
  /// FailedPrecondition after Shutdown.
  Status Submit(std::function<Status()> task);

  /// Blocks until every submitted task has finished (queue empty and no
  /// task in flight). Returns the first task error observed so far (OK if
  /// none). The pool stays usable afterwards.
  Status Wait();

  /// Stops accepting new tasks, drains the queue, joins the workers.
  /// Idempotent. Returns the first task error observed.
  Status Shutdown();

  size_t num_workers() const { return workers_.size(); }

  /// True until Shutdown is entered; afterwards Submit is guaranteed to
  /// fail. Callers use this to route work inline instead of dropping it.
  bool accepting() const;

  /// Tasks that finished (successfully or not) since construction.
  size_t tasks_completed() const;
  /// Tasks that finished with a non-OK status (including thrown
  /// exceptions).
  size_t tasks_failed() const;

 private:
  void WorkerLoop();

  Options options_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;   // Queue gained work or shutdown.
  std::condition_variable not_full_;    // Queue has room again.
  std::condition_variable idle_;        // Queue empty and nothing in flight.
  std::deque<std::function<Status()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  Status first_error_;
  size_t completed_ = 0;
  size_t failed_ = 0;

  // Global-registry instruments (all null when metrics are disabled).
  obs::Counter* tasks_total_ = nullptr;
  obs::Counter* task_failures_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Histogram* task_seconds_ = nullptr;
};

}  // namespace vup

#endif  // VUPRED_COMMON_THREAD_POOL_H_
