#include "common/crc32.h"

namespace vup {

namespace {

const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> bytes) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (uint8_t b : bytes) {
    crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const void* data, size_t size) {
  return Crc32(
      std::span<const uint8_t>(static_cast<const uint8_t*>(data), size));
}

}  // namespace vup
