#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <string>
#include <utility>

namespace vup {

namespace {

/// Runs a task, converting a thrown exception into a Status so a misbehaving
/// task can never terminate the worker thread (the library's no-exceptions
/// contract at public boundaries).
Status RunGuarded(const std::function<Status()>& task) {
  try {
    return task();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("task threw a non-std exception");
  }
}

}  // namespace

ThreadPool::ThreadPool(Options options) : options_(std::move(options)) {
  options_.num_workers = std::max<size_t>(options_.num_workers, 1);
  options_.queue_capacity = std::max<size_t>(options_.queue_capacity, 1);
  if (!options_.metrics_label.empty()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    const obs::LabelSet labels = {{"pool", options_.metrics_label}};
    tasks_total_ = registry.GetCounter(
        "vupred_threadpool_tasks_total",
        "Tasks finished by the pool (any outcome).", labels);
    task_failures_ = registry.GetCounter(
        "vupred_threadpool_task_failures_total",
        "Tasks finished with a non-OK status (exceptions included).",
        labels);
    queue_depth_ = registry.GetGauge(
        "vupred_threadpool_queue_depth",
        "Tasks queued and not yet picked up by a worker.", labels);
    task_seconds_ = registry.GetHistogram(
        "vupred_threadpool_task_seconds", "Wall-clock runtime of one task.",
        obs::Histogram::LatencyBoundsSeconds(), labels);
  }
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::Submit(std::function<Status()> task) {
  if (task == nullptr) {
    return Status::InvalidArgument("cannot submit a null task");
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return shutdown_ || queue_.size() < options_.queue_capacity;
    });
    if (shutdown_) {
      return Status::FailedPrecondition("thread pool is shut down");
    }
    queue_.push_back(std::move(task));
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<double>(queue_.size()));
    }
  }
  not_empty_.notify_one();
  return Status::OK();
}

Status ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  return first_error_;
}

Status ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  // Wake everyone: workers drain the remaining queue, blocked producers
  // observe the shutdown and bail out.
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  return first_error_;
}

size_t ThreadPool::tasks_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

size_t ThreadPool::tasks_failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

bool ThreadPool::accepting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !shutdown_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<Status()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        // Shutdown with a drained queue: this worker is done.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_ != nullptr) {
        queue_depth_->Set(static_cast<double>(queue_.size()));
      }
      ++in_flight_;
    }
    not_full_.notify_one();

    const auto start = std::chrono::steady_clock::now();
    Status status = RunGuarded(task);
    if (task_seconds_ != nullptr) {
      task_seconds_->Record(std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count());
    }
    if (tasks_total_ != nullptr) tasks_total_->Increment();
    if (task_failures_ != nullptr && !status.ok()) {
      task_failures_->Increment();
    }

    bool became_idle = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      ++completed_;
      if (!status.ok()) {
        ++failed_;
        if (first_error_.ok()) first_error_ = status;
      }
      became_idle = queue_.empty() && in_flight_ == 0;
    }
    if (became_idle) idle_.notify_all();
  }
}

}  // namespace vup
