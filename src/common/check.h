#ifndef VUPRED_COMMON_CHECK_H_
#define VUPRED_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace vup {
namespace internal_check {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used only via the VUP_CHECK family of macros.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace vup

/// Aborts with a diagnostic if `cond` is false. For programmer errors
/// (broken invariants), not for recoverable conditions -- those return Status.
/// Extra context can be streamed: VUP_CHECK(n > 0) << "n=" << n;
#define VUP_CHECK(cond)                                            \
  switch (0)                                                       \
  case 0:                                                          \
  default:                                                         \
    if (cond)                                                      \
      ;                                                            \
    else                                                           \
      ::vup::internal_check::CheckFailureStream(#cond, __FILE__, __LINE__)

#define VUP_CHECK_EQ(a, b) VUP_CHECK((a) == (b))
#define VUP_CHECK_NE(a, b) VUP_CHECK((a) != (b))
#define VUP_CHECK_LT(a, b) VUP_CHECK((a) < (b))
#define VUP_CHECK_LE(a, b) VUP_CHECK((a) <= (b))
#define VUP_CHECK_GT(a, b) VUP_CHECK((a) > (b))
#define VUP_CHECK_GE(a, b) VUP_CHECK((a) >= (b))

#ifdef NDEBUG
// In release builds VUP_DCHECK compiles the condition out (short-circuited).
#define VUP_DCHECK(cond) VUP_CHECK(true || (cond))
#else
#define VUP_DCHECK(cond) VUP_CHECK(cond)
#endif

#endif  // VUPRED_COMMON_CHECK_H_
