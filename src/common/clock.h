#ifndef VUPRED_COMMON_CLOCK_H_
#define VUPRED_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace vup {

/// Monotonic time source. Production code reads `Clock::Real()`; tests
/// inject a `FakeClock` so deadline and circuit-breaker transitions are
/// driven explicitly instead of by wall-clock sleeps.
class Clock {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  virtual ~Clock() = default;

  virtual TimePoint Now() const = 0;

  /// The process-wide monotonic clock (steady_clock).
  static const Clock& Real();
};

/// Manually advanced clock for tests. Thread-safe: concurrent readers see
/// a monotonic sequence of the explicitly set instants.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(int64_t start_ns = 0) : now_ns_(start_ns) {}

  TimePoint Now() const override {
    return TimePoint(std::chrono::nanoseconds(
        now_ns_.load(std::memory_order_acquire)));
  }

  void AdvanceMs(int64_t ms) { Advance(std::chrono::milliseconds(ms)); }

  void Advance(std::chrono::nanoseconds d) {
    now_ns_.fetch_add(d.count(), std::memory_order_acq_rel);
  }

 private:
  std::atomic<int64_t> now_ns_;
};

/// An absolute instant after which work is no longer worth doing. The
/// default-constructed deadline is infinite (never expires), so adding a
/// `Deadline` field to a request struct changes nothing for callers that
/// ignore it.
class Deadline {
 public:
  /// No deadline: never expires.
  Deadline() : ns_(kInfiniteNs) {}

  static Deadline Infinite() { return Deadline(); }

  static Deadline At(Clock::TimePoint tp) {
    return Deadline(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        tp.time_since_epoch())
                        .count());
  }

  /// Expires `ms` milliseconds after `clock`'s current instant. A
  /// non-positive `ms` yields an already-expired deadline.
  static Deadline AfterMs(const Clock& clock, int64_t ms) {
    return At(clock.Now() + std::chrono::milliseconds(ms));
  }

  bool infinite() const { return ns_ == kInfiniteNs; }

  bool Expired(const Clock& clock) const {
    return !infinite() && NowNs(clock) >= ns_;
  }

  /// Milliseconds until expiry: negative when already expired, a very
  /// large value when infinite.
  int64_t RemainingMs(const Clock& clock) const {
    if (infinite()) return kInfiniteNs / 1'000'000;
    return (ns_ - NowNs(clock)) / 1'000'000;
  }

  friend bool operator==(const Deadline& a, const Deadline& b) {
    return a.ns_ == b.ns_;
  }

 private:
  static constexpr int64_t kInfiniteNs = INT64_MAX;

  explicit Deadline(int64_t ns) : ns_(ns) {}

  static int64_t NowNs(const Clock& clock) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               clock.Now().time_since_epoch())
        .count();
  }

  int64_t ns_;  // Steady-clock-epoch nanoseconds; kInfiniteNs = none.
};

}  // namespace vup

#endif  // VUPRED_COMMON_CLOCK_H_
