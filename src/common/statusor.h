#ifndef VUPRED_COMMON_STATUSOR_H_
#define VUPRED_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace vup {

/// StatusOr<T> holds either a usable value of type T or an error Status.
///
/// Typical use:
///
///   StatusOr<Model> result = Train(data);
///   if (!result.ok()) return result.status();
///   Model model = std::move(result).value();
///
/// Accessing `value()` on an error StatusOr aborts the process (programmer
/// error), matching the check-macro contract used throughout the library.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. Must not be OK: an OK StatusOr must
  /// carry a value.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    VUP_CHECK(!status_.ok()) << "StatusOr constructed from OK status without a value";
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value)  // NOLINT(runtime/explicit)
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    VUP_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    VUP_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    VUP_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace vup

/// Assigns the value of a StatusOr expression to `lhs`, returning the error
/// status from the enclosing function on failure.
#define VUP_ASSIGN_OR_RETURN(lhs, expr)          \
  VUP_ASSIGN_OR_RETURN_IMPL_(                    \
      VUP_STATUS_MACRO_CONCAT_(vup_sor_, __LINE__), lhs, expr)

#define VUP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  lhs = std::move(tmp).value()

#define VUP_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define VUP_STATUS_MACRO_CONCAT_(x, y) VUP_STATUS_MACRO_CONCAT_INNER_(x, y)

#endif  // VUPRED_COMMON_STATUSOR_H_
