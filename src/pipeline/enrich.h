#ifndef VUPRED_PIPELINE_ENRICH_H_
#define VUPRED_PIPELINE_ENRICH_H_

#include <string>
#include <vector>

#include "calendar/country.h"
#include "calendar/date.h"

namespace vup {

/// Preparation step (iv), Enrichment: the multi-level contextual features
/// joined onto each vehicle-day (Section 2's "Contextual information"):
/// temporal (day of week, holiday/working day by country, week, month,
/// season, year) and spatial (region). Encoded numerically, ready for the
/// regressors.
struct ContextFeatures {
  double day_of_week = 0.0;     // 0 (Monday) .. 6 (Sunday).
  double is_weekend = 0.0;      // Country's rest-day convention.
  double is_holiday = 0.0;      // Country's public-holiday calendar.
  double is_working_day = 0.0;  // !weekend && !holiday.
  double week_of_year = 1.0;    // ISO week 1..53.
  double month = 1.0;           // 1..12.
  double season = 0.0;          // Season enum value, hemisphere-corrected.
  double year = 2015.0;
  double region = 0.0;          // Region enum value.
};

/// Number of scalar context features (== fields of ContextFeatures).
inline constexpr size_t kNumContextFeatures = 9;

/// Stable names, aligned with ContextFeatures::ToVector ordering.
const std::vector<std::string>& ContextFeatureNames();

/// Computes the context of one vehicle-day.
ContextFeatures ComputeContext(const Date& date, const Country& country);

/// Flattens to the canonical ordering of ContextFeatureNames().
std::vector<double> ContextToVector(const ContextFeatures& c);

}  // namespace vup

#endif  // VUPRED_PIPELINE_ENRICH_H_
