#include "pipeline/aggregate.h"

#include <map>

namespace vup {

std::vector<DailyUsageRecord> AggregateReportsDaily(
    std::span<const AggregatedReport> reports) {
  // date day-number -> (slot -> report); map keeps days ordered and the
  // inner map deduplicates slots (last wins).
  std::map<int32_t, std::map<int, AggregatedReport>> by_day;
  for (const AggregatedReport& r : reports) {
    by_day[r.date.day_number()][r.slot] = r;
  }

  std::vector<DailyUsageRecord> out;
  out.reserve(by_day.size());
  for (const auto& [day_number, slots] : by_day) {
    DailyUsageRecord rec;
    rec.date = Date::FromDayNumber(day_number);

    double on_weight = 0.0;
    double sum_load = 0.0, sum_rpm = 0.0, sum_coolant = 0.0, sum_oil = 0.0;
    double fuel_l = 0.0;
    double speed_km = 0.0;
    double last_fuel_level = 0.0;
    for (const auto& [slot, r] : slots) {
      double w = r.engine_on_fraction;
      double slot_hours = w * static_cast<double>(kSlotSeconds) / 3600.0;
      rec.hours += slot_hours;
      if (w > 0.0) {
        on_weight += w;
        sum_load += w * r.avg_engine_load_pct;
        sum_rpm += w * r.avg_engine_rpm;
        sum_coolant += w * r.avg_coolant_temp_c;
        sum_oil += w * r.avg_oil_pressure_kpa;
        fuel_l += r.avg_fuel_rate_lph * slot_hours;
        speed_km += r.avg_speed_kmh * slot_hours;
      }
      if (r.sample_count > 0) last_fuel_level = r.fuel_level_pct;
      rec.dtc_count += r.dtc_count;
    }
    if (on_weight > 0.0) {
      rec.avg_engine_load_pct = sum_load / on_weight;
      rec.avg_engine_rpm = sum_rpm / on_weight;
      rec.avg_coolant_temp_c = sum_coolant / on_weight;
      rec.avg_oil_pressure_kpa = sum_oil / on_weight;
    }
    rec.fuel_used_l = fuel_l;
    rec.distance_km = speed_km;
    rec.fuel_level_end_pct = last_fuel_level;
    // Idle share is not directly observable from the aggregated signals;
    // approximate as time at low load.
    rec.idle_hours = 0.0;
    out.push_back(rec);
  }
  return out;
}

}  // namespace vup
