#ifndef VUPRED_PIPELINE_NORMALIZE_H_
#define VUPRED_PIPELINE_NORMALIZE_H_

#include <span>
#include <vector>

#include "common/statusor.h"

namespace vup {

/// Preparation step (ii), Normalization: makes continuous features
/// comparable with each other. Both normalizers follow a fit/transform/
/// inverse-transform contract and are no-ops on degenerate (constant)
/// inputs rather than dividing by zero.

/// Min-max scaling to [0, 1].
class MinMaxNormalizer {
 public:
  /// Learns min/max from `values`. InvalidArgument on empty input.
  Status Fit(std::span<const double> values);

  bool fitted() const { return fitted_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Maps through (v - min) / (max - min); constant inputs map to 0.
  /// FailedPrecondition when not fitted.
  StatusOr<std::vector<double>> Transform(
      std::span<const double> values) const;
  StatusOr<double> TransformOne(double value) const;

  StatusOr<std::vector<double>> InverseTransform(
      std::span<const double> values) const;

 private:
  bool fitted_ = false;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Standardization to zero mean, unit variance.
class ZScoreNormalizer {
 public:
  Status Fit(std::span<const double> values);

  bool fitted() const { return fitted_; }
  double mean() const { return mean_; }
  double stddev() const { return stddev_; }

  /// Maps through (v - mean) / stddev; constant inputs map to 0.
  StatusOr<std::vector<double>> Transform(
      std::span<const double> values) const;
  StatusOr<double> TransformOne(double value) const;

  StatusOr<std::vector<double>> InverseTransform(
      std::span<const double> values) const;

 private:
  bool fitted_ = false;
  double mean_ = 0.0;
  double stddev_ = 0.0;
};

}  // namespace vup

#endif  // VUPRED_PIPELINE_NORMALIZE_H_
