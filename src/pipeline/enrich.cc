#include "pipeline/enrich.h"

#include "calendar/season.h"

namespace vup {

const std::vector<std::string>& ContextFeatureNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      "ctx_day_of_week", "ctx_is_weekend", "ctx_is_holiday",
      "ctx_is_working_day", "ctx_week_of_year", "ctx_month",
      "ctx_season", "ctx_year", "ctx_region",
  };
  return names;
}

ContextFeatures ComputeContext(const Date& date, const Country& country) {
  ContextFeatures c;
  c.day_of_week = static_cast<double>(date.weekday());
  bool weekend = country.weekend.IsRestDay(date.weekday());
  bool holiday = country.holidays.IsHoliday(date);
  c.is_weekend = weekend ? 1.0 : 0.0;
  c.is_holiday = holiday ? 1.0 : 0.0;
  c.is_working_day = (!weekend && !holiday) ? 1.0 : 0.0;
  c.week_of_year = static_cast<double>(date.iso_week());
  c.month = static_cast<double>(date.month());
  c.season =
      static_cast<double>(SeasonForDate(date, country.hemisphere));
  c.year = static_cast<double>(date.year());
  c.region = static_cast<double>(country.region);
  return c;
}

std::vector<double> ContextToVector(const ContextFeatures& c) {
  return {c.day_of_week, c.is_weekend,    c.is_holiday,
          c.is_working_day, c.week_of_year, c.month,
          c.season,        c.year,         c.region};
}

}  // namespace vup
