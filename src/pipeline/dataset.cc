#include "pipeline/dataset.h"

#include "common/check.h"
#include "common/string_util.h"
#include "pipeline/enrich.h"

namespace vup {

const std::vector<std::string>& VehicleDataset::FeatureNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>(
      [] {
        std::vector<std::string> n = {
            "day_hours",       "fuel_used_l",     "engine_load_pct",
            "engine_rpm",      "coolant_temp_c",  "oil_pressure_kpa",
            "fuel_level_pct",  "distance_km",     "idle_hours",
            "dtc_count",
        };
        VUP_CHECK(n.size() == kNumEngineFeatures);
        const std::vector<std::string>& ctx = ContextFeatureNames();
        n.insert(n.end(), ctx.begin(), ctx.end());
        return n;
      }());
  return names;
}

StatusOr<VehicleDataset> VehicleDataset::Build(
    const VehicleInfo& info, std::span<const DailyUsageRecord> records,
    const Country& country) {
  if (records.empty()) {
    return Status::InvalidArgument("cannot build dataset from zero days");
  }
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i].date - records[i - 1].date != 1) {
      return Status::InvalidArgument(
          "records must cover consecutive dates (gap before " +
          records[i].date.ToString() + "); run CleanDailyRecords first");
    }
  }

  VehicleDataset ds;
  ds.info_ = info;
  ds.country_ = &country;
  const size_t nf = FeatureNames().size();
  ds.dates_.reserve(records.size());
  ds.hours_.reserve(records.size());
  ds.features_.reserve(records.size() * nf);
  for (const DailyUsageRecord& r : records) {
    ds.dates_.push_back(r.date);
    ds.hours_.push_back(r.hours);
    ds.features_.push_back(r.hours);
    ds.features_.push_back(r.fuel_used_l);
    ds.features_.push_back(r.avg_engine_load_pct);
    ds.features_.push_back(r.avg_engine_rpm);
    ds.features_.push_back(r.avg_coolant_temp_c);
    ds.features_.push_back(r.avg_oil_pressure_kpa);
    ds.features_.push_back(r.fuel_level_end_pct);
    ds.features_.push_back(r.distance_km);
    ds.features_.push_back(r.idle_hours);
    ds.features_.push_back(static_cast<double>(r.dtc_count));
    std::vector<double> ctx =
        ContextToVector(ComputeContext(r.date, country));
    ds.features_.insert(ds.features_.end(), ctx.begin(), ctx.end());
  }
  VUP_CHECK(ds.features_.size() == records.size() * nf);
  return ds;
}

double VehicleDataset::feature(size_t day, size_t f) const {
  VUP_CHECK(day < dates_.size()) << "day " << day;
  VUP_CHECK(f < num_features()) << "feature " << f;
  return features_[day * num_features() + f];
}

std::span<const double> VehicleDataset::FeatureRow(size_t day) const {
  VUP_CHECK(day < dates_.size()) << "day " << day;
  return std::span<const double>(features_).subspan(day * num_features(),
                                                    num_features());
}

VehicleDataset VehicleDataset::CompressToWorkingDays(double min_hours) const {
  VehicleDataset out;
  out.info_ = info_;
  out.country_ = country_;
  const size_t nf = num_features();
  for (size_t i = 0; i < dates_.size(); ++i) {
    if (hours_[i] < min_hours) continue;
    out.dates_.push_back(dates_[i]);
    out.hours_.push_back(hours_[i]);
    std::span<const double> row = FeatureRow(i);
    out.features_.insert(out.features_.end(), row.begin(), row.end());
  }
  VUP_CHECK(out.features_.size() == out.dates_.size() * nf);
  return out;
}

StatusOr<VehicleDataset> VehicleDataset::FromTable(const VehicleInfo& info,
                                                   const Table& table,
                                                   const Country& country) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot rebuild dataset from zero rows");
  }
  VUP_ASSIGN_OR_RETURN(const Column* dates, table.ColumnByName("date"));
  VUP_ASSIGN_OR_RETURN(const Column* hours,
                       table.ColumnByName("utilization_hours"));
  const std::vector<std::string>& names = FeatureNames();
  std::vector<const Column*> engine_columns;
  engine_columns.reserve(kNumEngineFeatures);
  // Engine feature 0 is day_hours == utilization_hours, read separately.
  for (size_t f = 1; f < kNumEngineFeatures; ++f) {
    VUP_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(names[f]));
    engine_columns.push_back(col);
  }

  std::vector<DailyUsageRecord> records;
  records.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (dates->IsNull(r) || hours->IsNull(r)) {
      return Status::InvalidArgument(
          StrFormat("NULL date or hours at row %zu", r));
    }
    DailyUsageRecord rec;
    rec.date = dates->DateAt(r);
    rec.hours = hours->DoubleAt(r);
    auto numeric = [&](size_t index) {
      const Column* col = engine_columns[index];
      return col->IsNull(r) ? 0.0 : col->DoubleAt(r);
    };
    rec.fuel_used_l = numeric(0);
    rec.avg_engine_load_pct = numeric(1);
    rec.avg_engine_rpm = numeric(2);
    rec.avg_coolant_temp_c = numeric(3);
    rec.avg_oil_pressure_kpa = numeric(4);
    rec.fuel_level_end_pct = numeric(5);
    rec.distance_km = numeric(6);
    rec.idle_hours = numeric(7);
    rec.dtc_count = static_cast<int>(numeric(8));
    records.push_back(rec);
  }
  return Build(info, records, country);
}

StatusOr<Table> VehicleDataset::ToTable() const {
  std::vector<Field> fields;
  fields.push_back({"date", DataType::kDate, false});
  fields.push_back({"utilization_hours", DataType::kDouble, false});
  for (const std::string& name : FeatureNames()) {
    fields.push_back({name, DataType::kDouble, false});
  }
  VUP_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  Table table(std::move(schema));
  for (size_t i = 0; i < dates_.size(); ++i) {
    std::vector<Value> row;
    row.reserve(2 + num_features());
    row.push_back(Value::Day(dates_[i]));
    row.push_back(Value::Real(hours_[i]));
    for (double f : FeatureRow(i)) row.push_back(Value::Real(f));
    VUP_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

}  // namespace vup
