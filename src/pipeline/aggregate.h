#ifndef VUPRED_PIPELINE_AGGREGATE_H_
#define VUPRED_PIPELINE_AGGREGATE_H_

#include <span>
#include <vector>

#include "telemetry/report.h"
#include "telemetry/usage_model.h"

namespace vup {

/// Preparation step (iii), Aggregation: folds 10-minute slot reports into
/// one record per calendar day.
///
/// Daily utilization hours are derived from the engine-on time of the
/// acquired slots ("based on acquisition time and number of acquired
/// samples we derive the daily utilization hours", Section 2). Signal
/// averages are weighted by each slot's engine-on fraction; fuel burn
/// integrates the fuel-rate signal over engine-on time.
///
/// Produces one record per day that has at least one report; missing days
/// (connectivity gaps or real idleness) are left to the cleaning stage.
/// Input must be sorted by (date, slot); duplicates are tolerated (last
/// wins).
std::vector<DailyUsageRecord> AggregateReportsDaily(
    std::span<const AggregatedReport> reports);

}  // namespace vup

#endif  // VUPRED_PIPELINE_AGGREGATE_H_
