#ifndef VUPRED_PIPELINE_INGEST_H_
#define VUPRED_PIPELINE_INGEST_H_

#include <cstdint>
#include <map>
#include <vector>

#include "calendar/country.h"
#include "common/statusor.h"
#include "pipeline/cleaning.h"
#include "pipeline/dataset.h"
#include "telemetry/report.h"
#include "telemetry/vehicle.h"

namespace vup {

/// The centralized server of Section 2: every 10 minutes each on-board
/// device uploads an aggregated report; the server organizes them per
/// vehicle and serves cleaned, model-ready daily datasets to the learning
/// pipeline.
///
/// Ingestion is idempotent per (vehicle, date, slot): re-deliveries --
/// common after connectivity recovery -- overwrite rather than duplicate,
/// and are counted. Reports may arrive in any order.
class IngestionStore {
 public:
  struct Stats {
    size_t reports_ingested = 0;   // Distinct (vehicle, date, slot) kept.
    size_t duplicates = 0;         // Re-deliveries that overwrote.
    size_t rejected = 0;           // Failed validation (sum of the causes).
    // Per-cause rejection counters, so fleet operators can tell sensor
    // corruption (non-finite / out-of-range fields) apart from
    // misconfiguration (bad slot grid, bad vehicle id).
    size_t rejected_bad_slot = 0;
    size_t rejected_bad_id = 0;
    size_t rejected_non_finite = 0;
    size_t rejected_out_of_range = 0;
  };

  IngestionStore() = default;

  /// Validates and stores one report. InvalidArgument on a slot outside
  /// [0, kSlotsPerDay), a non-positive vehicle id, or a payload that
  /// fails ValidateReportPayload (NaN/inf channels, negative counts,
  /// out-of-physical-range values) -- accepting those would silently
  /// poison daily aggregation.
  Status Ingest(const AggregatedReport& report);

  /// Best-effort batch ingestion: every valid report in the batch is
  /// ingested regardless of invalid ones (a corrupt report must never
  /// block the rest of an upload). Returns OK when all reports were
  /// accepted; otherwise an InvalidArgument summarizing how many were
  /// rejected, with the first rejection's message. Rejects are counted in
  /// stats().rejected either way, so callers can treat the summary status
  /// as advisory.
  Status IngestBatch(const std::vector<AggregatedReport>& reports);

  size_t num_vehicles() const { return by_vehicle_.size(); }
  std::vector<int64_t> VehicleIds() const;
  bool HasVehicle(int64_t vehicle_id) const;

  /// Number of stored reports for one vehicle.
  size_t ReportCount(int64_t vehicle_id) const;

  /// The vehicle's stored reports in (date, slot) order; empty for an
  /// unknown vehicle. Used by checkpointing and recovery-equivalence
  /// checks.
  std::vector<AggregatedReport> ReportsOf(int64_t vehicle_id) const;

  /// Order-independent digest of the full stored content (vehicle ids,
  /// grid keys, and the exact bit patterns of every field). Two stores
  /// with the same digest hold bit-identical reports -- the equivalence
  /// the crash-recovery tests assert.
  uint64_t ContentDigest() const;

  /// Date coverage [first, last] of a vehicle's stored reports; NotFound
  /// for unknown vehicles.
  StatusOr<std::pair<Date, Date>> CoverageOf(int64_t vehicle_id) const;

  /// Daily aggregation of the vehicle's stored reports (preparation step
  /// iii), sorted by date; days without reports are absent (cleaning fills
  /// them). NotFound for unknown vehicles.
  StatusOr<std::vector<DailyUsageRecord>> DailyRecords(
      int64_t vehicle_id) const;

  /// Full preparation: aggregate -> clean over [start, end] -> relational
  /// dataset with contextual enrichment for the given vehicle identity.
  StatusOr<VehicleDataset> BuildDataset(const VehicleInfo& info,
                                        const Country& country,
                                        const Date& start,
                                        const Date& end) const;

  const Stats& stats() const { return stats_; }

 private:
  // (day_number, slot) -> report; map keys keep reports ordered.
  using SlotKey = std::pair<int32_t, int>;
  std::map<int64_t, std::map<SlotKey, AggregatedReport>> by_vehicle_;
  Stats stats_;
};

}  // namespace vup

#endif  // VUPRED_PIPELINE_INGEST_H_
