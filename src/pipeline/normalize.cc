#include "pipeline/normalize.h"

#include "stats/descriptive.h"

namespace vup {

Status MinMaxNormalizer::Fit(std::span<const double> values) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot fit normalizer on empty data");
  }
  min_ = Min(values);
  max_ = Max(values);
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> MinMaxNormalizer::TransformOne(double value) const {
  if (!fitted_) return Status::FailedPrecondition("normalizer not fitted");
  double range = max_ - min_;
  if (range == 0.0) return 0.0;
  return (value - min_) / range;
}

StatusOr<std::vector<double>> MinMaxNormalizer::Transform(
    std::span<const double> values) const {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) {
    VUP_ASSIGN_OR_RETURN(double t, TransformOne(v));
    out.push_back(t);
  }
  return out;
}

StatusOr<std::vector<double>> MinMaxNormalizer::InverseTransform(
    std::span<const double> values) const {
  if (!fitted_) return Status::FailedPrecondition("normalizer not fitted");
  std::vector<double> out;
  out.reserve(values.size());
  double range = max_ - min_;
  for (double v : values) out.push_back(min_ + v * range);
  return out;
}

Status ZScoreNormalizer::Fit(std::span<const double> values) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot fit normalizer on empty data");
  }
  mean_ = Mean(values);
  stddev_ = StdDev(values);
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> ZScoreNormalizer::TransformOne(double value) const {
  if (!fitted_) return Status::FailedPrecondition("normalizer not fitted");
  if (stddev_ == 0.0) return 0.0;
  return (value - mean_) / stddev_;
}

StatusOr<std::vector<double>> ZScoreNormalizer::Transform(
    std::span<const double> values) const {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) {
    VUP_ASSIGN_OR_RETURN(double t, TransformOne(v));
    out.push_back(t);
  }
  return out;
}

StatusOr<std::vector<double>> ZScoreNormalizer::InverseTransform(
    std::span<const double> values) const {
  if (!fitted_) return Status::FailedPrecondition("normalizer not fitted");
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(mean_ + v * stddev_);
  return out;
}

}  // namespace vup
