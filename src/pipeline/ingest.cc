#include "pipeline/ingest.h"

#include <cstring>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "pipeline/aggregate.h"

namespace vup {

namespace {

/// Process-wide ingestion counters, shared across all stores (each store
/// still keeps its own IngestStats for per-store reporting).
struct IngestCounters {
  obs::Counter* ingested;
  obs::Counter* rejected;
  obs::Counter* duplicates;
  // Labeled per-cause family: {cause=bad_slot|bad_id|non_finite|
  // out_of_range}; the StreamIngestor adds {cause=decode} for frames that
  // never reached payload validation.
  obs::Counter* rejected_bad_slot;
  obs::Counter* rejected_bad_id;
  obs::Counter* rejected_non_finite;
  obs::Counter* rejected_out_of_range;
};

constexpr char kRejectsByCause[] = "vupred_ingest_rejects_total";
constexpr char kRejectsByCauseHelp[] =
    "Reports rejected by ingestion, labeled by rejection cause.";

const IngestCounters& GlobalIngestCounters() {
  static const IngestCounters counters = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return IngestCounters{
        registry.GetCounter("vupred_ingest_reports_total",
                            "Aggregated reports accepted by ingestion."),
        registry.GetCounter("vupred_ingest_rejected_total",
                            "Reports rejected by ingestion validation."),
        registry.GetCounter("vupred_ingest_duplicates_total",
                            "Reports that overwrote an existing slot."),
        registry.GetCounter(kRejectsByCause, kRejectsByCauseHelp,
                            {{"cause", "bad_slot"}}),
        registry.GetCounter(kRejectsByCause, kRejectsByCauseHelp,
                            {{"cause", "bad_id"}}),
        registry.GetCounter(kRejectsByCause, kRejectsByCauseHelp,
                            {{"cause", "non_finite"}}),
        registry.GetCounter(kRejectsByCause, kRejectsByCauseHelp,
                            {{"cause", "out_of_range"}}),
    };
  }();
  return counters;
}

/// FNV-1a 64-bit fold of raw bytes, the digest primitive.
uint64_t FnvMix(uint64_t h, const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t FnvMixU64(uint64_t h, uint64_t v) { return FnvMix(h, &v, 8); }

uint64_t FnvMixDouble(uint64_t h, double v) {
  // Bit pattern, not value: -0.0 vs 0.0 and NaN payloads all count.
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return FnvMixU64(h, bits);
}

}  // namespace

Status IngestionStore::Ingest(const AggregatedReport& report) {
  const IngestCounters& counters = GlobalIngestCounters();
  if (report.slot < 0 || report.slot >= kSlotsPerDay) {
    ++stats_.rejected;
    ++stats_.rejected_bad_slot;
    counters.rejected->Increment();
    counters.rejected_bad_slot->Increment();
    return Status::InvalidArgument(
        StrFormat("slot %d outside [0, %d)", report.slot, kSlotsPerDay));
  }
  if (report.vehicle_id <= 0) {
    ++stats_.rejected;
    ++stats_.rejected_bad_id;
    counters.rejected->Increment();
    counters.rejected_bad_id->Increment();
    return Status::InvalidArgument("non-positive vehicle id");
  }
  switch (ValidateReportPayload(report)) {
    case ReportPayloadIssue::kNone:
      break;
    case ReportPayloadIssue::kNonFinite:
      ++stats_.rejected;
      ++stats_.rejected_non_finite;
      counters.rejected->Increment();
      counters.rejected_non_finite->Increment();
      return Status::InvalidArgument(StrFormat(
          "non-finite payload field in %s", report.ToString().c_str()));
    case ReportPayloadIssue::kOutOfRange:
      ++stats_.rejected;
      ++stats_.rejected_out_of_range;
      counters.rejected->Increment();
      counters.rejected_out_of_range->Increment();
      return Status::InvalidArgument(StrFormat(
          "out-of-range payload field in %s", report.ToString().c_str()));
  }
  SlotKey key{report.date.day_number(), report.slot};
  auto& slots = by_vehicle_[report.vehicle_id];
  auto [it, inserted] = slots.insert_or_assign(key, report);
  (void)it;
  if (inserted) {
    ++stats_.reports_ingested;
    GlobalIngestCounters().ingested->Increment();
  } else {
    ++stats_.duplicates;
    GlobalIngestCounters().duplicates->Increment();
  }
  return Status::OK();
}

Status IngestionStore::IngestBatch(
    const std::vector<AggregatedReport>& reports) {
  const Stats before = stats_;
  size_t rejected = 0;
  Status first_error;
  for (const AggregatedReport& r : reports) {
    Status s = Ingest(r);
    if (!s.ok()) {
      if (rejected == 0) first_error = s;
      ++rejected;
    }
  }
  if (rejected == 0) return Status::OK();
  return Status::InvalidArgument(StrFormat(
      "%zu of %zu reports rejected (bad_slot=%zu bad_id=%zu "
      "non_finite=%zu out_of_range=%zu); first: %s",
      rejected, reports.size(),
      stats_.rejected_bad_slot - before.rejected_bad_slot,
      stats_.rejected_bad_id - before.rejected_bad_id,
      stats_.rejected_non_finite - before.rejected_non_finite,
      stats_.rejected_out_of_range - before.rejected_out_of_range,
      first_error.ToString().c_str()));
}

std::vector<int64_t> IngestionStore::VehicleIds() const {
  std::vector<int64_t> ids;
  ids.reserve(by_vehicle_.size());
  for (const auto& [id, slots] : by_vehicle_) ids.push_back(id);
  return ids;
}

bool IngestionStore::HasVehicle(int64_t vehicle_id) const {
  return by_vehicle_.count(vehicle_id) > 0;
}

size_t IngestionStore::ReportCount(int64_t vehicle_id) const {
  auto it = by_vehicle_.find(vehicle_id);
  return it == by_vehicle_.end() ? 0 : it->second.size();
}

std::vector<AggregatedReport> IngestionStore::ReportsOf(
    int64_t vehicle_id) const {
  std::vector<AggregatedReport> reports;
  auto it = by_vehicle_.find(vehicle_id);
  if (it == by_vehicle_.end()) return reports;
  reports.reserve(it->second.size());
  for (const auto& [key, report] : it->second) reports.push_back(report);
  return reports;
}

uint64_t IngestionStore::ContentDigest() const {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis.
  for (const auto& [vehicle_id, slots] : by_vehicle_) {
    h = FnvMixU64(h, static_cast<uint64_t>(vehicle_id));
    h = FnvMixU64(h, slots.size());
    for (const auto& [key, r] : slots) {
      h = FnvMixU64(h, static_cast<uint64_t>(
                           static_cast<uint32_t>(key.first)));
      h = FnvMixU64(h, static_cast<uint64_t>(key.second));
      h = FnvMixU64(h, static_cast<uint64_t>(r.vehicle_id));
      h = FnvMixU64(h, static_cast<uint64_t>(
                           static_cast<uint32_t>(r.date.day_number())));
      h = FnvMixU64(h, static_cast<uint64_t>(r.slot));
      h = FnvMixDouble(h, r.engine_on_fraction);
      h = FnvMixDouble(h, r.avg_engine_rpm);
      h = FnvMixDouble(h, r.avg_engine_load_pct);
      h = FnvMixDouble(h, r.avg_fuel_rate_lph);
      h = FnvMixDouble(h, r.avg_oil_pressure_kpa);
      h = FnvMixDouble(h, r.avg_coolant_temp_c);
      h = FnvMixDouble(h, r.avg_speed_kmh);
      h = FnvMixDouble(h, r.avg_hydraulic_temp_c);
      h = FnvMixDouble(h, r.fuel_level_pct);
      h = FnvMixDouble(h, r.engine_hours_total);
      h = FnvMixU64(h, static_cast<uint64_t>(
                           static_cast<uint32_t>(r.dtc_count)));
      h = FnvMixU64(h, static_cast<uint64_t>(
                           static_cast<uint32_t>(r.sample_count)));
    }
  }
  return h;
}

StatusOr<std::pair<Date, Date>> IngestionStore::CoverageOf(
    int64_t vehicle_id) const {
  auto it = by_vehicle_.find(vehicle_id);
  if (it == by_vehicle_.end() || it->second.empty()) {
    return Status::NotFound(
        StrFormat("no reports for vehicle %lld",
                  static_cast<long long>(vehicle_id)));
  }
  Date first = Date::FromDayNumber(it->second.begin()->first.first);
  Date last = Date::FromDayNumber(it->second.rbegin()->first.first);
  return std::make_pair(first, last);
}

StatusOr<std::vector<DailyUsageRecord>> IngestionStore::DailyRecords(
    int64_t vehicle_id) const {
  auto it = by_vehicle_.find(vehicle_id);
  if (it == by_vehicle_.end()) {
    return Status::NotFound(
        StrFormat("no reports for vehicle %lld",
                  static_cast<long long>(vehicle_id)));
  }
  std::vector<AggregatedReport> reports;
  reports.reserve(it->second.size());
  for (const auto& [key, report] : it->second) reports.push_back(report);
  return AggregateReportsDaily(reports);
}

StatusOr<VehicleDataset> IngestionStore::BuildDataset(
    const VehicleInfo& info, const Country& country, const Date& start,
    const Date& end) const {
  VUP_ASSIGN_OR_RETURN(std::vector<DailyUsageRecord> daily,
                       DailyRecords(info.vehicle_id));
  CleaningReport report;
  VUP_ASSIGN_OR_RETURN(
      std::vector<DailyUsageRecord> cleaned,
      CleanDailyRecords(std::move(daily), start, end, CleaningOptions(),
                        &report));
  return VehicleDataset::Build(info, cleaned, country);
}

}  // namespace vup
