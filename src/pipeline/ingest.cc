#include "pipeline/ingest.h"

#include "common/string_util.h"
#include "obs/metrics.h"
#include "pipeline/aggregate.h"

namespace vup {

namespace {

/// Process-wide ingestion counters, shared across all stores (each store
/// still keeps its own IngestStats for per-store reporting).
struct IngestCounters {
  obs::Counter* ingested;
  obs::Counter* rejected;
  obs::Counter* duplicates;
};

const IngestCounters& GlobalIngestCounters() {
  static const IngestCounters counters = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return IngestCounters{
        registry.GetCounter("vupred_ingest_reports_total",
                            "Aggregated reports accepted by ingestion."),
        registry.GetCounter("vupred_ingest_rejected_total",
                            "Reports rejected by ingestion validation."),
        registry.GetCounter("vupred_ingest_duplicates_total",
                            "Reports that overwrote an existing slot."),
    };
  }();
  return counters;
}

}  // namespace

Status IngestionStore::Ingest(const AggregatedReport& report) {
  if (report.slot < 0 || report.slot >= kSlotsPerDay) {
    ++stats_.rejected;
    GlobalIngestCounters().rejected->Increment();
    return Status::InvalidArgument(
        StrFormat("slot %d outside [0, %d)", report.slot, kSlotsPerDay));
  }
  if (report.vehicle_id <= 0) {
    ++stats_.rejected;
    GlobalIngestCounters().rejected->Increment();
    return Status::InvalidArgument("non-positive vehicle id");
  }
  SlotKey key{report.date.day_number(), report.slot};
  auto& slots = by_vehicle_[report.vehicle_id];
  auto [it, inserted] = slots.insert_or_assign(key, report);
  (void)it;
  if (inserted) {
    ++stats_.reports_ingested;
    GlobalIngestCounters().ingested->Increment();
  } else {
    ++stats_.duplicates;
    GlobalIngestCounters().duplicates->Increment();
  }
  return Status::OK();
}

Status IngestionStore::IngestBatch(
    const std::vector<AggregatedReport>& reports) {
  size_t rejected = 0;
  Status first_error;
  for (const AggregatedReport& r : reports) {
    Status s = Ingest(r);
    if (!s.ok()) {
      if (rejected == 0) first_error = s;
      ++rejected;
    }
  }
  if (rejected == 0) return Status::OK();
  return Status::InvalidArgument(
      StrFormat("%zu of %zu reports rejected; first: %s", rejected,
                reports.size(), first_error.ToString().c_str()));
}

std::vector<int64_t> IngestionStore::VehicleIds() const {
  std::vector<int64_t> ids;
  ids.reserve(by_vehicle_.size());
  for (const auto& [id, slots] : by_vehicle_) ids.push_back(id);
  return ids;
}

bool IngestionStore::HasVehicle(int64_t vehicle_id) const {
  return by_vehicle_.count(vehicle_id) > 0;
}

size_t IngestionStore::ReportCount(int64_t vehicle_id) const {
  auto it = by_vehicle_.find(vehicle_id);
  return it == by_vehicle_.end() ? 0 : it->second.size();
}

StatusOr<std::pair<Date, Date>> IngestionStore::CoverageOf(
    int64_t vehicle_id) const {
  auto it = by_vehicle_.find(vehicle_id);
  if (it == by_vehicle_.end() || it->second.empty()) {
    return Status::NotFound(
        StrFormat("no reports for vehicle %lld",
                  static_cast<long long>(vehicle_id)));
  }
  Date first = Date::FromDayNumber(it->second.begin()->first.first);
  Date last = Date::FromDayNumber(it->second.rbegin()->first.first);
  return std::make_pair(first, last);
}

StatusOr<std::vector<DailyUsageRecord>> IngestionStore::DailyRecords(
    int64_t vehicle_id) const {
  auto it = by_vehicle_.find(vehicle_id);
  if (it == by_vehicle_.end()) {
    return Status::NotFound(
        StrFormat("no reports for vehicle %lld",
                  static_cast<long long>(vehicle_id)));
  }
  std::vector<AggregatedReport> reports;
  reports.reserve(it->second.size());
  for (const auto& [key, report] : it->second) reports.push_back(report);
  return AggregateReportsDaily(reports);
}

StatusOr<VehicleDataset> IngestionStore::BuildDataset(
    const VehicleInfo& info, const Country& country, const Date& start,
    const Date& end) const {
  VUP_ASSIGN_OR_RETURN(std::vector<DailyUsageRecord> daily,
                       DailyRecords(info.vehicle_id));
  CleaningReport report;
  VUP_ASSIGN_OR_RETURN(
      std::vector<DailyUsageRecord> cleaned,
      CleanDailyRecords(std::move(daily), start, end, CleaningOptions(),
                        &report));
  return VehicleDataset::Build(info, cleaned, country);
}

}  // namespace vup
