#ifndef VUPRED_PIPELINE_CLEANING_H_
#define VUPRED_PIPELINE_CLEANING_H_

#include <vector>

#include "calendar/date.h"
#include "common/statusor.h"
#include "telemetry/usage_model.h"

namespace vup {

/// Options of preparation step (i), Data cleaning.
struct CleaningOptions {
  /// Physical bound on daily utilization.
  double max_hours = 24.0;
  /// Insert explicit zero-usage records for calendar days missing from the
  /// input (connectivity gaps read as no usage, the same convention the
  /// paper's acquisition-derived utilization uses).
  bool fill_missing_days = true;
  /// Drop duplicate records for the same day (keep the last).
  bool drop_duplicates = true;
};

/// What the cleaner did, for observability and tests.
struct CleaningReport {
  size_t input_records = 0;
  size_t output_records = 0;
  size_t missing_days_filled = 0;
  size_t duplicates_dropped = 0;
  size_t values_clamped = 0;   // Out-of-physical-range values fixed.
  size_t non_finite_fixed = 0; // NaN/inf replaced with 0.
};

/// Cleans a per-vehicle daily history covering [start, end]:
/// sorts by date, deduplicates, fills calendar gaps, clamps out-of-range
/// values (hours into [0, max_hours], percentages into [0, 100]), replaces
/// non-finite values. Records outside [start, end] are dropped.
///
/// InvalidArgument when start > end.
StatusOr<std::vector<DailyUsageRecord>> CleanDailyRecords(
    std::vector<DailyUsageRecord> records, const Date& start, const Date& end,
    const CleaningOptions& options, CleaningReport* report);

}  // namespace vup

#endif  // VUPRED_PIPELINE_CLEANING_H_
