#ifndef VUPRED_PIPELINE_DATASET_H_
#define VUPRED_PIPELINE_DATASET_H_

#include <span>
#include <string>
#include <vector>

#include "calendar/country.h"
#include "common/statusor.h"
#include "table/table.h"
#include "telemetry/usage_model.h"
#include "telemetry/vehicle.h"

namespace vup {

/// Preparation step (v), Transformation: one vehicle's cleaned daily history
/// in relational form -- a date-indexed target series (daily utilization
/// hours) plus a dense per-day feature matrix combining CAN-derived engine
/// features with the contextual enrichment.
///
/// This is the object the core methodology consumes: windowing slices its
/// rows into training records, feature selection picks day-lags of it.
class VehicleDataset {
 public:
  /// Number of engine (CAN-derived) features per day.
  static constexpr size_t kNumEngineFeatures = 10;

  /// All per-day feature names: engine features then context features.
  static const std::vector<std::string>& FeatureNames();

  /// Builds from cleaned records. Requirements: records non-empty, dates
  /// strictly consecutive (run CleanDailyRecords first); violations return
  /// InvalidArgument.
  static StatusOr<VehicleDataset> Build(
      const VehicleInfo& info, std::span<const DailyUsageRecord> records,
      const Country& country);

  const VehicleInfo& info() const { return info_; }
  size_t num_days() const { return dates_.size(); }
  const std::vector<Date>& dates() const { return dates_; }

  /// The target series H_t, aligned with dates().
  const std::vector<double>& hours() const { return hours_; }

  size_t num_features() const { return FeatureNames().size(); }

  /// Feature value of day `day` (row) and feature `f` (column).
  double feature(size_t day, size_t f) const;

  /// All features of one day.
  std::span<const double> FeatureRow(size_t day) const;

  /// The country context used at build time.
  const Country& country() const { return *country_; }

  /// Next-working-day view: drops days with hours < min_hours, compressing
  /// the series so "next row" means "next working day" (the paper's second
  /// scenario). Dates are preserved so calendar features stay truthful.
  VehicleDataset CompressToWorkingDays(double min_hours = 1.0) const;

  /// Relational table: date, hours, then every feature column.
  StatusOr<Table> ToTable() const;

  /// Inverse of ToTable for persisted datasets: rebuilds the daily records
  /// from the table's engine-feature columns (context columns are
  /// recomputed from the dates and `country`, so stale context in the
  /// table cannot leak back in). The table must carry at least the
  /// `date`, `utilization_hours` and engine-feature columns with the
  /// canonical names, rows in consecutive-date order.
  static StatusOr<VehicleDataset> FromTable(const VehicleInfo& info,
                                            const Table& table,
                                            const Country& country);

 private:
  VehicleDataset() = default;

  VehicleInfo info_;
  const Country* country_ = nullptr;
  std::vector<Date> dates_;
  std::vector<double> hours_;
  std::vector<double> features_;  // Row-major, num_days x num_features.
};

}  // namespace vup

#endif  // VUPRED_PIPELINE_DATASET_H_
