#include "pipeline/cleaning.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace vup {

namespace {

/// Clamps `*v` into [lo, hi]; counts the fix. Non-finite becomes 0.
void FixRange(double* v, double lo, double hi, CleaningReport* report) {
  if (!std::isfinite(*v)) {
    *v = 0.0;
    ++report->non_finite_fixed;
    return;
  }
  double clamped = std::clamp(*v, lo, hi);
  if (clamped != *v) {
    *v = clamped;
    ++report->values_clamped;
  }
}

}  // namespace

StatusOr<std::vector<DailyUsageRecord>> CleanDailyRecords(
    std::vector<DailyUsageRecord> records, const Date& start, const Date& end,
    const CleaningOptions& options, CleaningReport* report) {
  if (start > end) {
    return Status::InvalidArgument("cleaning window start after end");
  }
  CleaningReport local;
  CleaningReport* rep = report != nullptr ? report : &local;
  *rep = CleaningReport{};
  rep->input_records = records.size();

  // Keep only in-window records, sorted by date (stable: ties keep input
  // order so "last wins" dedup is deterministic).
  std::erase_if(records, [&](const DailyUsageRecord& r) {
    return r.date < start || r.date > end;
  });
  std::stable_sort(records.begin(), records.end(),
                   [](const DailyUsageRecord& a, const DailyUsageRecord& b) {
                     return a.date < b.date;
                   });

  std::vector<DailyUsageRecord> out;
  out.reserve(static_cast<size_t>(end - start) + 1);
  size_t i = 0;
  double last_fuel_level = 0.0;
  for (Date d = start; d <= end; d = d.AddDays(1)) {
    // Advance to the last record of this date (dedup: last wins).
    bool have = false;
    DailyUsageRecord rec;
    while (i < records.size() && records[i].date == d) {
      if (have && options.drop_duplicates) ++rep->duplicates_dropped;
      rec = records[i];
      have = true;
      ++i;
    }
    if (!have) {
      if (!options.fill_missing_days) continue;
      rec = DailyUsageRecord{};
      rec.date = d;
      rec.fuel_level_end_pct = last_fuel_level;  // Carry the tank state.
      ++rep->missing_days_filled;
    }

    FixRange(&rec.hours, 0.0, options.max_hours, rep);
    FixRange(&rec.fuel_used_l, 0.0, 1e5, rep);
    FixRange(&rec.avg_engine_load_pct, 0.0, 100.0, rep);
    FixRange(&rec.avg_engine_rpm, 0.0, 5000.0, rep);
    FixRange(&rec.avg_coolant_temp_c, -40.0, 150.0, rep);
    FixRange(&rec.avg_oil_pressure_kpa, 0.0, 1000.0, rep);
    FixRange(&rec.fuel_level_end_pct, 0.0, 100.0, rep);
    FixRange(&rec.distance_km, 0.0, 2000.0, rep);
    FixRange(&rec.idle_hours, 0.0, options.max_hours, rep);
    if (rec.idle_hours > rec.hours) {
      rec.idle_hours = rec.hours;
      ++rep->values_clamped;
    }
    if (rec.dtc_count < 0) {
      rec.dtc_count = 0;
      ++rep->values_clamped;
    }
    last_fuel_level = rec.fuel_level_end_pct;
    out.push_back(rec);
  }
  rep->output_records = out.size();
  return out;
}

}  // namespace vup
