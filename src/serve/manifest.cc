#include "serve/manifest.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/crc32.h"
#include "common/string_util.h"

namespace vup::serve {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestMagic = "vupred-manifest v1";
constexpr const char* kManifestSentinel = "end-manifest";
// A fleet publishing more files than this into one generation is garbage,
// not configuration; the byte cap bounds the Parse slurp on hostile input.
constexpr size_t kMaxManifestEntries = 10'000'000;
constexpr size_t kMaxManifestBytes = 512ull * 1024 * 1024;
constexpr size_t kMaxFileNameLength = 255;

Status ValidateFileName(std::string_view file) {
  if (file.empty() || file.size() > kMaxFileNameLength) {
    return Status::InvalidArgument("unusable manifest file name");
  }
  if (file == "." || file == "..") {
    return Status::InvalidArgument("manifest file name is a dot path");
  }
  for (char c : file) {
    if (c == '/' || c == '\\' || c == '\n' || c == '\r' || c == ' ' ||
        c == '\t' || c == '\0') {
      return Status::InvalidArgument("manifest file name holds a path "
                                     "separator or whitespace: " +
                                     std::string(file));
    }
  }
  return Status::OK();
}

}  // namespace

Status GenerationManifest::Add(std::string file, uint64_t size,
                               uint32_t crc32) {
  VUP_RETURN_IF_ERROR(ValidateFileName(file));
  if (entries_.size() >= kMaxManifestEntries) {
    return Status::InvalidArgument("manifest has too many entries");
  }
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), file,
      [](const ManifestEntry& e, const std::string& name) {
        return e.file < name;
      });
  if (it != entries_.end() && it->file == file) {
    return Status::InvalidArgument("duplicate manifest entry: " + file);
  }
  entries_.insert(it, ManifestEntry{std::move(file), size, crc32});
  return Status::OK();
}

const ManifestEntry* GenerationManifest::Find(std::string_view file) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), file,
      [](const ManifestEntry& e, std::string_view name) {
        return e.file < name;
      });
  if (it == entries_.end() || it->file != file) return nullptr;
  return &*it;
}

StatusOr<GenerationManifest> GenerationManifest::Parse(std::istream& in) {
  std::string content;
  {
    char buf[4096];
    while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
      content.append(buf, static_cast<size_t>(in.gcount()));
      if (content.size() > kMaxManifestBytes) {
        return Status::InvalidArgument("manifest is implausibly large");
      }
    }
  }
  if (content.empty() || content.back() != '\n') {
    return Status::InvalidArgument(
        "manifest is not newline-terminated (truncated?)");
  }
  std::istringstream stream(content);
  std::string line;
  if (!std::getline(stream, line) || Trim(line) != kManifestMagic) {
    return Status::InvalidArgument(std::string("not a ") + kManifestMagic +
                                   " file");
  }
  GenerationManifest manifest;
  bool saw_sentinel = false;
  while (std::getline(stream, line)) {
    std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;
    if (saw_sentinel) {
      return Status::InvalidArgument("content after end-manifest sentinel");
    }
    if (trimmed == kManifestSentinel) {
      saw_sentinel = true;
      continue;
    }
    std::vector<std::string> tokens = Split(trimmed, ' ');
    if (tokens.size() != 4 || tokens[0] != "entry") {
      return Status::InvalidArgument("malformed manifest line: " + trimmed);
    }
    VUP_RETURN_IF_ERROR(ValidateFileName(tokens[1]));
    // Strictly ascending names double as the duplicate check and pin the
    // on-disk byte order, so Serialize(Parse(x)) == x.
    if (!manifest.entries_.empty() &&
        manifest.entries_.back().file >= tokens[1]) {
      return Status::InvalidArgument("manifest entries out of order at " +
                                     tokens[1]);
    }
    VUP_ASSIGN_OR_RETURN(long long size, ParseInt(tokens[2]));
    if (size < 0) {
      return Status::InvalidArgument("negative manifest size for " +
                                     tokens[1]);
    }
    VUP_ASSIGN_OR_RETURN(long long crc, ParseInt(tokens[3]));
    if (crc < 0 || crc > 0xFFFFFFFFll) {
      return Status::InvalidArgument("manifest crc32 out of range for " +
                                     tokens[1]);
    }
    if (manifest.entries_.size() >= kMaxManifestEntries) {
      return Status::InvalidArgument("manifest has too many entries");
    }
    manifest.entries_.push_back(ManifestEntry{
        tokens[1], static_cast<uint64_t>(size), static_cast<uint32_t>(crc)});
  }
  if (!saw_sentinel) {
    return Status::InvalidArgument(
        "manifest is missing the end-manifest sentinel (truncated?)");
  }
  return manifest;
}

std::string GenerationManifest::Serialize() const {
  std::ostringstream os;
  os << kManifestMagic << "\n";
  for (const ManifestEntry& entry : entries_) {
    os << "entry " << entry.file << " " << entry.size << " " << entry.crc32
       << "\n";
  }
  os << kManifestSentinel << "\n";
  return os.str();
}

StatusOr<GenerationManifest> GenerationManifest::BuildFromDirectory(
    const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::NotFound("cannot list generation directory " + dir +
                            ": " + ec.message());
  }
  GenerationManifest manifest;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const std::string name = entry.path().filename().string();
    if (name == kManifestFileName) continue;
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    if (!in) {
      return Status::Internal("cannot read " + entry.path().string());
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (in.bad()) {
      return Status::DataLoss("read failed: " + entry.path().string());
    }
    VUP_RETURN_IF_ERROR(manifest.Add(
        name, bytes.size(), Crc32(bytes.data(), bytes.size())));
  }
  return manifest;
}

Status GenerationManifest::VerifyBytes(const ManifestEntry& entry,
                                       std::string_view bytes) {
  if (bytes.size() != entry.size) {
    return Status::DataLoss(StrFormat(
        "%s: size %zu does not match manifest (%llu bytes)",
        entry.file.c_str(), bytes.size(),
        static_cast<unsigned long long>(entry.size)));
  }
  const uint32_t crc = Crc32(bytes.data(), bytes.size());
  if (crc != entry.crc32) {
    return Status::DataLoss(StrFormat(
        "%s: crc32 %u does not match manifest (%u)", entry.file.c_str(),
        crc, entry.crc32));
  }
  return Status::OK();
}

Status GenerationManifest::VerifyFile(const std::string& dir,
                                      const ManifestEntry& entry) {
  const std::string path = dir + "/" + entry.file;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("manifest-listed file is missing: " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::DataLoss("read failed: " + path);
  return VerifyBytes(entry, bytes);
}

Status AtomicWriteFile(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      return Status::Internal("cannot open for writing: " + tmp);
    }
    out << content;
    out.flush();
    if (!out) return Status::DataLoss("write failed: " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("cannot install " + path + ": " + ec.message());
  }
  return Status::OK();
}

Status WriteManifestFile(const std::string& directory,
                         const GenerationManifest& manifest) {
  return AtomicWriteFile(directory + "/" + kManifestFileName,
                         manifest.Serialize());
}

StatusOr<GenerationManifest> ReadManifestFile(const std::string& directory) {
  std::ifstream in(directory + "/" + std::string(kManifestFileName),
                   std::ios::binary);
  if (!in) {
    return Status::NotFound("no " + std::string(kManifestFileName) +
                            " in " + directory);
  }
  return GenerationManifest::Parse(in);
}

}  // namespace vup::serve
