#include "serve/scrubber.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/crc32.h"
#include "common/string_util.h"
#include "serve/guarded_publish.h"
#include "serve/manifest.h"
#include "serve/model_registry.h"

namespace vup::serve {

namespace fs = std::filesystem;

std::string ScrubReport::ToString() const {
  return StrFormat(
      "%zu generations scanned (%zu unmanifested, %zu damaged manifests), "
      "%zu files checked: %zu crc mismatches, %zu size mismatches, "
      "%zu missing, %zu quarantined",
      generations_scanned, generations_unmanifested, damaged_manifests,
      files_checked, crc_mismatches, size_mismatches, missing_files,
      quarantined);
}

RegistryScrubber::RegistryScrubber(ScrubOptions options)
    : options_(std::move(options)) {}

RegistryScrubber::~RegistryScrubber() { Stop(); }

StatusOr<ScrubReport> RegistryScrubber::ScrubOnce() {
  ScrubReport report;
  std::error_code ec;

  // Committed generation directories under the root, or the root itself in
  // flat layout. Staging directories are skipped: they are still being
  // written and carry no manifest yet.
  std::vector<std::string> dirs;
  if (!fs::exists(options_.root + "/" + kCurrentFileName, ec) || ec) {
    dirs.push_back(options_.root);
  } else {
    fs::directory_iterator it(options_.root, ec);
    if (ec) {
      return Status::Internal("cannot list " + options_.root + ": " +
                              ec.message());
    }
    for (const fs::directory_entry& entry : it) {
      if (!entry.is_directory(ec) || ec) continue;
      const std::string name = entry.path().filename().string();
      if (!StartsWith(name, "gen_") || EndsWith(name, ".staging")) continue;
      dirs.push_back(entry.path().string());
    }
  }

  // The directory whose corruption must quarantine serving models.
  std::string active_dir;
  if (options_.registry != nullptr) {
    const uint64_t number = options_.registry->active_generation();
    active_dir = number == 0
                     ? options_.registry->directory()
                     : options_.registry->directory() + "/" +
                           ModelRegistry::GenerationDirName(number);
  }

  for (const std::string& dir : dirs) {
    ++report.generations_scanned;
    StatusOr<GenerationManifest> manifest = ReadManifestFile(dir);
    if (!manifest.ok()) {
      if (manifest.status().IsNotFound()) {
        ++report.generations_unmanifested;
      } else {
        ++report.damaged_manifests;
      }
      continue;
    }
    for (const ManifestEntry& entry : manifest.value().entries()) {
      ++report.files_checked;
      files_verified_.Increment();
      const std::string path = dir + "/" + entry.file;
      std::ifstream in(path, std::ios::binary);
      bool corrupt = false;
      if (!in) {
        ++report.missing_files;
        missing_files_.Increment();
        corrupt = true;
      } else {
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        if (in.bad() || bytes.size() != entry.size) {
          ++report.size_mismatches;
          size_mismatches_.Increment();
          corrupt = true;
        } else if (Crc32(bytes.data(), bytes.size()) != entry.crc32) {
          ++report.crc_mismatches;
          crc_mismatches_.Increment();
          corrupt = true;
        }
      }
      if (corrupt && dir == active_dir && options_.registry != nullptr) {
        std::optional<int64_t> id =
            ModelRegistry::ParseBundleFileName(entry.file);
        if (id.has_value() && !options_.registry->IsQuarantined(*id)) {
          options_.registry->Quarantine(*id);
          ++report.quarantined;
          quarantines_.Increment();
        }
      }
    }
  }

  runs_.Increment();
  std::lock_guard<std::mutex> lock(mu_);
  last_report_ = report;
  return report;
}

bool RegistryScrubber::Due() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!schedule_started_) return true;
  return clock().Now() >= next_due_;
}

StatusOr<bool> RegistryScrubber::MaybeScrub() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (schedule_started_ && clock().Now() < next_due_) return false;
    schedule_started_ = true;
    next_due_ =
        clock().Now() + std::chrono::milliseconds(options_.interval_ms);
  }
  VUP_RETURN_IF_ERROR(ScrubOnce().status());
  return true;
}

void RegistryScrubber::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_requested_) {
      // Short real-time waits; the scrub *schedule* reads the injected
      // clock inside MaybeScrub, so tests can advance a FakeClock and see
      // a pass within a poll tick.
      cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_ms),
                   [this] { return stop_requested_; });
      if (stop_requested_) break;
      lock.unlock();
      (void)MaybeScrub();  // Root errors surface via last_report()/runs().
      lock.lock();
    }
  });
}

void RegistryScrubber::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

ScrubReport RegistryScrubber::last_report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_report_;
}

void RegistryScrubber::CollectMetrics(obs::MetricsSnapshot* out,
                                      const obs::LabelSet& labels) const {
  auto add = [&](const char* name, const char* help, obs::MetricType type,
                 const obs::LabelSet& sample_labels, double value) {
    obs::MetricFamily family;
    family.name = name;
    family.help = help;
    family.type = type;
    obs::MetricSample sample;
    sample.labels = sample_labels;
    sample.value = value;
    family.samples.push_back(std::move(sample));
    out->families.push_back(std::move(family));
  };
  using obs::MetricType;
  add("vupred_scrub_runs_total", "Completed scrub passes.",
      MetricType::kCounter, labels, static_cast<double>(runs_.value()));
  add("vupred_scrub_files_verified_total",
      "Manifest entries re-verified against disk.", MetricType::kCounter,
      labels, static_cast<double>(files_verified_.value()));
  obs::MetricFamily corruptions;
  corruptions.name = "vupred_scrub_corruptions_total";
  corruptions.help = "Corrupt files found by the scrubber, by kind.";
  corruptions.type = MetricType::kCounter;
  const std::pair<const char*, double> kinds[] = {
      {"crc", static_cast<double>(crc_mismatches_.value())},
      {"size", static_cast<double>(size_mismatches_.value())},
      {"missing", static_cast<double>(missing_files_.value())},
  };
  for (const auto& [kind, value] : kinds) {
    obs::MetricSample sample;
    sample.labels = labels;
    sample.labels.emplace_back("kind", kind);
    sample.value = value;
    corruptions.samples.push_back(std::move(sample));
  }
  out->families.push_back(std::move(corruptions));
  add("vupred_scrub_quarantines_total",
      "Active-generation models quarantined by the scrubber.",
      MetricType::kCounter, labels,
      static_cast<double>(quarantines_.value()));
}

}  // namespace vup::serve
