#ifndef VUPRED_SERVE_VALIDATOR_H_
#define VUPRED_SERVE_VALIDATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "pipeline/dataset.h"

namespace vup::serve {

/// Publish-gate knobs. The defaults are deliberately loose: the gate
/// exists to catch a broken generation (corrupt bundle, exploding model,
/// regression against the live fleet), not to second-guess a merely
/// mediocre one.
struct ValidationOptions {
  /// Deterministic sanity probes per model: the last `probe_targets`
  /// one-step-ahead targets of the vehicle's dataset are scored.
  int probe_targets = 3;
  /// A probe output above this (in absolute hours) is a bound breach --
  /// daily utilization beyond 48h is physically impossible twice over.
  double max_abs_hours = 48.0;
  /// Holdout span for the staged-vs-live guardrail: the last
  /// `holdout_days` targets with actuals are scored by both generations.
  int holdout_days = 14;
  /// Staged PE may be at most this multiple of the live PE before the
  /// guardrail trips.
  double max_pe_regression_ratio = 1.25;
  /// Floor for the live PE in the ratio test, so a near-perfect live
  /// generation cannot make any real successor look like a regression.
  double min_live_pe = 0.5;
};

/// Everything the gate measured, whether or not it passed. `failures`
/// carries one human-readable line per defect for logs and CLI output.
struct ValidationReport {
  size_t models_checked = 0;
  size_t deserialize_failures = 0;  // Bundles Load refused.
  size_t probe_failures = 0;        // Probes that returned an error.
  size_t nonfinite_outputs = 0;     // Probes that produced NaN/inf.
  size_t bound_breaches = 0;        // Probes outside [-max, max] hours.
  size_t holdout_points = 0;        // Holdout targets both fleets scored.
  double staged_pe = 0.0;           // Holdout percentage error, staged.
  double live_pe = 0.0;             // Holdout percentage error, live.
  bool pe_guardrail_breached = false;
  std::vector<std::string> failures;

  bool ok() const {
    return deserialize_failures == 0 && probe_failures == 0 &&
           nonfinite_outputs == 0 && bound_breaches == 0 &&
           !pe_guardrail_breached;
  }

  std::string Summary() const;
};

/// Validates every staged model bundle before the generation may be
/// promoted: deserializes each `vehicle_*.fcst` under `staged_dir`, scores
/// deterministic sanity probes against `probe_data` (keyed by vehicle id;
/// pooled models -- negative reserved ids -- are probed on the first
/// dataset), and, when `live_dir` is non-empty, scores a shared holdout
/// against the live generation's bundles to enforce the PE guardrail.
///
/// Returns the report even when the gate fails -- callers decide via
/// report.ok(). A Status error means the gate itself could not run
/// (unlistable directory), not that a model failed it.
StatusOr<ValidationReport> ValidateGeneration(
    const std::string& staged_dir, const std::string& live_dir,
    const std::map<int64_t, const VehicleDataset*>& probe_data,
    const ValidationOptions& options = {});

}  // namespace vup::serve

#endif  // VUPRED_SERVE_VALIDATOR_H_
