#include "serve/validator.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <span>

#include "common/string_util.h"
#include "core/forecaster.h"
#include "ml/metrics.h"
#include "serve/model_registry.h"

namespace vup::serve {

namespace fs = std::filesystem;

namespace {

/// The probe dataset of `vehicle_id`: its own when listed, else (for the
/// pooled cluster/type/global models, which score any member's windows)
/// the first dataset on offer.
const VehicleDataset* ProbeDataset(
    const std::map<int64_t, const VehicleDataset*>& probe_data,
    int64_t vehicle_id) {
  auto it = probe_data.find(vehicle_id);
  if (it != probe_data.end()) return it->second;
  if (vehicle_id < 0 && !probe_data.empty()) {
    return probe_data.begin()->second;
  }
  return nullptr;
}

StatusOr<std::map<int64_t, VehicleForecaster>> LoadBundles(
    const std::string& dir) {
  std::map<int64_t, VehicleForecaster> models;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::NotFound("cannot list generation directory " + dir +
                            ": " + ec.message());
  }
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    std::optional<int64_t> id =
        ModelRegistry::ParseBundleFileName(entry.path().filename().string());
    if (!id.has_value()) continue;
    std::ifstream in(entry.path());
    if (!in) {
      return Status::Internal("cannot read " + entry.path().string());
    }
    StatusOr<VehicleForecaster> model = VehicleForecaster::Load(in);
    if (!model.ok()) continue;  // Counted by the staged-side pass.
    models.emplace(*id, std::move(model).value());
  }
  return models;
}

}  // namespace

std::string ValidationReport::Summary() const {
  return StrFormat(
      "%zu models checked: %zu deserialize failures, %zu probe failures, "
      "%zu non-finite outputs, %zu bound breaches; holdout PE staged %.4f "
      "vs live %.4f over %zu points%s",
      models_checked, deserialize_failures, probe_failures,
      nonfinite_outputs, bound_breaches, staged_pe, live_pe, holdout_points,
      pe_guardrail_breached ? " (GUARDRAIL BREACHED)" : "");
}

StatusOr<ValidationReport> ValidateGeneration(
    const std::string& staged_dir, const std::string& live_dir,
    const std::map<int64_t, const VehicleDataset*>& probe_data,
    const ValidationOptions& options) {
  if (options.probe_targets < 0 || options.holdout_days < 0) {
    return Status::InvalidArgument("validation spans must be >= 0");
  }
  ValidationReport report;

  // Pass 1: every staged bundle must deserialize and survive its probes.
  std::map<int64_t, VehicleForecaster> staged;
  std::error_code ec;
  fs::directory_iterator it(staged_dir, ec);
  if (ec) {
    return Status::NotFound("cannot list staged generation " + staged_dir +
                            ": " + ec.message());
  }
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const std::string name = entry.path().filename().string();
    std::optional<int64_t> id = ModelRegistry::ParseBundleFileName(name);
    if (!id.has_value()) continue;
    ++report.models_checked;
    std::ifstream in(entry.path());
    if (!in) {
      ++report.deserialize_failures;
      report.failures.push_back("unreadable bundle: " + name);
      continue;
    }
    StatusOr<VehicleForecaster> model = VehicleForecaster::Load(in);
    if (!model.ok()) {
      ++report.deserialize_failures;
      report.failures.push_back(name + " does not deserialize: " +
                                model.status().ToString());
      continue;
    }
    const VehicleDataset* ds = ProbeDataset(probe_data, *id);
    if (ds == nullptr || options.probe_targets == 0) continue;
    // Deterministic sanity probes: the most recent one-step-ahead targets,
    // including the true forecast target at index num_days().
    const size_t n = ds->num_days();
    const size_t probes =
        std::min<size_t>(static_cast<size_t>(options.probe_targets), n + 1);
    for (size_t k = 0; k < probes; ++k) {
      const size_t target = n - k;
      StatusOr<double> predicted = model.value().PredictTarget(*ds, target);
      if (!predicted.ok()) {
        ++report.probe_failures;
        report.failures.push_back(StrFormat(
            "%s probe at target %zu failed: %s", name.c_str(), target,
            predicted.status().ToString().c_str()));
        continue;
      }
      if (!std::isfinite(predicted.value())) {
        ++report.nonfinite_outputs;
        report.failures.push_back(StrFormat(
            "%s probe at target %zu is non-finite", name.c_str(), target));
      } else if (std::abs(predicted.value()) > options.max_abs_hours) {
        ++report.bound_breaches;
        report.failures.push_back(StrFormat(
            "%s probe at target %zu is %.2fh (bound %.2fh)", name.c_str(),
            target, predicted.value(), options.max_abs_hours));
      }
    }
    staged.emplace(*id, std::move(model).value());
  }

  // Pass 2: holdout PE guardrail against the live generation. Both fleets
  // score the same recent targets with known actuals; only vehicles with a
  // bundle on both sides and a probe dataset participate.
  if (!live_dir.empty() && options.holdout_days > 0) {
    StatusOr<std::map<int64_t, VehicleForecaster>> live_or =
        LoadBundles(live_dir);
    if (!live_or.ok()) return live_or.status();
    std::map<int64_t, VehicleForecaster> live = std::move(live_or).value();
    std::vector<double> staged_pred, live_pred, actual;
    for (auto& [id, staged_model] : staged) {
      if (id < 0) continue;  // Pooled models are covered via their members.
      auto live_it = live.find(id);
      if (live_it == live.end()) continue;
      auto ds_it = probe_data.find(id);
      if (ds_it == probe_data.end()) continue;
      const VehicleDataset& ds = *ds_it->second;
      const size_t n = ds.num_days();
      const size_t span =
          std::min<size_t>(static_cast<size_t>(options.holdout_days), n);
      for (size_t k = 1; k <= span; ++k) {
        const size_t target = n - k;
        StatusOr<double> s = staged_model.PredictTarget(ds, target);
        StatusOr<double> l = live_it->second.PredictTarget(ds, target);
        if (!s.ok() || !l.ok()) continue;
        if (!std::isfinite(s.value()) || !std::isfinite(l.value())) continue;
        staged_pred.push_back(s.value());
        live_pred.push_back(l.value());
        actual.push_back(ds.hours()[target]);
      }
    }
    report.holdout_points = actual.size();
    if (!actual.empty()) {
      report.staged_pe = PercentageError(
          std::span<const double>(staged_pred), std::span<const double>(actual));
      report.live_pe = PercentageError(
          std::span<const double>(live_pred), std::span<const double>(actual));
      const double allowed = std::max(report.live_pe, options.min_live_pe) *
                             options.max_pe_regression_ratio;
      if (report.staged_pe > allowed) {
        report.pe_guardrail_breached = true;
        report.failures.push_back(StrFormat(
            "holdout PE guardrail: staged %.4f exceeds allowed %.4f "
            "(live %.4f x %.2f)",
            report.staged_pe, allowed, report.live_pe,
            options.max_pe_regression_ratio));
      }
    }
  }
  return report;
}

}  // namespace vup::serve
