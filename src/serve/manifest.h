#ifndef VUPRED_SERVE_MANIFEST_H_
#define VUPRED_SERVE_MANIFEST_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"

namespace vup::serve {

/// Name of the per-generation integrity manifest, written by
/// GenerationPublisher next to registry_meta.txt.
inline constexpr char kManifestFileName[] = "MANIFEST";

/// One file of a published generation: its byte size and IEEE CRC-32.
struct ManifestEntry {
  std::string file;   // Plain file name inside the generation directory.
  uint64_t size = 0;  // Exact byte count.
  uint32_t crc32 = 0; // CRC-32 of the whole file content.

  friend bool operator==(const ManifestEntry& a, const ManifestEntry& b) {
    return a.file == b.file && a.size == b.size && a.crc32 == b.crc32;
  }
};

/// Integrity manifest of one generation directory: every published file
/// (model bundles, registry_meta.txt, clusters.meta) with its size and
/// CRC-32. Persisted as `MANIFEST` (`vupred-manifest v1`):
///
///   vupred-manifest v1
///   entry <file> <size> <crc32>
///   ...
///   end-manifest
///
/// The format follows the registry-meta discipline: newline-terminated
/// lines, an explicit end sentinel so truncation is always detectable,
/// entries strictly ascending by file name (duplicates rejected) and hard
/// caps on counts and token lengths -- the file may be hand-inspected but
/// a hand-mangled one must fail parse, never crash or half-load.
class GenerationManifest {
 public:
  /// Strict parse; any structural damage (bad magic, missing sentinel,
  /// unsorted/duplicate entries, garbage numbers, over-long tokens,
  /// missing trailing newline) is an InvalidArgument.
  static StatusOr<GenerationManifest> Parse(std::istream& in);

  /// Serializes in the format Parse accepts (entries sorted by name).
  std::string Serialize() const;

  /// Scans `dir` and checksums every regular file except the manifest
  /// itself and `*.tmp` leftovers. Deterministic: entries are sorted by
  /// file name regardless of directory iteration order.
  static StatusOr<GenerationManifest> BuildFromDirectory(
      const std::string& dir);

  /// Adds one entry. InvalidArgument on an unusable name (empty, path
  /// separators, "..", over-long) or a duplicate.
  Status Add(std::string file, uint64_t size, uint32_t crc32);

  /// The entry of `file`, or nullptr when the manifest does not list it.
  const ManifestEntry* Find(std::string_view file) const;

  /// Checks `bytes` against `entry`: DataLoss on a size or CRC mismatch.
  static Status VerifyBytes(const ManifestEntry& entry,
                            std::string_view bytes);

  /// Re-reads `dir`/entry.file from disk and verifies it. NotFound when
  /// the file vanished, DataLoss on size/CRC mismatch.
  static Status VerifyFile(const std::string& dir,
                           const ManifestEntry& entry);

  const std::vector<ManifestEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  friend bool operator==(const GenerationManifest& a,
                         const GenerationManifest& b) {
    return a.entries_ == b.entries_;
  }

 private:
  std::vector<ManifestEntry> entries_;  // Sorted by file name.
};

/// Writes `manifest` into `directory` as MANIFEST (temp + rename).
Status WriteManifestFile(const std::string& directory,
                         const GenerationManifest& manifest);

/// Reads and parses `directory`/MANIFEST. NotFound when the generation
/// predates manifests (legacy, served unverified).
StatusOr<GenerationManifest> ReadManifestFile(const std::string& directory);

/// Atomic small-file install shared by the serve layer: write to
/// `path`.tmp, then rename over `path`.
Status AtomicWriteFile(const std::string& path, const std::string& content);

}  // namespace vup::serve

#endif  // VUPRED_SERVE_MANIFEST_H_
