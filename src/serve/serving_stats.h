#ifndef VUPRED_SERVE_SERVING_STATS_H_
#define VUPRED_SERVE_SERVING_STATS_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace vup::serve {

/// Fixed-bucket latency histogram for online scoring.
///
/// Buckets are exponential-ish upper bounds from 10 microseconds to
/// 5 seconds plus a +inf overflow bucket, chosen so that sub-millisecond
/// model scoring and multi-second cold loads both land in informative
/// buckets. Quantile() returns the upper bound of the bucket holding the
/// requested rank -- a conservative (never under-reporting) estimate.
///
/// Not internally synchronized; ServingStats guards it.
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Bucket upper bounds in seconds (the last, +inf, is not included).
  static std::span<const double> BucketBoundsSeconds();

  void Record(double seconds);

  size_t count() const { return count_; }

  /// Upper bound (seconds) of the bucket containing quantile `q` in
  /// [0, 1]. Returns 0 when empty; the last finite bound for overflow.
  double Quantile(double q) const;

  /// One line per non-empty bucket: "<=bound_ms count".
  std::string ToString() const;

 private:
  std::vector<size_t> counts_;  // One per bound, plus the overflow bucket.
  size_t count_ = 0;
};

/// Snapshot of the service counters, taken atomically.
struct ServingStatsSnapshot {
  size_t requests = 0;   // Finished requests (any outcome).
  size_t failures = 0;   // Finished with a non-OK status.
  size_t degraded = 0;   // Served by the baseline fallback.
  size_t shed = 0;       // Rejected by admission control (Unavailable).
  size_t deadline_exceeded = 0;  // Expired before scoring started.
  size_t in_flight = 0;  // Currently being scored.
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
};

/// Thread-safe request metrics: latency histogram, outcome counters and an
/// in-flight gauge.
class ServingStats {
 public:
  /// RAII in-flight gauge: construction increments, destruction decrements.
  class InFlight {
   public:
    explicit InFlight(ServingStats* stats) : stats_(stats) {
      stats_->in_flight_.fetch_add(1, std::memory_order_relaxed);
    }
    ~InFlight() {
      stats_->in_flight_.fetch_sub(1, std::memory_order_relaxed);
    }
    InFlight(const InFlight&) = delete;
    InFlight& operator=(const InFlight&) = delete;

   private:
    ServingStats* stats_;
  };

  /// Records one finished (scored) request.
  void RecordRequest(double latency_seconds, bool ok, bool degraded);

  /// Records a request rejected by admission control. Shed requests are
  /// counted as finished but do not enter the latency histogram: they
  /// never occupied a scoring slot.
  void RecordShed();

  /// Records a request whose deadline expired before scoring started.
  void RecordDeadlineExceeded();

  ServingStatsSnapshot Snapshot() const;

  /// The histogram rendered as text (for reports).
  std::string HistogramToString() const;

 private:
  mutable std::mutex mu_;
  LatencyHistogram histogram_;
  size_t requests_ = 0;
  size_t failures_ = 0;
  size_t degraded_ = 0;
  size_t shed_ = 0;
  size_t deadline_exceeded_ = 0;
  std::atomic<size_t> in_flight_{0};
};

}  // namespace vup::serve

#endif  // VUPRED_SERVE_SERVING_STATS_H_
