#ifndef VUPRED_SERVE_SERVING_STATS_H_
#define VUPRED_SERVE_SERVING_STATS_H_

#include <cstddef>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace vup::serve {

/// Fixed-bucket latency histogram for online scoring: a thin façade over
/// the shared obs::Histogram, pinned to the serving latency ladder.
///
/// Buckets are exponential-ish upper bounds from 10 microseconds to
/// 5 seconds plus a +inf overflow bucket, chosen so that sub-millisecond
/// model scoring and multi-second cold loads both land in informative
/// buckets. Quantile() returns the upper bound of the bucket holding the
/// requested rank -- a conservative (never under-reporting) estimate.
///
/// Internally synchronized (atomic buckets); safe to share.
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Bucket upper bounds in seconds (the last, +inf, is not included).
  static std::span<const double> BucketBoundsSeconds();

  void Record(double seconds) { histogram_.Record(seconds); }

  size_t count() const { return static_cast<size_t>(histogram_.count()); }

  /// Upper bound (seconds) of the bucket containing quantile `q` in
  /// [0, 1]. Returns 0 when empty; the last finite bound for overflow.
  double Quantile(double q) const { return histogram_.Quantile(q); }

  /// One line per non-empty bucket: "<=bound_ms count".
  std::string ToString() const;

  const obs::Histogram& histogram() const { return histogram_; }
  obs::Histogram* mutable_histogram() { return &histogram_; }

 private:
  obs::Histogram histogram_;
};

/// Snapshot of the service counters, taken atomically.
struct ServingStatsSnapshot {
  size_t requests = 0;   // Finished requests (any outcome).
  size_t failures = 0;   // Finished with a non-OK status.
  size_t degraded = 0;   // Served by the baseline fallback.
  size_t shed = 0;       // Rejected by admission control (Unavailable).
  size_t deadline_exceeded = 0;  // Expired before scoring started.
  size_t in_flight = 0;  // Currently being scored.
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
};

/// Thread-safe request metrics: latency histogram, outcome counters and an
/// in-flight gauge, carried on the shared obs instruments so the same
/// state snapshots atomically (mutex) *and* exports through the metrics
/// layer (Collect) without double bookkeeping.
class ServingStats {
 public:
  /// RAII in-flight gauge: construction increments, destruction decrements.
  class InFlight {
   public:
    explicit InFlight(ServingStats* stats) : stats_(stats) {
      stats_->in_flight_.Add(1);
    }
    ~InFlight() { stats_->in_flight_.Add(-1); }
    InFlight(const InFlight&) = delete;
    InFlight& operator=(const InFlight&) = delete;

   private:
    ServingStats* stats_;
  };

  /// Records one finished (scored) request.
  void RecordRequest(double latency_seconds, bool ok, bool degraded);

  /// Records a request rejected by admission control. Shed requests are
  /// counted as finished but do not enter the latency histogram: they
  /// never occupied a scoring slot.
  void RecordShed();

  /// Records a request whose deadline expired before scoring started.
  void RecordDeadlineExceeded();

  ServingStatsSnapshot Snapshot() const;

  /// Appends the serving metric families (vupred_serve_*) to `out`, every
  /// sample tagged with `labels`. Safe to call concurrently with
  /// recording; counters and histogram come from one locked read, so the
  /// export is as consistent as Snapshot().
  void Collect(obs::MetricsSnapshot* out,
               const obs::LabelSet& labels = {}) const;

  /// The histogram rendered as text (for reports).
  std::string HistogramToString() const;

 private:
  mutable std::mutex mu_;
  LatencyHistogram histogram_;
  obs::Counter requests_;
  obs::Counter failures_;
  obs::Counter degraded_;
  obs::Counter shed_;
  obs::Counter deadline_exceeded_;
  obs::Gauge in_flight_;
};

}  // namespace vup::serve

#endif  // VUPRED_SERVE_SERVING_STATS_H_
