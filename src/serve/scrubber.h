#ifndef VUPRED_SERVE_SCRUBBER_H_
#define VUPRED_SERVE_SCRUBBER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/statusor.h"
#include "obs/metrics.h"

namespace vup::serve {

class ModelRegistry;

struct ScrubOptions {
  std::string root;  // Registry root (CURRENT + gen_* dirs, or flat).
  /// When set, corruption found in the ACTIVE generation quarantines the
  /// affected vehicle immediately instead of waiting for its next load.
  ModelRegistry* registry = nullptr;
  /// Time source for the scrub schedule; null means Clock::Real().
  const Clock* clock = nullptr;
  int64_t interval_ms = 60'000;  // Scheduled gap between scrubs.
  /// Real-time poll granularity of the background thread. Small so tests
  /// driving a FakeClock see the thread react promptly; the *schedule*
  /// still comes from the injected clock.
  int64_t poll_ms = 5;
};

/// What one scrub pass found.
struct ScrubReport {
  size_t generations_scanned = 0;
  size_t generations_unmanifested = 0;  // Legacy dirs with no MANIFEST.
  size_t damaged_manifests = 0;         // MANIFEST itself failed to parse.
  size_t files_checked = 0;
  size_t crc_mismatches = 0;
  size_t size_mismatches = 0;
  size_t missing_files = 0;
  size_t quarantined = 0;  // Active-generation vehicles quarantined.

  size_t corruptions() const {
    return crc_mismatches + size_mismatches + missing_files +
           damaged_manifests;
  }
  bool clean() const { return corruptions() == 0; }

  std::string ToString() const;
};

/// Background integrity scrubber: periodically re-verifies every committed
/// generation's files against its MANIFEST, catching bit-rot between the
/// moment a generation was published and the moment a load would trip over
/// it. Corruption in the active generation quarantines the vehicle through
/// the registry (so serving degrades via the fallback hierarchy instead of
/// scoring rotten bytes); corruption elsewhere is reported and counted but
/// left in place for forensics.
///
/// The schedule runs on an injectable Clock: tests drive Due()/MaybeScrub()
/// with a FakeClock, production uses Start()/Stop() for a real thread.
class RegistryScrubber {
 public:
  explicit RegistryScrubber(ScrubOptions options);
  ~RegistryScrubber();

  RegistryScrubber(const RegistryScrubber&) = delete;
  RegistryScrubber& operator=(const RegistryScrubber&) = delete;

  /// One synchronous scrub pass over every committed generation (or the
  /// flat root). Error only when the root itself is unlistable.
  StatusOr<ScrubReport> ScrubOnce();

  /// True when the schedule calls for a scrub (first call is always due).
  bool Due() const;

  /// ScrubOnce iff Due; returns whether a pass ran. The next pass is due
  /// interval_ms after this one started.
  StatusOr<bool> MaybeScrub();

  /// Starts/stops the background thread (idempotent).
  void Start();
  void Stop();

  /// Report of the most recent completed pass.
  ScrubReport last_report() const;

  /// Completed scrub passes.
  uint64_t runs() const { return runs_.value(); }

  /// Appends the scrubber metric families (vupred_scrub_*) to `out`.
  void CollectMetrics(obs::MetricsSnapshot* out,
                      const obs::LabelSet& labels = {}) const;

 private:
  const Clock& clock() const {
    return options_.clock != nullptr ? *options_.clock : Clock::Real();
  }

  ScrubOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::thread thread_;
  bool schedule_started_ = false;   // next_due_ holds a real deadline.
  Clock::TimePoint next_due_{};
  ScrubReport last_report_;

  obs::Counter runs_;
  obs::Counter files_verified_;
  obs::Counter crc_mismatches_;
  obs::Counter size_mismatches_;
  obs::Counter missing_files_;
  obs::Counter quarantines_;
};

}  // namespace vup::serve

#endif  // VUPRED_SERVE_SCRUBBER_H_
