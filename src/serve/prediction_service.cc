#include "serve/prediction_service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>

#include "common/check.h"
#include "ml/baselines.h"

namespace vup::serve {

namespace {

double Elapsed(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

}  // namespace

PredictionService::PredictionService(ModelRegistry* registry,
                                     ThreadPool* pool)
    : PredictionService(registry, pool, Options()) {}

PredictionService::PredictionService(ModelRegistry* registry,
                                     ThreadPool* pool, Options options)
    : registry_(registry), pool_(pool), options_(options) {
  VUP_CHECK(registry_ != nullptr);
}

PredictionResponse PredictionService::ScoreOne(
    const VehicleForecaster* model, const Status& model_status,
    const PredictionRequest& request) {
  ServingStats::InFlight gauge(&stats_);
  const auto start = std::chrono::steady_clock::now();

  PredictionResponse response;
  response.vehicle_id = request.vehicle_id;
  if (request.dataset == nullptr) {
    response.status =
        Status::InvalidArgument("request carries no dataset window");
  } else if (model != nullptr) {
    StatusOr<double> prediction =
        model->PredictTarget(*request.dataset, request.target_index);
    if (prediction.ok()) {
      response.prediction = prediction.value();
    } else {
      response.status = prediction.status();
    }
  } else if (model_status.IsNotFound() && options_.degrade_to_baseline) {
    // No registered model: serve the Last-Value baseline over the history
    // preceding the target, the same naive fallback the fleet runner
    // degrades to before quarantining.
    const VehicleDataset& ds = *request.dataset;
    if (request.target_index == 0 ||
        request.target_index > ds.num_days()) {
      response.status = Status::InvalidArgument(
          "baseline fallback needs at least one past day");
    } else {
      std::span<const double> history(ds.hours().data(),
                                      request.target_index);
      StatusOr<double> prediction = LastValueBaseline().Predict(history);
      if (prediction.ok()) {
        response.prediction = prediction.value();
        response.degraded = true;
      } else {
        response.status = prediction.status();
      }
    }
  } else {
    response.status = model_status;
  }

  if (response.status.ok() && options_.clamp_predictions) {
    response.prediction = std::clamp(response.prediction, 0.0, 24.0);
  }
  response.latency_seconds = Elapsed(start);
  stats_.RecordRequest(response.latency_seconds, response.status.ok(),
                       response.degraded);
  return response;
}

void PredictionService::ScoreGroup(
    std::span<const PredictionRequest> requests,
    const std::vector<size_t>& positions,
    std::vector<PredictionResponse>* responses) {
  if (positions.empty()) return;
  // One model fetch per vehicle group; the shared_ptr keeps the model
  // alive across the group even if the LRU evicts it meanwhile.
  StatusOr<std::shared_ptr<const VehicleForecaster>> model =
      registry_->Get(requests[positions.front()].vehicle_id);
  const VehicleForecaster* model_ptr =
      model.ok() ? model.value().get() : nullptr;
  const Status model_status = model.ok() ? Status::OK() : model.status();
  for (size_t position : positions) {
    (*responses)[position] =
        ScoreOne(model_ptr, model_status, requests[position]);
  }
}

PredictionResponse PredictionService::Predict(
    const PredictionRequest& request) {
  std::vector<PredictionResponse> responses(1);
  ScoreGroup(std::span<const PredictionRequest>(&request, 1), {0},
             &responses);
  return responses[0];
}

std::vector<PredictionResponse> PredictionService::PredictBatch(
    std::span<const PredictionRequest> requests) {
  std::vector<PredictionResponse> responses(requests.size());
  if (requests.empty()) return responses;

  // Group request positions per vehicle (ordered map: deterministic group
  // submission order).
  std::map<int64_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < requests.size(); ++i) {
    groups[requests[i].vehicle_id].push_back(i);
  }

  if (pool_ == nullptr) {
    for (const auto& [id, positions] : groups) {
      ScoreGroup(requests, positions, &responses);
    }
    return responses;
  }

  // Per-batch completion latch: a shared pool may carry other callers'
  // tasks, so ThreadPool::Wait() would over-wait here.
  std::mutex mu;
  std::condition_variable done_cv;
  size_t remaining = groups.size();
  auto mark_done = [&] {
    std::lock_guard<std::mutex> lock(mu);
    if (--remaining == 0) done_cv.notify_all();
  };

  for (const auto& [id, positions] : groups) {
    const std::vector<size_t>* group = &positions;
    Status submitted = pool_->Submit([this, requests, group, &responses,
                                      &mark_done]() -> Status {
      ScoreGroup(requests, *group, &responses);
      mark_done();
      return Status::OK();
    });
    if (!submitted.ok()) {
      // Pool shut down: score inline rather than dropping the group.
      ScoreGroup(requests, positions, &responses);
      mark_done();
    }
  }

  std::unique_lock<std::mutex> lock(mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
  return responses;
}

}  // namespace vup::serve
