#include "serve/prediction_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"
#include "ml/baselines.h"
#include "obs/trace.h"

namespace vup::serve {

namespace {

double Elapsed(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

}  // namespace

std::string_view ServedLevelToString(ServedLevel level) {
  switch (level) {
    case ServedLevel::kNone:
      return "none";
    case ServedLevel::kVehicle:
      return "vehicle";
    case ServedLevel::kCluster:
      return "cluster";
    case ServedLevel::kType:
      return "type";
    case ServedLevel::kGlobal:
      return "global";
    case ServedLevel::kBaseline:
      return "baseline";
  }
  return "?";
}

PredictionService::PredictionService(ModelRegistry* registry,
                                     ThreadPool* pool)
    : PredictionService(registry, pool, Options()) {}

PredictionService::PredictionService(ModelRegistry* registry,
                                     ThreadPool* pool, Options options)
    : registry_(registry), pool_(pool), options_(options) {
  VUP_CHECK(registry_ != nullptr);
}

PredictionService::ResolvedModel PredictionService::ResolveModel(
    const PredictionRequest& request) {
  return ResolveModelFrom(registry_, request);
}

PredictionService::ResolvedModel PredictionService::ResolveModelFrom(
    ModelRegistry* registry, const PredictionRequest& request) {
  ResolvedModel resolved;
  StatusOr<std::shared_ptr<const VehicleForecaster>> own =
      registry->Get(request.vehicle_id);
  if (own.ok()) {
    resolved.model = std::move(own.value());
    resolved.level = ServedLevel::kVehicle;
    return resolved;
  }
  resolved.status = own.status();

  // Hierarchy fallback applies to a missing bundle (NotFound) and to a
  // breaker-degraded vehicle (Unavailable): an open per-vehicle breaker
  // means *that bundle* is suspect, not the pooled models. Any other
  // error (corrupt dataset window etc.) is reported as-is.
  if (options_.hierarchy == nullptr ||
      (!own.status().IsNotFound() && !own.status().IsUnavailable())) {
    return resolved;
  }
  const cluster::ClustersMeta& meta = *options_.hierarchy;

  StatusOr<int> cluster_id = meta.ClusterOf(request.vehicle_id);
  if (cluster_id.ok()) {
    StatusOr<std::shared_ptr<const VehicleForecaster>> pooled =
        registry->Get(cluster::ClusterModelId(cluster_id.value()));
    if (pooled.ok()) {
      resolved.model = std::move(pooled.value());
      resolved.level = ServedLevel::kCluster;
      return resolved;
    }
  }

  StatusOr<int> type = meta.TypeOf(request.vehicle_id);
  const int type_id = type.ok() ? type.value() : request.vehicle_type_hint;
  if (type_id >= 0) {
    StatusOr<std::shared_ptr<const VehicleForecaster>> pooled =
        registry->Get(cluster::TypeModelId(type_id));
    if (pooled.ok()) {
      resolved.model = std::move(pooled.value());
      resolved.level = ServedLevel::kType;
      return resolved;
    }
  }

  StatusOr<std::shared_ptr<const VehicleForecaster>> global =
      registry->Get(cluster::kGlobalModelId);
  if (global.ok()) {
    resolved.model = std::move(global.value());
    resolved.level = ServedLevel::kGlobal;
    return resolved;
  }

  // Chain exhausted: the vehicle-level status decides what happens next
  // (NotFound may still degrade to the baseline in ScoreOne).
  return resolved;
}

PredictionResponse PredictionService::ScoreOne(
    const VehicleForecaster* model, const Status& model_status,
    ServedLevel level, const PredictionRequest& request) {
  obs::TraceSpan score_span("serve.score");
  ServingStats::InFlight gauge(&stats_);
  const auto start = std::chrono::steady_clock::now();

  PredictionResponse response;
  response.vehicle_id = request.vehicle_id;
  if (request.dataset == nullptr) {
    response.status =
        Status::InvalidArgument("request carries no dataset window");
  } else if (model != nullptr) {
    StatusOr<double> prediction =
        model->PredictTarget(*request.dataset, request.target_index);
    if (prediction.ok()) {
      response.prediction = prediction.value();
      response.level = level;
      switch (level) {
        case ServedLevel::kCluster:
          fallback_.cluster.Increment(1);
          break;
        case ServedLevel::kType:
          fallback_.type.Increment(1);
          break;
        case ServedLevel::kGlobal:
          fallback_.global.Increment(1);
          break;
        default:
          break;
      }
    } else {
      response.status = prediction.status();
    }
  } else if (model_status.IsNotFound() && options_.degrade_to_baseline) {
    // No registered model: serve the Last-Value baseline over the history
    // preceding the target, the same naive fallback the fleet runner
    // degrades to before quarantining.
    const VehicleDataset& ds = *request.dataset;
    if (request.target_index == 0 ||
        request.target_index > ds.num_days()) {
      response.status = Status::InvalidArgument(
          "baseline fallback needs at least one past day");
    } else {
      std::span<const double> history(ds.hours().data(),
                                      request.target_index);
      StatusOr<double> prediction = LastValueBaseline().Predict(history);
      if (prediction.ok()) {
        response.prediction = prediction.value();
        response.degraded = true;
        response.level = ServedLevel::kBaseline;
        fallback_.baseline.Increment(1);
      } else {
        response.status = prediction.status();
      }
    }
  } else {
    response.status = model_status;
  }

  if (response.status.ok() && options_.clamp_predictions) {
    response.prediction = std::clamp(response.prediction, 0.0, 24.0);
  }
  response.latency_seconds = Elapsed(start);
  stats_.RecordRequest(response.latency_seconds, response.status.ok(),
                       response.degraded);

  // Canary shadow scoring rides AFTER the live answer is final: the staged
  // generation observes real traffic for the hash-slice of vehicles but
  // can never change what this request returns.
  if (options_.canary.enabled() && response.status.ok() &&
      InCanarySlice(options_.canary.seed, options_.canary.fraction,
                    request.vehicle_id)) {
    ShadowScore(request, response.prediction);
  }
  return response;
}

void PredictionService::ShadowScore(const PredictionRequest& request,
                                    double live_prediction) {
  canary_.shadow_scores.Increment(1);
  ResolvedModel staged = ResolveModelFrom(options_.canary.staged, request);
  if (staged.model == nullptr) {
    // The live side served this request; a staged side that cannot is a
    // regression, whatever the error code.
    canary_.shadow_errors.Increment(1);
    return;
  }
  StatusOr<double> predicted =
      staged.model->PredictTarget(*request.dataset, request.target_index);
  if (!predicted.ok()) {
    canary_.shadow_errors.Increment(1);
    return;
  }
  // Finiteness first: clamping would silently fold an inf into 24h.
  if (!std::isfinite(predicted.value())) {
    canary_.nonfinite_outputs.Increment(1);
    return;
  }
  double staged_prediction = predicted.value();
  if (options_.clamp_predictions) {
    staged_prediction = std::clamp(staged_prediction, 0.0, 24.0);
  }
  const double divergence = std::abs(staged_prediction - live_prediction);
  {
    std::lock_guard<std::mutex> lock(canary_mu_);
    canary_max_abs_divergence_ =
        std::max(canary_max_abs_divergence_, divergence);
    canary_sum_abs_divergence_ += divergence;
  }
  if (divergence > options_.canary.divergence_hours) {
    canary_.divergence_breaches.Increment(1);
  }
}

CanarySnapshot PredictionService::canary_counts() const {
  CanarySnapshot snapshot;
  snapshot.shadow_scores = canary_.shadow_scores.value();
  snapshot.divergence_breaches = canary_.divergence_breaches.value();
  snapshot.nonfinite_outputs = canary_.nonfinite_outputs.value();
  snapshot.shadow_errors = canary_.shadow_errors.value();
  std::lock_guard<std::mutex> lock(canary_mu_);
  snapshot.max_abs_divergence = canary_max_abs_divergence_;
  snapshot.sum_abs_divergence = canary_sum_abs_divergence_;
  return snapshot;
}

CanaryVerdict PredictionService::EvaluateCanary() const {
  return JudgeCanary(canary_counts(), options_.canary);
}

void PredictionService::ScoreGroup(
    std::span<const PredictionRequest> requests,
    const std::vector<size_t>& positions,
    std::vector<PredictionResponse>* responses) {
  if (positions.empty()) return;

  // Expired requests fail fast, before any model IO; the model is fetched
  // only when at least one request in the group is still live.
  std::vector<size_t> live;
  live.reserve(positions.size());
  for (size_t position : positions) {
    const PredictionRequest& request = requests[position];
    if (request.deadline.Expired(clock())) {
      PredictionResponse& response = (*responses)[position];
      response.vehicle_id = request.vehicle_id;
      response.status = Status::DeadlineExceeded(StrFormat(
          "deadline expired before scoring vehicle %lld",
          static_cast<long long>(request.vehicle_id)));
      stats_.RecordDeadlineExceeded();
    } else {
      live.push_back(position);
    }
  }
  if (live.empty()) return;

  // One model resolution per vehicle group (own bundle, or the hierarchy
  // chain); the shared_ptr keeps the model alive across the group even if
  // the LRU evicts it or a Reload swaps the generation meanwhile.
  ResolvedModel resolved = [&] {
    obs::TraceSpan span("serve.fetch");
    return ResolveModel(requests[live.front()]);
  }();
  for (size_t position : live) {
    (*responses)[position] = ScoreOne(resolved.model.get(), resolved.status,
                                      resolved.level, requests[position]);
  }
}

PredictionService::FallbackSnapshot PredictionService::fallback_counts()
    const {
  FallbackSnapshot snapshot;
  snapshot.cluster = static_cast<size_t>(fallback_.cluster.value());
  snapshot.type = static_cast<size_t>(fallback_.type.value());
  snapshot.global = static_cast<size_t>(fallback_.global.value());
  snapshot.baseline = static_cast<size_t>(fallback_.baseline.value());
  return snapshot;
}

void PredictionService::CollectMetrics(obs::MetricsSnapshot* out,
                                       const obs::LabelSet& labels) const {
  stats_.Collect(out, labels);
  obs::MetricFamily family;
  family.name = "vupred_registry_fallback_total";
  family.help =
      "Predictions served below the vehicle level of the model hierarchy.";
  family.type = obs::MetricType::kCounter;
  const FallbackSnapshot counts = fallback_counts();
  const std::pair<const char*, size_t> levels[] = {
      {"cluster", counts.cluster},
      {"type", counts.type},
      {"global", counts.global},
      {"baseline", counts.baseline},
  };
  for (const auto& [level, count] : levels) {
    obs::MetricSample sample;
    sample.labels = labels;
    sample.labels.emplace_back("level", level);
    sample.value = static_cast<double>(count);
    family.samples.push_back(std::move(sample));
  }
  out->families.push_back(std::move(family));

  // Canary families exist only while a canary is configured, so a plain
  // service's metric set is unchanged.
  if (options_.canary.enabled()) {
    const CanarySnapshot canary = canary_counts();
    obs::MetricFamily shadow;
    shadow.name = "vupred_publish_canary_shadow_total";
    shadow.help = "Requests shadow-scored against the staged generation.";
    shadow.type = obs::MetricType::kCounter;
    obs::MetricSample shadow_sample;
    shadow_sample.labels = labels;
    shadow_sample.value = static_cast<double>(canary.shadow_scores);
    shadow.samples.push_back(std::move(shadow_sample));
    out->families.push_back(std::move(shadow));

    obs::MetricFamily breaches;
    breaches.name = "vupred_publish_canary_breaches_total";
    breaches.help = "Canary guardrail breaches, by kind.";
    breaches.type = obs::MetricType::kCounter;
    const std::pair<const char*, uint64_t> kinds[] = {
        {"divergence", canary.divergence_breaches},
        {"nonfinite", canary.nonfinite_outputs},
        {"error", canary.shadow_errors},
    };
    for (const auto& [kind, count] : kinds) {
      obs::MetricSample sample;
      sample.labels = labels;
      sample.labels.emplace_back("kind", kind);
      sample.value = static_cast<double>(count);
      breaches.samples.push_back(std::move(sample));
    }
    out->families.push_back(std::move(breaches));
  }
}

PredictionResponse PredictionService::Predict(
    const PredictionRequest& request) {
  std::vector<PredictionResponse> responses(1);
  ScoreGroup(std::span<const PredictionRequest>(&request, 1), {0},
             &responses);
  return responses[0];
}

void PredictionService::AdmitBlocking(size_t count) {
  std::unique_lock<std::mutex> lock(admission_mu_);
  // A group larger than the whole capacity is admitted once the queue is
  // empty -- oversize work makes progress instead of deadlocking.
  admission_cv_.wait(lock, [&] {
    return queued_ == 0 ||
           queued_ + count <= options_.admission_capacity;
  });
  queued_ += count;
}

void PredictionService::ReleaseAdmission(size_t count) {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    queued_ -= std::min(count, queued_);
  }
  admission_cv_.notify_all();
}

std::vector<PredictionResponse> PredictionService::PredictBatch(
    std::span<const PredictionRequest> requests) {
  std::vector<PredictionResponse> responses(requests.size());
  if (requests.empty()) return responses;

  // Inline path: no pool, or the pool is already shut down. Admission is
  // bypassed -- the caller is the only producer and provides its own
  // back-pressure, so nothing may be dropped here.
  const bool pooled = pool_ != nullptr && pool_->accepting();

  // Shed policies decide up front which requests get the available slots.
  // This happens before any group is submitted, so for a synchronous
  // caller the shed set is a pure function of batch layout and capacity:
  // same batch, same seed, same counters.
  std::vector<char> shed(requests.size(), 0);
  const bool shedding =
      pooled && options_.admission_capacity > 0 &&
      options_.overload_policy != OverloadPolicy::kBlock;
  size_t admitted = requests.size();
  {
    obs::TraceSpan admission_span("serve.admission");
    if (shedding) {
      std::lock_guard<std::mutex> lock(admission_mu_);
      const size_t available =
          options_.admission_capacity > queued_
              ? options_.admission_capacity - queued_
              : 0;
      if (requests.size() > available) {
        admitted = available;
        const size_t excess = requests.size() - available;
        if (options_.overload_policy == OverloadPolicy::kShedNewest) {
          for (size_t i = available; i < requests.size(); ++i) shed[i] = 1;
        } else {  // kShedOldest: drop the head, keep the freshest work.
          for (size_t i = 0; i < excess; ++i) shed[i] = 1;
        }
      }
      queued_ += admitted;
    }
    for (size_t i = 0; i < requests.size(); ++i) {
      if (!shed[i]) continue;
      responses[i].vehicle_id = requests[i].vehicle_id;
      responses[i].status = Status::Unavailable(StrFormat(
          "request shed by admission control (capacity %zu, policy %s)",
          options_.admission_capacity,
          options_.overload_policy == OverloadPolicy::kShedNewest
              ? "shed-newest"
              : "shed-oldest"));
      stats_.RecordShed();
    }
  }

  // Group the admitted request positions per vehicle (ordered map:
  // deterministic group submission order).
  std::map<int64_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!shed[i]) groups[requests[i].vehicle_id].push_back(i);
  }

  if (!pooled) {
    for (const auto& [id, positions] : groups) {
      ScoreGroup(requests, positions, &responses);
    }
    return responses;
  }

  const bool blocking =
      options_.admission_capacity > 0 &&
      options_.overload_policy == OverloadPolicy::kBlock;

  // Per-batch completion latch: a shared pool may carry other callers'
  // tasks, so ThreadPool::Wait() would over-wait here.
  std::mutex mu;
  std::condition_variable done_cv;
  size_t remaining = groups.size();
  auto mark_done = [&] {
    std::lock_guard<std::mutex> lock(mu);
    if (--remaining == 0) done_cv.notify_all();
  };

  for (const auto& [id, positions] : groups) {
    if (blocking) AdmitBlocking(positions.size());
    const std::vector<size_t>* group = &positions;
    const size_t group_size = positions.size();
    const bool release = blocking || shedding;
    Status submitted = pool_->Submit([this, requests, group, group_size,
                                      release, &responses,
                                      &mark_done]() -> Status {
      ScoreGroup(requests, *group, &responses);
      if (release) ReleaseAdmission(group_size);
      mark_done();
      return Status::OK();
    });
    if (!submitted.ok()) {
      // Pool shut down under us: score inline rather than dropping the
      // group.
      ScoreGroup(requests, positions, &responses);
      if (blocking || shedding) ReleaseAdmission(group_size);
      mark_done();
    }
  }

  std::unique_lock<std::mutex> lock(mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
  return responses;
}

}  // namespace vup::serve
