#include "serve/serving_stats.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/string_util.h"

namespace vup::serve {

namespace {

// 1-2-5 ladder from 10 us to 5 s; requests above the last bound fall into
// the overflow bucket.
constexpr std::array<double, 18> kBoundsSeconds = {
    10e-6, 20e-6, 50e-6, 100e-6, 200e-6, 500e-6,
    1e-3,  2e-3,  5e-3,  10e-3,  20e-3,  50e-3,
    100e-3, 200e-3, 500e-3, 1.0,   2.0,   5.0};

}  // namespace

LatencyHistogram::LatencyHistogram()
    : counts_(kBoundsSeconds.size() + 1, 0) {}

std::span<const double> LatencyHistogram::BucketBoundsSeconds() {
  return kBoundsSeconds;
}

void LatencyHistogram::Record(double seconds) {
  if (!std::isfinite(seconds) || seconds < 0) seconds = 0;
  size_t bucket = kBoundsSeconds.size();  // Overflow by default.
  for (size_t i = 0; i < kBoundsSeconds.size(); ++i) {
    if (seconds <= kBoundsSeconds[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++count_;
}

double LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile, 1-based (nearest-rank definition).
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(count_)));
  rank = std::max<size_t>(rank, 1);
  size_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      return i < kBoundsSeconds.size() ? kBoundsSeconds[i]
                                       : kBoundsSeconds.back();
    }
  }
  return kBoundsSeconds.back();
}

std::string LatencyHistogram::ToString() const {
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (i < kBoundsSeconds.size()) {
      out += StrFormat("  <=%.3fms %zu\n", kBoundsSeconds[i] * 1e3,
                       counts_[i]);
    } else {
      out += StrFormat("  >%.3fms %zu\n", kBoundsSeconds.back() * 1e3,
                       counts_[i]);
    }
  }
  return out;
}

void ServingStats::RecordRequest(double latency_seconds, bool ok,
                                 bool degraded) {
  std::lock_guard<std::mutex> lock(mu_);
  histogram_.Record(latency_seconds);
  ++requests_;
  if (!ok) ++failures_;
  if (degraded) ++degraded_;
}

void ServingStats::RecordShed() {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_;
  ++shed_;
}

void ServingStats::RecordDeadlineExceeded() {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_;
  ++deadline_exceeded_;
}

ServingStatsSnapshot ServingStats::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServingStatsSnapshot snap;
  snap.requests = requests_;
  snap.failures = failures_;
  snap.degraded = degraded_;
  snap.shed = shed_;
  snap.deadline_exceeded = deadline_exceeded_;
  snap.in_flight = in_flight_.load(std::memory_order_relaxed);
  snap.p50_seconds = histogram_.Quantile(0.50);
  snap.p95_seconds = histogram_.Quantile(0.95);
  snap.p99_seconds = histogram_.Quantile(0.99);
  return snap;
}

std::string ServingStats::HistogramToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histogram_.ToString();
}

}  // namespace vup::serve
