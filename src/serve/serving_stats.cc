#include "serve/serving_stats.h"

#include <algorithm>

#include "common/string_util.h"

namespace vup::serve {

namespace {

/// Shared latency ladder instance backing BucketBoundsSeconds.
const std::vector<double>& ServeBounds() {
  static const std::vector<double>& bounds =
      *new std::vector<double>(obs::Histogram::LatencyBoundsSeconds());
  return bounds;
}

}  // namespace

LatencyHistogram::LatencyHistogram() : histogram_(ServeBounds()) {}

std::span<const double> LatencyHistogram::BucketBoundsSeconds() {
  return ServeBounds();
}

std::string LatencyHistogram::ToString() const {
  const obs::HistogramData data = histogram_.Snapshot();
  std::string out;
  for (size_t i = 0; i < data.counts.size(); ++i) {
    if (data.counts[i] == 0) continue;
    if (i < data.bounds.size()) {
      out += StrFormat("  <=%.3fms %zu\n", data.bounds[i] * 1e3,
                       static_cast<size_t>(data.counts[i]));
    } else {
      out += StrFormat("  >%.3fms %zu\n", data.bounds.back() * 1e3,
                       static_cast<size_t>(data.counts[i]));
    }
  }
  return out;
}

void ServingStats::RecordRequest(double latency_seconds, bool ok,
                                 bool degraded) {
  std::lock_guard<std::mutex> lock(mu_);
  histogram_.Record(latency_seconds);
  requests_.Increment();
  if (!ok) failures_.Increment();
  if (degraded) degraded_.Increment();
}

void ServingStats::RecordShed() {
  std::lock_guard<std::mutex> lock(mu_);
  requests_.Increment();
  shed_.Increment();
}

void ServingStats::RecordDeadlineExceeded() {
  std::lock_guard<std::mutex> lock(mu_);
  requests_.Increment();
  deadline_exceeded_.Increment();
}

ServingStatsSnapshot ServingStats::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServingStatsSnapshot snap;
  snap.requests = static_cast<size_t>(requests_.value());
  snap.failures = static_cast<size_t>(failures_.value());
  snap.degraded = static_cast<size_t>(degraded_.value());
  snap.shed = static_cast<size_t>(shed_.value());
  snap.deadline_exceeded = static_cast<size_t>(deadline_exceeded_.value());
  snap.in_flight = static_cast<size_t>(in_flight_.value());
  snap.p50_seconds = histogram_.Quantile(0.50);
  snap.p95_seconds = histogram_.Quantile(0.95);
  snap.p99_seconds = histogram_.Quantile(0.99);
  return snap;
}

void ServingStats::Collect(obs::MetricsSnapshot* out,
                           const obs::LabelSet& labels) const {
  obs::HistogramData latency;
  uint64_t requests, failures, degraded, shed, deadline_exceeded;
  double in_flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    latency = histogram_.histogram().Snapshot();
    requests = requests_.value();
    failures = failures_.value();
    degraded = degraded_.value();
    shed = shed_.value();
    deadline_exceeded = deadline_exceeded_.value();
    in_flight = in_flight_.value();
  }
  auto counter = [&](const char* name, const char* help, uint64_t value) {
    obs::MetricFamily family;
    family.name = name;
    family.help = help;
    family.type = obs::MetricType::kCounter;
    obs::MetricSample sample;
    sample.labels = labels;
    sample.value = static_cast<double>(value);
    family.samples.push_back(std::move(sample));
    out->families.push_back(std::move(family));
  };
  counter("vupred_serve_requests_total",
          "Finished prediction requests (any outcome).", requests);
  counter("vupred_serve_failures_total",
          "Requests finished with a non-OK status.", failures);
  counter("vupred_serve_degraded_total",
          "Requests served by the Last-Value fallback.", degraded);
  counter("vupred_serve_shed_total",
          "Requests rejected by admission control.", shed);
  counter("vupred_serve_deadline_exceeded_total",
          "Requests expired before scoring started.", deadline_exceeded);

  obs::MetricFamily gauge;
  gauge.name = "vupred_serve_in_flight";
  gauge.help = "Requests currently being scored.";
  gauge.type = obs::MetricType::kGauge;
  obs::MetricSample gauge_sample;
  gauge_sample.labels = labels;
  gauge_sample.value = in_flight;
  gauge.samples.push_back(std::move(gauge_sample));
  out->families.push_back(std::move(gauge));

  obs::MetricFamily histogram;
  histogram.name = "vupred_serve_request_seconds";
  histogram.help = "Scoring latency of finished requests.";
  histogram.type = obs::MetricType::kHistogram;
  obs::MetricSample histogram_sample;
  histogram_sample.labels = labels;
  histogram_sample.histogram = std::move(latency);
  histogram.samples.push_back(std::move(histogram_sample));
  out->families.push_back(std::move(histogram));
}

std::string ServingStats::HistogramToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histogram_.ToString();
}

}  // namespace vup::serve
