#include "serve/guarded_publish.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/random.h"
#include "common/string_util.h"
#include "serve/manifest.h"
#include "serve/model_registry.h"

namespace vup::serve {

namespace fs = std::filesystem;

namespace {

constexpr const char* kRollbackMagic = "vupred-rollback v1";
constexpr const char* kRollbackSentinel = "end-rollback";
constexpr size_t kMaxJournalBytes = 4096;
constexpr size_t kMaxGenerationNameLength = 64;
constexpr const char* kNonePrevious = "none";

Status ValidateGenerationName(std::string_view name) {
  if (name.empty() || name.size() > kMaxGenerationNameLength) {
    return Status::InvalidArgument("unusable generation name");
  }
  if (!StartsWith(name, "gen_")) {
    return Status::InvalidArgument("not a generation name: " +
                                   std::string(name));
  }
  std::string_view digits = name.substr(4);
  if (digits.empty() || digits.size() > 18) {
    return Status::InvalidArgument("generation number out of range: " +
                                   std::string(name));
  }
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("garbage generation name: " +
                                     std::string(name));
    }
  }
  return Status::OK();
}

/// A generation is complete when its directory exists, its meta parses
/// and -- when present -- its manifest parses. Incomplete generations must
/// never become CURRENT, in either direction.
Status VerifyGenerationComplete(const std::string& root,
                                const std::string& name) {
  VUP_RETURN_IF_ERROR(ValidateGenerationName(name));
  const std::string dir = root + "/" + name;
  std::error_code ec;
  if (!fs::is_directory(dir, ec) || ec) {
    return Status::NotFound("generation directory is missing: " + dir);
  }
  StatusOr<RegistryMeta> meta = ReadRegistryMetaFile(dir);
  if (!meta.ok()) {
    return Status::DataLoss("generation " + name + " is incomplete: " +
                            meta.status().ToString());
  }
  StatusOr<GenerationManifest> manifest = ReadManifestFile(dir);
  if (!manifest.ok() && manifest.status().code() != StatusCode::kNotFound) {
    return Status::DataLoss("generation " + name +
                            " has a damaged manifest: " +
                            manifest.status().ToString());
  }
  return Status::OK();
}

/// Reads the single-line CURRENT pointer. NotFound when no generation has
/// ever been published under `root`.
StatusOr<std::string> ReadCurrentPointer(const std::string& root) {
  const std::string path = root + "/" + kCurrentFileName;
  std::ifstream in(path);
  if (!in) return Status::NotFound("no " + path);
  std::string name;
  if (!std::getline(in, name)) {
    return Status::DataLoss("cannot read " + path);
  }
  name = std::string(Trim(name));
  VUP_RETURN_IF_ERROR(ValidateGenerationName(name));
  return name;
}

}  // namespace

std::string RollbackJournal::Serialize() const {
  std::ostringstream os;
  os << kRollbackMagic << "\n";
  os << "promoted " << promoted << "\n";
  os << "previous " << (previous.empty() ? kNonePrevious : previous) << "\n";
  os << kRollbackSentinel << "\n";
  return os.str();
}

StatusOr<RollbackJournal> RollbackJournal::Parse(const std::string& content) {
  if (content.size() > kMaxJournalBytes) {
    return Status::InvalidArgument("rollback journal is implausibly large");
  }
  if (content.empty() || content.back() != '\n') {
    return Status::InvalidArgument(
        "rollback journal is not newline-terminated (truncated?)");
  }
  std::istringstream stream(content);
  std::string line;
  if (!std::getline(stream, line) || Trim(line) != kRollbackMagic) {
    return Status::InvalidArgument(std::string("not a ") + kRollbackMagic +
                                   " file");
  }
  RollbackJournal journal;
  bool saw_promoted = false;
  bool saw_previous = false;
  bool saw_sentinel = false;
  while (std::getline(stream, line)) {
    std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;
    if (saw_sentinel) {
      return Status::InvalidArgument("content after end-rollback sentinel");
    }
    if (trimmed == kRollbackSentinel) {
      saw_sentinel = true;
      continue;
    }
    std::vector<std::string> tokens = Split(trimmed, ' ');
    if (tokens.size() != 2) {
      return Status::InvalidArgument("malformed journal line: " + trimmed);
    }
    if (tokens[0] == "promoted") {
      if (saw_promoted) {
        return Status::InvalidArgument("duplicate promoted line");
      }
      VUP_RETURN_IF_ERROR(ValidateGenerationName(tokens[1]));
      journal.promoted = tokens[1];
      saw_promoted = true;
    } else if (tokens[0] == "previous") {
      if (saw_previous) {
        return Status::InvalidArgument("duplicate previous line");
      }
      if (tokens[1] != kNonePrevious) {
        VUP_RETURN_IF_ERROR(ValidateGenerationName(tokens[1]));
        journal.previous = tokens[1];
      }
      saw_previous = true;
    } else {
      return Status::InvalidArgument("unknown journal key: " + tokens[0]);
    }
  }
  if (!saw_sentinel) {
    return Status::InvalidArgument(
        "rollback journal is missing the end-rollback sentinel (truncated?)");
  }
  if (!saw_promoted || !saw_previous) {
    return Status::InvalidArgument("rollback journal is missing a field");
  }
  return journal;
}

StatusOr<RollbackJournal> ReadRollbackJournal(const std::string& root) {
  const std::string path = root + "/" + kRollbackJournalFileName;
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no " + path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (in.bad()) return Status::DataLoss("read failed: " + path);
  return RollbackJournal::Parse(content);
}

Status WriteRollbackJournal(const std::string& root,
                            const RollbackJournal& journal) {
  VUP_RETURN_IF_ERROR(ValidateGenerationName(journal.promoted));
  if (!journal.previous.empty()) {
    VUP_RETURN_IF_ERROR(ValidateGenerationName(journal.previous));
  }
  return AtomicWriteFile(root + "/" + kRollbackJournalFileName,
                         journal.Serialize());
}

Status PromoteGeneration(const std::string& root,
                         const std::string& generation) {
  VUP_RETURN_IF_ERROR(VerifyGenerationComplete(root, generation));
  StatusOr<std::string> current = ReadCurrentPointer(root);
  if (!current.ok() && current.status().code() != StatusCode::kNotFound) {
    return current.status();
  }
  const std::string previous = current.ok() ? current.value() : "";
  if (previous == generation) return Status::OK();
  // Journal first, pointer second: a crash between the two writes leaves
  // CURRENT on the old complete generation and a journal that merely
  // announces a promotion that never happened -- RollbackGeneration
  // detects the mismatch and refuses, readers are unaffected.
  VUP_RETURN_IF_ERROR(WriteRollbackJournal(
      root, RollbackJournal{generation, previous}));
  return AtomicWriteFile(root + "/" + kCurrentFileName, generation + "\n");
}

StatusOr<std::string> RollbackGeneration(const std::string& root) {
  VUP_ASSIGN_OR_RETURN(RollbackJournal journal, ReadRollbackJournal(root));
  VUP_ASSIGN_OR_RETURN(std::string current, ReadCurrentPointer(root));
  if (current != journal.promoted) {
    return Status::FailedPrecondition(
        "rollback journal is stale: CURRENT is " + current +
        " but the journal promoted " + journal.promoted);
  }
  if (journal.previous.empty()) {
    return Status::FailedPrecondition(
        "nothing to roll back to: " + journal.promoted +
        " was the first published generation");
  }
  VUP_RETURN_IF_ERROR(VerifyGenerationComplete(root, journal.previous));
  // The journal stays in place, still naming `promoted`: once CURRENT no
  // longer matches it, a second rollback of the same promotion fails with
  // FailedPrecondition instead of ping-ponging between generations.
  VUP_RETURN_IF_ERROR(AtomicWriteFile(root + "/" + kCurrentFileName,
                                      journal.previous + "\n"));
  return journal.previous;
}

CanaryVerdict JudgeCanary(const CanarySnapshot& snapshot,
                          const CanaryOptions& options) {
  CanaryVerdict verdict;
  verdict.snapshot = snapshot;
  if (snapshot.shadow_scores < options.min_shadow) {
    verdict.healthy = true;
    verdict.reason = StrFormat(
        "vacuous: %llu shadow scores (< %llu observed)",
        static_cast<unsigned long long>(snapshot.shadow_scores),
        static_cast<unsigned long long>(options.min_shadow));
    return verdict;
  }
  if (snapshot.nonfinite_outputs > 0) {
    verdict.reason = StrFormat(
        "staged generation produced %llu non-finite outputs",
        static_cast<unsigned long long>(snapshot.nonfinite_outputs));
    return verdict;
  }
  if (snapshot.shadow_errors > 0) {
    verdict.reason = StrFormat(
        "staged generation failed %llu requests the live one served",
        static_cast<unsigned long long>(snapshot.shadow_errors));
    return verdict;
  }
  const double breach_fraction =
      static_cast<double>(snapshot.divergence_breaches) /
      static_cast<double>(snapshot.shadow_scores);
  if (breach_fraction > options.max_breach_fraction) {
    verdict.reason = StrFormat(
        "divergence breach fraction %.4f exceeds %.4f "
        "(%llu/%llu shadow scores diverged > %.2fh, max |delta| %.2fh)",
        breach_fraction, options.max_breach_fraction,
        static_cast<unsigned long long>(snapshot.divergence_breaches),
        static_cast<unsigned long long>(snapshot.shadow_scores),
        options.divergence_hours, snapshot.max_abs_divergence);
    return verdict;
  }
  verdict.healthy = true;
  verdict.reason = StrFormat(
      "healthy: %llu shadow scores, %llu divergence breaches, "
      "mean |delta| %.4fh",
      static_cast<unsigned long long>(snapshot.shadow_scores),
      static_cast<unsigned long long>(snapshot.divergence_breaches),
      snapshot.sum_abs_divergence /
          static_cast<double>(snapshot.shadow_scores));
  return verdict;
}

bool InCanarySlice(uint64_t seed, double fraction, int64_t vehicle_id) {
  if (fraction <= 0.0) return false;
  if (fraction >= 1.0) return true;
  const uint64_t hash =
      SplitMix64(seed ^ SplitMix64(static_cast<uint64_t>(vehicle_id)));
  // Top 53 bits -> uniform double in [0, 1), the Rng::Uniform mapping.
  const double draw = static_cast<double>(hash >> 11) * 0x1.0p-53;
  return draw < fraction;
}

}  // namespace vup::serve
