#ifndef VUPRED_SERVE_GUARDED_PUBLISH_H_
#define VUPRED_SERVE_GUARDED_PUBLISH_H_

#include <cstdint>
#include <string>

#include "common/statusor.h"

namespace vup::serve {

/// Name of the registry pointer file and the rollback journal, both living
/// in the registry root next to the gen_* directories.
inline constexpr char kCurrentFileName[] = "CURRENT";
inline constexpr char kRollbackJournalFileName[] = "ROLLBACK";

/// The rollback journal: written atomically immediately BEFORE the CURRENT
/// pointer advances, so a crash between the two leaves enough on disk to
/// either roll forward (re-flip CURRENT) or roll back (restore `previous`).
/// Persisted as `ROLLBACK` (`vupred-rollback v1`):
///
///   vupred-rollback v1
///   promoted gen_000042
///   previous gen_000041      (or `previous none` for a first publish)
///   end-rollback
///
/// Same discipline as registry_meta.txt / MANIFEST: newline-terminated,
/// explicit end sentinel, strict parse.
struct RollbackJournal {
  std::string promoted;  // Generation CURRENT was advanced to.
  std::string previous;  // Generation CURRENT held before; "" = none.

  std::string Serialize() const;
  static StatusOr<RollbackJournal> Parse(const std::string& content);

  friend bool operator==(const RollbackJournal& a, const RollbackJournal& b) {
    return a.promoted == b.promoted && a.previous == b.previous;
  }
};

/// Reads root/ROLLBACK. NotFound when no guarded promotion ever ran.
StatusOr<RollbackJournal> ReadRollbackJournal(const std::string& root);

/// Writes root/ROLLBACK atomically (temp + rename).
Status WriteRollbackJournal(const std::string& root,
                            const RollbackJournal& journal);

/// Advances root/CURRENT to `generation` ("gen_NNNNNN"), journaling the
/// step first so it can be undone. Verifies the target is a complete
/// generation (well-formed name, directory present, parseable meta and --
/// when one exists -- parseable manifest) before touching any pointer.
/// Promoting the generation CURRENT already names is an idempotent no-op
/// that leaves the journal alone.
Status PromoteGeneration(const std::string& root,
                         const std::string& generation);

/// Undoes the journaled promotion: CURRENT must still name
/// journal.promoted (FailedPrecondition otherwise -- a later publish made
/// the journal stale), journal.previous must exist and be complete.
/// Flips CURRENT back and returns the restored generation name. The
/// journal is left in place, so a second rollback of the same promotion
/// fails cleanly instead of ping-ponging.
StatusOr<std::string> RollbackGeneration(const std::string& root);

class ModelRegistry;

/// Canary shadow-scoring configuration for PredictionService: a seeded
/// hash-slice of vehicles is scored a second time against `staged` and the
/// divergence from the live answer is accumulated.
struct CanaryOptions {
  ModelRegistry* staged = nullptr;  // nullptr disables the canary.
  double fraction = 0.1;            // Slice of vehicles shadow-scored.
  uint64_t seed = 42;               // Slice membership hash seed.
  double divergence_hours = 6.0;    // |staged - live| above this = breach.
  double max_breach_fraction = 0.05;  // Breaches / shadow scores allowed.
  uint64_t min_shadow = 1;  // Verdict is vacuous below this sample count.

  bool enabled() const { return staged != nullptr && fraction > 0.0; }
};

/// Counters accumulated by the shadow scorer; a point-in-time copy is
/// returned by PredictionService::canary_counts().
struct CanarySnapshot {
  uint64_t shadow_scores = 0;       // Requests scored against staged.
  uint64_t divergence_breaches = 0; // |staged - live| > divergence_hours.
  uint64_t nonfinite_outputs = 0;   // Staged produced NaN/inf.
  uint64_t shadow_errors = 0;       // Staged failed where live succeeded.
  double max_abs_divergence = 0.0;
  double sum_abs_divergence = 0.0;

  uint64_t breaches() const {
    return divergence_breaches + nonfinite_outputs + shadow_errors;
  }
};

/// Health verdict over a canary snapshot.
struct CanaryVerdict {
  bool healthy = false;
  std::string reason;  // Human-readable breach description when unhealthy.
  CanarySnapshot snapshot;
};

/// Pure guardrail judgment: non-finite outputs and shadow errors are
/// always breaches; divergence breaches are tolerated up to
/// max_breach_fraction of shadow scores. With fewer than min_shadow
/// samples the verdict is healthy-by-vacuity (nothing observed).
CanaryVerdict JudgeCanary(const CanarySnapshot& snapshot,
                          const CanaryOptions& options);

/// Deterministic slice membership: hashes (seed, vehicle_id) and admits
/// the vehicle when the resulting uniform [0,1) draw is below `fraction`.
/// Stable across processes so the same vehicles canary on every replica.
bool InCanarySlice(uint64_t seed, double fraction, int64_t vehicle_id);

}  // namespace vup::serve

#endif  // VUPRED_SERVE_GUARDED_PUBLISH_H_
