#ifndef VUPRED_SERVE_MODEL_REGISTRY_H_
#define VUPRED_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/statusor.h"
#include "core/forecaster.h"

namespace vup::serve {

/// Cache/IO counters of a ModelRegistry. Counts are cumulative since Open.
struct ModelRegistryStats {
  size_t hits = 0;         // Get served from the resident cache.
  size_t misses = 0;       // Get had to load the bundle from disk.
  size_t evictions = 0;    // Resident models displaced by the LRU policy.
  size_t load_failures = 0;  // Disk loads that returned an error.
};

/// Directory-backed store of per-vehicle model bundles with a bounded LRU
/// cache of resident (deserialized) models.
///
/// On-disk layout: one `vehicle_<id>.fcst` file per vehicle under the
/// registry directory, each holding a `vupred-forecaster v1` bundle
/// (config + selected-lag metadata + scaler + regressor, the ml/serialize
/// round-trip via VehicleForecaster::Save/Load).
///
/// Publish is offline (training side); Get is the online path. Get returns
/// a shared_ptr so a model stays valid for in-flight scoring even when the
/// LRU policy evicts it concurrently. `cache_capacity` bounds resident
/// models: 0 disables caching entirely (every Get is a disk load).
///
/// All methods are thread-safe.
class ModelRegistry {
 public:
  struct Options {
    std::string directory;
    size_t cache_capacity = 64;
  };

  /// Opens (and creates, if missing) the registry directory.
  static StatusOr<ModelRegistry> Open(Options options);

  ModelRegistry(ModelRegistry&&) noexcept = default;
  ModelRegistry& operator=(ModelRegistry&&) noexcept = default;

  /// Writes the bundle of `vehicle_id` (must be trained). Replaces an
  /// existing bundle and drops any stale resident copy.
  Status Publish(int64_t vehicle_id, const VehicleForecaster& forecaster);

  /// The model of `vehicle_id`, from cache or disk. NotFound when no
  /// bundle exists; InvalidArgument when the bundle is corrupt.
  StatusOr<std::shared_ptr<const VehicleForecaster>> Get(int64_t vehicle_id);

  /// True when a bundle file exists (does not touch the cache).
  bool Contains(int64_t vehicle_id) const;

  /// Vehicle ids with a bundle on disk, ascending.
  std::vector<int64_t> ListVehicleIds() const;

  /// Number of models currently resident in the cache.
  size_t resident_models() const;

  ModelRegistryStats stats() const;

  const std::string& directory() const { return options_.directory; }

  static std::string BundleFileName(int64_t vehicle_id);
  std::string BundlePath(int64_t vehicle_id) const;

 private:
  explicit ModelRegistry(Options options) : options_(std::move(options)) {}

  /// Loads a bundle from disk (no cache interaction).
  StatusOr<std::shared_ptr<const VehicleForecaster>> LoadFromDisk(
      int64_t vehicle_id) const;

  Options options_;

  // LRU cache: most-recently-used at the front. unique_ptr so the registry
  // stays movable (mutex members are not).
  using LruEntry = std::pair<int64_t, std::shared_ptr<const VehicleForecaster>>;
  std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  std::list<LruEntry> lru_;
  std::unordered_map<int64_t, std::list<LruEntry>::iterator> index_;
  ModelRegistryStats stats_;
};

}  // namespace vup::serve

#endif  // VUPRED_SERVE_MODEL_REGISTRY_H_
