#ifndef VUPRED_SERVE_MODEL_REGISTRY_H_
#define VUPRED_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/retry.h"
#include "common/statusor.h"
#include "core/forecaster.h"
#include "obs/metrics.h"
#include "serve/manifest.h"

namespace vup::serve {

/// How the training fleet behind a registry was generated, so any consumer
/// can rebuild byte-identical feature windows from the registry directory
/// alone. Persisted as `registry_meta.txt` (`vupred-registry v1`).
struct RegistryMeta {
  uint64_t fleet_seed = 42;
  size_t fleet_vehicles = 40;
  std::string algorithm = "Lasso";

  /// Strict parse of a meta stream: magic line, then exactly the three
  /// `key value` lines (any order, duplicates rejected), every line
  /// newline-terminated so a writer killed mid-line is detectable.
  /// Garbage, truncation, absurd counts and over-long tokens are Status
  /// errors, never crashes -- this file is hand-editable and must be
  /// fuzz-safe.
  static StatusOr<RegistryMeta> Parse(std::istream& in);

  /// Serializes in the format Parse accepts.
  std::string Serialize() const;

  friend bool operator==(const RegistryMeta& a, const RegistryMeta& b) {
    return a.fleet_seed == b.fleet_seed &&
           a.fleet_vehicles == b.fleet_vehicles &&
           a.algorithm == b.algorithm;
  }
};

/// Writes `meta` into `directory` as registry_meta.txt (temp + rename).
Status WriteRegistryMetaFile(const std::string& directory,
                             const RegistryMeta& meta);

/// Reads and parses `directory`/registry_meta.txt.
StatusOr<RegistryMeta> ReadRegistryMetaFile(const std::string& directory);

/// Per-vehicle circuit-breaker state exposed in registry stats.
enum class BreakerState { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

std::string_view BreakerStateToString(BreakerState state);

/// Per-shard slice of the registry counters. All integers stay integers
/// end-to-end: these are plain uint64_t tallies guarded by the shard
/// mutex, never round-tripped through double.
struct ModelRegistryShardStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t load_failures = 0;
  uint64_t breaker_opens = 0;
  uint64_t breaker_short_circuits = 0;
  uint64_t quarantines = 0;
  uint64_t quarantine_blocks = 0;
  uint64_t resident_models = 0;     // Models resident in this shard's LRU.
  uint64_t cache_bytes = 0;         // Resident bytes charged to the budget.
  uint64_t breaker_open_vehicles = 0;
  uint64_t quarantined_models = 0;
};

/// Cache/IO/breaker counters of a ModelRegistry. Counts are cumulative
/// since Open. Every top-level counter is exactly the sum of its
/// per-shard slice (the invariant the shard test suite asserts).
struct ModelRegistryStats {
  uint64_t hits = 0;           // Get served from the resident cache.
  uint64_t misses = 0;         // Get had to load the bundle from disk.
  uint64_t evictions = 0;      // Resident models displaced by the LRU policy.
  uint64_t load_failures = 0;  // Disk loads that returned an error.
  uint64_t breaker_opens = 0;  // closed/half-open -> open transitions.
  uint64_t breaker_short_circuits = 0;  // Gets rejected while a breaker was
                                        // open (no disk touched).
  uint64_t breaker_open_vehicles = 0;   // Breakers currently open/half-open.
  uint64_t reloads = 0;        // Generation swaps performed by Reload().
  uint64_t generation = 0;     // Active generation number (0 = flat layout).
  uint64_t quarantines = 0;    // Models quarantined (manifest mismatch or
                               // explicit Quarantine()).
  uint64_t quarantine_blocks = 0;  // Gets answered NotFound because the
                                   // vehicle's model is quarantined.
  uint64_t quarantined_models = 0; // Currently quarantined vehicle count.
  uint64_t promotes_observed = 0;  // Reloads that moved to a newer generation.
  uint64_t rollbacks_observed = 0; // Reloads that moved to an older one.
  uint64_t resident_models = 0;    // Models resident across all shards.
  uint64_t cache_bytes = 0;        // Resident bytes across all shards.
  /// One slice per shard, indexed by shard number.
  std::vector<ModelRegistryShardStats> shards;
};

class GenerationPublisher;

/// Directory-backed store of per-vehicle model bundles with a bounded LRU
/// cache of resident (deserialized) models, per-vehicle circuit breakers
/// around the disk-load path, and atomically swappable generations.
///
/// On-disk layout, generation mode:
///
///   <registry>/
///     CURRENT               # name of the active generation ("gen_000003")
///     gen_000002/           # a complete, immutable published fleet
///       registry_meta.txt
///       vehicle_<id>.fcst
///     gen_000003/ ...
///
/// `CURRENT` is written temp+rename and flipped only after the generation
/// directory (bundles + meta) is fully on disk, so a publisher killed
/// mid-write can never expose a torn fleet: readers either keep the old
/// complete generation or see the new complete one. A registry without a
/// `CURRENT` file is a legacy flat layout (bundles directly under the
/// root, generation number 0) -- single-bundle Publish keeps working
/// there.
///
/// Circuit breaker: consecutive load *failures* (corrupt bundle, IO error
/// -- NotFound is not a failure) trip a per-vehicle breaker after
/// `failure_threshold`; while open, Get fails fast with `Unavailable`
/// instead of re-reading a bundle known to be bad. After a seeded,
/// jittered exponential backoff (schedule from common/retry.h) the
/// breaker half-opens and admits one probe load: success closes it,
/// failure re-opens it with the next backoff step.
///
/// All methods are thread-safe. Get returns a shared_ptr so a model stays
/// valid for in-flight scoring even when the LRU policy evicts it or a
/// Reload swaps the whole generation concurrently.
class ModelRegistry {
 public:
  struct BreakerOptions {
    /// Consecutive load failures before the breaker opens (>= 1).
    int failure_threshold = 3;
    /// Backoff schedule for the open state, reusing the retry vocabulary:
    /// open period k is min(initial * multiplier^(k-1), max), jittered.
    RetryOptions backoff = {.max_attempts = 1,
                            .initial_backoff_ms = 1000,
                            .backoff_multiplier = 2.0,
                            .max_backoff_ms = 60'000,
                            .retryable = {}};
    /// Each open period is scaled by a factor uniform in
    /// [1 - jitter_fraction, 1 + jitter_fraction], derived
    /// deterministically from (jitter_seed, vehicle_id, open count) so
    /// same-seed runs reproduce the exact schedule.
    double jitter_fraction = 0.1;
    uint64_t jitter_seed = 42;
  };

  struct Options {
    Options() = default;
    Options(std::string directory_in, size_t cache_capacity_in)
        : directory(std::move(directory_in)),
          cache_capacity(cache_capacity_in) {}

    std::string directory;
    /// Total resident-model count bound across all shards (0 disables
    /// caching entirely). Split evenly per shard, rounded up.
    size_t cache_capacity = 64;
    /// Total resident-byte budget across all shards (0 = unbounded).
    /// Split evenly per shard; a model whose ResidentBytes() exceeds its
    /// shard's slice is served but never cached. Mapped compact bundles
    /// charge only their bookkeeping bytes (their pages are clean).
    size_t cache_max_bytes = 0;
    /// Lock/LRU/breaker shards (>= 1). Vehicles route by SplitMix64 of
    /// their id, so same-fleet runs shard identically.
    size_t shards = 1;
    /// Serve the compact bundle (vehicle_<id>.cfcst, mmap-ed and scored
    /// in place) when one exists, falling back to the text bundle when it
    /// does not.
    bool prefer_compact = false;
    /// Time source for breaker transitions; null means Clock::Real().
    const Clock* clock = nullptr;
    BreakerOptions breaker;
  };

  /// Opens (and creates, if missing) the registry directory, resolving
  /// `CURRENT` to the active generation (flat layout when absent).
  static StatusOr<ModelRegistry> Open(Options options);

  ModelRegistry(ModelRegistry&&) noexcept = default;
  ModelRegistry& operator=(ModelRegistry&&) noexcept = default;

  /// Writes the bundle of `vehicle_id` (must be trained) into the active
  /// generation. Replaces an existing bundle, drops any stale resident
  /// copy and resets the vehicle's breaker (a fresh bundle deserves fresh
  /// chances).
  Status Publish(int64_t vehicle_id, const VehicleForecaster& forecaster);

  /// Starts a new generation staged invisibly next to the active one;
  /// `Commit` makes it the fleet `CURRENT` points at. Concurrent readers
  /// of this registry are unaffected until Reload().
  StatusOr<GenerationPublisher> NewGeneration();

  /// Re-resolves `CURRENT` and atomically swaps the active generation if
  /// it changed: the cache and breakers reset, in-flight shared_ptr
  /// models stay valid. On any error (missing/garbage CURRENT, torn or
  /// incomplete generation) the old generation stays active.
  Status Reload();

  /// Deletes non-active generation directories, keeping the newest
  /// `keep` of them (0 keeps none but the active one). Generations the
  /// rollback journal still points at (promoted or previous) are never
  /// deleted, whatever `keep` says -- pruning the rollback target would
  /// turn the journal into a loaded footgun.
  Status PruneGenerations(size_t keep);

  /// Undoes the last journaled promotion (guarded_publish.h) and reloads,
  /// so this registry serves the restored generation immediately.
  Status Rollback();

  /// The model of `vehicle_id`, from cache or disk. NotFound when no
  /// bundle exists OR when the model is quarantined (so callers degrade
  /// through the same fallback chain either way); InvalidArgument/DataLoss
  /// when the bundle is corrupt and unlisted in any manifest; Unavailable
  /// (fast, no disk IO) while the vehicle's breaker is open.
  ///
  /// When the active generation carries a MANIFEST, every disk load is
  /// verified against it first: a size/CRC mismatch quarantines the model
  /// (never deserialized, never scored) and returns NotFound. Quarantine
  /// does not touch the circuit breaker -- corruption is a publisher/disk
  /// fault, not a load-path fault, and burning breaker probes on it would
  /// delay recovery after the generation is repaired.
  StatusOr<std::shared_ptr<const VehicleForecaster>> Get(int64_t vehicle_id);

  /// Marks the model of `vehicle_id` as unservable (drops any resident
  /// copy). Used by the scrubber when a background re-verify catches
  /// bit-rot before any Get does.
  void Quarantine(int64_t vehicle_id);

  bool IsQuarantined(int64_t vehicle_id) const;

  /// Meta of the active generation (root meta in flat layout).
  StatusOr<RegistryMeta> ReadMeta() const;

  /// True when a bundle file exists (does not touch the cache).
  bool Contains(int64_t vehicle_id) const;

  /// Vehicle ids with a bundle in the active generation, ascending.
  std::vector<int64_t> ListVehicleIds() const;

  /// Number of models currently resident in the cache (all shards).
  size_t resident_models() const;

  /// Resident bytes currently charged against the cache budget.
  size_t resident_bytes() const;

  /// Number of lock/LRU/breaker shards this registry runs with.
  size_t num_shards() const { return shards_.size(); }

  /// Shard a vehicle routes to: SplitMix64(id) % num_shards. Exposed so
  /// tests and benches can aim traffic at specific shards.
  size_t ShardIndexForVehicle(int64_t vehicle_id) const;

  /// Breaker state of one vehicle (kClosed when never tripped).
  BreakerState breaker_state(int64_t vehicle_id) const;

  /// The jittered open period before half-open probe `open_count` (1-based)
  /// of `vehicle_id` -- deterministic in (jitter_seed, vehicle, count).
  int64_t BreakerBackoffMs(int64_t vehicle_id, int open_count) const;

  ModelRegistryStats stats() const;

  /// Appends the registry metric families (vupred_registry_*) to `out`,
  /// every sample tagged with `labels`. One locked read, so the export is
  /// as consistent as stats().
  void CollectMetrics(obs::MetricsSnapshot* out,
                      const obs::LabelSet& labels = {}) const;

  uint64_t active_generation() const;

  const std::string& directory() const { return options_.directory; }

  static std::string BundleFileName(int64_t vehicle_id);
  /// Compact binary twin of BundleFileName: "vehicle_<id>.cfcst".
  static std::string CompactBundleFileName(int64_t vehicle_id);
  /// Bundle path inside the active generation.
  std::string BundlePath(int64_t vehicle_id) const;

  /// Inverse of BundleFileName: "vehicle_<id>.fcst" -> id, nullopt for
  /// anything else (meta, manifest, compact bundles, tmp leftovers) --
  /// compact files deliberately do not match, so vehicle listing and
  /// pruning keep exactly one name per vehicle.
  static std::optional<int64_t> ParseBundleFileName(std::string_view name);

  static std::string GenerationDirName(uint64_t number);

 private:
  friend class GenerationPublisher;

  struct Breaker {
    int consecutive_failures = 0;
    BreakerState state = BreakerState::kClosed;
    int open_count = 0;             // Times this breaker has opened.
    Clock::TimePoint open_until{};  // End of the current open period.
  };

  struct ActiveGeneration {
    std::string dir;
    uint64_t number = 0;
    /// Integrity manifest of the generation; nullopt for legacy
    /// generations published before manifests existed (served unverified).
    std::optional<GenerationManifest> manifest;
  };

  /// One lock domain of the registry: its own mutex, LRU (with per-entry
  /// byte accounting), breaker map, quarantine set and counters. A
  /// vehicle's entire serving state lives in exactly one shard, so two
  /// Gets for vehicles in different shards never contend.
  ///
  /// Lock ordering: a shard's mutex is always taken BEFORE active_mu_
  /// (Get holds its shard while the load path peeks at the active
  /// generation), and Reload takes every shard mutex in ascending index
  /// order before active_mu_ -- one global order, no deadlock, and a
  /// generation swap that a Get observes is always complete (torn-free
  /// per shard).
  struct Shard {
    struct LruEntry {
      int64_t vehicle_id = 0;
      std::shared_ptr<const VehicleForecaster> model;
      size_t bytes = 0;  // ResidentBytes() charged at insert time.
    };

    mutable std::mutex mu;
    std::list<LruEntry> lru;  // Most recently used at the front.
    std::unordered_map<int64_t, std::list<LruEntry>::iterator> index;
    std::unordered_map<int64_t, Breaker> breakers;
    /// Vehicles whose model failed manifest verification (or were flagged
    /// by the scrubber). Cleared on a generation swap: the new fleet's
    /// bundles get verified on their own merits.
    std::unordered_set<int64_t> quarantined;
    size_t resident_bytes = 0;

    // Plain integer counters, guarded by mu -- never doubles.
    ModelRegistryShardStats counters;
  };

  explicit ModelRegistry(Options options, ActiveGeneration active);

  const Clock& clock() const {
    return options_.clock != nullptr ? *options_.clock : Clock::Real();
  }

  /// Resolves CURRENT under `root` (flat layout when absent); validates
  /// that the generation directory exists and holds a parseable meta.
  static StatusOr<ActiveGeneration> ResolveActive(const std::string& root);

  Shard& ShardForVehicle(int64_t vehicle_id) const;

  /// Loads the bundle of `vehicle_id` from the active generation (compact
  /// first when options_.prefer_compact), verifying it against the
  /// manifest when one lists it. A verification failure quarantines the
  /// vehicle and returns NotFound. Caller holds the vehicle's shard
  /// mutex; this takes active_mu_ inside (see Shard's lock ordering).
  StatusOr<std::shared_ptr<const VehicleForecaster>> LoadVerifiedLocked(
      Shard& shard, int64_t vehicle_id);

  /// Breaker bookkeeping after a failed (non-NotFound) load. Caller holds
  /// the shard mutex.
  void RecordLoadFailureLocked(Shard& shard, int64_t vehicle_id);

  /// Breakers currently open or half-open. Caller holds the shard mutex.
  static size_t OpenBreakersLocked(const Shard& shard);

  /// Assembles the stats struct. Caller holds ALL shard mutexes and
  /// active_mu_.
  ModelRegistryStats StatsAllLocked() const;

  Options options_;
  /// Per-shard count / byte slices of the totals in options_.
  size_t shard_capacity_ = 0;
  size_t shard_max_bytes_ = 0;

  /// Guards active_ and the registry-level counters below. unique_ptr so
  /// the registry stays movable (mutexes are not).
  std::unique_ptr<std::mutex> active_mu_ = std::make_unique<std::mutex>();
  ActiveGeneration active_;
  uint64_t reloads_ = 0;
  uint64_t promotes_observed_ = 0;
  uint64_t rollbacks_observed_ = 0;

  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Stages one new generation: bundles are added into a hidden staging
/// directory; Finalize writes the meta + integrity MANIFEST and renames
/// the staging directory to its final `gen_NNNNNN` name (still invisible
/// to readers); Promote journals the step and atomically flips `CURRENT`.
/// Commit = Finalize + Promote. The split exists so a publish gate
/// (GenerationValidator, canary drill) can inspect the complete,
/// checksummed generation BEFORE any reader can be pointed at it.
///
/// A publisher destroyed without Finalize removes its staging directory;
/// one destroyed after Finalize but without Promote leaves the complete
/// generation on disk un-promoted (prunable, never served). A publisher
/// *killed* at any step leaves either an ignored staging directory or an
/// un-promoted generation behind -- never a torn active fleet.
class GenerationPublisher {
 public:
  GenerationPublisher(GenerationPublisher&& other) noexcept;
  GenerationPublisher& operator=(GenerationPublisher&& other) noexcept;
  ~GenerationPublisher();

  /// Emit a compact binary twin (vehicle_<id>.cfcst) next to every text
  /// bundle Add writes. Off by default; flip before the first Add.
  void set_emit_compact(bool emit) { emit_compact_ = emit; }

  Status Add(int64_t vehicle_id, const VehicleForecaster& forecaster);

  /// Writes pre-serialized bundle bytes for `vehicle_id` -- the fast path
  /// for synthetic registries (serve-bench replicates one trained
  /// template across 10^5..10^6 vehicle ids without re-serializing each).
  /// `compact_bytes` empty means no compact twin.
  Status AddPrebuilt(int64_t vehicle_id, std::string_view text_bytes,
                     std::string_view compact_bytes = {});

  /// Completes the staged generation: meta, MANIFEST (size + CRC-32 of
  /// every staged file), rename to the final gen_NNNNNN name. Readers are
  /// unaffected; CURRENT does not move.
  Status Finalize(const RegistryMeta& meta);

  /// Journals and flips CURRENT to the finalized generation
  /// (FailedPrecondition before Finalize). Readers pick the new fleet up
  /// via ModelRegistry::Reload; Rollback can undo it.
  Status Promote();

  /// Finalize + Promote in one step. The publisher is spent afterwards.
  Status Commit(const RegistryMeta& meta);

  /// Number this generation will publish as.
  uint64_t number() const { return number_; }

  /// Before Finalize: the hidden staging directory. After: the final
  /// generation directory.
  const std::string& staging_dir() const { return staging_dir_; }

 private:
  friend class ModelRegistry;

  GenerationPublisher(std::string root, uint64_t number,
                      std::string staging_dir)
      : root_(std::move(root)),
        number_(number),
        staging_dir_(std::move(staging_dir)) {}

  std::string root_;
  uint64_t number_ = 0;
  std::string staging_dir_;
  bool emit_compact_ = false;
  bool finalized_ = false;
  bool committed_ = false;
  bool moved_from_ = false;
};

}  // namespace vup::serve

#endif  // VUPRED_SERVE_MODEL_REGISTRY_H_
