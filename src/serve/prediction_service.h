#ifndef VUPRED_SERVE_PREDICTION_SERVICE_H_
#define VUPRED_SERVE_PREDICTION_SERVICE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "pipeline/dataset.h"
#include "serve/model_registry.h"
#include "serve/serving_stats.h"

namespace vup::serve {

/// One scoring request: predict the utilization hours of `dataset` row
/// `target_index` (which may equal dataset->num_days() for the one-step-
/// ahead forecast) using the model registered for `vehicle_id`.
///
/// The dataset is the vehicle's recent feature window; it must outlive the
/// call and is not modified.
struct PredictionRequest {
  int64_t vehicle_id = 0;
  const VehicleDataset* dataset = nullptr;
  size_t target_index = 0;
};

/// Outcome of one request. `status` is OK when `prediction` is usable;
/// `degraded` marks predictions served by the Last-Value fallback because
/// the vehicle has no registered model.
struct PredictionResponse {
  int64_t vehicle_id = 0;
  Status status;
  double prediction = 0.0;
  bool degraded = false;
  double latency_seconds = 0.0;
};

/// The online scoring path: stateless request/response layer over a
/// ModelRegistry and a shared ThreadPool.
///
/// Batched requests are grouped per vehicle so each group fetches its model
/// once, then the groups are scored concurrently on the pool (inline when
/// no pool is supplied or the pool is shut down). Responses come back in
/// request order regardless of scheduling.
///
/// Degradation: when the registry has no bundle for a vehicle and
/// `degrade_to_baseline` is set, the request is served by the Last-Value
/// baseline over the dataset's history (mirroring the fleet runner's
/// degrade-before-quarantine policy) and flagged `degraded`.
class PredictionService {
 public:
  struct Options {
    bool degrade_to_baseline = true;
    /// Clamp predictions to the physical range [0, 24] hours (matches the
    /// offline forecaster default).
    bool clamp_predictions = true;
  };

  /// `registry` must outlive the service; `pool` may be null (inline
  /// scoring).
  PredictionService(ModelRegistry* registry, ThreadPool* pool);
  PredictionService(ModelRegistry* registry, ThreadPool* pool,
                    Options options);

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Scores one request inline.
  PredictionResponse Predict(const PredictionRequest& request);

  /// Scores a batch: groups per vehicle, one pool task per group.
  std::vector<PredictionResponse> PredictBatch(
      std::span<const PredictionRequest> requests);

  ServingStatsSnapshot stats() const { return stats_.Snapshot(); }
  std::string LatencyHistogramToString() const {
    return stats_.HistogramToString();
  }

 private:
  /// Scores requests[i] for each i in `positions` (all the same vehicle),
  /// writing responses[i]. Fetches the model once per call.
  void ScoreGroup(std::span<const PredictionRequest> requests,
                  const std::vector<size_t>& positions,
                  std::vector<PredictionResponse>* responses);

  PredictionResponse ScoreOne(const VehicleForecaster* model,
                              const Status& model_status,
                              const PredictionRequest& request);

  ModelRegistry* registry_;
  ThreadPool* pool_;
  Options options_;
  ServingStats stats_;
};

}  // namespace vup::serve

#endif  // VUPRED_SERVE_PREDICTION_SERVICE_H_
