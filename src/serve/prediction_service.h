#ifndef VUPRED_SERVE_PREDICTION_SERVICE_H_
#define VUPRED_SERVE_PREDICTION_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "cluster/cluster_meta.h"
#include "common/clock.h"
#include "common/thread_pool.h"
#include "pipeline/dataset.h"
#include "serve/guarded_publish.h"
#include "serve/model_registry.h"
#include "serve/serving_stats.h"

namespace vup::serve {

/// Which level of the model hierarchy actually served a prediction.
enum class ServedLevel : int {
  kNone = 0,      // Nothing served (error response).
  kVehicle = 1,   // The vehicle's own model.
  kCluster = 2,   // Its cluster's pooled model.
  kType = 3,      // Its vehicle type's pooled model.
  kGlobal = 4,    // The fleet-wide pooled model.
  kBaseline = 5,  // Last-Value degradation.
};

std::string_view ServedLevelToString(ServedLevel level);

/// One scoring request: predict the utilization hours of `dataset` row
/// `target_index` (which may equal dataset->num_days() for the one-step-
/// ahead forecast) using the model registered for `vehicle_id`.
///
/// The dataset is the vehicle's recent feature window; it must outlive the
/// call and is not modified.
struct PredictionRequest {
  PredictionRequest() = default;
  PredictionRequest(int64_t vehicle_id_in, const VehicleDataset* dataset_in,
                    size_t target_index_in,
                    Deadline deadline_in = Deadline())
      : vehicle_id(vehicle_id_in),
        dataset(dataset_in),
        target_index(target_index_in),
        deadline(deadline_in) {}

  int64_t vehicle_id = 0;
  const VehicleDataset* dataset = nullptr;
  size_t target_index = 0;
  /// Scoring must start before this deadline; expired requests return
  /// DeadlineExceeded without fetching a model or occupying a pool
  /// worker. Defaults to no deadline.
  Deadline deadline;
  /// Vehicle type (as int) for hierarchy fallback of vehicles absent from
  /// clusters.meta (a brand-new connection the clustering has never
  /// seen). -1 = unknown: the type level is skipped for such vehicles.
  int vehicle_type_hint = -1;
};

/// Outcome of one request. `status` is OK when `prediction` is usable;
/// `degraded` marks predictions served by the Last-Value fallback because
/// the vehicle has no registered model. Shed requests carry Unavailable,
/// expired ones DeadlineExceeded.
struct PredictionResponse {
  int64_t vehicle_id = 0;
  Status status;
  double prediction = 0.0;
  bool degraded = false;
  double latency_seconds = 0.0;
  /// Hierarchy level that produced `prediction` (kVehicle when the
  /// vehicle's own model served; kNone on error responses).
  ServedLevel level = ServedLevel::kNone;
};

/// What to do with a batch that does not fit the admission queue.
enum class OverloadPolicy {
  kBlock = 0,       // Back-pressure: wait for in-flight work to drain.
  kShedNewest = 1,  // Reject the newest (latest-arriving) excess requests.
  kShedOldest = 2,  // Reject the oldest requests, prefer fresh work.
};

/// The online scoring path: stateless request/response layer over a
/// ModelRegistry and a shared ThreadPool.
///
/// Batched requests are grouped per vehicle so each group fetches its model
/// once, then the groups are scored concurrently on the pool (inline when
/// no pool is supplied or the pool is shut down). Responses come back in
/// request order regardless of scheduling.
///
/// Overload: with `admission_capacity` > 0 at most that many admitted
/// requests are queued-or-scoring at once. A batch that does not fit is
/// handled per `overload_policy`: kBlock applies back-pressure (admission
/// waits, group by group, for in-flight work to drain; a group larger than
/// the whole capacity waits for an empty queue, so it always makes
/// progress); the shed policies decide up front -- deterministically, in
/// request order -- which requests get the available slots and reject the
/// rest with Unavailable (counted in ServingStats::shed). The inline path
/// (no pool, or pool shut down) bypasses admission entirely: inline callers
/// provide their own back-pressure and nothing is ever dropped there.
///
/// Degradation: when the registry has no bundle for a vehicle and
/// `degrade_to_baseline` is set, the request is served by the Last-Value
/// baseline over the dataset's history (mirroring the fleet runner's
/// degrade-before-quarantine policy) and flagged `degraded`.
///
/// Hierarchy fallback: with `hierarchy` set, a vehicle whose own model is
/// missing (NotFound) *or* breaker-degraded (Unavailable) resolves down
/// the chain vehicle -> cluster -> type -> global before any baseline: the
/// vehicle's cluster comes from clusters.meta, its type from the meta row
/// (or the request's vehicle_type_hint for vehicles the clustering has
/// never seen), and each level's pooled bundle is fetched from the same
/// registry under its reserved model id. Every request served below the
/// vehicle level increments vupred_registry_fallback_total{level=...}.
/// Only when the whole chain is exhausted does the original per-vehicle
/// status apply (NotFound then degrades to Last-Value as before;
/// breaker-open stays Unavailable).
class PredictionService {
 public:
  struct Options {
    bool degrade_to_baseline = true;
    /// Clamp predictions to the physical range [0, 24] hours (matches the
    /// offline forecaster default).
    bool clamp_predictions = true;
    /// Maximum admitted (queued or scoring) requests; 0 = unbounded.
    size_t admission_capacity = 0;
    OverloadPolicy overload_policy = OverloadPolicy::kBlock;
    /// Time source for deadline checks; null means Clock::Real().
    const Clock* clock = nullptr;
    /// The published fleet clustering (hierarchy map + centroids). Null
    /// disables hierarchy fallback. Must outlive the service; swap it by
    /// constructing a new service (the meta is immutable once published).
    const cluster::ClustersMeta* hierarchy = nullptr;
    /// Canary rollout: when `canary.staged` is set, requests whose vehicle
    /// falls in the seeded hash-slice are *shadow-scored* against the
    /// staged registry after the live answer is produced. The live answer
    /// is always the one returned -- the canary only observes. Divergence,
    /// non-finite staged outputs and staged-only errors accumulate in
    /// canary_counts(); EvaluateCanary() turns them into the promotion
    /// verdict. The staged registry must outlive the service.
    CanaryOptions canary;
  };

  /// Requests served below the vehicle level, per level, since
  /// construction (the counters behind
  /// vupred_registry_fallback_total{level=...}).
  struct FallbackSnapshot {
    size_t cluster = 0;
    size_t type = 0;
    size_t global = 0;
    size_t baseline = 0;
  };

  /// `registry` must outlive the service; `pool` may be null (inline
  /// scoring).
  PredictionService(ModelRegistry* registry, ThreadPool* pool);
  PredictionService(ModelRegistry* registry, ThreadPool* pool,
                    Options options);

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Scores one request inline (deadline honored, admission bypassed).
  PredictionResponse Predict(const PredictionRequest& request);

  /// Scores a batch: admission control, then grouping per vehicle and one
  /// pool task per group.
  std::vector<PredictionResponse> PredictBatch(
      std::span<const PredictionRequest> requests);

  ServingStatsSnapshot stats() const { return stats_.Snapshot(); }
  FallbackSnapshot fallback_counts() const;

  /// Point-in-time copy of the canary shadow counters (all zero when no
  /// canary is configured).
  CanarySnapshot canary_counts() const;

  /// Guardrail verdict over the accumulated canary evidence.
  CanaryVerdict EvaluateCanary() const;
  std::string LatencyHistogramToString() const {
    return stats_.HistogramToString();
  }

  /// Appends the vupred_serve_* families and the labeled
  /// vupred_registry_fallback_total family to `out`.
  void CollectMetrics(obs::MetricsSnapshot* out,
                      const obs::LabelSet& labels = {}) const;

 private:
  /// Scores requests[i] for each i in `positions` (all the same vehicle),
  /// writing responses[i]. Requests whose deadline has expired fail fast;
  /// the model (own or hierarchy fallback) is resolved once and only if
  /// some request is still live.
  void ScoreGroup(std::span<const PredictionRequest> requests,
                  const std::vector<size_t>& positions,
                  std::vector<PredictionResponse>* responses);

  /// Resolves the model serving this group: the vehicle's own bundle, or
  /// -- when that is missing/breaker-open and a hierarchy is configured --
  /// the first available pooled bundle down the chain. On total failure
  /// returns the *vehicle-level* status (the chain adds options, not new
  /// error modes).
  struct ResolvedModel {
    std::shared_ptr<const VehicleForecaster> model;
    Status status;
    ServedLevel level = ServedLevel::kNone;
  };
  ResolvedModel ResolveModel(const PredictionRequest& request);

  /// The same resolution chain against an arbitrary registry -- the live
  /// one for serving, the staged one for canary shadow scoring.
  ResolvedModel ResolveModelFrom(ModelRegistry* registry,
                                 const PredictionRequest& request);

  /// Scores `request` against the staged registry and accumulates the
  /// divergence from `live_prediction`. Never touches the response.
  void ShadowScore(const PredictionRequest& request, double live_prediction);

  PredictionResponse ScoreOne(const VehicleForecaster* model,
                              const Status& model_status, ServedLevel level,
                              const PredictionRequest& request);

  const Clock& clock() const {
    return options_.clock != nullptr ? *options_.clock : Clock::Real();
  }

  /// Blocks until `count` more requests fit the admission queue (kBlock
  /// policy). Oversized groups are admitted as soon as the queue is empty.
  void AdmitBlocking(size_t count);

  /// Returns `count` admission slots and wakes blocked admitters.
  void ReleaseAdmission(size_t count);

  ModelRegistry* registry_;
  ThreadPool* pool_;
  Options options_;
  ServingStats stats_;

  /// Per-service fallback counters (obs instruments so CollectMetrics can
  /// export them labeled without double bookkeeping).
  struct FallbackCounters {
    obs::Counter cluster;
    obs::Counter type;
    obs::Counter global;
    obs::Counter baseline;
  };
  FallbackCounters fallback_;

  /// Canary shadow counters (only touched when options_.canary.enabled()).
  struct CanaryCounters {
    obs::Counter shadow_scores;
    obs::Counter divergence_breaches;
    obs::Counter nonfinite_outputs;
    obs::Counter shadow_errors;
  };
  CanaryCounters canary_;
  mutable std::mutex canary_mu_;  // Guards the divergence extrema below.
  double canary_max_abs_divergence_ = 0.0;
  double canary_sum_abs_divergence_ = 0.0;

  std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  size_t queued_ = 0;  // Admitted requests not yet finished.
};

}  // namespace vup::serve

#endif  // VUPRED_SERVE_PREDICTION_SERVICE_H_
