#include "serve/model_registry.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/string_util.h"

namespace vup::serve {

namespace fs = std::filesystem;

namespace {

constexpr const char* kBundleSuffix = ".fcst";
constexpr const char* kBundlePrefix = "vehicle_";

}  // namespace

std::string ModelRegistry::BundleFileName(int64_t vehicle_id) {
  return StrFormat("%s%lld%s", kBundlePrefix,
                   static_cast<long long>(vehicle_id), kBundleSuffix);
}

std::string ModelRegistry::BundlePath(int64_t vehicle_id) const {
  return options_.directory + "/" + BundleFileName(vehicle_id);
}

StatusOr<ModelRegistry> ModelRegistry::Open(Options options) {
  if (options.directory.empty()) {
    return Status::InvalidArgument("registry directory must not be empty");
  }
  std::error_code ec;
  fs::create_directories(options.directory, ec);
  if (ec) {
    return Status::Internal("cannot create registry directory '" +
                            options.directory + "': " + ec.message());
  }
  if (!fs::is_directory(options.directory, ec) || ec) {
    return Status::InvalidArgument("registry path is not a directory: " +
                                   options.directory);
  }
  return ModelRegistry(std::move(options));
}

Status ModelRegistry::Publish(int64_t vehicle_id,
                              const VehicleForecaster& forecaster) {
  const std::string path = BundlePath(vehicle_id);
  // Write to a temp name then rename, so a crashed publish never leaves a
  // half-written bundle under the serving name.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open bundle for writing: " + tmp);
    }
    VUP_RETURN_IF_ERROR(forecaster.Save(out));
    out.flush();
    if (!out) {
      return Status::DataLoss("bundle write failed: " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("cannot install bundle " + path + ": " +
                            ec.message());
  }
  // Drop any stale resident copy so the next Get sees the new bundle.
  std::lock_guard<std::mutex> lock(*mu_);
  auto it = index_.find(vehicle_id);
  if (it != index_.end()) {
    lru_.erase(it->second);
    index_.erase(it);
  }
  return Status::OK();
}

StatusOr<std::shared_ptr<const VehicleForecaster>>
ModelRegistry::LoadFromDisk(int64_t vehicle_id) const {
  const std::string path = BundlePath(vehicle_id);
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(
        StrFormat("no model bundle for vehicle %lld in %s",
                  static_cast<long long>(vehicle_id),
                  options_.directory.c_str()));
  }
  VUP_ASSIGN_OR_RETURN(VehicleForecaster forecaster,
                       VehicleForecaster::Load(in));
  return std::make_shared<const VehicleForecaster>(std::move(forecaster));
}

StatusOr<std::shared_ptr<const VehicleForecaster>> ModelRegistry::Get(
    int64_t vehicle_id) {
  std::lock_guard<std::mutex> lock(*mu_);
  auto it = index_.find(vehicle_id);
  if (it != index_.end()) {
    ++stats_.hits;
    // Move to the front (most recently used).
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }

  ++stats_.misses;
  StatusOr<std::shared_ptr<const VehicleForecaster>> loaded =
      LoadFromDisk(vehicle_id);
  if (!loaded.ok()) {
    if (!loaded.status().IsNotFound()) ++stats_.load_failures;
    return loaded.status();
  }
  std::shared_ptr<const VehicleForecaster> model =
      std::move(loaded).value();

  if (options_.cache_capacity > 0) {
    while (lru_.size() >= options_.cache_capacity) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      ++stats_.evictions;
    }
    lru_.emplace_front(vehicle_id, model);
    index_[vehicle_id] = lru_.begin();
  }
  return model;
}

bool ModelRegistry::Contains(int64_t vehicle_id) const {
  std::error_code ec;
  return fs::exists(BundlePath(vehicle_id), ec) && !ec;
}

std::vector<int64_t> ModelRegistry::ListVehicleIds() const {
  std::vector<int64_t> ids;
  std::error_code ec;
  fs::directory_iterator it(options_.directory, ec);
  if (ec) return ids;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(kBundlePrefix, 0) != 0) continue;
    const size_t suffix_at = name.size() - std::string(kBundleSuffix).size();
    if (name.size() <= std::string(kBundlePrefix).size() ||
        name.substr(suffix_at) != kBundleSuffix) {
      continue;
    }
    std::string_view digits(name);
    digits.remove_prefix(std::string(kBundlePrefix).size());
    digits.remove_suffix(std::string(kBundleSuffix).size());
    StatusOr<long long> id = ParseInt(digits);
    if (id.ok()) ids.push_back(id.value());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

size_t ModelRegistry::resident_models() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return lru_.size();
}

ModelRegistryStats ModelRegistry::stats() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return stats_;
}

}  // namespace vup::serve
