#include "serve/model_registry.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <istream>
#include <sstream>
#include <system_error>

#include "common/crc32.h"
#include "common/random.h"
#include "common/string_util.h"
#include "serve/guarded_publish.h"

namespace vup::serve {

namespace fs = std::filesystem;

namespace {

constexpr const char* kBundleSuffix = ".fcst";
constexpr const char* kBundlePrefix = "vehicle_";
constexpr const char* kCurrentFile = "CURRENT";
constexpr const char* kGenerationPrefix = "gen_";
constexpr const char* kMetaFile = "registry_meta.txt";
constexpr const char* kMetaMagic = "vupred-registry v1";
// Sanity caps for the hand-editable meta file: a fleet size or token far
// beyond these is garbage, not configuration.
constexpr long long kMaxMetaVehicles = 100'000'000;
constexpr size_t kMaxMetaTokenLength = 128;
constexpr size_t kMaxMetaLines = 64;
constexpr size_t kMaxMetaBytes = 64 * 1024;

/// Atomic small-file write: temp name, then rename over the target.
Status WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open for writing: " + tmp);
    }
    out << content;
    out.flush();
    if (!out) return Status::DataLoss("write failed: " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("cannot install " + path + ": " + ec.message());
  }
  return Status::OK();
}

/// Vehicle ids with a bundle file directly under `dir`, ascending.
std::vector<int64_t> ListBundleIds(const std::string& dir) {
  std::vector<int64_t> ids;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return ids;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    std::optional<int64_t> id =
        ModelRegistry::ParseBundleFileName(entry.path().filename().string());
    if (id.has_value()) ids.push_back(*id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Parses "gen_NNNNNN" into its number; error on anything else.
StatusOr<uint64_t> ParseGenerationName(std::string_view name) {
  if (!StartsWith(name, kGenerationPrefix)) {
    return Status::InvalidArgument("not a generation name: " +
                                   std::string(name));
  }
  std::string_view digits = name.substr(std::string(kGenerationPrefix).size());
  if (digits.empty() || digits.size() > 18) {
    return Status::InvalidArgument("bad generation name: " +
                                   std::string(name));
  }
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad generation name: " +
                                     std::string(name));
    }
  }
  VUP_ASSIGN_OR_RETURN(long long number, ParseInt(digits));
  if (number <= 0) {
    return Status::InvalidArgument("generation number must be positive");
  }
  return static_cast<uint64_t>(number);
}

/// Largest generation number present under `root` (committed or staging),
/// 0 when none.
uint64_t MaxGenerationNumber(const std::string& root) {
  uint64_t max_number = 0;
  std::error_code ec;
  fs::directory_iterator it(root, ec);
  if (ec) return 0;
  for (const fs::directory_entry& entry : it) {
    std::string name = entry.path().filename().string();
    // Strip a ".staging" suffix so abandoned stagings still reserve their
    // number.
    const std::string staging_suffix = ".staging";
    if (name.size() > staging_suffix.size() &&
        name.substr(name.size() - staging_suffix.size()) == staging_suffix) {
      name = name.substr(0, name.size() - staging_suffix.size());
    }
    StatusOr<uint64_t> number = ParseGenerationName(name);
    if (number.ok()) max_number = std::max(max_number, number.value());
  }
  return max_number;
}

}  // namespace

// ---- RegistryMeta ------------------------------------------------------

StatusOr<RegistryMeta> RegistryMeta::Parse(std::istream& in) {
  // Slurp and demand a trailing newline: a writer killed mid-line must
  // yield a parse error, not a shorter-but-plausible value (e.g.
  // "algorithm La" from a truncated "algorithm Lasso\n").
  std::string content;
  {
    char buf[4096];
    while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
      content.append(buf, static_cast<size_t>(in.gcount()));
      if (content.size() > kMaxMetaBytes) {
        return Status::InvalidArgument("meta file is implausibly large");
      }
    }
  }
  if (content.empty() || content.back() != '\n') {
    return Status::InvalidArgument(
        "meta file is not newline-terminated (truncated?)");
  }
  std::istringstream stream(content);
  std::string line;
  if (!std::getline(stream, line) || Trim(line) != kMetaMagic) {
    return Status::InvalidArgument(
        std::string("not a ") + kMetaMagic + " meta file");
  }
  RegistryMeta meta;
  bool saw_seed = false, saw_vehicles = false, saw_algorithm = false;
  size_t lines = 0;
  while (std::getline(stream, line)) {
    if (++lines > kMaxMetaLines) {
      return Status::InvalidArgument("meta file has too many lines");
    }
    std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;
    std::vector<std::string> tokens = Split(trimmed, ' ');
    if (tokens.size() != 2) {
      return Status::InvalidArgument("malformed meta line: " + trimmed);
    }
    if (tokens[0].size() > kMaxMetaTokenLength ||
        tokens[1].size() > kMaxMetaTokenLength) {
      return Status::InvalidArgument("over-long meta token");
    }
    if (tokens[0] == "fleet_seed") {
      if (saw_seed) return Status::InvalidArgument("duplicate fleet_seed");
      VUP_ASSIGN_OR_RETURN(long long v, ParseInt(tokens[1]));
      meta.fleet_seed = static_cast<uint64_t>(v);
      saw_seed = true;
    } else if (tokens[0] == "fleet_vehicles") {
      if (saw_vehicles) {
        return Status::InvalidArgument("duplicate fleet_vehicles");
      }
      VUP_ASSIGN_OR_RETURN(long long v, ParseInt(tokens[1]));
      if (v <= 0 || v > kMaxMetaVehicles) {
        return Status::InvalidArgument("fleet_vehicles out of range: " +
                                       tokens[1]);
      }
      meta.fleet_vehicles = static_cast<size_t>(v);
      saw_vehicles = true;
    } else if (tokens[0] == "algorithm") {
      if (saw_algorithm) return Status::InvalidArgument("duplicate algorithm");
      for (char c : tokens[1]) {
        const bool word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!word) {
          return Status::InvalidArgument("algorithm is not a word: " +
                                         tokens[1]);
        }
      }
      meta.algorithm = tokens[1];
      saw_algorithm = true;
    } else {
      return Status::InvalidArgument("unknown meta key: " + tokens[0]);
    }
  }
  if (!saw_seed || !saw_vehicles || !saw_algorithm) {
    return Status::InvalidArgument(
        "meta file is missing a required key (truncated?)");
  }
  return meta;
}

std::string RegistryMeta::Serialize() const {
  std::ostringstream os;
  os << kMetaMagic << "\n";
  os << "fleet_seed " << fleet_seed << "\n";
  os << "fleet_vehicles " << fleet_vehicles << "\n";
  os << "algorithm " << algorithm << "\n";
  return os.str();
}

Status WriteRegistryMetaFile(const std::string& directory,
                             const RegistryMeta& meta) {
  return WriteFileAtomic(directory + "/" + kMetaFile, meta.Serialize());
}

StatusOr<RegistryMeta> ReadRegistryMetaFile(const std::string& directory) {
  std::ifstream in(directory + "/" + kMetaFile);
  if (!in) {
    return Status::NotFound("no " + std::string(kMetaFile) + " in " +
                            directory + " (did `vupred publish` run?)");
  }
  return RegistryMeta::Parse(in);
}

std::string_view BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

// ---- ModelRegistry -----------------------------------------------------

std::string ModelRegistry::BundleFileName(int64_t vehicle_id) {
  return StrFormat("%s%lld%s", kBundlePrefix,
                   static_cast<long long>(vehicle_id), kBundleSuffix);
}

std::optional<int64_t> ModelRegistry::ParseBundleFileName(
    std::string_view name) {
  const size_t prefix_len = std::string_view(kBundlePrefix).size();
  const size_t suffix_len = std::string_view(kBundleSuffix).size();
  if (name.size() <= prefix_len + suffix_len) return std::nullopt;
  if (!StartsWith(name, kBundlePrefix) || !EndsWith(name, kBundleSuffix)) {
    return std::nullopt;
  }
  std::string_view digits = name;
  digits.remove_prefix(prefix_len);
  digits.remove_suffix(suffix_len);
  StatusOr<long long> id = ParseInt(digits);
  if (!id.ok()) return std::nullopt;
  return static_cast<int64_t>(id.value());
}

std::string ModelRegistry::GenerationDirName(uint64_t number) {
  return StrFormat("%s%06llu", kGenerationPrefix,
                   static_cast<unsigned long long>(number));
}

std::string ModelRegistry::BundlePath(int64_t vehicle_id) const {
  std::lock_guard<std::mutex> lock(*mu_);
  return active_.dir + "/" + BundleFileName(vehicle_id);
}

StatusOr<ModelRegistry::ActiveGeneration> ModelRegistry::ResolveActive(
    const std::string& root) {
  const std::string current_path = root + "/" + kCurrentFile;
  std::error_code ec;
  if (!fs::exists(current_path, ec) || ec) {
    // Legacy flat layout: the root itself is the (only) generation. A
    // manifest is still honored when present -- opening a finalized
    // gen_NNNNNN directory directly (the canary drill does) lands here.
    ActiveGeneration flat{root, 0, std::nullopt};
    StatusOr<GenerationManifest> manifest = ReadManifestFile(root);
    if (manifest.ok()) {
      flat.manifest = std::move(manifest).value();
    } else if (!manifest.status().IsNotFound()) {
      return Status::DataLoss("registry manifest is damaged: " +
                              manifest.status().ToString());
    }
    return flat;
  }
  std::ifstream in(current_path);
  std::string name;
  if (!in || !std::getline(in, name)) {
    return Status::DataLoss("cannot read " + current_path);
  }
  name = std::string(Trim(name));
  VUP_ASSIGN_OR_RETURN(uint64_t number, ParseGenerationName(name));
  const std::string dir = root + "/" + name;
  if (!fs::is_directory(dir, ec) || ec) {
    return Status::DataLoss("CURRENT points at missing generation: " + name);
  }
  // The meta is written right before the generation is committed; an
  // unparseable meta means the generation is torn or incomplete.
  StatusOr<RegistryMeta> meta = ReadRegistryMetaFile(dir);
  if (!meta.ok()) {
    return Status::DataLoss("generation " + name + " is incomplete: " +
                            meta.status().ToString());
  }
  ActiveGeneration active{dir, number, std::nullopt};
  // A guarded publish always writes a MANIFEST; its absence means a legacy
  // generation, served unverified. A *damaged* manifest means the
  // generation is torn -- refuse it whole rather than trusting any part.
  StatusOr<GenerationManifest> manifest = ReadManifestFile(dir);
  if (manifest.ok()) {
    active.manifest = std::move(manifest).value();
  } else if (!manifest.status().IsNotFound()) {
    return Status::DataLoss("generation " + name +
                            " has a damaged manifest: " +
                            manifest.status().ToString());
  }
  return active;
}

StatusOr<ModelRegistry> ModelRegistry::Open(Options options) {
  if (options.directory.empty()) {
    return Status::InvalidArgument("registry directory must not be empty");
  }
  if (options.breaker.failure_threshold < 1) {
    return Status::InvalidArgument("breaker failure_threshold must be >= 1");
  }
  std::error_code ec;
  fs::create_directories(options.directory, ec);
  if (ec) {
    return Status::Internal("cannot create registry directory '" +
                            options.directory + "': " + ec.message());
  }
  if (!fs::is_directory(options.directory, ec) || ec) {
    return Status::InvalidArgument("registry path is not a directory: " +
                                   options.directory);
  }
  VUP_ASSIGN_OR_RETURN(ActiveGeneration active,
                       ResolveActive(options.directory));
  return ModelRegistry(std::move(options), std::move(active));
}

Status ModelRegistry::Reload() {
  VUP_ASSIGN_OR_RETURN(ActiveGeneration resolved,
                       ResolveActive(options_.directory));
  std::lock_guard<std::mutex> lock(*mu_);
  if (resolved.dir == active_.dir) return Status::OK();
  // Swap the active generation: resident models, breaker states and
  // quarantine verdicts belong to the outgoing fleet. In-flight shared_ptr
  // models stay valid until their holders drop them.
  if (resolved.number > active_.number) {
    counters_->promotes_observed.Increment();
  } else if (resolved.number < active_.number) {
    counters_->rollbacks_observed.Increment();
  }
  active_ = std::move(resolved);
  lru_.clear();
  index_.clear();
  breakers_.clear();
  quarantined_.clear();
  counters_->reloads.Increment();
  return Status::OK();
}

StatusOr<GenerationPublisher> ModelRegistry::NewGeneration() {
  const uint64_t number = MaxGenerationNumber(options_.directory) + 1;
  const std::string staging =
      options_.directory + "/" + GenerationDirName(number) + ".staging";
  std::error_code ec;
  fs::remove_all(staging, ec);  // A stale staging of the same number.
  fs::create_directories(staging, ec);
  if (ec) {
    return Status::Internal("cannot create staging directory " + staging +
                            ": " + ec.message());
  }
  return GenerationPublisher(options_.directory, number, staging);
}

Status ModelRegistry::PruneGenerations(size_t keep) {
  std::string active_dir;
  {
    std::lock_guard<std::mutex> lock(*mu_);
    active_dir = active_.dir;
  }
  // The rollback journal pins generations: deleting the one `previous`
  // names would leave Rollback() pointing into the void, and deleting
  // `promoted` would orphan the journal's sanity check. Both are retained
  // regardless of age or `keep` -- and they consume the keep budget, so
  // `keep` stays an upper bound on retained non-active generations
  // whenever the pinned ones fit in it.
  std::string pinned_promoted, pinned_previous;
  if (StatusOr<RollbackJournal> journal =
          ReadRollbackJournal(options_.directory);
      journal.ok()) {
    pinned_promoted = journal.value().promoted;
    pinned_previous = journal.value().previous;
  }
  std::vector<std::pair<uint64_t, std::string>> generations;
  std::error_code ec;
  fs::directory_iterator it(options_.directory, ec);
  if (ec) {
    return Status::Internal("cannot list " + options_.directory + ": " +
                            ec.message());
  }
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_directory(ec) || ec) continue;
    const std::string name = entry.path().filename().string();
    StatusOr<uint64_t> number = ParseGenerationName(name);
    if (!number.ok()) continue;
    const std::string dir = entry.path().string();
    if (dir == active_dir) continue;
    generations.emplace_back(number.value(), dir);
  }
  // Newest first: retain pinned generations plus the newest unpinned ones
  // until the keep budget runs out, delete the rest.
  std::sort(generations.rbegin(), generations.rend());
  size_t kept = 0;
  for (const auto& [number, dir] : generations) {
    const std::string name = fs::path(dir).filename().string();
    const bool pinned = name == pinned_promoted || name == pinned_previous;
    if (pinned || kept < keep) {
      ++kept;
      continue;
    }
    fs::remove_all(dir, ec);
    if (ec) {
      return Status::Internal("cannot prune " + dir + ": " + ec.message());
    }
  }
  return Status::OK();
}

Status ModelRegistry::Publish(int64_t vehicle_id,
                              const VehicleForecaster& forecaster) {
  const std::string path = BundlePath(vehicle_id);
  // Write to a temp name then rename, so a crashed publish never leaves a
  // half-written bundle under the serving name.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open bundle for writing: " + tmp);
    }
    VUP_RETURN_IF_ERROR(forecaster.Save(out));
    out.flush();
    if (!out) {
      return Status::DataLoss("bundle write failed: " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("cannot install bundle " + path + ": " +
                            ec.message());
  }
  // Drop any stale resident copy so the next Get sees the new bundle, and
  // give the fresh bundle a fresh breaker and a clean quarantine record.
  std::lock_guard<std::mutex> lock(*mu_);
  auto it = index_.find(vehicle_id);
  if (it != index_.end()) {
    lru_.erase(it->second);
    index_.erase(it);
  }
  breakers_.erase(vehicle_id);
  quarantined_.erase(vehicle_id);
  if (active_.manifest.has_value()) {
    // Keep the generation manifest truthful: re-checksum the installed
    // bundle and swap its entry, or the next verified load (and every
    // scrub) would quarantine the bundle we just published.
    std::ifstream installed(path, std::ios::binary);
    if (!installed) {
      return Status::Internal("cannot re-read published bundle: " + path);
    }
    std::string bytes((std::istreambuf_iterator<char>(installed)),
                      std::istreambuf_iterator<char>());
    if (installed.bad()) {
      return Status::DataLoss("re-read failed: " + path);
    }
    const std::string file = BundleFileName(vehicle_id);
    GenerationManifest updated;
    for (const ManifestEntry& entry : active_.manifest->entries()) {
      if (entry.file == file) continue;
      VUP_RETURN_IF_ERROR(updated.Add(entry.file, entry.size, entry.crc32));
    }
    VUP_RETURN_IF_ERROR(
        updated.Add(file, bytes.size(), Crc32(bytes.data(), bytes.size())));
    VUP_RETURN_IF_ERROR(WriteManifestFile(active_.dir, updated));
    active_.manifest = std::move(updated);
  }
  return Status::OK();
}

StatusOr<std::shared_ptr<const VehicleForecaster>>
ModelRegistry::LoadVerifiedLocked(int64_t vehicle_id) {
  const std::string file = BundleFileName(vehicle_id);
  const std::string path = active_.dir + "/" + file;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(
        StrFormat("no model bundle for vehicle %lld in %s",
                  static_cast<long long>(vehicle_id), active_.dir.c_str()));
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::DataLoss("bundle read failed: " + path);
  if (active_.manifest.has_value()) {
    // Verify BEFORE the deserializer ever sees the bytes: a corrupt bundle
    // must never be scored, and a flipped bit that still deserializes into
    // plausible coefficients is exactly the failure CRCs exist to catch.
    // Files the manifest does not list load unverified (single-bundle
    // Publish into a legacy generation keeps working).
    if (const ManifestEntry* entry = active_.manifest->Find(file)) {
      Status verified = GenerationManifest::VerifyBytes(*entry, bytes);
      if (!verified.ok()) {
        quarantined_.insert(vehicle_id);
        counters_->quarantines.Increment();
        return Status::NotFound(StrFormat(
            "model of vehicle %lld quarantined: %s",
            static_cast<long long>(vehicle_id),
            verified.message().c_str()));
      }
    }
  }
  std::istringstream verified_stream(bytes);
  VUP_ASSIGN_OR_RETURN(VehicleForecaster forecaster,
                       VehicleForecaster::Load(verified_stream));
  return std::make_shared<const VehicleForecaster>(std::move(forecaster));
}

int64_t ModelRegistry::BreakerBackoffMs(int64_t vehicle_id,
                                        int open_count) const {
  const BreakerOptions& breaker = options_.breaker;
  // Reuse the retry schedule: open period k follows the same
  // min(initial * multiplier^(k-1), max) curve a retrying client would.
  const RetryPolicy policy(breaker.backoff);
  const int64_t base = policy.BackoffMs(open_count);
  if (base <= 0 || breaker.jitter_fraction <= 0) return base;
  // Deterministic jitter: same (seed, vehicle, open count) -> same period,
  // regardless of thread interleaving, so seeded runs reproduce exactly.
  Rng rng(SplitMix64(breaker.jitter_seed ^
                     SplitMix64(static_cast<uint64_t>(vehicle_id))) +
          static_cast<uint64_t>(open_count));
  const double fraction = std::clamp(breaker.jitter_fraction, 0.0, 1.0);
  const double factor = 1.0 + fraction * (2.0 * rng.Uniform() - 1.0);
  return std::max<int64_t>(1, static_cast<int64_t>(
                                  static_cast<double>(base) * factor));
}

void ModelRegistry::RecordLoadFailureLocked(int64_t vehicle_id) {
  counters_->load_failures.Increment();
  Breaker& breaker = breakers_[vehicle_id];
  ++breaker.consecutive_failures;
  const bool reopen = breaker.state == BreakerState::kHalfOpen;
  if (!reopen &&
      breaker.consecutive_failures < options_.breaker.failure_threshold) {
    return;
  }
  // Trip (or re-trip after a failed half-open probe): fail fast until the
  // jittered backoff elapses.
  breaker.state = BreakerState::kOpen;
  ++breaker.open_count;
  counters_->breaker_opens.Increment();
  breaker.open_until =
      clock().Now() + std::chrono::milliseconds(
                          BreakerBackoffMs(vehicle_id, breaker.open_count));
}

StatusOr<std::shared_ptr<const VehicleForecaster>> ModelRegistry::Get(
    int64_t vehicle_id) {
  std::lock_guard<std::mutex> lock(*mu_);
  auto it = index_.find(vehicle_id);
  if (it != index_.end()) {
    counters_->hits.Increment();
    // Move to the front (most recently used).
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }

  if (quarantined_.count(vehicle_id) != 0) {
    // Quarantine is sticky until the generation swaps or the bundle is
    // republished -- no disk IO, no breaker involvement, and NotFound so
    // the caller degrades through the same fallback chain as a missing
    // bundle.
    counters_->quarantine_blocks.Increment();
    return Status::NotFound(
        StrFormat("model of vehicle %lld is quarantined (manifest "
                  "verification failed)",
                  static_cast<long long>(vehicle_id)));
  }

  auto breaker_it = breakers_.find(vehicle_id);
  if (breaker_it != breakers_.end() &&
      breaker_it->second.state == BreakerState::kOpen) {
    Breaker& breaker = breaker_it->second;
    if (clock().Now() < breaker.open_until) {
      counters_->breaker_short_circuits.Increment();
      return Status::Unavailable(StrFormat(
          "circuit breaker open for vehicle %lld (retry in %lld ms)",
          static_cast<long long>(vehicle_id),
          static_cast<long long>(
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  breaker.open_until - clock().Now())
                  .count())));
    }
    // Backoff elapsed: half-open, admit this Get as the single probe (the
    // registry mutex serializes probes).
    breaker.state = BreakerState::kHalfOpen;
  }

  counters_->misses.Increment();
  StatusOr<std::shared_ptr<const VehicleForecaster>> loaded =
      LoadVerifiedLocked(vehicle_id);
  if (!loaded.ok()) {
    // A missing bundle is the degradation path, not a fault; only real
    // load failures (corrupt bundle, IO error) count against the breaker.
    // A fresh quarantine surfaces as NotFound for the same reason.
    if (!loaded.status().IsNotFound()) RecordLoadFailureLocked(vehicle_id);
    if (quarantined_.count(vehicle_id) != 0) {
      counters_->quarantine_blocks.Increment();
    }
    return loaded.status();
  }
  if (breaker_it != breakers_.end()) {
    // Successful load (including a half-open probe): close the breaker.
    breakers_.erase(vehicle_id);
  }
  std::shared_ptr<const VehicleForecaster> model = std::move(loaded).value();

  if (options_.cache_capacity > 0) {
    while (lru_.size() >= options_.cache_capacity) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      counters_->evictions.Increment();
    }
    lru_.emplace_front(vehicle_id, model);
    index_[vehicle_id] = lru_.begin();
  }
  return model;
}

void ModelRegistry::Quarantine(int64_t vehicle_id) {
  std::lock_guard<std::mutex> lock(*mu_);
  if (!quarantined_.insert(vehicle_id).second) return;
  counters_->quarantines.Increment();
  // A resident copy was deserialized from bytes that verified at load
  // time; the scrubber has since seen different bytes on disk, so the
  // cached model's provenance is gone -- drop it.
  auto it = index_.find(vehicle_id);
  if (it != index_.end()) {
    lru_.erase(it->second);
    index_.erase(it);
  }
}

bool ModelRegistry::IsQuarantined(int64_t vehicle_id) const {
  std::lock_guard<std::mutex> lock(*mu_);
  return quarantined_.count(vehicle_id) != 0;
}

Status ModelRegistry::Rollback() {
  VUP_RETURN_IF_ERROR(RollbackGeneration(options_.directory).status());
  return Reload();
}

StatusOr<RegistryMeta> ModelRegistry::ReadMeta() const {
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(*mu_);
    dir = active_.dir;
  }
  return ReadRegistryMetaFile(dir);
}

bool ModelRegistry::Contains(int64_t vehicle_id) const {
  std::error_code ec;
  return fs::exists(BundlePath(vehicle_id), ec) && !ec;
}

std::vector<int64_t> ModelRegistry::ListVehicleIds() const {
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(*mu_);
    dir = active_.dir;
  }
  return ListBundleIds(dir);
}

size_t ModelRegistry::resident_models() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return lru_.size();
}

BreakerState ModelRegistry::breaker_state(int64_t vehicle_id) const {
  std::lock_guard<std::mutex> lock(*mu_);
  auto it = breakers_.find(vehicle_id);
  return it == breakers_.end() ? BreakerState::kClosed : it->second.state;
}

size_t ModelRegistry::OpenBreakersLocked() const {
  size_t open = 0;
  for (const auto& [vehicle_id, breaker] : breakers_) {
    if (breaker.state != BreakerState::kClosed) ++open;
  }
  return open;
}

ModelRegistryStats ModelRegistry::StatsLocked() const {
  ModelRegistryStats stats;
  stats.hits = static_cast<size_t>(counters_->hits.value());
  stats.misses = static_cast<size_t>(counters_->misses.value());
  stats.evictions = static_cast<size_t>(counters_->evictions.value());
  stats.load_failures =
      static_cast<size_t>(counters_->load_failures.value());
  stats.breaker_opens =
      static_cast<size_t>(counters_->breaker_opens.value());
  stats.breaker_short_circuits =
      static_cast<size_t>(counters_->breaker_short_circuits.value());
  // Derived from live state, so a generation swap that clears breakers_
  // can never leave a stale open-vehicle count behind.
  stats.breaker_open_vehicles = OpenBreakersLocked();
  stats.reloads = static_cast<size_t>(counters_->reloads.value());
  stats.generation = active_.number;
  stats.quarantines = static_cast<size_t>(counters_->quarantines.value());
  stats.quarantine_blocks =
      static_cast<size_t>(counters_->quarantine_blocks.value());
  stats.quarantined_models = quarantined_.size();
  stats.promotes_observed =
      static_cast<size_t>(counters_->promotes_observed.value());
  stats.rollbacks_observed =
      static_cast<size_t>(counters_->rollbacks_observed.value());
  return stats;
}

ModelRegistryStats ModelRegistry::stats() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return StatsLocked();
}

void ModelRegistry::CollectMetrics(obs::MetricsSnapshot* out,
                                   const obs::LabelSet& labels) const {
  ModelRegistryStats stats;
  size_t resident;
  {
    std::lock_guard<std::mutex> lock(*mu_);
    stats = StatsLocked();
    resident = lru_.size();
  }
  auto add = [&](const char* name, const char* help, obs::MetricType type,
                 double value) {
    obs::MetricFamily family;
    family.name = name;
    family.help = help;
    family.type = type;
    obs::MetricSample sample;
    sample.labels = labels;
    sample.value = value;
    family.samples.push_back(std::move(sample));
    out->families.push_back(std::move(family));
  };
  using obs::MetricType;
  add("vupred_registry_hits_total", "Gets served from the resident cache.",
      MetricType::kCounter, static_cast<double>(stats.hits));
  add("vupred_registry_misses_total",
      "Gets that loaded the bundle from disk.", MetricType::kCounter,
      static_cast<double>(stats.misses));
  add("vupred_registry_evictions_total",
      "Resident models displaced by the LRU policy.", MetricType::kCounter,
      static_cast<double>(stats.evictions));
  add("vupred_registry_load_failures_total",
      "Disk loads that returned an error.", MetricType::kCounter,
      static_cast<double>(stats.load_failures));
  add("vupred_registry_breaker_opens_total",
      "Circuit breaker closed/half-open to open transitions.",
      MetricType::kCounter, static_cast<double>(stats.breaker_opens));
  add("vupred_registry_breaker_short_circuits_total",
      "Gets rejected while a breaker was open.", MetricType::kCounter,
      static_cast<double>(stats.breaker_short_circuits));
  add("vupred_registry_reloads_total",
      "Generation swaps performed by Reload().", MetricType::kCounter,
      static_cast<double>(stats.reloads));
  add("vupred_registry_quarantines_total",
      "Models quarantined after failing manifest verification.",
      MetricType::kCounter, static_cast<double>(stats.quarantines));
  add("vupred_registry_quarantine_blocks_total",
      "Gets answered NotFound because the model is quarantined.",
      MetricType::kCounter, static_cast<double>(stats.quarantine_blocks));
  add("vupred_publish_promotes_total",
      "Reloads that advanced to a newer generation.", MetricType::kCounter,
      static_cast<double>(stats.promotes_observed));
  add("vupred_publish_rollbacks_total",
      "Reloads that reverted to an older generation.", MetricType::kCounter,
      static_cast<double>(stats.rollbacks_observed));
  add("vupred_registry_breaker_open_vehicles",
      "Breakers currently open or half-open.", MetricType::kGauge,
      static_cast<double>(stats.breaker_open_vehicles));
  add("vupred_registry_resident_models",
      "Models resident in the LRU cache.", MetricType::kGauge,
      static_cast<double>(resident));
  add("vupred_registry_quarantined_models",
      "Models currently quarantined.", MetricType::kGauge,
      static_cast<double>(stats.quarantined_models));
  add("vupred_registry_generation", "Active generation number.",
      MetricType::kGauge, static_cast<double>(stats.generation));
}

uint64_t ModelRegistry::active_generation() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return active_.number;
}

// ---- GenerationPublisher -----------------------------------------------

GenerationPublisher::GenerationPublisher(GenerationPublisher&& other) noexcept
    : root_(std::move(other.root_)),
      number_(other.number_),
      staging_dir_(std::move(other.staging_dir_)),
      finalized_(other.finalized_),
      committed_(other.committed_) {
  other.moved_from_ = true;
}

GenerationPublisher& GenerationPublisher::operator=(
    GenerationPublisher&& other) noexcept {
  if (this != &other) {
    root_ = std::move(other.root_);
    number_ = other.number_;
    staging_dir_ = std::move(other.staging_dir_);
    finalized_ = other.finalized_;
    committed_ = other.committed_;
    moved_from_ = false;
    other.moved_from_ = true;
  }
  return *this;
}

GenerationPublisher::~GenerationPublisher() {
  if (moved_from_ || finalized_) return;
  // Abandoned without Finalize: the staging directory was never visible to
  // readers, remove it. A finalized-but-unpromoted generation stays on
  // disk deliberately -- the publish gate may have failed it, and the
  // evidence (plus the prune policy) is worth more than the space.
  std::error_code ec;
  fs::remove_all(staging_dir_, ec);
}

Status GenerationPublisher::Add(int64_t vehicle_id,
                                const VehicleForecaster& forecaster) {
  if (finalized_) {
    return Status::FailedPrecondition(
        "generation already finalized (its manifest is sealed)");
  }
  const std::string path =
      staging_dir_ + "/" + ModelRegistry::BundleFileName(vehicle_id);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open bundle for writing: " + path);
  }
  VUP_RETURN_IF_ERROR(forecaster.Save(out));
  out.flush();
  if (!out) return Status::DataLoss("bundle write failed: " + path);
  return Status::OK();
}

Status GenerationPublisher::Finalize(const RegistryMeta& meta) {
  if (finalized_) {
    return Status::FailedPrecondition("generation already finalized");
  }
  // Order matters for crash-consistency: (1) meta completes the staging
  // directory, (2) the MANIFEST checksums every staged file -- including
  // the meta -- so any later bit-rot is detectable, (3) the directory
  // rename makes the complete generation appear under its final name. A
  // crash between any two steps leaves at worst an ignored staging
  // directory; CURRENT never moves here.
  VUP_RETURN_IF_ERROR(WriteRegistryMetaFile(staging_dir_, meta));
  VUP_ASSIGN_OR_RETURN(GenerationManifest manifest,
                       GenerationManifest::BuildFromDirectory(staging_dir_));
  VUP_RETURN_IF_ERROR(WriteManifestFile(staging_dir_, manifest));
  std::string final_dir =
      root_ + "/" + ModelRegistry::GenerationDirName(number_);
  std::error_code ec;
  // A concurrent publisher may have claimed our number; slide forward.
  for (int attempt = 0; fs::exists(final_dir, ec) && attempt < 1024;
       ++attempt) {
    ++number_;
    final_dir = root_ + "/" + ModelRegistry::GenerationDirName(number_);
  }
  fs::rename(staging_dir_, final_dir, ec);
  if (ec) {
    return Status::Internal("cannot finalize generation " + final_dir +
                            ": " + ec.message());
  }
  staging_dir_ = final_dir;
  finalized_ = true;
  return Status::OK();
}

Status GenerationPublisher::Promote() {
  if (!finalized_) {
    return Status::FailedPrecondition("generation is not finalized");
  }
  if (committed_) {
    return Status::FailedPrecondition("generation already committed");
  }
  // Journaled CURRENT flip: the rollback journal lands first, so the
  // promotion can be undone (and a crash between journal and flip is
  // harmless -- see PromoteGeneration).
  VUP_RETURN_IF_ERROR(
      PromoteGeneration(root_, ModelRegistry::GenerationDirName(number_)));
  committed_ = true;
  return Status::OK();
}

Status GenerationPublisher::Commit(const RegistryMeta& meta) {
  VUP_RETURN_IF_ERROR(Finalize(meta));
  return Promote();
}

}  // namespace vup::serve
