#include "serve/model_registry.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <istream>
#include <optional>
#include <sstream>
#include <system_error>

#include "common/crc32.h"
#include "common/imemstream.h"
#include "common/mmap_file.h"
#include "common/random.h"
#include "common/string_util.h"
#include "serve/guarded_publish.h"

namespace vup::serve {

namespace fs = std::filesystem;

namespace {

constexpr const char* kBundleSuffix = ".fcst";
constexpr const char* kCompactSuffix = ".cfcst";
constexpr const char* kBundlePrefix = "vehicle_";
/// Cap checked BEFORE any read buffer is sized (the manifest path's
/// discipline): a text bundle beyond this is damage, not a model.
constexpr uintmax_t kMaxBundleBytes = 64ull << 20;
constexpr const char* kCurrentFile = "CURRENT";
constexpr const char* kGenerationPrefix = "gen_";
constexpr const char* kMetaFile = "registry_meta.txt";
constexpr const char* kMetaMagic = "vupred-registry v1";
// Sanity caps for the hand-editable meta file: a fleet size or token far
// beyond these is garbage, not configuration.
constexpr long long kMaxMetaVehicles = 100'000'000;
constexpr size_t kMaxMetaTokenLength = 128;
constexpr size_t kMaxMetaLines = 64;
constexpr size_t kMaxMetaBytes = 64 * 1024;

/// Atomic small-file write: temp name, then rename over the target.
Status WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open for writing: " + tmp);
    }
    out << content;
    out.flush();
    if (!out) return Status::DataLoss("write failed: " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("cannot install " + path + ": " + ec.message());
  }
  return Status::OK();
}

/// Vehicle ids with a bundle file directly under `dir`, ascending.
std::vector<int64_t> ListBundleIds(const std::string& dir) {
  std::vector<int64_t> ids;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return ids;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    std::optional<int64_t> id =
        ModelRegistry::ParseBundleFileName(entry.path().filename().string());
    if (id.has_value()) ids.push_back(*id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Parses "gen_NNNNNN" into its number; error on anything else.
StatusOr<uint64_t> ParseGenerationName(std::string_view name) {
  if (!StartsWith(name, kGenerationPrefix)) {
    return Status::InvalidArgument("not a generation name: " +
                                   std::string(name));
  }
  std::string_view digits = name.substr(std::string(kGenerationPrefix).size());
  if (digits.empty() || digits.size() > 18) {
    return Status::InvalidArgument("bad generation name: " +
                                   std::string(name));
  }
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad generation name: " +
                                     std::string(name));
    }
  }
  VUP_ASSIGN_OR_RETURN(long long number, ParseInt(digits));
  if (number <= 0) {
    return Status::InvalidArgument("generation number must be positive");
  }
  return static_cast<uint64_t>(number);
}

/// Largest generation number present under `root` (committed or staging),
/// 0 when none.
uint64_t MaxGenerationNumber(const std::string& root) {
  uint64_t max_number = 0;
  std::error_code ec;
  fs::directory_iterator it(root, ec);
  if (ec) return 0;
  for (const fs::directory_entry& entry : it) {
    std::string name = entry.path().filename().string();
    // Strip a ".staging" suffix so abandoned stagings still reserve their
    // number.
    const std::string staging_suffix = ".staging";
    if (name.size() > staging_suffix.size() &&
        name.substr(name.size() - staging_suffix.size()) == staging_suffix) {
      name = name.substr(0, name.size() - staging_suffix.size());
    }
    StatusOr<uint64_t> number = ParseGenerationName(name);
    if (number.ok()) max_number = std::max(max_number, number.value());
  }
  return max_number;
}

}  // namespace

// ---- RegistryMeta ------------------------------------------------------

StatusOr<RegistryMeta> RegistryMeta::Parse(std::istream& in) {
  // Slurp and demand a trailing newline: a writer killed mid-line must
  // yield a parse error, not a shorter-but-plausible value (e.g.
  // "algorithm La" from a truncated "algorithm Lasso\n").
  std::string content;
  {
    char buf[4096];
    while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
      content.append(buf, static_cast<size_t>(in.gcount()));
      if (content.size() > kMaxMetaBytes) {
        return Status::InvalidArgument("meta file is implausibly large");
      }
    }
  }
  if (content.empty() || content.back() != '\n') {
    return Status::InvalidArgument(
        "meta file is not newline-terminated (truncated?)");
  }
  std::istringstream stream(content);
  std::string line;
  if (!std::getline(stream, line) || Trim(line) != kMetaMagic) {
    return Status::InvalidArgument(
        std::string("not a ") + kMetaMagic + " meta file");
  }
  RegistryMeta meta;
  bool saw_seed = false, saw_vehicles = false, saw_algorithm = false;
  size_t lines = 0;
  while (std::getline(stream, line)) {
    if (++lines > kMaxMetaLines) {
      return Status::InvalidArgument("meta file has too many lines");
    }
    std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;
    std::vector<std::string> tokens = Split(trimmed, ' ');
    if (tokens.size() != 2) {
      return Status::InvalidArgument("malformed meta line: " + trimmed);
    }
    if (tokens[0].size() > kMaxMetaTokenLength ||
        tokens[1].size() > kMaxMetaTokenLength) {
      return Status::InvalidArgument("over-long meta token");
    }
    if (tokens[0] == "fleet_seed") {
      if (saw_seed) return Status::InvalidArgument("duplicate fleet_seed");
      VUP_ASSIGN_OR_RETURN(long long v, ParseInt(tokens[1]));
      meta.fleet_seed = static_cast<uint64_t>(v);
      saw_seed = true;
    } else if (tokens[0] == "fleet_vehicles") {
      if (saw_vehicles) {
        return Status::InvalidArgument("duplicate fleet_vehicles");
      }
      VUP_ASSIGN_OR_RETURN(long long v, ParseInt(tokens[1]));
      if (v <= 0 || v > kMaxMetaVehicles) {
        return Status::InvalidArgument("fleet_vehicles out of range: " +
                                       tokens[1]);
      }
      meta.fleet_vehicles = static_cast<size_t>(v);
      saw_vehicles = true;
    } else if (tokens[0] == "algorithm") {
      if (saw_algorithm) return Status::InvalidArgument("duplicate algorithm");
      for (char c : tokens[1]) {
        const bool word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!word) {
          return Status::InvalidArgument("algorithm is not a word: " +
                                         tokens[1]);
        }
      }
      meta.algorithm = tokens[1];
      saw_algorithm = true;
    } else {
      return Status::InvalidArgument("unknown meta key: " + tokens[0]);
    }
  }
  if (!saw_seed || !saw_vehicles || !saw_algorithm) {
    return Status::InvalidArgument(
        "meta file is missing a required key (truncated?)");
  }
  return meta;
}

std::string RegistryMeta::Serialize() const {
  std::ostringstream os;
  os << kMetaMagic << "\n";
  os << "fleet_seed " << fleet_seed << "\n";
  os << "fleet_vehicles " << fleet_vehicles << "\n";
  os << "algorithm " << algorithm << "\n";
  return os.str();
}

Status WriteRegistryMetaFile(const std::string& directory,
                             const RegistryMeta& meta) {
  return WriteFileAtomic(directory + "/" + kMetaFile, meta.Serialize());
}

StatusOr<RegistryMeta> ReadRegistryMetaFile(const std::string& directory) {
  std::ifstream in(directory + "/" + kMetaFile);
  if (!in) {
    return Status::NotFound("no " + std::string(kMetaFile) + " in " +
                            directory + " (did `vupred publish` run?)");
  }
  return RegistryMeta::Parse(in);
}

std::string_view BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

// ---- ModelRegistry -----------------------------------------------------

std::string ModelRegistry::BundleFileName(int64_t vehicle_id) {
  return StrFormat("%s%lld%s", kBundlePrefix,
                   static_cast<long long>(vehicle_id), kBundleSuffix);
}

std::string ModelRegistry::CompactBundleFileName(int64_t vehicle_id) {
  return StrFormat("%s%lld%s", kBundlePrefix,
                   static_cast<long long>(vehicle_id), kCompactSuffix);
}

std::optional<int64_t> ModelRegistry::ParseBundleFileName(
    std::string_view name) {
  const size_t prefix_len = std::string_view(kBundlePrefix).size();
  const size_t suffix_len = std::string_view(kBundleSuffix).size();
  if (name.size() <= prefix_len + suffix_len) return std::nullopt;
  if (!StartsWith(name, kBundlePrefix) || !EndsWith(name, kBundleSuffix)) {
    return std::nullopt;
  }
  std::string_view digits = name;
  digits.remove_prefix(prefix_len);
  digits.remove_suffix(suffix_len);
  StatusOr<long long> id = ParseInt(digits);
  if (!id.ok()) return std::nullopt;
  return static_cast<int64_t>(id.value());
}

std::string ModelRegistry::GenerationDirName(uint64_t number) {
  return StrFormat("%s%06llu", kGenerationPrefix,
                   static_cast<unsigned long long>(number));
}

std::string ModelRegistry::BundlePath(int64_t vehicle_id) const {
  std::lock_guard<std::mutex> lock(*active_mu_);
  return active_.dir + "/" + BundleFileName(vehicle_id);
}

ModelRegistry::ModelRegistry(Options options, ActiveGeneration active)
    : options_(std::move(options)), active_(std::move(active)) {
  const size_t shards = std::max<size_t>(1, options_.shards);
  // Even slices of the registry-wide budgets, rounded up so the total is
  // never silently under the configured bound by more than rounding.
  shard_capacity_ = options_.cache_capacity == 0
                        ? 0
                        : (options_.cache_capacity + shards - 1) / shards;
  shard_max_bytes_ = options_.cache_max_bytes == 0
                         ? 0
                         : std::max<size_t>(
                               1, (options_.cache_max_bytes + shards - 1) /
                                      shards);
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

size_t ModelRegistry::ShardIndexForVehicle(int64_t vehicle_id) const {
  return static_cast<size_t>(
      SplitMix64(static_cast<uint64_t>(vehicle_id)) % shards_.size());
}

ModelRegistry::Shard& ModelRegistry::ShardForVehicle(
    int64_t vehicle_id) const {
  return *shards_[ShardIndexForVehicle(vehicle_id)];
}

StatusOr<ModelRegistry::ActiveGeneration> ModelRegistry::ResolveActive(
    const std::string& root) {
  const std::string current_path = root + "/" + kCurrentFile;
  std::error_code ec;
  if (!fs::exists(current_path, ec) || ec) {
    // Legacy flat layout: the root itself is the (only) generation. A
    // manifest is still honored when present -- opening a finalized
    // gen_NNNNNN directory directly (the canary drill does) lands here.
    ActiveGeneration flat{root, 0, std::nullopt};
    StatusOr<GenerationManifest> manifest = ReadManifestFile(root);
    if (manifest.ok()) {
      flat.manifest = std::move(manifest).value();
    } else if (!manifest.status().IsNotFound()) {
      return Status::DataLoss("registry manifest is damaged: " +
                              manifest.status().ToString());
    }
    return flat;
  }
  std::ifstream in(current_path);
  std::string name;
  if (!in || !std::getline(in, name)) {
    return Status::DataLoss("cannot read " + current_path);
  }
  name = std::string(Trim(name));
  VUP_ASSIGN_OR_RETURN(uint64_t number, ParseGenerationName(name));
  const std::string dir = root + "/" + name;
  if (!fs::is_directory(dir, ec) || ec) {
    return Status::DataLoss("CURRENT points at missing generation: " + name);
  }
  // The meta is written right before the generation is committed; an
  // unparseable meta means the generation is torn or incomplete.
  StatusOr<RegistryMeta> meta = ReadRegistryMetaFile(dir);
  if (!meta.ok()) {
    return Status::DataLoss("generation " + name + " is incomplete: " +
                            meta.status().ToString());
  }
  ActiveGeneration active{dir, number, std::nullopt};
  // A guarded publish always writes a MANIFEST; its absence means a legacy
  // generation, served unverified. A *damaged* manifest means the
  // generation is torn -- refuse it whole rather than trusting any part.
  StatusOr<GenerationManifest> manifest = ReadManifestFile(dir);
  if (manifest.ok()) {
    active.manifest = std::move(manifest).value();
  } else if (!manifest.status().IsNotFound()) {
    return Status::DataLoss("generation " + name +
                            " has a damaged manifest: " +
                            manifest.status().ToString());
  }
  return active;
}

StatusOr<ModelRegistry> ModelRegistry::Open(Options options) {
  if (options.directory.empty()) {
    return Status::InvalidArgument("registry directory must not be empty");
  }
  if (options.breaker.failure_threshold < 1) {
    return Status::InvalidArgument("breaker failure_threshold must be >= 1");
  }
  if (options.shards < 1) {
    return Status::InvalidArgument("registry needs >= 1 shard");
  }
  if (options.shards > 4096) {
    return Status::InvalidArgument("registry shard count implausibly large");
  }
  std::error_code ec;
  fs::create_directories(options.directory, ec);
  if (ec) {
    return Status::Internal("cannot create registry directory '" +
                            options.directory + "': " + ec.message());
  }
  if (!fs::is_directory(options.directory, ec) || ec) {
    return Status::InvalidArgument("registry path is not a directory: " +
                                   options.directory);
  }
  VUP_ASSIGN_OR_RETURN(ActiveGeneration active,
                       ResolveActive(options.directory));
  return ModelRegistry(std::move(options), std::move(active));
}

Status ModelRegistry::Reload() {
  VUP_ASSIGN_OR_RETURN(ActiveGeneration resolved,
                       ResolveActive(options_.directory));
  // Take every shard (ascending index) before active_mu_ -- the global
  // lock order -- so the swap is atomic against every in-flight Get: a
  // reader either ran entirely against the old generation or starts after
  // the caches are clear. Torn-free per shard.
  std::vector<std::unique_lock<std::mutex>> shard_locks;
  shard_locks.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard_locks.emplace_back(shard->mu);
  }
  std::lock_guard<std::mutex> lock(*active_mu_);
  if (resolved.dir == active_.dir) return Status::OK();
  // Swap the active generation: resident models, breaker states and
  // quarantine verdicts belong to the outgoing fleet. In-flight shared_ptr
  // models stay valid until their holders drop them.
  if (resolved.number > active_.number) {
    ++promotes_observed_;
  } else if (resolved.number < active_.number) {
    ++rollbacks_observed_;
  }
  active_ = std::move(resolved);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->lru.clear();
    shard->index.clear();
    shard->breakers.clear();
    shard->quarantined.clear();
    shard->resident_bytes = 0;
  }
  ++reloads_;
  return Status::OK();
}

StatusOr<GenerationPublisher> ModelRegistry::NewGeneration() {
  const uint64_t number = MaxGenerationNumber(options_.directory) + 1;
  const std::string staging =
      options_.directory + "/" + GenerationDirName(number) + ".staging";
  std::error_code ec;
  fs::remove_all(staging, ec);  // A stale staging of the same number.
  fs::create_directories(staging, ec);
  if (ec) {
    return Status::Internal("cannot create staging directory " + staging +
                            ": " + ec.message());
  }
  return GenerationPublisher(options_.directory, number, staging);
}

Status ModelRegistry::PruneGenerations(size_t keep) {
  std::string active_dir;
  {
    std::lock_guard<std::mutex> lock(*active_mu_);
    active_dir = active_.dir;
  }
  // The rollback journal pins generations: deleting the one `previous`
  // names would leave Rollback() pointing into the void, and deleting
  // `promoted` would orphan the journal's sanity check. Both are retained
  // regardless of age or `keep` -- and they consume the keep budget, so
  // `keep` stays an upper bound on retained non-active generations
  // whenever the pinned ones fit in it.
  std::string pinned_promoted, pinned_previous;
  if (StatusOr<RollbackJournal> journal =
          ReadRollbackJournal(options_.directory);
      journal.ok()) {
    pinned_promoted = journal.value().promoted;
    pinned_previous = journal.value().previous;
  }
  std::vector<std::pair<uint64_t, std::string>> generations;
  std::error_code ec;
  fs::directory_iterator it(options_.directory, ec);
  if (ec) {
    return Status::Internal("cannot list " + options_.directory + ": " +
                            ec.message());
  }
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_directory(ec) || ec) continue;
    const std::string name = entry.path().filename().string();
    StatusOr<uint64_t> number = ParseGenerationName(name);
    if (!number.ok()) continue;
    const std::string dir = entry.path().string();
    if (dir == active_dir) continue;
    generations.emplace_back(number.value(), dir);
  }
  // Newest first: retain pinned generations plus the newest unpinned ones
  // until the keep budget runs out, delete the rest.
  std::sort(generations.rbegin(), generations.rend());
  size_t kept = 0;
  for (const auto& [number, dir] : generations) {
    const std::string name = fs::path(dir).filename().string();
    const bool pinned = name == pinned_promoted || name == pinned_previous;
    if (pinned || kept < keep) {
      ++kept;
      continue;
    }
    fs::remove_all(dir, ec);
    if (ec) {
      return Status::Internal("cannot prune " + dir + ": " + ec.message());
    }
  }
  return Status::OK();
}

Status ModelRegistry::Publish(int64_t vehicle_id,
                              const VehicleForecaster& forecaster) {
  const std::string path = BundlePath(vehicle_id);
  // Write to a temp name then rename, so a crashed publish never leaves a
  // half-written bundle under the serving name.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open bundle for writing: " + tmp);
    }
    VUP_RETURN_IF_ERROR(forecaster.Save(out));
    out.flush();
    if (!out) {
      return Status::DataLoss("bundle write failed: " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("cannot install bundle " + path + ": " +
                            ec.message());
  }
  // Keep the compact twin coherent: install a fresh one next to the text
  // bundle (same temp+rename discipline), so a prefer_compact reader can
  // never score a stale compact bundle shadowing the text one.
  VUP_ASSIGN_OR_RETURN(std::string compact_bytes, forecaster.SaveCompact());
  const std::string compact_path =
      fs::path(path).parent_path().string() + "/" +
      CompactBundleFileName(vehicle_id);
  {
    const std::string compact_tmp = compact_path + ".tmp";
    std::ofstream out(compact_tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      return Status::Internal("cannot open bundle for writing: " +
                              compact_tmp);
    }
    out.write(compact_bytes.data(),
              static_cast<std::streamsize>(compact_bytes.size()));
    out.flush();
    if (!out) return Status::DataLoss("bundle write failed: " + compact_tmp);
    fs::rename(compact_tmp, compact_path, ec);
    if (ec) {
      return Status::Internal("cannot install bundle " + compact_path +
                              ": " + ec.message());
    }
  }
  // Drop any stale resident copy so the next Get sees the new bundle, and
  // give the fresh bundle a fresh breaker and a clean quarantine record.
  {
    Shard& shard = ShardForVehicle(vehicle_id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(vehicle_id);
    if (it != shard.index.end()) {
      shard.resident_bytes -= it->second->bytes;
      shard.lru.erase(it->second);
      shard.index.erase(it);
    }
    shard.breakers.erase(vehicle_id);
    shard.quarantined.erase(vehicle_id);
  }
  std::lock_guard<std::mutex> lock(*active_mu_);
  if (active_.manifest.has_value()) {
    // Keep the generation manifest truthful: re-checksum the installed
    // bundles and swap their entries, or the next verified load (and every
    // scrub) would quarantine the bundles we just published.
    std::ifstream installed(path, std::ios::binary);
    if (!installed) {
      return Status::Internal("cannot re-read published bundle: " + path);
    }
    std::string bytes((std::istreambuf_iterator<char>(installed)),
                      std::istreambuf_iterator<char>());
    if (installed.bad()) {
      return Status::DataLoss("re-read failed: " + path);
    }
    const std::string file = BundleFileName(vehicle_id);
    const std::string compact_file = CompactBundleFileName(vehicle_id);
    GenerationManifest updated;
    for (const ManifestEntry& entry : active_.manifest->entries()) {
      if (entry.file == file || entry.file == compact_file) continue;
      VUP_RETURN_IF_ERROR(updated.Add(entry.file, entry.size, entry.crc32));
    }
    VUP_RETURN_IF_ERROR(
        updated.Add(file, bytes.size(), Crc32(bytes.data(), bytes.size())));
    VUP_RETURN_IF_ERROR(updated.Add(
        compact_file, compact_bytes.size(),
        Crc32(compact_bytes.data(), compact_bytes.size())));
    VUP_RETURN_IF_ERROR(WriteManifestFile(active_.dir, updated));
    active_.manifest = std::move(updated);
  }
  return Status::OK();
}

StatusOr<std::shared_ptr<const VehicleForecaster>>
ModelRegistry::LoadVerifiedLocked(Shard& shard, int64_t vehicle_id) {
  // One consistent peek at the active generation (dir + manifest entries):
  // shard.mu is already held, active_mu_ nests inside it -- the global
  // lock order -- so a concurrent Reload can never hand this load the new
  // generation's manifest with the old generation's directory.
  std::string dir;
  std::optional<ManifestEntry> text_entry;
  std::optional<ManifestEntry> compact_entry;
  bool has_manifest = false;
  const std::string file = BundleFileName(vehicle_id);
  const std::string compact_file = CompactBundleFileName(vehicle_id);
  {
    std::lock_guard<std::mutex> lock(*active_mu_);
    dir = active_.dir;
    if (active_.manifest.has_value()) {
      has_manifest = true;
      if (const ManifestEntry* e = active_.manifest->Find(file)) {
        text_entry = *e;
      }
      if (const ManifestEntry* e = active_.manifest->Find(compact_file)) {
        compact_entry = *e;
      }
    }
  }

  auto quarantine = [&](const Status& why) {
    shard.quarantined.insert(vehicle_id);
    ++shard.counters.quarantines;
    return Status::NotFound(StrFormat(
        "model of vehicle %lld quarantined: %s",
        static_cast<long long>(vehicle_id), why.message().c_str()));
  };

  if (options_.prefer_compact) {
    // Compact path: mmap, verify in place (manifest CRC first when listed,
    // the bundle's own CRC always), score in place. Falls back to the text
    // bundle only when no compact twin exists.
    const std::string compact_path = dir + "/" + compact_file;
    StatusOr<MappedFile> mapped_or = MappedFile::Open(compact_path);
    if (mapped_or.ok()) {
      auto mapped = std::make_shared<MappedFile>(std::move(mapped_or).value());
      const std::string_view view(
          reinterpret_cast<const char*>(mapped->data()), mapped->size());
      if (compact_entry.has_value()) {
        Status verified =
            GenerationManifest::VerifyBytes(*compact_entry, view);
        if (!verified.ok()) return quarantine(verified);
      }
      StatusOr<VehicleForecaster> forecaster =
          VehicleForecaster::LoadCompact(mapped->bytes(), mapped);
      if (!forecaster.ok()) {
        // A compact bundle the manifest vouched for but that fails its own
        // framing is corruption caught late -- same quarantine as a
        // manifest mismatch. Unlisted bundles surface the raw error and
        // count against the breaker like any text-path parse failure.
        if (compact_entry.has_value()) {
          return quarantine(forecaster.status());
        }
        return forecaster.status();
      }
      return std::make_shared<const VehicleForecaster>(
          std::move(forecaster).value());
    }
    if (!mapped_or.status().IsNotFound()) return mapped_or.status();
  }

  const std::string path = dir + "/" + file;
  // Size cap BEFORE the buffer is sized, then ONE read into ONE buffer:
  // CRC verify and deserialize both run over string_views of it (no
  // istreambuf_iterator append-loop, no istringstream copy).
  std::error_code ec;
  const uintmax_t file_size = fs::file_size(path, ec);
  if (ec) {
    if (ec == std::errc::no_such_file_or_directory) {
      return Status::NotFound(
          StrFormat("no model bundle for vehicle %lld in %s",
                    static_cast<long long>(vehicle_id), dir.c_str()));
    }
    return Status::Internal("cannot stat bundle " + path + ": " +
                            ec.message());
  }
  if (file_size > kMaxBundleBytes) {
    return Status::DataLoss("bundle implausibly large: " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(
        StrFormat("no model bundle for vehicle %lld in %s",
                  static_cast<long long>(vehicle_id), dir.c_str()));
  }
  std::string bytes(static_cast<size_t>(file_size), '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (in.bad() || static_cast<uintmax_t>(in.gcount()) != file_size) {
    return Status::DataLoss("bundle read failed: " + path);
  }
  if (has_manifest && text_entry.has_value()) {
    // Verify BEFORE the deserializer ever sees the bytes: a corrupt bundle
    // must never be scored, and a flipped bit that still deserializes into
    // plausible coefficients is exactly the failure CRCs exist to catch.
    // Files the manifest does not list load unverified (single-bundle
    // Publish into a legacy generation keeps working).
    Status verified = GenerationManifest::VerifyBytes(
        *text_entry, std::string_view(bytes));
    if (!verified.ok()) return quarantine(verified);
  }
  ImemStream verified_stream{std::string_view(bytes)};
  VUP_ASSIGN_OR_RETURN(VehicleForecaster forecaster,
                       VehicleForecaster::Load(verified_stream));
  return std::make_shared<const VehicleForecaster>(std::move(forecaster));
}

int64_t ModelRegistry::BreakerBackoffMs(int64_t vehicle_id,
                                        int open_count) const {
  const BreakerOptions& breaker = options_.breaker;
  // Reuse the retry schedule: open period k follows the same
  // min(initial * multiplier^(k-1), max) curve a retrying client would.
  const RetryPolicy policy(breaker.backoff);
  const int64_t base = policy.BackoffMs(open_count);
  if (base <= 0 || breaker.jitter_fraction <= 0) return base;
  // Deterministic jitter: same (seed, vehicle, open count) -> same period,
  // regardless of thread interleaving, so seeded runs reproduce exactly.
  Rng rng(SplitMix64(breaker.jitter_seed ^
                     SplitMix64(static_cast<uint64_t>(vehicle_id))) +
          static_cast<uint64_t>(open_count));
  const double fraction = std::clamp(breaker.jitter_fraction, 0.0, 1.0);
  const double factor = 1.0 + fraction * (2.0 * rng.Uniform() - 1.0);
  return std::max<int64_t>(1, static_cast<int64_t>(
                                  static_cast<double>(base) * factor));
}

void ModelRegistry::RecordLoadFailureLocked(Shard& shard,
                                            int64_t vehicle_id) {
  ++shard.counters.load_failures;
  Breaker& breaker = shard.breakers[vehicle_id];
  ++breaker.consecutive_failures;
  const bool reopen = breaker.state == BreakerState::kHalfOpen;
  if (!reopen &&
      breaker.consecutive_failures < options_.breaker.failure_threshold) {
    return;
  }
  // Trip (or re-trip after a failed half-open probe): fail fast until the
  // jittered backoff elapses.
  breaker.state = BreakerState::kOpen;
  ++breaker.open_count;
  ++shard.counters.breaker_opens;
  breaker.open_until =
      clock().Now() + std::chrono::milliseconds(
                          BreakerBackoffMs(vehicle_id, breaker.open_count));
}

StatusOr<std::shared_ptr<const VehicleForecaster>> ModelRegistry::Get(
    int64_t vehicle_id) {
  Shard& shard = ShardForVehicle(vehicle_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(vehicle_id);
  if (it != shard.index.end()) {
    ++shard.counters.hits;
    // Move to the front (most recently used).
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->model;
  }

  if (shard.quarantined.count(vehicle_id) != 0) {
    // Quarantine is sticky until the generation swaps or the bundle is
    // republished -- no disk IO, no breaker involvement, and NotFound so
    // the caller degrades through the same fallback chain as a missing
    // bundle.
    ++shard.counters.quarantine_blocks;
    return Status::NotFound(
        StrFormat("model of vehicle %lld is quarantined (manifest "
                  "verification failed)",
                  static_cast<long long>(vehicle_id)));
  }

  auto breaker_it = shard.breakers.find(vehicle_id);
  if (breaker_it != shard.breakers.end() &&
      breaker_it->second.state == BreakerState::kOpen) {
    Breaker& breaker = breaker_it->second;
    if (clock().Now() < breaker.open_until) {
      ++shard.counters.breaker_short_circuits;
      return Status::Unavailable(StrFormat(
          "circuit breaker open for vehicle %lld (retry in %lld ms)",
          static_cast<long long>(vehicle_id),
          static_cast<long long>(
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  breaker.open_until - clock().Now())
                  .count())));
    }
    // Backoff elapsed: half-open, admit this Get as the single probe (the
    // shard mutex serializes probes for every vehicle that hashes here).
    breaker.state = BreakerState::kHalfOpen;
  }

  ++shard.counters.misses;
  StatusOr<std::shared_ptr<const VehicleForecaster>> loaded =
      LoadVerifiedLocked(shard, vehicle_id);
  if (!loaded.ok()) {
    // A missing bundle is the degradation path, not a fault; only real
    // load failures (corrupt bundle, IO error) count against the breaker.
    // A fresh quarantine surfaces as NotFound for the same reason.
    if (!loaded.status().IsNotFound()) {
      RecordLoadFailureLocked(shard, vehicle_id);
    }
    if (shard.quarantined.count(vehicle_id) != 0) {
      ++shard.counters.quarantine_blocks;
    }
    return loaded.status();
  }
  if (breaker_it != shard.breakers.end()) {
    // Successful load (including a half-open probe): close the breaker.
    shard.breakers.erase(vehicle_id);
  }
  std::shared_ptr<const VehicleForecaster> model = std::move(loaded).value();

  if (shard_capacity_ > 0) {
    const size_t bytes = model->ResidentBytes();
    // Evict from the cold end until both bounds hold: the per-shard entry
    // count AND the per-shard byte budget (0 = unbounded bytes). Breakers
    // and quarantine marks are deliberately NOT touched by eviction --
    // evicting a model must never reset its failure history.
    while (!shard.lru.empty() &&
           (shard.lru.size() >= shard_capacity_ ||
            (shard_max_bytes_ > 0 &&
             shard.resident_bytes + bytes > shard_max_bytes_))) {
      const Shard::LruEntry& victim = shard.lru.back();
      shard.resident_bytes -= victim.bytes;
      shard.index.erase(victim.vehicle_id);
      shard.lru.pop_back();
      ++shard.counters.evictions;
    }
    // A model larger than the whole shard budget is served but never
    // cached; caching it would evict everything else and still bust the
    // budget.
    if (shard_max_bytes_ == 0 || bytes <= shard_max_bytes_) {
      shard.lru.push_front(Shard::LruEntry{vehicle_id, model, bytes});
      shard.index[vehicle_id] = shard.lru.begin();
      shard.resident_bytes += bytes;
    }
  }
  return model;
}

void ModelRegistry::Quarantine(int64_t vehicle_id) {
  Shard& shard = ShardForVehicle(vehicle_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (!shard.quarantined.insert(vehicle_id).second) return;
  ++shard.counters.quarantines;
  // A resident copy was deserialized from bytes that verified at load
  // time; the scrubber has since seen different bytes on disk, so the
  // cached model's provenance is gone -- drop it.
  auto it = shard.index.find(vehicle_id);
  if (it != shard.index.end()) {
    shard.resident_bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
}

bool ModelRegistry::IsQuarantined(int64_t vehicle_id) const {
  Shard& shard = ShardForVehicle(vehicle_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.quarantined.count(vehicle_id) != 0;
}

Status ModelRegistry::Rollback() {
  VUP_RETURN_IF_ERROR(RollbackGeneration(options_.directory).status());
  return Reload();
}

StatusOr<RegistryMeta> ModelRegistry::ReadMeta() const {
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(*active_mu_);
    dir = active_.dir;
  }
  return ReadRegistryMetaFile(dir);
}

bool ModelRegistry::Contains(int64_t vehicle_id) const {
  std::error_code ec;
  return fs::exists(BundlePath(vehicle_id), ec) && !ec;
}

std::vector<int64_t> ModelRegistry::ListVehicleIds() const {
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(*active_mu_);
    dir = active_.dir;
  }
  return ListBundleIds(dir);
}

size_t ModelRegistry::resident_models() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

size_t ModelRegistry::resident_bytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->resident_bytes;
  }
  return total;
}

BreakerState ModelRegistry::breaker_state(int64_t vehicle_id) const {
  Shard& shard = ShardForVehicle(vehicle_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.breakers.find(vehicle_id);
  return it == shard.breakers.end() ? BreakerState::kClosed
                                    : it->second.state;
}

size_t ModelRegistry::OpenBreakersLocked(const Shard& shard) {
  size_t open = 0;
  for (const auto& [vehicle_id, breaker] : shard.breakers) {
    if (breaker.state != BreakerState::kClosed) ++open;
  }
  return open;
}

ModelRegistryStats ModelRegistry::StatsAllLocked() const {
  // Caller holds every shard mutex plus active_mu_. The registry-level
  // totals are sums of the per-shard slices BY CONSTRUCTION -- the shard
  // vector is the source of truth and the totals are derived here, so the
  // "totals == sum of shards" invariant can never drift.
  ModelRegistryStats stats;
  stats.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ModelRegistryShardStats slice = shard->counters;
    // Derived from live state, so a generation swap that clears breakers
    // can never leave a stale open-vehicle count behind.
    slice.breaker_open_vehicles = OpenBreakersLocked(*shard);
    slice.resident_models = static_cast<uint64_t>(shard->lru.size());
    slice.cache_bytes = static_cast<uint64_t>(shard->resident_bytes);
    slice.quarantined_models =
        static_cast<uint64_t>(shard->quarantined.size());
    stats.hits += slice.hits;
    stats.misses += slice.misses;
    stats.evictions += slice.evictions;
    stats.load_failures += slice.load_failures;
    stats.breaker_opens += slice.breaker_opens;
    stats.breaker_short_circuits += slice.breaker_short_circuits;
    stats.breaker_open_vehicles += slice.breaker_open_vehicles;
    stats.quarantines += slice.quarantines;
    stats.quarantine_blocks += slice.quarantine_blocks;
    stats.quarantined_models += slice.quarantined_models;
    stats.resident_models += slice.resident_models;
    stats.cache_bytes += slice.cache_bytes;
    stats.shards.push_back(slice);
  }
  stats.reloads = reloads_;
  stats.generation = active_.number;
  stats.promotes_observed = promotes_observed_;
  stats.rollbacks_observed = rollbacks_observed_;
  return stats;
}

ModelRegistryStats ModelRegistry::stats() const {
  // Lock order: every shard ascending, then active_mu_ -- identical to
  // Reload, so a concurrent swap can never deadlock against a stats scrape.
  std::vector<std::unique_lock<std::mutex>> shard_locks;
  shard_locks.reserve(shards_.size());
  for (const auto& shard : shards_) shard_locks.emplace_back(shard->mu);
  std::lock_guard<std::mutex> lock(*active_mu_);
  return StatsAllLocked();
}

void ModelRegistry::CollectMetrics(obs::MetricsSnapshot* out,
                                   const obs::LabelSet& labels) const {
  const ModelRegistryStats stats = this->stats();
  auto add = [&](const char* name, const char* help, obs::MetricType type,
                 double value) {
    obs::MetricFamily family;
    family.name = name;
    family.help = help;
    family.type = type;
    obs::MetricSample sample;
    sample.labels = labels;
    sample.value = value;
    family.samples.push_back(std::move(sample));
    out->families.push_back(std::move(family));
  };
  using obs::MetricType;
  add("vupred_registry_hits_total", "Gets served from the resident cache.",
      MetricType::kCounter, static_cast<double>(stats.hits));
  add("vupred_registry_misses_total",
      "Gets that loaded the bundle from disk.", MetricType::kCounter,
      static_cast<double>(stats.misses));
  add("vupred_registry_evictions_total",
      "Resident models displaced by the LRU policy.", MetricType::kCounter,
      static_cast<double>(stats.evictions));
  add("vupred_registry_load_failures_total",
      "Disk loads that returned an error.", MetricType::kCounter,
      static_cast<double>(stats.load_failures));
  add("vupred_registry_breaker_opens_total",
      "Circuit breaker closed/half-open to open transitions.",
      MetricType::kCounter, static_cast<double>(stats.breaker_opens));
  add("vupred_registry_breaker_short_circuits_total",
      "Gets rejected while a breaker was open.", MetricType::kCounter,
      static_cast<double>(stats.breaker_short_circuits));
  add("vupred_registry_reloads_total",
      "Generation swaps performed by Reload().", MetricType::kCounter,
      static_cast<double>(stats.reloads));
  add("vupred_registry_quarantines_total",
      "Models quarantined after failing manifest verification.",
      MetricType::kCounter, static_cast<double>(stats.quarantines));
  add("vupred_registry_quarantine_blocks_total",
      "Gets answered NotFound because the model is quarantined.",
      MetricType::kCounter, static_cast<double>(stats.quarantine_blocks));
  add("vupred_publish_promotes_total",
      "Reloads that advanced to a newer generation.", MetricType::kCounter,
      static_cast<double>(stats.promotes_observed));
  add("vupred_publish_rollbacks_total",
      "Reloads that reverted to an older generation.", MetricType::kCounter,
      static_cast<double>(stats.rollbacks_observed));
  add("vupred_registry_breaker_open_vehicles",
      "Breakers currently open or half-open.", MetricType::kGauge,
      static_cast<double>(stats.breaker_open_vehicles));
  add("vupred_registry_resident_models",
      "Models resident in the LRU cache.", MetricType::kGauge,
      static_cast<double>(stats.resident_models));
  add("vupred_registry_cache_bytes",
      "Bytes of model state resident in the LRU cache.", MetricType::kGauge,
      static_cast<double>(stats.cache_bytes));
  add("vupred_registry_quarantined_models",
      "Models currently quarantined.", MetricType::kGauge,
      static_cast<double>(stats.quarantined_models));
  add("vupred_registry_generation", "Active generation number.",
      MetricType::kGauge, static_cast<double>(stats.generation));
}

uint64_t ModelRegistry::active_generation() const {
  std::lock_guard<std::mutex> lock(*active_mu_);
  return active_.number;
}

// ---- GenerationPublisher -----------------------------------------------

GenerationPublisher::GenerationPublisher(GenerationPublisher&& other) noexcept
    : root_(std::move(other.root_)),
      number_(other.number_),
      staging_dir_(std::move(other.staging_dir_)),
      finalized_(other.finalized_),
      committed_(other.committed_) {
  other.moved_from_ = true;
}

GenerationPublisher& GenerationPublisher::operator=(
    GenerationPublisher&& other) noexcept {
  if (this != &other) {
    root_ = std::move(other.root_);
    number_ = other.number_;
    staging_dir_ = std::move(other.staging_dir_);
    finalized_ = other.finalized_;
    committed_ = other.committed_;
    moved_from_ = false;
    other.moved_from_ = true;
  }
  return *this;
}

GenerationPublisher::~GenerationPublisher() {
  if (moved_from_ || finalized_) return;
  // Abandoned without Finalize: the staging directory was never visible to
  // readers, remove it. A finalized-but-unpromoted generation stays on
  // disk deliberately -- the publish gate may have failed it, and the
  // evidence (plus the prune policy) is worth more than the space.
  std::error_code ec;
  fs::remove_all(staging_dir_, ec);
}

Status GenerationPublisher::Add(int64_t vehicle_id,
                                const VehicleForecaster& forecaster) {
  if (finalized_) {
    return Status::FailedPrecondition(
        "generation already finalized (its manifest is sealed)");
  }
  const std::string path =
      staging_dir_ + "/" + ModelRegistry::BundleFileName(vehicle_id);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open bundle for writing: " + path);
  }
  VUP_RETURN_IF_ERROR(forecaster.Save(out));
  out.flush();
  if (!out) return Status::DataLoss("bundle write failed: " + path);
  if (emit_compact_) {
    VUP_ASSIGN_OR_RETURN(const std::string compact,
                         forecaster.SaveCompact());
    const std::string compact_path =
        staging_dir_ + "/" +
        ModelRegistry::CompactBundleFileName(vehicle_id);
    std::ofstream cout_stream(compact_path,
                              std::ios::trunc | std::ios::binary);
    if (!cout_stream) {
      return Status::Internal("cannot open compact bundle for writing: " +
                              compact_path);
    }
    cout_stream.write(compact.data(),
                      static_cast<std::streamsize>(compact.size()));
    cout_stream.flush();
    if (!cout_stream) {
      return Status::DataLoss("compact bundle write failed: " +
                              compact_path);
    }
  }
  return Status::OK();
}

Status GenerationPublisher::AddPrebuilt(int64_t vehicle_id,
                                        std::string_view text_bytes,
                                        std::string_view compact_bytes) {
  // Byte-level Add for synthetic fleets: serve-bench stamps one trained
  // model's bundle bytes across hundreds of thousands of vehicle ids
  // without re-serializing (or re-training) per id. Finalize checksums
  // the staged files like any other generation.
  if (finalized_) {
    return Status::FailedPrecondition(
        "generation already finalized (its manifest is sealed)");
  }
  const std::string path =
      staging_dir_ + "/" + ModelRegistry::BundleFileName(vehicle_id);
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) {
    return Status::Internal("cannot open bundle for writing: " + path);
  }
  out.write(text_bytes.data(),
            static_cast<std::streamsize>(text_bytes.size()));
  out.flush();
  if (!out) return Status::DataLoss("bundle write failed: " + path);
  if (!compact_bytes.empty()) {
    const std::string compact_path =
        staging_dir_ + "/" +
        ModelRegistry::CompactBundleFileName(vehicle_id);
    std::ofstream cout_stream(compact_path,
                              std::ios::trunc | std::ios::binary);
    if (!cout_stream) {
      return Status::Internal("cannot open compact bundle for writing: " +
                              compact_path);
    }
    cout_stream.write(compact_bytes.data(),
                      static_cast<std::streamsize>(compact_bytes.size()));
    cout_stream.flush();
    if (!cout_stream) {
      return Status::DataLoss("compact bundle write failed: " +
                              compact_path);
    }
  }
  return Status::OK();
}

Status GenerationPublisher::Finalize(const RegistryMeta& meta) {
  if (finalized_) {
    return Status::FailedPrecondition("generation already finalized");
  }
  // Order matters for crash-consistency: (1) meta completes the staging
  // directory, (2) the MANIFEST checksums every staged file -- including
  // the meta -- so any later bit-rot is detectable, (3) the directory
  // rename makes the complete generation appear under its final name. A
  // crash between any two steps leaves at worst an ignored staging
  // directory; CURRENT never moves here.
  VUP_RETURN_IF_ERROR(WriteRegistryMetaFile(staging_dir_, meta));
  VUP_ASSIGN_OR_RETURN(GenerationManifest manifest,
                       GenerationManifest::BuildFromDirectory(staging_dir_));
  VUP_RETURN_IF_ERROR(WriteManifestFile(staging_dir_, manifest));
  std::string final_dir =
      root_ + "/" + ModelRegistry::GenerationDirName(number_);
  std::error_code ec;
  // A concurrent publisher may have claimed our number; slide forward.
  for (int attempt = 0; fs::exists(final_dir, ec) && attempt < 1024;
       ++attempt) {
    ++number_;
    final_dir = root_ + "/" + ModelRegistry::GenerationDirName(number_);
  }
  fs::rename(staging_dir_, final_dir, ec);
  if (ec) {
    return Status::Internal("cannot finalize generation " + final_dir +
                            ": " + ec.message());
  }
  staging_dir_ = final_dir;
  finalized_ = true;
  return Status::OK();
}

Status GenerationPublisher::Promote() {
  if (!finalized_) {
    return Status::FailedPrecondition("generation is not finalized");
  }
  if (committed_) {
    return Status::FailedPrecondition("generation already committed");
  }
  // Journaled CURRENT flip: the rollback journal lands first, so the
  // promotion can be undone (and a crash between journal and flip is
  // harmless -- see PromoteGeneration).
  VUP_RETURN_IF_ERROR(
      PromoteGeneration(root_, ModelRegistry::GenerationDirName(number_)));
  committed_ = true;
  return Status::OK();
}

Status GenerationPublisher::Commit(const RegistryMeta& meta) {
  VUP_RETURN_IF_ERROR(Finalize(meta));
  return Promote();
}

}  // namespace vup::serve
