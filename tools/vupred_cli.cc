// vupred command-line tool: the library's workflows without writing C++.
//
//   vupred generate --out=DIR [--vehicles=N] [--seed=S]
//       Generate a synthetic fleet and write one dataset CSV per vehicle
//       plus a manifest.csv describing the units.
//
//   vupred train --data=FILE.csv --out=MODEL.txt [--algorithm=GB]
//       [--country=IT] [--lookback=60] [--topk=15] [--train-days=200]
//       Train a per-vehicle forecaster on a dataset CSV and persist it.
//
//   vupred predict --data=FILE.csv --model=MODEL.txt [--country=IT]
//       Load a persisted forecaster and forecast the day after the series.
//
//   vupred evaluate --data=FILE.csv [--algorithm=GB] [--country=IT]
//       [--scenario=next-day|next-working-day] [--eval-days=60]
//       Walk-forward hold-out evaluation (Section 4.1 protocol).
//
//   vupred fleet [--vehicles=N] [--seed=S] [--max-vehicles=M]
//       [--algorithm=Lasso] [--eval-days=20]
//       [--fault-profile=none|mild|severe] [--strict]
//       Fleet experiment on a demo fleet, optionally routed through the
//       telemetry fault injector. Prints the fleet evaluation plus the
//       degradation report; with --strict, exits non-zero when any
//       vehicle was quarantined.

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/evaluation.h"
#include "core/experiment.h"
#include "core/forecaster.h"
#include "table/csv.h"
#include "telemetry/fleet.h"

namespace vup {
namespace {

/// Minimal --key=value flag parser.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        extra_.push_back(arg);
        continue;
      }
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  long long GetInt(const std::string& key, long long fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    StatusOr<long long> v = ParseInt(it->second);
    return v.ok() ? v.value() : fallback;
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> extra_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

StatusOr<VehicleDataset> LoadDatasetCsv(const std::string& path,
                                        const std::string& country_code) {
  VUP_ASSIGN_OR_RETURN(const Country* country,
                       CountryRegistry::Global().Find(country_code));
  // Schema: date, utilization_hours, then every canonical feature column.
  std::vector<Field> fields;
  fields.push_back({"date", DataType::kDate, false});
  fields.push_back({"utilization_hours", DataType::kDouble, false});
  for (const std::string& name : VehicleDataset::FeatureNames()) {
    fields.push_back({name, DataType::kDouble, false});
  }
  VUP_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  VUP_ASSIGN_OR_RETURN(Table table, ReadCsvFile(path, schema));
  VehicleInfo info;
  info.vehicle_id = 1;
  info.country_code = country_code;
  return VehicleDataset::FromTable(info, table, *country);
}

ForecasterConfig MakeForecasterConfig(const Flags& flags) {
  ForecasterConfig cfg;
  std::string alg = flags.Get("algorithm", "GB");
  for (int a = 0; a < kNumAlgorithms; ++a) {
    if (AlgorithmToString(static_cast<Algorithm>(a)) == alg) {
      cfg.algorithm = static_cast<Algorithm>(a);
    }
  }
  cfg.windowing.lookback_w =
      static_cast<size_t>(flags.GetInt("lookback", 60));
  cfg.selection.top_k = static_cast<size_t>(flags.GetInt("topk", 15));
  return cfg;
}

int RunGenerate(const Flags& flags) {
  if (!flags.Has("out")) {
    std::fprintf(stderr, "usage: vupred generate --out=DIR [--vehicles=N] "
                         "[--seed=S]\n");
    return 2;
  }
  std::string out_dir = flags.Get("out", ".");
  size_t vehicles = static_cast<size_t>(flags.GetInt("vehicles", 20));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  Fleet fleet = Fleet::Generate(FleetConfig::Small(vehicles, seed));

  // Manifest.
  Schema manifest_schema =
      Schema::Make({{"vehicle_id", DataType::kInt64, false},
                    {"type", DataType::kString, false},
                    {"model", DataType::kString, false},
                    {"country", DataType::kString, false},
                    {"install_date", DataType::kDate, false},
                    {"file", DataType::kString, false}})
          .value();
  Table manifest(manifest_schema);

  for (size_t i = 0; i < fleet.size(); ++i) {
    StatusOr<VehicleDataset> ds = PrepareVehicleDataset(fleet, i);
    if (!ds.ok()) return Fail(ds.status());
    StatusOr<Table> table = ds.value().ToTable();
    if (!table.ok()) return Fail(table.status());
    const VehicleInfo& info = fleet.vehicle(i);
    std::string file = StrFormat("vehicle_%lld.csv",
                                 static_cast<long long>(info.vehicle_id));
    Status written = WriteCsvFile(table.value(), out_dir + "/" + file);
    if (!written.ok()) return Fail(written);
    Status appended = manifest.AppendRow(
        {Value::Int(info.vehicle_id),
         Value::Str(std::string(VehicleTypeToString(info.type))),
         Value::Str(info.model_id), Value::Str(info.country_code),
         Value::Day(info.install_date), Value::Str(file)});
    if (!appended.ok()) return Fail(appended);
  }
  Status written = WriteCsvFile(manifest, out_dir + "/manifest.csv");
  if (!written.ok()) return Fail(written);
  std::printf("wrote %zu vehicle datasets + manifest.csv to %s\n",
              fleet.size(), out_dir.c_str());
  return 0;
}

int RunTrain(const Flags& flags) {
  if (!flags.Has("data") || !flags.Has("out")) {
    std::fprintf(stderr, "usage: vupred train --data=FILE.csv "
                         "--out=MODEL.txt [--algorithm=GB] [--country=IT] "
                         "[--lookback=60] [--topk=15] [--train-days=200]\n");
    return 2;
  }
  StatusOr<VehicleDataset> ds =
      LoadDatasetCsv(flags.Get("data", ""), flags.Get("country", "IT"));
  if (!ds.ok()) return Fail(ds.status());

  ForecasterConfig cfg = MakeForecasterConfig(flags);
  size_t n = ds.value().num_days();
  size_t train_days = static_cast<size_t>(flags.GetInt("train-days", 200));
  size_t begin = n > train_days ? n - train_days : cfg.windowing.lookback_w;
  VehicleForecaster forecaster(cfg);
  Status trained = forecaster.Train(ds.value(), begin, n);
  if (!trained.ok()) return Fail(trained);

  std::ofstream out(flags.Get("out", ""));
  if (!out) {
    return Fail(Status::NotFound("cannot open " + flags.Get("out", "")));
  }
  Status saved = forecaster.Save(out);
  if (!saved.ok()) return Fail(saved);
  std::printf("trained %s on %zu records (%zu ACF-selected lags), saved to "
              "%s\n",
              std::string(AlgorithmToString(cfg.algorithm)).c_str(),
              n - begin, forecaster.selected_lags().size(),
              flags.Get("out", "").c_str());
  return 0;
}

int RunPredict(const Flags& flags) {
  if (!flags.Has("data") || !flags.Has("model")) {
    std::fprintf(stderr, "usage: vupred predict --data=FILE.csv "
                         "--model=MODEL.txt [--country=IT]\n");
    return 2;
  }
  StatusOr<VehicleDataset> ds =
      LoadDatasetCsv(flags.Get("data", ""), flags.Get("country", "IT"));
  if (!ds.ok()) return Fail(ds.status());
  std::ifstream in(flags.Get("model", ""));
  if (!in) {
    return Fail(Status::NotFound("cannot open " + flags.Get("model", "")));
  }
  StatusOr<VehicleForecaster> forecaster = VehicleForecaster::Load(in);
  if (!forecaster.ok()) return Fail(forecaster.status());
  StatusOr<double> pred =
      forecaster.value().PredictTarget(ds.value(), ds.value().num_days());
  if (!pred.ok()) return Fail(pred.status());
  Date tomorrow = ds.value().dates().back().AddDays(1);
  std::printf("%s %.2f\n", tomorrow.ToString().c_str(), pred.value());
  return 0;
}

int RunEvaluate(const Flags& flags) {
  if (!flags.Has("data")) {
    std::fprintf(stderr, "usage: vupred evaluate --data=FILE.csv "
                         "[--algorithm=GB] [--country=IT] "
                         "[--scenario=next-day|next-working-day] "
                         "[--eval-days=60]\n");
    return 2;
  }
  StatusOr<VehicleDataset> ds =
      LoadDatasetCsv(flags.Get("data", ""), flags.Get("country", "IT"));
  if (!ds.ok()) return Fail(ds.status());

  EvaluationConfig cfg;
  cfg.forecaster = MakeForecasterConfig(flags);
  cfg.eval_days = static_cast<size_t>(flags.GetInt("eval-days", 60));
  cfg.retrain_every = static_cast<size_t>(flags.GetInt("retrain-every", 7));
  cfg.train_window = static_cast<size_t>(flags.GetInt("train-window", 140));
  cfg.scenario = flags.Get("scenario", "next-day") == "next-working-day"
                     ? Scenario::kNextWorkingDay
                     : Scenario::kNextDay;
  StatusOr<VehicleEvaluation> ev = EvaluateVehicle(ds.value(), cfg);
  if (!ev.ok()) return Fail(ev.status());
  std::printf("algorithm=%s scenario=%s predictions=%zu PE=%.2f%% "
              "MAE=%.3fh\n",
              std::string(AlgorithmToString(cfg.forecaster.algorithm))
                  .c_str(),
              std::string(ScenarioToString(cfg.scenario)).c_str(),
              ev.value().num_predictions, ev.value().pe, ev.value().mae);
  return 0;
}

int RunFleet(const Flags& flags) {
  std::string profile_name = flags.Get("fault-profile", "none");
  FaultProfile profile;
  if (profile_name == "none") {
    profile = FaultProfile::None();
  } else if (profile_name == "mild") {
    profile = FaultProfile::Mild();
  } else if (profile_name == "severe") {
    profile = FaultProfile::Severe();
  } else {
    std::fprintf(stderr,
                 "unknown --fault-profile=%s (none|mild|severe)\n",
                 profile_name.c_str());
    return 2;
  }

  int64_t vehicles = flags.GetInt("vehicles", 40);
  if (vehicles <= 0) {
    std::fprintf(stderr, "error: --vehicles must be positive, got %lld\n",
                 static_cast<long long>(vehicles));
    return 2;
  }
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  Fleet fleet =
      Fleet::Generate(FleetConfig::Small(static_cast<size_t>(vehicles), seed));
  ExperimentRunner runner(&fleet);

  ExperimentOptions opts;
  opts.max_vehicles = static_cast<size_t>(flags.GetInt("max-vehicles", 6));
  opts.faults = profile;
  opts.fault_seed = static_cast<uint64_t>(flags.GetInt("fault-seed", 99));

  EvaluationConfig cfg;
  cfg.forecaster = MakeForecasterConfig(flags);
  if (!flags.Has("algorithm")) cfg.forecaster.algorithm = Algorithm::kLasso;
  if (!flags.Has("lookback")) cfg.forecaster.windowing.lookback_w = 21;
  if (!flags.Has("topk")) cfg.forecaster.selection.top_k = 7;
  cfg.eval_days = static_cast<size_t>(flags.GetInt("eval-days", 20));
  cfg.retrain_every = static_cast<size_t>(flags.GetInt("retrain-every", 10));
  cfg.train_window = static_cast<size_t>(flags.GetInt("train-window", 60));

  StatusOr<ExperimentResult> run = runner.Run(cfg, opts);
  if (!run.ok()) return Fail(run.status());
  const ExperimentResult& result = run.value();
  std::printf("fleet=%zu selected=%zu algorithm=%s fault-profile=%s\n",
              fleet.size(), result.vehicle_indices.size(),
              std::string(AlgorithmToString(cfg.forecaster.algorithm))
                  .c_str(),
              profile_name.c_str());
  std::printf("PE=%.2f%% medianPE=%.2f%% MAE=%.3fh evaluated=%zu "
              "skipped=%zu quarantined=%zu\n",
              result.fleet.mean_pe, result.fleet.median_pe,
              result.fleet.mean_mae, result.fleet.vehicles_evaluated,
              result.fleet.vehicles_skipped,
              result.fleet.vehicles_quarantined);
  std::printf("degradation: %s\n", result.degradation.ToString().c_str());
  if (flags.Has("strict") && result.degradation.vehicles_quarantined > 0) {
    std::fprintf(stderr,
                 "error: %zu vehicles quarantined under --strict\n",
                 result.degradation.vehicles_quarantined);
    return 1;
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "vupred -- industrial vehicle usage prediction\n"
                 "commands: generate, train, predict, evaluate, fleet\n");
    return 2;
  }
  std::string command = argv[1];
  Flags flags(argc, argv, 2);
  if (command == "generate") return RunGenerate(flags);
  if (command == "train") return RunTrain(flags);
  if (command == "predict") return RunPredict(flags);
  if (command == "evaluate") return RunEvaluate(flags);
  if (command == "fleet") return RunFleet(flags);
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 2;
}

}  // namespace
}  // namespace vup

int main(int argc, char** argv) { return vup::Main(argc, argv); }
