// vupred command-line tool: the library's workflows without writing C++.
//
//   vupred generate     Write synthetic per-vehicle dataset CSVs.
//   vupred train        Train one per-vehicle forecaster and persist it.
//   vupred predict      Score a persisted forecaster on a dataset.
//   vupred evaluate     Walk-forward hold-out evaluation (Section 4.1).
//   vupred fleet        Fleet experiment, optionally fault-injected and
//                       parallelized (--jobs=N).
//   vupred publish      Train the fleet and publish model bundles into a
//                       serving registry directory, optionally gated by
//                       --validate and --canary-fraction; --rollback
//                       reverts the last journaled promotion.
//   vupred publish-bench Time the guarded publish path (validate, canary,
//                       promote, scrub, rollback) on a seeded fleet;
//                       verifies quarantine + rollback invariants and
//                       writes BENCH_publish.json.
//   vupred serve-bench  Replay a request stream against the prediction
//                       service; prints latency/throughput and writes
//                       BENCH_serve.json.
//   vupred core-bench   Time the windowing/selection/fit/predict stages of
//                       the walk-forward evaluation, naive rebuild vs
//                       incremental sliding window; verifies byte-identical
//                       results and writes BENCH_core.json.
//   vupred ingest-bench Time the binary wire path (encode, decode, WAL
//                       journal+ingest, crash recovery) on a seeded report
//                       stream; verifies recovery is bit-identical and
//                       writes BENCH_ingest.json.
//   vupred cluster-bench Profile-extraction / k-means throughput, pooled
//                       hierarchy PE (per-vehicle vs per-cluster vs
//                       global), and a cold-start fallback proof; verifies
//                       clustering is byte-identical across reruns and
//                       --jobs and writes BENCH_cluster.json.
//
// `vupred <command> --help` prints the command's usage. Unknown flags are
// rejected with exit code 2.

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_meta.h"
#include "cluster/pooled.h"
#include "common/clock.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/evaluation.h"
#include "core/experiment.h"
#include "core/forecaster.h"
#include "ml/metrics.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/guarded_publish.h"
#include "serve/model_registry.h"
#include "serve/prediction_service.h"
#include "serve/scrubber.h"
#include "serve/validator.h"
#include "table/csv.h"
#include "telemetry/fault_injector.h"
#include "telemetry/fleet.h"
#include "wire/frame.h"
#include "wire/stream_ingestor.h"

namespace vup {
namespace {

/// Minimal --key=value flag parser with an allowlist check.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        extra_.push_back(arg);
        continue;
      }
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  long long GetInt(const std::string& key, long long fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    StatusOr<long long> v = ParseInt(it->second);
    return v.ok() ? v.value() : fallback;
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    StatusOr<double> v = ParseDouble(it->second);
    return v.ok() ? v.value() : fallback;
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  const std::vector<std::string>& extra() const { return extra_; }

  /// Flags not in `allowed` (--help is always allowed).
  std::vector<std::string> UnknownKeys(
      const std::vector<std::string>& allowed) const {
    std::vector<std::string> unknown;
    for (const auto& [key, value] : values_) {
      if (key == "help") continue;
      bool found = false;
      for (const std::string& a : allowed) {
        if (key == a) {
          found = true;
          break;
        }
      }
      if (!found) unknown.push_back(key);
    }
    return unknown;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> extra_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// ---- Observability plumbing (shared by fleet and serve-bench) ----------

/// Resolves --metrics-format, defaulting by --metrics-out extension:
/// *.json -> json, anything else -> prom. Empty string on a bad value
/// (reported to stderr); call before doing any work so a typo exits fast.
std::string ResolveMetricsFormat(const Flags& flags) {
  const std::string path = flags.Get("metrics-out", "");
  std::string format = flags.Get("metrics-format", "");
  if (format.empty()) {
    const std::string json_ext = ".json";
    const bool json = path.size() >= json_ext.size() &&
                      path.compare(path.size() - json_ext.size(),
                                   json_ext.size(), json_ext) == 0;
    format = json ? "json" : "prom";
  }
  if (format != "prom" && format != "json") {
    std::fprintf(stderr, "unknown --metrics-format=%s (prom|json)\n",
                 format.c_str());
    return "";
  }
  return format;
}

/// Writes the snapshot to --metrics-out (no-op when the flag is absent).
int WriteMetricsOutput(const Flags& flags, const std::string& format,
                       obs::MetricsSnapshot snapshot) {
  const std::string path = flags.Get("metrics-out", "");
  if (path.empty()) return 0;
  snapshot.Normalize();
  const std::string text = format == "json" ? obs::ToJson(snapshot)
                                            : obs::ToPrometheusText(snapshot);
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Fail(Status::Internal("cannot write " + path));
  out << text;
  out.flush();
  if (!out) return Fail(Status::DataLoss("write failed: " + path));
  std::printf("wrote metrics (%s) to %s\n", format.c_str(), path.c_str());
  return 0;
}

/// RAII --trace handling: activates a tracer for the scope and prints the
/// aggregated span tree on destruction when tracing was requested.
class ScopedCliTracer {
 public:
  explicit ScopedCliTracer(bool enabled) : enabled_(enabled) {
    if (enabled_) obs::Tracer::SetActive(&tracer_);
  }
  ~ScopedCliTracer() {
    if (!enabled_) return;
    obs::Tracer::SetActive(nullptr);
    std::printf("trace (%llu root spans):\n%s",
                static_cast<unsigned long long>(tracer_.num_roots()),
                tracer_.ToString().c_str());
  }
  ScopedCliTracer(const ScopedCliTracer&) = delete;
  ScopedCliTracer& operator=(const ScopedCliTracer&) = delete;

 private:
  bool enabled_;
  obs::Tracer tracer_;
};

StatusOr<VehicleDataset> LoadDatasetCsv(const std::string& path,
                                        const std::string& country_code) {
  VUP_ASSIGN_OR_RETURN(const Country* country,
                       CountryRegistry::Global().Find(country_code));
  // Schema: date, utilization_hours, then every canonical feature column.
  std::vector<Field> fields;
  fields.push_back({"date", DataType::kDate, false});
  fields.push_back({"utilization_hours", DataType::kDouble, false});
  for (const std::string& name : VehicleDataset::FeatureNames()) {
    fields.push_back({name, DataType::kDouble, false});
  }
  VUP_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  VUP_ASSIGN_OR_RETURN(Table table, ReadCsvFile(path, schema));
  VehicleInfo info;
  info.vehicle_id = 1;
  info.country_code = country_code;
  return VehicleDataset::FromTable(info, table, *country);
}

ForecasterConfig MakeForecasterConfig(const Flags& flags) {
  ForecasterConfig cfg;
  std::string alg = flags.Get("algorithm", "GB");
  for (int a = 0; a < kNumAlgorithms; ++a) {
    if (AlgorithmToString(static_cast<Algorithm>(a)) == alg) {
      cfg.algorithm = static_cast<Algorithm>(a);
    }
  }
  cfg.windowing.lookback_w =
      static_cast<size_t>(flags.GetInt("lookback", 60));
  cfg.selection.top_k = static_cast<size_t>(flags.GetInt("topk", 15));
  return cfg;
}

// ---- Commands ---------------------------------------------------------

int RunGenerate(const Flags& flags) {
  std::string out_dir = flags.Get("out", ".");
  size_t vehicles = static_cast<size_t>(flags.GetInt("vehicles", 20));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  Fleet fleet = Fleet::Generate(FleetConfig::Small(vehicles, seed));

  // Manifest.
  Schema manifest_schema =
      Schema::Make({{"vehicle_id", DataType::kInt64, false},
                    {"type", DataType::kString, false},
                    {"model", DataType::kString, false},
                    {"country", DataType::kString, false},
                    {"install_date", DataType::kDate, false},
                    {"file", DataType::kString, false}})
          .value();
  Table manifest(manifest_schema);

  for (size_t i = 0; i < fleet.size(); ++i) {
    StatusOr<VehicleDataset> ds = PrepareVehicleDataset(fleet, i);
    if (!ds.ok()) return Fail(ds.status());
    StatusOr<Table> table = ds.value().ToTable();
    if (!table.ok()) return Fail(table.status());
    const VehicleInfo& info = fleet.vehicle(i);
    std::string file = StrFormat("vehicle_%lld.csv",
                                 static_cast<long long>(info.vehicle_id));
    Status written = WriteCsvFile(table.value(), out_dir + "/" + file);
    if (!written.ok()) return Fail(written);
    Status appended = manifest.AppendRow(
        {Value::Int(info.vehicle_id),
         Value::Str(std::string(VehicleTypeToString(info.type))),
         Value::Str(info.model_id), Value::Str(info.country_code),
         Value::Day(info.install_date), Value::Str(file)});
    if (!appended.ok()) return Fail(appended);
  }
  Status written = WriteCsvFile(manifest, out_dir + "/manifest.csv");
  if (!written.ok()) return Fail(written);
  std::printf("wrote %zu vehicle datasets + manifest.csv to %s\n",
              fleet.size(), out_dir.c_str());
  return 0;
}

int RunTrain(const Flags& flags) {
  StatusOr<VehicleDataset> ds =
      LoadDatasetCsv(flags.Get("data", ""), flags.Get("country", "IT"));
  if (!ds.ok()) return Fail(ds.status());

  ForecasterConfig cfg = MakeForecasterConfig(flags);
  size_t n = ds.value().num_days();
  size_t train_days = static_cast<size_t>(flags.GetInt("train-days", 200));
  size_t begin = n > train_days ? n - train_days : cfg.windowing.lookback_w;
  VehicleForecaster forecaster(cfg);
  Status trained = forecaster.Train(ds.value(), begin, n);
  if (!trained.ok()) return Fail(trained);

  std::ofstream out(flags.Get("out", ""));
  if (!out) {
    return Fail(Status::NotFound("cannot open " + flags.Get("out", "")));
  }
  Status saved = forecaster.Save(out);
  if (!saved.ok()) return Fail(saved);
  std::printf("trained %s on %zu records (%zu ACF-selected lags), saved to "
              "%s\n",
              std::string(AlgorithmToString(cfg.algorithm)).c_str(),
              n - begin, forecaster.selected_lags().size(),
              flags.Get("out", "").c_str());
  return 0;
}

int RunPredict(const Flags& flags) {
  StatusOr<VehicleDataset> ds =
      LoadDatasetCsv(flags.Get("data", ""), flags.Get("country", "IT"));
  if (!ds.ok()) return Fail(ds.status());
  std::ifstream in(flags.Get("model", ""));
  if (!in) {
    return Fail(Status::NotFound("cannot open " + flags.Get("model", "")));
  }
  StatusOr<VehicleForecaster> forecaster = VehicleForecaster::Load(in);
  if (!forecaster.ok()) return Fail(forecaster.status());
  StatusOr<double> pred =
      forecaster.value().PredictTarget(ds.value(), ds.value().num_days());
  if (!pred.ok()) return Fail(pred.status());
  Date tomorrow = ds.value().dates().back().AddDays(1);
  std::printf("%s %.2f\n", tomorrow.ToString().c_str(), pred.value());
  return 0;
}

int RunEvaluate(const Flags& flags) {
  StatusOr<VehicleDataset> ds =
      LoadDatasetCsv(flags.Get("data", ""), flags.Get("country", "IT"));
  if (!ds.ok()) return Fail(ds.status());

  EvaluationConfig cfg;
  cfg.forecaster = MakeForecasterConfig(flags);
  cfg.eval_days = static_cast<size_t>(flags.GetInt("eval-days", 60));
  cfg.retrain_every = static_cast<size_t>(flags.GetInt("retrain-every", 7));
  cfg.train_window = static_cast<size_t>(flags.GetInt("train-window", 140));
  cfg.scenario = flags.Get("scenario", "next-day") == "next-working-day"
                     ? Scenario::kNextWorkingDay
                     : Scenario::kNextDay;
  StatusOr<VehicleEvaluation> ev = EvaluateVehicle(ds.value(), cfg);
  if (!ev.ok()) return Fail(ev.status());
  std::printf("algorithm=%s scenario=%s predictions=%zu PE=%.2f%% "
              "MAE=%.3fh\n",
              std::string(AlgorithmToString(cfg.forecaster.algorithm))
                  .c_str(),
              std::string(ScenarioToString(cfg.scenario)).c_str(),
              ev.value().num_predictions, ev.value().pe, ev.value().mae);
  return 0;
}

int RunFleet(const Flags& flags) {
  std::string profile_name = flags.Get("fault-profile", "none");
  FaultProfile profile;
  if (profile_name == "none") {
    profile = FaultProfile::None();
  } else if (profile_name == "mild") {
    profile = FaultProfile::Mild();
  } else if (profile_name == "severe") {
    profile = FaultProfile::Severe();
  } else {
    std::fprintf(stderr,
                 "unknown --fault-profile=%s (none|mild|severe)\n",
                 profile_name.c_str());
    return 2;
  }

  int64_t vehicles = flags.GetInt("vehicles", 40);
  if (vehicles <= 0) {
    std::fprintf(stderr, "error: --vehicles must be positive, got %lld\n",
                 static_cast<long long>(vehicles));
    return 2;
  }
  int64_t jobs = flags.GetInt("jobs", 1);
  if (jobs < 0) {
    std::fprintf(stderr,
                 "error: --jobs must be >= 0 (0 = auto), got %lld\n",
                 static_cast<long long>(jobs));
    return 2;
  }
  if (jobs == 0) {
    // Auto: one job per hardware thread, capped so a many-core box does
    // not oversubscribe the small demo fleets this command runs on.
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = std::clamp<int64_t>(hw == 0 ? 1 : static_cast<int64_t>(hw), 1,
                               16);
  }
  const std::string metrics_format = ResolveMetricsFormat(flags);
  if (metrics_format.empty()) return 2;
  ScopedCliTracer tracer(flags.Has("trace"));

  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  Fleet fleet =
      Fleet::Generate(FleetConfig::Small(static_cast<size_t>(vehicles), seed));
  ExperimentRunner runner(&fleet);

  ExperimentOptions opts;
  opts.max_vehicles = static_cast<size_t>(flags.GetInt("max-vehicles", 6));
  opts.faults = profile;
  opts.fault_seed = static_cast<uint64_t>(flags.GetInt("fault-seed", 99));
  opts.jobs = static_cast<size_t>(jobs);

  EvaluationConfig cfg;
  cfg.forecaster = MakeForecasterConfig(flags);
  if (!flags.Has("algorithm")) cfg.forecaster.algorithm = Algorithm::kLasso;
  if (!flags.Has("lookback")) cfg.forecaster.windowing.lookback_w = 21;
  if (!flags.Has("topk")) cfg.forecaster.selection.top_k = 7;
  cfg.eval_days = static_cast<size_t>(flags.GetInt("eval-days", 20));
  cfg.retrain_every = static_cast<size_t>(flags.GetInt("retrain-every", 10));
  cfg.train_window = static_cast<size_t>(flags.GetInt("train-window", 60));

  StatusOr<ExperimentResult> run = runner.Run(cfg, opts);
  if (!run.ok()) return Fail(run.status());
  const ExperimentResult& result = run.value();
  std::printf("fleet=%zu selected=%zu algorithm=%s fault-profile=%s\n",
              fleet.size(), result.vehicle_indices.size(),
              std::string(AlgorithmToString(cfg.forecaster.algorithm))
                  .c_str(),
              profile_name.c_str());
  std::printf("PE=%.2f%% medianPE=%.2f%% MAE=%.3fh evaluated=%zu "
              "skipped=%zu quarantined=%zu\n",
              result.fleet.mean_pe, result.fleet.median_pe,
              result.fleet.mean_mae, result.fleet.vehicles_evaluated,
              result.fleet.vehicles_skipped,
              result.fleet.vehicles_quarantined);
  std::printf("degradation: %s\n", result.degradation.ToString().c_str());
  if (flags.Has("clusters")) {
    // Hierarchy report: cluster the evaluated vehicles' usage profiles and
    // compare per-vehicle vs pooled per-cluster vs pooled global PE on the
    // shared trailing-holdout protocol (holdout = --eval-days).
    const size_t k = static_cast<size_t>(
        std::max<long long>(flags.GetInt("clusters", 3), 1));
    std::vector<VehicleDataset> cluster_datasets;
    for (size_t index : result.vehicle_indices) {
      StatusOr<const VehicleDataset*> ds = runner.Dataset(index);
      if (!ds.ok()) return Fail(ds.status());
      cluster_datasets.push_back(*ds.value());
    }
    cluster::ProfileConfig profile_config;
    profile_config.acf_lags = static_cast<size_t>(
        std::max<long long>(flags.GetInt("acf-lags", 14), 1));
    cluster::KMeansConfig kmeans_config;
    kmeans_config.k = k;
    kmeans_config.seed = seed;
    StatusOr<cluster::ClustersMeta> cmeta = cluster::BuildFleetClustering(
        cluster_datasets, profile_config, kmeans_config);
    if (!cmeta.ok()) return Fail(cmeta.status());
    cluster::PooledTrainingOptions popts;
    popts.forecaster = cfg.forecaster;
    popts.train_window = cfg.train_window;
    popts.holdout_days = cfg.eval_days;
    StatusOr<cluster::HierarchyEvaluation> hier =
        cluster::EvaluateHierarchy(cluster_datasets, cmeta.value(), popts);
    if (!hier.ok()) return Fail(hier.status());
    const cluster::HierarchyEvaluation& h = hier.value();
    std::printf("hierarchy k=%zu inertia=%.3f: per-vehicle PE=%.2f%% "
                "per-cluster PE=%.2f%% global PE=%.2f%% (evaluated=%zu "
                "skipped=%zu)\n",
                cmeta.value().k(), cmeta.value().inertia,
                h.per_vehicle.mean_pe, h.per_cluster.mean_pe,
                h.global.mean_pe, h.per_vehicle.vehicles,
                h.vehicles_skipped);
  }
  const int metrics_rc = WriteMetricsOutput(
      flags, metrics_format, obs::MetricsRegistry::Global().Snapshot());
  if (metrics_rc != 0) return metrics_rc;
  if (flags.Has("strict") && result.degradation.vehicles_quarantined > 0) {
    std::fprintf(stderr,
                 "error: %zu vehicles quarantined under --strict\n",
                 result.degradation.vehicles_quarantined);
    return 1;
  }
  return 0;
}

int RunPublish(const Flags& flags) {
  const std::string out_dir = flags.Get("out", "");
  if (flags.Has("rollback")) {
    // Standalone revert: undo the last journaled promotion and exit.
    StatusOr<std::string> restored = serve::RollbackGeneration(out_dir);
    if (!restored.ok()) return Fail(restored.status());
    std::printf("rolled back %s to %s\n", out_dir.c_str(),
                restored.value().c_str());
    return 0;
  }
  serve::RegistryMeta meta;
  meta.fleet_seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  meta.fleet_vehicles =
      static_cast<size_t>(flags.GetInt("vehicles", 40));
  meta.algorithm = flags.Get("algorithm", "Lasso");
  const size_t max_vehicles =
      static_cast<size_t>(flags.GetInt("max-vehicles", 6));
  const size_t train_days =
      static_cast<size_t>(flags.GetInt("train-days", 200));

  Fleet fleet = Fleet::Generate(
      FleetConfig::Small(meta.fleet_vehicles, meta.fleet_seed));
  ExperimentRunner runner(&fleet);
  ExperimentOptions opts;
  opts.max_vehicles = max_vehicles;
  std::vector<size_t> selected = runner.SelectVehicles(opts);
  if (selected.empty()) {
    return Fail(Status::FailedPrecondition(
        "no eligible vehicles to publish models for"));
  }

  ForecasterConfig cfg;
  cfg.algorithm = Algorithm::kLasso;
  for (int a = 0; a < kNumAlgorithms; ++a) {
    if (AlgorithmToString(static_cast<Algorithm>(a)) == meta.algorithm) {
      cfg.algorithm = static_cast<Algorithm>(a);
    }
  }
  cfg.windowing.lookback_w =
      static_cast<size_t>(flags.GetInt("lookback", 21));
  cfg.selection.top_k = static_cast<size_t>(flags.GetInt("topk", 7));

  serve::ModelRegistry::Options reg_opts;
  reg_opts.directory = out_dir;
  reg_opts.cache_capacity = 0;
  StatusOr<serve::ModelRegistry> registry =
      serve::ModelRegistry::Open(std::move(reg_opts));
  if (!registry.ok()) return Fail(registry.status());

  // Bundles are staged into a fresh generation, made live by a single
  // atomic CURRENT flip: a publish killed mid-run leaves any previously
  // published fleet untouched.
  StatusOr<serve::GenerationPublisher> publisher =
      registry.value().NewGeneration();
  if (!publisher.ok()) return Fail(publisher.status());
  // --compact stages a .cfcst mmap twin next to every .fcst text bundle;
  // both land in the MANIFEST, so a prefer_compact registry verifies the
  // compact bytes with the same CRC discipline as the text ones.
  if (flags.Has("compact")) publisher.value().set_emit_compact(true);

  size_t published = 0;
  std::map<int64_t, const VehicleDataset*> probe_data;
  for (size_t index : selected) {
    StatusOr<const VehicleDataset*> ds = runner.Dataset(index);
    if (!ds.ok()) return Fail(ds.status());
    const VehicleDataset& d = *ds.value();
    const size_t n = d.num_days();
    const size_t begin =
        n > train_days
            ? std::max(n - train_days, cfg.windowing.lookback_w)
            : cfg.windowing.lookback_w;
    VehicleForecaster forecaster(cfg);
    Status trained = forecaster.Train(d, begin, n);
    const int64_t id = fleet.vehicle(index).vehicle_id;
    if (!trained.ok()) {
      std::fprintf(stderr, "warning: vehicle %lld not published: %s\n",
                   static_cast<long long>(id),
                   trained.ToString().c_str());
      continue;
    }
    Status stored = publisher.value().Add(id, forecaster);
    if (!stored.ok()) return Fail(stored);
    probe_data[id] = ds.value();
    ++published;
  }
  if (published == 0) {
    return Fail(Status::Internal("no vehicle model could be trained"));
  }
  // Optional hierarchy publish: cluster the same vehicles, stage pooled
  // per-cluster / per-type / global bundles under their reserved ids plus
  // clusters.meta into the generation, all made live by the same CURRENT
  // flip as the per-vehicle bundles.
  size_t pooled_published = 0;
  size_t pooled_k = 0;
  if (flags.Has("clusters")) {
    std::vector<VehicleDataset> cluster_datasets;
    for (size_t index : selected) {
      StatusOr<const VehicleDataset*> ds = runner.Dataset(index);
      if (!ds.ok()) return Fail(ds.status());
      cluster_datasets.push_back(*ds.value());
    }
    cluster::ProfileConfig profile_config;
    profile_config.acf_lags = static_cast<size_t>(
        std::max<long long>(flags.GetInt("acf-lags", 14), 1));
    cluster::KMeansConfig kmeans_config;
    kmeans_config.k = static_cast<size_t>(
        std::max<long long>(flags.GetInt("clusters", 3), 1));
    kmeans_config.seed = meta.fleet_seed;
    StatusOr<cluster::ClustersMeta> cmeta = cluster::BuildFleetClustering(
        cluster_datasets, profile_config, kmeans_config);
    if (!cmeta.ok()) return Fail(cmeta.status());
    pooled_k = cmeta.value().k();
    cluster::PooledTrainingOptions popts;
    popts.forecaster = cfg;
    popts.train_window = train_days;
    popts.holdout_days = 0;  // Serving models train through the last day.
    StatusOr<std::vector<cluster::PooledModel>> pooled =
        cluster::TrainPooledHierarchy(cluster_datasets, cmeta.value(),
                                      popts);
    if (!pooled.ok()) return Fail(pooled.status());
    for (const cluster::PooledModel& model : pooled.value()) {
      Status stored = publisher.value().Add(model.model_id, model.forecaster);
      if (!stored.ok()) return Fail(stored);
      ++pooled_published;
    }
    Status meta_written = cluster::WriteClustersMetaFile(
        publisher.value().staging_dir(), cmeta.value());
    if (!meta_written.ok()) return Fail(meta_written);
  }
  // The live generation's bundle directory (if any) before the CURRENT
  // flip: the holdout-PE guardrail and the canary both compare against it.
  std::string live_dir;
  if (registry.value().active_generation() != 0) {
    live_dir = out_dir + "/" +
               serve::ModelRegistry::GenerationDirName(
                   registry.value().active_generation());
  } else if (!registry.value().ListVehicleIds().empty()) {
    live_dir = out_dir;  // Flat legacy layout serving live bundles.
  }

  if (flags.Has("validate")) {
    // Publish gate: every staged bundle must deserialize and survive its
    // sanity probes, and the staged fleet must not regress holdout PE
    // against the live generation. A failing generation never leaves
    // staging -- CURRENT is untouched and the staging dir is cleaned up.
    StatusOr<serve::ValidationReport> report = serve::ValidateGeneration(
        publisher.value().staging_dir(), live_dir, probe_data);
    const bool passed = report.ok() && report.value().ok();
    obs::Counter* validations = obs::MetricsRegistry::Global().GetCounter(
        "vupred_publish_validations_total",
        "Publish-gate validation outcomes",
        {{"result", passed ? "pass" : "fail"}});
    if (validations != nullptr) validations->Increment();
    if (!report.ok()) return Fail(report.status());
    std::printf("validate: %s\n", report.value().Summary().c_str());
    if (!passed) {
      for (const std::string& failure : report.value().failures) {
        std::fprintf(stderr, "validate: %s\n", failure.c_str());
      }
      return Fail(Status::FailedPrecondition(
          "generation failed validation; CURRENT not advanced"));
    }
  }

  Status finalized = publisher.value().Finalize(meta);
  if (!finalized.ok()) return Fail(finalized);

  const double canary_fraction = flags.GetDouble("canary-fraction", 0.0);
  if (canary_fraction > 0.0 && !live_dir.empty()) {
    // Canary drill before the flip: shadow-score the finalized (still
    // un-promoted) generation behind live traffic on the seeded vehicle
    // slice. A guardrail breach aborts with CURRENT untouched.
    serve::ModelRegistry::Options staged_opts;
    staged_opts.directory = publisher.value().staging_dir();
    staged_opts.cache_capacity = 0;
    StatusOr<serve::ModelRegistry> staged =
        serve::ModelRegistry::Open(std::move(staged_opts));
    if (!staged.ok()) return Fail(staged.status());
    serve::PredictionService::Options service_opts;
    service_opts.canary.staged = &staged.value();
    service_opts.canary.fraction = canary_fraction;
    service_opts.canary.seed = meta.fleet_seed;
    serve::PredictionService service(&registry.value(), nullptr,
                                     service_opts);
    for (const auto& [id, ds] : probe_data) {
      serve::PredictionRequest request(id, ds, ds->num_days());
      service.Predict(request);
    }
    serve::CanaryVerdict verdict = service.EvaluateCanary();
    std::printf("canary: %s (shadow=%llu breaches=%llu)\n",
                verdict.reason.c_str(),
                static_cast<unsigned long long>(
                    verdict.snapshot.shadow_scores),
                static_cast<unsigned long long>(
                    verdict.snapshot.breaches()));
    if (!verdict.healthy) {
      return Fail(Status::FailedPrecondition(
          "canary guardrail breached; CURRENT not advanced: " +
          verdict.reason));
    }
  }

  Status committed = publisher.value().Promote();
  if (!committed.ok()) return Fail(committed);
  // Pick the committed generation up before pruning, so the prune keeps
  // the fleet that was just made live.
  Status reloaded = registry.value().Reload();
  if (!reloaded.ok()) return Fail(reloaded);
  const long long keep = flags.GetInt("keep-generations", 2);
  if (keep >= 0) {
    Status pruned = registry.value().PruneGenerations(
        static_cast<size_t>(keep));
    if (!pruned.ok()) return Fail(pruned);
  }
  std::printf("published %zu/%zu model bundles (%s) to %s as %s\n",
              published, selected.size(),
              std::string(AlgorithmToString(cfg.algorithm)).c_str(),
              out_dir.c_str(),
              serve::ModelRegistry::GenerationDirName(
                  publisher.value().number())
                  .c_str());
  if (flags.Has("clusters")) {
    std::printf("published %zu pooled hierarchy bundles + clusters.meta "
                "(k=%zu)\n",
                pooled_published, pooled_k);
  }
  return 0;
}

int RunPublishBench(const Flags& flags) {
  namespace fs = std::filesystem;
  const size_t vehicles =
      static_cast<size_t>(std::max<long long>(flags.GetInt("vehicles", 12), 2));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t max_vehicles = static_cast<size_t>(
      std::max<long long>(flags.GetInt("max-vehicles", 6), 2));
  const size_t train_days =
      static_cast<size_t>(flags.GetInt("train-days", 200));
  const size_t clusters = static_cast<size_t>(
      std::max<long long>(flags.GetInt("clusters", 3), 1));
  const std::string json_path = flags.Get("json", "BENCH_publish.json");
  const std::string registry_dir = flags.Get(
      "registry-dir",
      (fs::temp_directory_path() / "vupred_publish_bench").string());
  const std::string metrics_format = ResolveMetricsFormat(flags);
  if (metrics_format.empty()) return 2;

  const auto seconds_since = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  std::error_code ec;
  fs::remove_all(registry_dir, ec);

  // Seeded fleet + per-vehicle forecasters; the bench publishes two
  // generations trained on different windows so the canary / rollback
  // drills compare genuinely different fleets.
  Fleet fleet = Fleet::Generate(FleetConfig::Small(vehicles, seed));
  ExperimentRunner runner(&fleet);
  ExperimentOptions opts;
  opts.max_vehicles = max_vehicles;
  std::vector<size_t> selected = runner.SelectVehicles(opts);
  if (selected.size() < 2) {
    return Fail(Status::FailedPrecondition(
        "publish-bench needs at least 2 eligible vehicles"));
  }

  ForecasterConfig cfg;
  cfg.algorithm = Algorithm::kLasso;
  cfg.windowing.lookback_w =
      static_cast<size_t>(flags.GetInt("lookback", 21));
  cfg.selection.top_k = static_cast<size_t>(flags.GetInt("topk", 7));

  std::map<int64_t, const VehicleDataset*> probe_data;
  std::vector<VehicleDataset> cluster_datasets;
  std::vector<int64_t> ids;
  for (size_t index : selected) {
    StatusOr<const VehicleDataset*> ds = runner.Dataset(index);
    if (!ds.ok()) return Fail(ds.status());
    const int64_t id = fleet.vehicle(index).vehicle_id;
    probe_data[id] = ds.value();
    cluster_datasets.push_back(*ds.value());
    ids.push_back(id);
  }

  // Train one fleet per generation: gen A on the full window, gen B on a
  // shorter one (a "newer, differently trained" fleet).
  const auto train_fleet = [&](size_t window)
      -> StatusOr<std::map<int64_t, VehicleForecaster>> {
    std::map<int64_t, VehicleForecaster> models;
    for (const int64_t id : ids) {
      const VehicleDataset& d = *probe_data[id];
      const size_t n = d.num_days();
      const size_t begin = n > window
                               ? std::max(n - window, cfg.windowing.lookback_w)
                               : cfg.windowing.lookback_w;
      VehicleForecaster forecaster(cfg);
      VUP_RETURN_IF_ERROR(forecaster.Train(d, begin, n));
      models.emplace(id, std::move(forecaster));
    }
    return models;
  };
  StatusOr<std::map<int64_t, VehicleForecaster>> fleet_a =
      train_fleet(train_days);
  if (!fleet_a.ok()) return Fail(fleet_a.status());
  StatusOr<std::map<int64_t, VehicleForecaster>> fleet_b = train_fleet(
      train_days > 60 ? train_days - 30 : train_days);
  if (!fleet_b.ok()) return Fail(fleet_b.status());

  // Shared pooled hierarchy (clusters.meta + reserved-id bundles) so the
  // corruption drill can prove cluster-level fallback serving.
  cluster::ProfileConfig profile_config;
  profile_config.acf_lags = static_cast<size_t>(
      std::max<long long>(flags.GetInt("acf-lags", 14), 1));
  cluster::KMeansConfig kmeans_config;
  kmeans_config.k = clusters;
  kmeans_config.seed = seed;
  StatusOr<cluster::ClustersMeta> cmeta = cluster::BuildFleetClustering(
      cluster_datasets, profile_config, kmeans_config);
  if (!cmeta.ok()) return Fail(cmeta.status());
  cluster::PooledTrainingOptions popts;
  popts.forecaster = cfg;
  popts.train_window = train_days;
  popts.holdout_days = 0;
  StatusOr<std::vector<cluster::PooledModel>> pooled =
      cluster::TrainPooledHierarchy(cluster_datasets, cmeta.value(), popts);
  if (!pooled.ok()) return Fail(pooled.status());

  serve::ModelRegistry::Options reg_opts;
  reg_opts.directory = registry_dir;
  reg_opts.cache_capacity = 0;
  StatusOr<serve::ModelRegistry> registry =
      serve::ModelRegistry::Open(std::move(reg_opts));
  if (!registry.ok()) return Fail(registry.status());

  serve::RegistryMeta meta;
  meta.fleet_seed = seed;
  meta.fleet_vehicles = vehicles;
  meta.algorithm = std::string(AlgorithmToString(cfg.algorithm));

  double validate_s = 0.0;
  double canary_s = 0.0;
  double promote_s = 0.0;

  // Stage + validate + promote one generation through the full guarded
  // path; the canary drill only runs once a live generation exists.
  const auto publish_generation =
      [&](const std::map<int64_t, VehicleForecaster>& models,
          bool canary) -> StatusOr<uint64_t> {
    StatusOr<serve::GenerationPublisher> publisher =
        registry.value().NewGeneration();
    if (!publisher.ok()) return publisher.status();
    for (const auto& [id, model] : models) {
      VUP_RETURN_IF_ERROR(publisher.value().Add(id, model));
    }
    for (const cluster::PooledModel& model : pooled.value()) {
      VUP_RETURN_IF_ERROR(
          publisher.value().Add(model.model_id, model.forecaster));
    }
    VUP_RETURN_IF_ERROR(cluster::WriteClustersMetaFile(
        publisher.value().staging_dir(), cmeta.value()));

    std::string live_dir;
    if (registry.value().active_generation() != 0) {
      live_dir = registry_dir + "/" +
                 serve::ModelRegistry::GenerationDirName(
                     registry.value().active_generation());
    }
    serve::ValidationOptions vopts;
    // The bench times the gate; the regression-strictness knobs are
    // exercised by the unit suite. Both fleets are healthy here.
    vopts.max_pe_regression_ratio = 10.0;
    const auto validate_t0 = std::chrono::steady_clock::now();
    StatusOr<serve::ValidationReport> report = serve::ValidateGeneration(
        publisher.value().staging_dir(), live_dir, probe_data, vopts);
    validate_s += seconds_since(validate_t0);
    if (!report.ok()) return report.status();
    if (!report.value().ok()) {
      return Status::Internal("bench generation failed validation: " +
                              report.value().Summary());
    }
    VUP_RETURN_IF_ERROR(publisher.value().Finalize(meta));

    if (canary && !live_dir.empty()) {
      serve::ModelRegistry::Options staged_opts;
      staged_opts.directory = publisher.value().staging_dir();
      staged_opts.cache_capacity = 0;
      StatusOr<serve::ModelRegistry> staged =
          serve::ModelRegistry::Open(std::move(staged_opts));
      if (!staged.ok()) return staged.status();
      serve::PredictionService::Options service_opts;
      service_opts.canary.staged = &staged.value();
      service_opts.canary.fraction = 1.0;
      service_opts.canary.seed = seed;
      // Differently trained fleets legitimately disagree; the drill
      // guards against non-finite/erroring staged models, not drift.
      service_opts.canary.divergence_hours = 24.0;
      serve::PredictionService service(&registry.value(), nullptr,
                                       service_opts);
      const auto canary_t0 = std::chrono::steady_clock::now();
      for (const auto& [id, ds] : probe_data) {
        serve::PredictionRequest request(id, ds, ds->num_days());
        service.Predict(request);
      }
      serve::CanaryVerdict verdict = service.EvaluateCanary();
      canary_s += seconds_since(canary_t0);
      if (!verdict.healthy) {
        return Status::Internal("bench canary breached: " + verdict.reason);
      }
      if (verdict.snapshot.shadow_scores != probe_data.size()) {
        return Status::Internal(StrFormat(
            "canary shadow-scored %llu of %zu vehicles",
            static_cast<unsigned long long>(verdict.snapshot.shadow_scores),
            probe_data.size()));
      }
    }

    const auto promote_t0 = std::chrono::steady_clock::now();
    VUP_RETURN_IF_ERROR(publisher.value().Promote());
    VUP_RETURN_IF_ERROR(registry.value().Reload());
    promote_s += seconds_since(promote_t0);
    return publisher.value().number();
  };

  StatusOr<uint64_t> gen_a = publish_generation(fleet_a.value(), false);
  if (!gen_a.ok()) return Fail(gen_a.status());

  // Reference prediction served by generation A, for the rollback proof.
  const int64_t sample_id = ids.front();
  serve::PredictionService::Options hier_opts;
  hier_opts.hierarchy = &cmeta.value();
  const auto serve_once = [&](int64_t id) -> serve::PredictionResponse {
    serve::PredictionService service(&registry.value(), nullptr, hier_opts);
    serve::PredictionRequest request(id, probe_data[id],
                                     probe_data[id]->num_days());
    return service.Predict(request);
  };
  serve::PredictionResponse sample_a = serve_once(sample_id);
  if (!sample_a.status.ok()) return Fail(sample_a.status);

  StatusOr<uint64_t> gen_b = publish_generation(fleet_b.value(), true);
  if (!gen_b.ok()) return Fail(gen_b.status());

  // Corruption drill: bit-rot one live bundle, let the scrubber catch and
  // quarantine it, then prove the victim is served from the hierarchy.
  const int64_t victim_id = ids.back();
  FaultInjector rot(FaultProfile::BitRot(), seed);
  FileCorruptionStats rot_stats;
  StatusOr<FileCorruptionKind> kind = rot.CorruptFileOnDisk(
      registry.value().BundlePath(victim_id),
      static_cast<uint64_t>(victim_id), &rot_stats);
  if (!kind.ok()) return Fail(kind.status());
  if (kind.value() == FileCorruptionKind::kNone) {
    return Fail(Status::Internal("BitRot profile spared the victim bundle"));
  }
  serve::ScrubOptions scrub_opts;
  scrub_opts.root = registry_dir;
  scrub_opts.registry = &registry.value();
  serve::RegistryScrubber scrubber(scrub_opts);
  const auto scrub_t0 = std::chrono::steady_clock::now();
  StatusOr<serve::ScrubReport> scrub = scrubber.ScrubOnce();
  const double scrub_s = seconds_since(scrub_t0);
  if (!scrub.ok()) return Fail(scrub.status());
  if (scrub.value().corruptions() == 0 ||
      !registry.value().IsQuarantined(victim_id)) {
    return Fail(Status::Internal(
        "scrubber missed the injected corruption: " +
        scrub.value().ToString()));
  }
  serve::PredictionResponse victim_response = serve_once(victim_id);
  if (!victim_response.status.ok()) return Fail(victim_response.status);
  if (victim_response.level == serve::ServedLevel::kVehicle) {
    return Fail(Status::Internal(
        "quarantined model was served at vehicle level"));
  }
  // Snapshot while the victim is still quarantined: the rollback below
  // swaps generations, which clears the quarantine set (a gauge).
  const size_t quarantined_models =
      registry.value().stats().quarantined_models;

  // Rollback drill: revert the B promotion and prove serving flips back
  // to generation A's answers.
  const auto rollback_t0 = std::chrono::steady_clock::now();
  Status rolled_back = registry.value().Rollback();
  const double rollback_s = seconds_since(rollback_t0);
  if (!rolled_back.ok()) return Fail(rolled_back);
  if (registry.value().active_generation() != gen_a.value()) {
    return Fail(Status::Internal(StrFormat(
        "rollback landed on generation %llu, expected %llu",
        static_cast<unsigned long long>(
            registry.value().active_generation()),
        static_cast<unsigned long long>(gen_a.value()))));
  }
  serve::PredictionResponse sample_restored = serve_once(sample_id);
  if (!sample_restored.status.ok()) return Fail(sample_restored.status);
  if (sample_restored.prediction != sample_a.prediction ||
      sample_restored.level != serve::ServedLevel::kVehicle) {
    return Fail(Status::Internal(StrFormat(
        "rollback did not restore generation A serving: %.6f vs %.6f",
        sample_restored.prediction, sample_a.prediction)));
  }

  std::printf("publish-bench: fleet=%zu published=%zu pooled=%zu "
              "clusters=%zu seed=%llu\n",
              vehicles, ids.size(), pooled.value().size(),
              cmeta.value().k(), static_cast<unsigned long long>(seed));
  std::printf("stage      wall\n");
  std::printf("validate  %9.3fms  (2 generations)\n", validate_s * 1e3);
  std::printf("canary    %9.3fms  (%zu shadow scores)\n", canary_s * 1e3,
              probe_data.size());
  std::printf("promote   %9.3fms  (2 flips incl. reload)\n",
              promote_s * 1e3);
  std::printf("scrub     %9.3fms  (%zu files, %zu corrupt, %s)\n",
              scrub_s * 1e3, scrub.value().files_checked,
              scrub.value().corruptions(),
              std::string(FileCorruptionKindToString(kind.value())).c_str());
  std::printf("rollback  %9.3fms  (gen %llu -> gen %llu)\n",
              rollback_s * 1e3,
              static_cast<unsigned long long>(gen_b.value()),
              static_cast<unsigned long long>(gen_a.value()));
  std::printf("verify: corrupted bundle quarantined + served at level=%s; "
              "rollback restores generation A predictions\n",
              std::string(
                  serve::ServedLevelToString(victim_response.level))
                  .c_str());

  std::ofstream json(json_path, std::ios::trunc);
  if (!json) return Fail(Status::Internal("cannot write " + json_path));
  json << StrFormat(
      "{\n"
      "  \"bench\": \"publish\",\n"
      "  \"schema_version\": 1,\n"
      "  \"fleet_vehicles\": %zu,\n"
      "  \"published_models\": %zu,\n"
      "  \"pooled_models\": %zu,\n"
      "  \"clusters\": %zu,\n"
      "  \"generations_published\": 2,\n"
      "  \"validate_seconds\": %.6f,\n"
      "  \"canary_seconds\": %.6f,\n"
      "  \"promote_seconds\": %.6f,\n"
      "  \"scrub_seconds\": %.6f,\n"
      "  \"rollback_seconds\": %.6f,\n"
      "  \"canary_shadow_scores\": %zu,\n"
      "  \"scrub_files_checked\": %zu,\n"
      "  \"scrub_corruptions\": %zu,\n"
      "  \"corruption_kind\": \"%s\",\n"
      "  \"quarantined_models\": %zu,\n"
      "  \"victim_served_level\": \"%s\",\n"
      "  \"verify\": \"rollback-restores-previous-generation\"\n"
      "}\n",
      vehicles, ids.size(), pooled.value().size(), cmeta.value().k(),
      validate_s, canary_s, promote_s, scrub_s, rollback_s,
      probe_data.size(), scrub.value().files_checked,
      scrub.value().corruptions(),
      std::string(FileCorruptionKindToString(kind.value())).c_str(),
      quarantined_models,
      std::string(serve::ServedLevelToString(victim_response.level))
          .c_str());
  if (!json) return Fail(Status::DataLoss("write failed: " + json_path));
  std::printf("wrote %s\n", json_path.c_str());

  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  registry.value().CollectMetrics(&snapshot);
  scrubber.CollectMetrics(&snapshot);
  if (!flags.Has("registry-dir")) fs::remove_all(registry_dir, ec);
  return WriteMetricsOutput(flags, metrics_format, std::move(snapshot));
}

/// Current / peak resident set in MiB from /proc/self/status. Zeros when
/// the file is unavailable (non-Linux), which also disables the RSS gate.
std::pair<double, double> ReadRssMb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  long long rss_kb = 0, hwm_kb = 0, kb = 0;
  while (std::getline(status, line)) {
    if (std::sscanf(line.c_str(), "VmRSS: %lld kB", &kb) == 1) rss_kb = kb;
    if (std::sscanf(line.c_str(), "VmHWM: %lld kB", &kb) == 1) hwm_kb = kb;
  }
  return {static_cast<double>(rss_kb) / 1024.0,
          static_cast<double>(hwm_kb) / 1024.0};
}

/// The per-shard slice array every schema-v2 serve report carries. The
/// validator cross-checks that these slices sum to the report's totals.
std::string ShardStatsJson(const serve::ModelRegistryStats& stats) {
  std::ostringstream out;
  out << "[";
  for (size_t s = 0; s < stats.shards.size(); ++s) {
    const serve::ModelRegistryShardStats& shard = stats.shards[s];
    out << (s == 0 ? "\n" : ",\n");
    out << StrFormat(
        "    {\"shard\": %zu, \"hits\": %llu, \"misses\": %llu, "
        "\"evictions\": %llu, \"load_failures\": %llu, "
        "\"resident_models\": %llu, \"cache_bytes\": %llu}",
        s, static_cast<unsigned long long>(shard.hits),
        static_cast<unsigned long long>(shard.misses),
        static_cast<unsigned long long>(shard.evictions),
        static_cast<unsigned long long>(shard.load_failures),
        static_cast<unsigned long long>(shard.resident_models),
        static_cast<unsigned long long>(shard.cache_bytes));
  }
  out << "\n  ]";
  return out.str();
}

/// Bounds/counts/quantiles of a latency histogram, in microseconds.
std::string LatencyHistogramJson(const obs::Histogram& histogram) {
  const obs::HistogramData data = histogram.Snapshot();
  std::ostringstream out;
  out << "{\n    \"bounds_us\": [";
  for (size_t i = 0; i < data.bounds.size(); ++i) {
    out << (i == 0 ? "" : ", ") << StrFormat("%.0f", data.bounds[i]);
  }
  out << "],\n    \"counts\": [";
  for (size_t i = 0; i < data.counts.size(); ++i) {
    out << (i == 0 ? "" : ", ")
        << static_cast<unsigned long long>(data.counts[i]);
  }
  out << StrFormat(
      "],\n    \"count\": %llu,\n    \"p50_us\": %.1f,\n"
      "    \"p95_us\": %.1f,\n    \"p99_us\": %.1f\n  }",
      static_cast<unsigned long long>(data.count), data.Quantile(0.50),
      data.Quantile(0.95), data.Quantile(0.99));
  return out.str();
}

/// Synthetic-registry mode: vupred serve-bench --vehicles=N [--compact]
/// [--shards=S]. Trains one template forecaster per ML algorithm, stamps
/// the serialized bundle bytes across N vehicle ids (text + compact
/// twins), then drives a seeded Get() stream against the sharded registry
/// and reports per-shard cache behavior, load-latency histograms, and the
/// process RSS against --max-rss-mb. Model-count scale without
/// model-training cost: publishing is byte replication, so a 10^5..10^6
/// fleet is minutes of IO, not days of training.
int RunServeBenchSynthetic(const Flags& flags) {
  namespace fs = std::filesystem;
  const size_t vehicles = static_cast<size_t>(
      std::max<long long>(flags.GetInt("vehicles", 100'000), 1));
  const size_t shards = static_cast<size_t>(
      std::max<long long>(flags.GetInt("shards", 8), 1));
  const bool compact = flags.Has("compact");
  const size_t cache_mb = static_cast<size_t>(
      std::max<long long>(flags.GetInt("cache-mb", 64), 0));
  const long long max_rss_mb = flags.GetInt("max-rss-mb", 0);
  const size_t num_requests = static_cast<size_t>(std::max<long long>(
      flags.GetInt("requests", static_cast<long long>(vehicles)), 1));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const uint64_t stream_seed =
      static_cast<uint64_t>(flags.GetInt("stream-seed", 7));
  const std::string json_path = flags.Get("json", "BENCH_serve.json");
  const std::string metrics_format = ResolveMetricsFormat(flags);
  if (metrics_format.empty()) return 2;

  const std::string registry_dir = flags.Get(
      "registry",
      (fs::temp_directory_path() / "vupred_serve_bench_synth").string());
  std::error_code ec;
  if (!flags.Has("registry")) fs::remove_all(registry_dir, ec);

  // One template per ML algorithm, all trained on the same seeded
  // vehicle; vehicle id v serves template (v-1) mod 4, so every algorithm
  // is exercised at every scale.
  const Algorithm kTemplateAlgorithms[] = {
      Algorithm::kLinearRegression, Algorithm::kLasso, Algorithm::kSvr,
      Algorithm::kGradientBoosting};
  Fleet fleet = Fleet::Generate(FleetConfig::Small(8, seed));
  ExperimentRunner runner(&fleet);
  ExperimentOptions opts;
  opts.max_vehicles = 1;
  std::vector<size_t> selected = runner.SelectVehicles(opts);
  if (selected.empty()) {
    return Fail(Status::FailedPrecondition(
        "no eligible template vehicle in the seeded fleet"));
  }
  StatusOr<const VehicleDataset*> template_ds = runner.Dataset(selected[0]);
  if (!template_ds.ok()) return Fail(template_ds.status());
  const VehicleDataset& ds = *template_ds.value();

  struct Template {
    std::string name;
    std::string text;
    std::string compact;
  };
  std::vector<Template> templates;
  for (Algorithm algorithm : kTemplateAlgorithms) {
    ForecasterConfig cfg;
    cfg.algorithm = algorithm;
    cfg.windowing.lookback_w =
        static_cast<size_t>(flags.GetInt("lookback", 21));
    cfg.selection.top_k = static_cast<size_t>(flags.GetInt("topk", 7));
    VehicleForecaster forecaster(cfg);
    const size_t n = ds.num_days();
    const size_t begin = n > 200 ? std::max<size_t>(n - 200, cfg.windowing.lookback_w)
                                 : cfg.windowing.lookback_w;
    Status trained = forecaster.Train(ds, begin, n);
    if (!trained.ok()) return Fail(trained);
    std::ostringstream text;
    Status saved = forecaster.Save(text);
    if (!saved.ok()) return Fail(saved);
    Template t;
    t.name = std::string(AlgorithmToString(algorithm));
    t.text = text.str();
    if (compact) {
      StatusOr<std::string> bytes = forecaster.SaveCompact();
      if (!bytes.ok()) return Fail(bytes.status());
      t.compact = std::move(bytes).value();
    }
    templates.push_back(std::move(t));
  }

  // Stamp the template bundle bytes across the synthetic fleet (ids
  // 1..vehicles) and promote the generation; Finalize CRCs every staged
  // file into the MANIFEST like a real publish.
  serve::ModelRegistry::Options pub_opts;
  pub_opts.directory = registry_dir;
  pub_opts.cache_capacity = 0;
  StatusOr<serve::ModelRegistry> pub_registry =
      serve::ModelRegistry::Open(std::move(pub_opts));
  if (!pub_registry.ok()) return Fail(pub_registry.status());
  StatusOr<serve::GenerationPublisher> publisher =
      pub_registry.value().NewGeneration();
  if (!publisher.ok()) return Fail(publisher.status());
  const auto publish_start = std::chrono::steady_clock::now();
  for (size_t v = 1; v <= vehicles; ++v) {
    const Template& t = templates[(v - 1) % templates.size()];
    Status stored = publisher.value().AddPrebuilt(
        static_cast<int64_t>(v), t.text,
        compact ? std::string_view(t.compact) : std::string_view());
    if (!stored.ok()) return Fail(stored);
  }
  serve::RegistryMeta meta;
  meta.fleet_seed = seed;
  meta.fleet_vehicles = 8;
  meta.algorithm = "synthetic-mixed";
  Status committed = publisher.value().Commit(meta);
  if (!committed.ok()) return Fail(committed);
  const double publish_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    publish_start)
          .count();

  // The serving registry under test: sharded, byte-budgeted, optionally
  // preferring the compact mmap twins.
  serve::ModelRegistry::Options reg_opts;
  reg_opts.directory = registry_dir;
  reg_opts.cache_capacity = vehicles;  // Entry count never binds; bytes do.
  reg_opts.cache_max_bytes = cache_mb << 20;
  reg_opts.shards = shards;
  reg_opts.prefer_compact = compact;
  StatusOr<serve::ModelRegistry> registry =
      serve::ModelRegistry::Open(std::move(reg_opts));
  if (!registry.ok()) return Fail(registry.status());

  // Parity gate before any timing: for one vehicle per template, the
  // served prediction must match the text bundle loaded offline -- the
  // serving path's only contract that matters. LR is bitwise always;
  // float32-payload algorithms (Lasso/SVR/GB) get the documented 0.05
  // ceiling when --compact reroutes them through the mmap decoder.
  const size_t target = ds.num_days();
  double max_delta = 0.0;
  std::string parity_json = "{";
  for (size_t t = 0; t < templates.size() && t < vehicles; ++t) {
    const int64_t id = static_cast<int64_t>(t + 1);
    std::ifstream bundle(registry.value().BundlePath(id));
    StatusOr<VehicleForecaster> offline = VehicleForecaster::Load(bundle);
    if (!offline.ok()) return Fail(offline.status());
    StatusOr<double> offline_pred =
        offline.value().PredictTarget(ds, target);
    if (!offline_pred.ok()) return Fail(offline_pred.status());
    StatusOr<std::shared_ptr<const VehicleForecaster>> served =
        registry.value().Get(id);
    if (!served.ok()) return Fail(served.status());
    StatusOr<double> served_pred =
        served.value()->PredictTarget(ds, target);
    if (!served_pred.ok()) return Fail(served_pred.status());
    const double delta =
        std::fabs(served_pred.value() - offline_pred.value());
    const bool exact_required =
        !compact || templates[t].name == "LR";
    if (exact_required && served_pred.value() != offline_pred.value()) {
      return Fail(Status::Internal(StrFormat(
          "%s parity violated: served %.17g vs text %.17g",
          templates[t].name.c_str(), served_pred.value(),
          offline_pred.value())));
    }
    if (delta > 0.05) {
      return Fail(Status::Internal(StrFormat(
          "%s compact prediction drifted %.6f > 0.05 from text",
          templates[t].name.c_str(), delta)));
    }
    max_delta = std::max(max_delta, delta);
    parity_json += StrFormat("%s\"%s\": %.9g",
                             t == 0 ? "" : ", ",
                             templates[t].name.c_str(), delta);
  }
  parity_json += "}";

  // Seeded uniform Get() stream. Latency is recorded per Get in
  // microseconds: cold loads dominate the tail, cache hits the head.
  obs::Histogram load_latency(
      obs::Histogram::ExponentialBounds(1.0, 2.0, 22));
  Rng rng(stream_seed);
  size_t ok = 0, failed = 0;
  const auto start = std::chrono::steady_clock::now();
  for (size_t r = 0; r < num_requests; ++r) {
    const int64_t id = 1 + rng.UniformInt(
        0, static_cast<int64_t>(vehicles) - 1);
    const auto t0 = std::chrono::steady_clock::now();
    StatusOr<std::shared_ptr<const VehicleForecaster>> model =
        registry.value().Get(id);
    const double us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count();
    load_latency.Record(us);
    if (model.ok()) {
      ++ok;
    } else {
      ++failed;
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double rps =
      wall > 0 ? static_cast<double>(num_requests) / wall : 0.0;

  const serve::ModelRegistryStats reg_stats = registry.value().stats();
  const auto [rss_mb, rss_peak_mb] = ReadRssMb();

  std::printf("serve-bench: mode=synthetic vehicles=%zu shards=%zu "
              "compact=%s cache-mb=%zu requests=%zu\n",
              vehicles, shards, compact ? "on" : "off", cache_mb,
              num_requests);
  std::printf("publish: %zu bundles (%s twins) in %.1fs\n", vehicles,
              compact ? "text+compact" : "text-only", publish_wall);
  std::printf("throughput=%.0f req/s wall=%.3fs ok=%zu failed=%zu\n", rps,
              wall, ok, failed);
  std::printf("get-latency: p50=%.1fus p95=%.1fus p99=%.1fus\n",
              load_latency.Quantile(0.50), load_latency.Quantile(0.95),
              load_latency.Quantile(0.99));
  std::printf("cache: hits=%llu misses=%llu evictions=%llu "
              "resident=%llu bytes=%llu\n",
              static_cast<unsigned long long>(reg_stats.hits),
              static_cast<unsigned long long>(reg_stats.misses),
              static_cast<unsigned long long>(reg_stats.evictions),
              static_cast<unsigned long long>(reg_stats.resident_models),
              static_cast<unsigned long long>(reg_stats.cache_bytes));
  for (size_t s = 0; s < reg_stats.shards.size(); ++s) {
    const serve::ModelRegistryShardStats& shard = reg_stats.shards[s];
    std::printf("  shard %zu: hits=%llu misses=%llu evictions=%llu "
                "resident=%llu bytes=%llu\n",
                s, static_cast<unsigned long long>(shard.hits),
                static_cast<unsigned long long>(shard.misses),
                static_cast<unsigned long long>(shard.evictions),
                static_cast<unsigned long long>(shard.resident_models),
                static_cast<unsigned long long>(shard.cache_bytes));
  }
  std::printf("rss: %.1f MiB (peak %.1f MiB)%s\n", rss_mb, rss_peak_mb,
              max_rss_mb > 0
                  ? StrFormat(" ceiling %lld MiB", max_rss_mb).c_str()
                  : "");
  std::printf("verify: LR bitwise, float32 payloads max |dPred| = %.3g "
              "(ceiling 0.05)\n",
              max_delta);

  std::ofstream json(json_path, std::ios::trunc);
  if (!json) return Fail(Status::Internal("cannot write " + json_path));
  json << StrFormat(
      "{\n"
      "  \"bench\": \"serve\",\n"
      "  \"schema_version\": 2,\n"
      "  \"mode\": \"synthetic\",\n"
      "  \"vehicles\": %zu,\n"
      "  \"shards\": %zu,\n"
      "  \"compact\": %s,\n"
      "  \"cache_mb\": %zu,\n"
      "  \"requests\": %zu,\n"
      "  \"publish_seconds\": %.3f,\n"
      "  \"wall_seconds\": %.6f,\n"
      "  \"requests_per_second\": %.1f,\n"
      "  \"ok\": %zu,\n"
      "  \"failed\": %zu,\n"
      "  \"cache_hits\": %llu,\n"
      "  \"cache_misses\": %llu,\n"
      "  \"cache_evictions\": %llu,\n"
      "  \"resident_models\": %llu,\n"
      "  \"cache_bytes\": %llu,\n"
      "  \"rss_mb\": %.1f,\n"
      "  \"rss_peak_mb\": %.1f,\n"
      "  \"max_rss_mb\": %lld,\n"
      "  \"parity_max_abs_delta\": %s,\n"
      "  \"load_latency\": %s,\n"
      "  \"shard_stats\": %s,\n"
      "  \"verify\": \"lr-bitwise-float32-within-0.05\"\n"
      "}\n",
      vehicles, shards, compact ? "true" : "false", cache_mb, num_requests,
      publish_wall, wall, rps, ok, failed,
      static_cast<unsigned long long>(reg_stats.hits),
      static_cast<unsigned long long>(reg_stats.misses),
      static_cast<unsigned long long>(reg_stats.evictions),
      static_cast<unsigned long long>(reg_stats.resident_models),
      static_cast<unsigned long long>(reg_stats.cache_bytes), rss_mb,
      rss_peak_mb, max_rss_mb, parity_json.c_str(),
      LatencyHistogramJson(load_latency).c_str(),
      ShardStatsJson(reg_stats).c_str());
  if (!json) return Fail(Status::DataLoss("write failed: " + json_path));
  std::printf("wrote %s\n", json_path.c_str());

  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  registry.value().CollectMetrics(&snapshot);
  const int metrics_exit =
      WriteMetricsOutput(flags, metrics_format, std::move(snapshot));
  if (!flags.Has("registry")) fs::remove_all(registry_dir, ec);
  if (metrics_exit != 0) return metrics_exit;

  // The RSS ceiling is the bench's one gate (timings are reported, never
  // gated): a sharded + byte-budgeted + mmap'd registry that cannot hold
  // a documented ceiling at 10^5-10^6 vehicles has failed its reason to
  // exist.
  if (max_rss_mb > 0 && rss_mb > static_cast<double>(max_rss_mb)) {
    return Fail(Status::FailedPrecondition(StrFormat(
        "RSS %.1f MiB exceeds the --max-rss-mb=%lld ceiling", rss_mb,
        max_rss_mb)));
  }
  return 0;
}

int RunServeBench(const Flags& flags) {
  if (flags.Has("vehicles")) return RunServeBenchSynthetic(flags);
  const std::string dir = flags.Get("registry", "");
  if (dir.empty()) {
    std::fprintf(stderr,
                 "serve-bench needs --registry=DIR (replay mode) or "
                 "--vehicles=N (synthetic mode)\n");
    return 2;
  }
  const size_t workers =
      static_cast<size_t>(std::max<long long>(flags.GetInt("workers", 4), 1));
  const size_t batch =
      static_cast<size_t>(std::max<long long>(flags.GetInt("batch", 64), 1));
  const size_t num_requests = static_cast<size_t>(
      std::max<long long>(flags.GetInt("requests", 512), 1));
  const size_t cache =
      static_cast<size_t>(std::max<long long>(flags.GetInt("cache", 32), 0));
  const uint64_t stream_seed =
      static_cast<uint64_t>(flags.GetInt("stream-seed", 7));
  const std::string json_path = flags.Get("json", "BENCH_serve.json");

  // Overload mode: offered load exceeds the admission capacity, a seeded
  // slice of the stream arrives with already-expired deadlines, and the
  // registry is Reload()ed mid-run. Time is a FakeClock, so shed and
  // deadline-exceeded counts are a pure function of the seeds: two runs
  // with the same flags produce identical counters.
  const bool overload = flags.Has("overload");
  const uint64_t overload_seed =
      static_cast<uint64_t>(flags.GetInt("overload-seed", 7));
  const long long deadline_ms = flags.GetInt("deadline-ms", 50);
  const size_t default_admission =
      overload ? std::max<size_t>(batch / 4, 1) : 0;
  const size_t admission = static_cast<size_t>(std::max<long long>(
      flags.GetInt("admission",
                   static_cast<long long>(default_admission)),
      0));
  const std::string policy_name =
      flags.Get("shed-policy", overload ? "shed-newest" : "block");
  serve::OverloadPolicy policy;
  if (policy_name == "block") {
    policy = serve::OverloadPolicy::kBlock;
  } else if (policy_name == "shed-newest") {
    policy = serve::OverloadPolicy::kShedNewest;
  } else if (policy_name == "shed-oldest") {
    policy = serve::OverloadPolicy::kShedOldest;
  } else {
    std::fprintf(stderr,
                 "unknown --shed-policy=%s "
                 "(block|shed-newest|shed-oldest)\n",
                 policy_name.c_str());
    return 2;
  }

  const std::string metrics_format = ResolveMetricsFormat(flags);
  if (metrics_format.empty()) return 2;
  ScopedCliTracer tracer(flags.Has("trace"));

  // Starts at 1ms so an epoch-zero deadline is already expired.
  FakeClock fake_clock(1'000'000);

  const bool prefer_compact = flags.Has("compact");
  serve::ModelRegistry::Options reg_opts;
  reg_opts.directory = dir;
  reg_opts.cache_capacity = cache;
  reg_opts.cache_max_bytes =
      static_cast<size_t>(std::max<long long>(flags.GetInt("cache-mb", 0), 0))
      << 20;
  reg_opts.shards = static_cast<size_t>(
      std::max<long long>(flags.GetInt("shards", 1), 1));
  reg_opts.prefer_compact = prefer_compact;
  if (overload) reg_opts.clock = &fake_clock;
  StatusOr<serve::ModelRegistry> registry =
      serve::ModelRegistry::Open(std::move(reg_opts));
  if (!registry.ok()) return Fail(registry.status());

  StatusOr<serve::RegistryMeta> meta = registry.value().ReadMeta();
  if (!meta.ok()) return Fail(meta.status());

  std::vector<int64_t> ids = registry.value().ListVehicleIds();
  // Reserved pooled hierarchy bundles (negative ids) are fallback targets,
  // not per-vehicle request subjects.
  std::erase_if(ids, [](int64_t id) { return id < 0; });
  if (ids.empty()) {
    return Fail(Status::NotFound("registry holds no model bundles: " + dir));
  }

  // A generation published with --clusters carries clusters.meta; serve
  // with the hierarchy fallback chain enabled in that case.
  const std::string generation_dir =
      std::filesystem::path(registry.value().BundlePath(0))
          .parent_path()
          .string();
  StatusOr<cluster::ClustersMeta> hierarchy =
      cluster::ReadClustersMetaFile(generation_dir);
  if (!hierarchy.ok() && !hierarchy.status().IsNotFound()) {
    return Fail(hierarchy.status());
  }

  // Rebuild the datasets the bundles were trained from.
  Fleet fleet = Fleet::Generate(
      FleetConfig::Small(meta.value().fleet_vehicles,
                         meta.value().fleet_seed));
  std::map<int64_t, size_t> index_of;
  for (size_t i = 0; i < fleet.size(); ++i) {
    index_of[fleet.vehicle(i).vehicle_id] = i;
  }
  ExperimentRunner runner(&fleet);
  std::map<int64_t, const VehicleDataset*> dataset_of;
  for (int64_t id : ids) {
    auto it = index_of.find(id);
    if (it == index_of.end()) {
      return Fail(Status::InvalidArgument(StrFormat(
          "registry vehicle %lld is not in the meta-described fleet",
          static_cast<long long>(id))));
    }
    StatusOr<const VehicleDataset*> ds = runner.Dataset(it->second);
    if (!ds.ok()) return Fail(ds.status());
    dataset_of[id] = ds.value();
  }

  // Deterministic request stream: random vehicle, target in the trailing
  // month (one-step-ahead included). In overload mode a seeded ~10% slice
  // arrives already expired (deadline in the past), the rest carry
  // --deadline-ms against the fake clock.
  Rng rng(stream_seed);
  Rng overload_rng(overload_seed);
  std::vector<serve::PredictionRequest> stream;
  stream.reserve(num_requests);
  for (size_t r = 0; r < num_requests; ++r) {
    serve::PredictionRequest req;
    req.vehicle_id = ids[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1))];
    const VehicleDataset* ds = dataset_of[req.vehicle_id];
    req.dataset = ds;
    req.target_index =
        ds->num_days() - static_cast<size_t>(rng.UniformInt(0, 29));
    if (overload) {
      req.deadline =
          overload_rng.UniformInt(0, 9) == 0
              ? Deadline::At(Clock::TimePoint{})  // Expired on arrival.
              : Deadline::AfterMs(fake_clock, deadline_ms);
    }
    stream.push_back(req);
  }

  ThreadPool pool({workers, /*queue_capacity=*/4096, "serve"});
  serve::PredictionService::Options service_opts;
  service_opts.admission_capacity = admission;
  service_opts.overload_policy = policy;
  if (overload) service_opts.clock = &fake_clock;
  if (hierarchy.ok()) service_opts.hierarchy = &hierarchy.value();
  serve::PredictionService service(&registry.value(), &pool,
                                   service_opts);

  size_t ok = 0, degraded = 0, failed = 0;
  size_t reload_errors = 0;
  const size_t num_batches = (stream.size() + batch - 1) / batch;
  size_t batch_index = 0;
  const auto start = std::chrono::steady_clock::now();
  for (size_t at = 0; at < stream.size(); at += batch, ++batch_index) {
    if (overload && batch_index == num_batches / 2) {
      // Hot-swap while traffic is in flight: a no-op when CURRENT did not
      // move, but proves Reload never disturbs concurrent scoring.
      Status reloaded = registry.value().Reload();
      if (!reloaded.ok()) ++reload_errors;
    }
    const size_t take = std::min(batch, stream.size() - at);
    std::vector<serve::PredictionResponse> responses = service.PredictBatch(
        std::span<const serve::PredictionRequest>(&stream[at], take));
    for (const serve::PredictionResponse& resp : responses) {
      if (!resp.status.ok()) {
        ++failed;
      } else if (resp.degraded) {
        ++degraded;
      } else {
        ++ok;
      }
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double rps =
      wall > 0 ? static_cast<double>(num_requests) / wall : 0.0;

  // Consistency gate: serving a sampled vehicle must reproduce the offline
  // (text-bundle) forecaster bit-for-bit -- except when the registry
  // serves compact bundles for a float32-payload algorithm, where the
  // contract is the documented 0.05 ceiling instead (DESIGN.md section
  // 15; LR stays bitwise even compact).
  const int64_t sample_id = ids.front();
  const VehicleDataset* sample_ds = dataset_of[sample_id];
  const size_t sample_target = sample_ds->num_days();
  std::ifstream bundle(registry.value().BundlePath(sample_id));
  StatusOr<VehicleForecaster> offline = VehicleForecaster::Load(bundle);
  if (!offline.ok()) return Fail(offline.status());
  StatusOr<double> offline_pred =
      offline.value().PredictTarget(*sample_ds, sample_target);
  if (!offline_pred.ok()) return Fail(offline_pred.status());
  serve::PredictionRequest sample_request;
  sample_request.vehicle_id = sample_id;
  sample_request.dataset = sample_ds;
  sample_request.target_index = sample_target;
  serve::PredictionResponse served = service.Predict(sample_request);
  if (!served.status.ok()) return Fail(served.status);
  const bool tolerance_verify =
      prefer_compact &&
      offline.value().config().algorithm != Algorithm::kLinearRegression;
  const double verify_ceiling = tolerance_verify ? 0.05 : 0.0;
  if (std::abs(served.prediction - offline_pred.value()) > verify_ceiling) {
    return Fail(Status::Internal(StrFormat(
        "serving/offline mismatch for vehicle %lld: %.17g vs %.17g",
        static_cast<long long>(sample_id), served.prediction,
        offline_pred.value())));
  }

  const serve::ServingStatsSnapshot stats = service.stats();
  const serve::ModelRegistryStats reg_stats = registry.value().stats();
  std::printf("serve-bench: registry=%s models=%zu workers=%zu batch=%zu "
              "requests=%zu generation=%llu\n",
              dir.c_str(), ids.size(), workers, batch, num_requests,
              static_cast<unsigned long long>(reg_stats.generation));
  std::printf("throughput=%.0f req/s wall=%.3fs\n", rps, wall);
  std::printf("latency: p50=%.3fms p95=%.3fms p99=%.3fms\n",
              stats.p50_seconds * 1e3, stats.p95_seconds * 1e3,
              stats.p99_seconds * 1e3);
  std::printf("outcomes: ok=%zu degraded=%zu failed=%zu in-flight=%zu\n",
              ok, degraded, failed, stats.in_flight);
  if (overload) {
    std::printf("overload: admission=%zu policy=%s shed=%zu "
                "deadline-exceeded=%zu reloads=%zu reload-errors=%zu\n",
                admission, policy_name.c_str(), stats.shed,
                stats.deadline_exceeded, reg_stats.reloads,
                reload_errors);
    std::printf("breaker: opens=%zu short-circuits=%zu open-vehicles=%zu\n",
                reg_stats.breaker_opens, reg_stats.breaker_short_circuits,
                reg_stats.breaker_open_vehicles);
  }
  std::printf("cache: hits=%zu misses=%zu evictions=%zu resident=%zu\n",
              reg_stats.hits, reg_stats.misses, reg_stats.evictions,
              registry.value().resident_models());
  const serve::PredictionService::FallbackSnapshot fallback =
      service.fallback_counts();
  std::printf("fallback: hierarchy=%s cluster=%zu type=%zu global=%zu "
              "baseline=%zu\n",
              hierarchy.ok() ? "on" : "off", fallback.cluster, fallback.type,
              fallback.global, fallback.baseline);
  std::printf("verify: vehicle %lld serving == offline forecaster (%s)\n",
              static_cast<long long>(sample_id),
              tolerance_verify ? "compact, within 0.05" : "exact");

  std::ofstream json(json_path, std::ios::trunc);
  if (!json) {
    return Fail(Status::Internal("cannot write " + json_path));
  }
  json << StrFormat(
      "{\n"
      "  \"bench\": \"serve\",\n"
      "  \"schema_version\": 2,\n"
      "  \"mode\": \"replay\",\n"
      "  \"models\": %zu,\n"
      "  \"shards\": %zu,\n"
      "  \"compact\": %s,\n"
      "  \"workers\": %zu,\n"
      "  \"batch\": %zu,\n"
      "  \"requests\": %zu,\n"
      "  \"wall_seconds\": %.6f,\n"
      "  \"requests_per_second\": %.1f,\n"
      "  \"p50_ms\": %.4f,\n"
      "  \"p95_ms\": %.4f,\n"
      "  \"p99_ms\": %.4f,\n"
      "  \"ok\": %zu,\n"
      "  \"degraded\": %zu,\n"
      "  \"failed\": %zu,\n"
      "  \"overload\": %s,\n"
      "  \"admission_capacity\": %zu,\n"
      "  \"shed_policy\": \"%s\",\n"
      "  \"shed\": %zu,\n"
      "  \"deadline_exceeded\": %zu,\n"
      "  \"breaker_opens\": %llu,\n"
      "  \"breaker_short_circuits\": %llu,\n"
      "  \"generation\": %llu,\n"
      "  \"reloads\": %llu,\n"
      "  \"cache_hits\": %llu,\n"
      "  \"cache_misses\": %llu,\n"
      "  \"cache_evictions\": %llu,\n"
      "  \"cache_bytes\": %llu,\n"
      "  \"shard_stats\": %s,\n"
      "  \"hierarchy\": %s,\n"
      "  \"fallback_cluster\": %zu,\n"
      "  \"fallback_type\": %zu,\n"
      "  \"fallback_global\": %zu,\n"
      "  \"fallback_baseline\": %zu,\n"
      "  \"verify\": \"%s\"\n"
      "}\n",
      ids.size(), reg_stats.shards.size(),
      prefer_compact ? "true" : "false", workers, batch,
      num_requests, wall, rps, stats.p50_seconds * 1e3,
      stats.p95_seconds * 1e3, stats.p99_seconds * 1e3, ok, degraded,
      failed, overload ? "true" : "false", admission, policy_name.c_str(),
      stats.shed, stats.deadline_exceeded,
      static_cast<unsigned long long>(reg_stats.breaker_opens),
      static_cast<unsigned long long>(reg_stats.breaker_short_circuits),
      static_cast<unsigned long long>(reg_stats.generation),
      static_cast<unsigned long long>(reg_stats.reloads),
      static_cast<unsigned long long>(reg_stats.hits),
      static_cast<unsigned long long>(reg_stats.misses),
      static_cast<unsigned long long>(reg_stats.evictions),
      static_cast<unsigned long long>(reg_stats.cache_bytes),
      ShardStatsJson(reg_stats).c_str(),
      hierarchy.ok() ? "true" : "false", fallback.cluster, fallback.type,
      fallback.global, fallback.baseline,
      tolerance_verify ? "compact-within-0.05" : "exact-match");
  if (!json) return Fail(Status::DataLoss("write failed: " + json_path));
  std::printf("wrote %s\n", json_path.c_str());

  // Unified metrics export: global instruments (thread pool, pipeline)
  // plus the serving components' collected families.
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  service.CollectMetrics(&snapshot);
  registry.value().CollectMetrics(&snapshot);
  return WriteMetricsOutput(flags, metrics_format, std::move(snapshot));
}

// ---- core-bench -------------------------------------------------------

/// Wall time attributed to each pipeline stage, summed over every span of
/// that name anywhere in a tracer's aggregate tree (spans opened on pool
/// workers surface as roots of their own subtree).
struct CoreStageSeconds {
  double window = 0.0;
  double select = 0.0;
  double scale = 0.0;
  double train = 0.0;
  double predict = 0.0;
};

void AccumulateStages(const obs::Tracer::Node& node, CoreStageSeconds* out) {
  if (node.name == "window") out->window += node.total_seconds;
  if (node.name == "select") out->select += node.total_seconds;
  if (node.name == "scale") out->scale += node.total_seconds;
  if (node.name == "train") out->train += node.total_seconds;
  if (node.name == "predict") out->predict += node.total_seconds;
  for (const auto& child : node.children) AccumulateStages(*child, out);
}

struct CorePathResult {
  std::vector<VehicleEvaluation> evals;  // One per benched vehicle.
  double wall_seconds = 0.0;
  CoreStageSeconds stages;
};

/// Runs the walk-forward evaluation over every dataset under a dedicated
/// tracer (so stage timings are attributable to this path alone) and folds
/// results in dataset order.
StatusOr<CorePathResult> RunCorePath(
    const std::vector<const VehicleDataset*>& datasets,
    const EvaluationConfig& cfg, size_t jobs) {
  CorePathResult out;
  const size_t n = datasets.size();
  std::vector<StatusOr<VehicleEvaluation>> slots(
      n, StatusOr<VehicleEvaluation>(Status::Internal("unevaluated")));

  obs::Tracer tracer;
  obs::Tracer* previous = obs::Tracer::SetActive(&tracer);
  const auto start = std::chrono::steady_clock::now();
  if (jobs <= 1) {
    for (size_t i = 0; i < n; ++i) slots[i] = EvaluateVehicle(*datasets[i], cfg);
  } else {
    ThreadPool pool({jobs, n + 1, "core-bench"});
    for (size_t i = 0; i < n; ++i) {
      Status submitted = pool.Submit([&, i]() -> Status {
        slots[i] = EvaluateVehicle(*datasets[i], cfg);
        return Status::OK();
      });
      if (!submitted.ok()) slots[i] = EvaluateVehicle(*datasets[i], cfg);
    }
    Status drained = pool.Shutdown();
    if (!drained.ok()) {
      obs::Tracer::SetActive(previous);
      return drained;
    }
  }
  out.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  obs::Tracer::SetActive(previous);

  for (StatusOr<VehicleEvaluation>& slot : slots) {
    if (!slot.ok()) return slot.status();
    out.evals.push_back(std::move(slot.value()));
  }
  tracer.VisitTree(
      [&out](const obs::Tracer::Node& root) { AccumulateStages(root, &out.stages); });
  return out;
}

bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

/// naive/incremental ratio; a zero incremental denominator (stage faster
/// than the clock resolution) reports the naive time against one tick.
double StageSpeedup(double naive_seconds, double incremental_seconds) {
  if (incremental_seconds > 0.0) return naive_seconds / incremental_seconds;
  return naive_seconds > 0.0 ? naive_seconds / 1e-9 : 1.0;
}

/// Per-algorithm warm-start equivalence tolerance: the max absolute
/// per-prediction delta (hours) between the warm path and the cold
/// incremental reference (DESIGN.md section 14). Warm starts legitimately
/// change the solver's iterate path, so predictions agree only within
/// these bounds: Lasso converges to the same coordinate-descent fixed
/// point (tightest), the SVR dual has flat epsilon-insensitive directions
/// so distinct tol-converged optima predict slightly differently, and GB
/// continues a one-step-stale ensemble (loosest). The PE delta needs no
/// separate gate: |delta PE| <= 100 * sum|delta pred| / sum|actual| by the
/// triangle inequality, so bounding predictions bounds PE; the observed
/// PE delta is still reported.
double WarmPredictionToleranceFor(Algorithm a) {
  switch (a) {
    case Algorithm::kLasso:
      return 0.05;
    case Algorithm::kSvr:
      return 3.0;
    case Algorithm::kGradientBoosting:
      return 3.0;
    default:
      return 0.0;
  }
}

/// Everything core-bench measures for one algorithm: the naive reference,
/// the bitwise-equivalent incremental path, and (for warm-capable
/// algorithms) the opt-in warm-start path with its tolerance verdict and
/// decision counters.
struct CoreAlgorithmReport {
  std::string name;
  Algorithm algorithm = Algorithm::kLinearRegression;
  size_t predictions = 0;
  CorePathResult naive;
  CorePathResult incremental;
  bool warm_capable = false;
  CorePathResult warm;
  double warm_max_pred_delta = 0.0;
  double warm_max_pe_delta = 0.0;
  double warm_hits = 0.0;
  double warm_cold_starts = 0.0;
  double warm_invalidations = 0.0;
};

int RunCoreBench(const Flags& flags) {
  const size_t vehicles = static_cast<size_t>(
      std::max<long long>(flags.GetInt("vehicles", 12), 1));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t max_vehicles = static_cast<size_t>(
      std::max<long long>(flags.GetInt("max-vehicles", 3), 1));
  const size_t eval_days = static_cast<size_t>(
      std::max<long long>(flags.GetInt("eval-days", 100), 1));
  const size_t lookback = static_cast<size_t>(
      std::max<long long>(flags.GetInt("lookback", 120), 1));
  const size_t topk =
      static_cast<size_t>(std::max<long long>(flags.GetInt("topk", 20), 1));
  const size_t train_window = static_cast<size_t>(
      std::max<long long>(flags.GetInt("train-window", 140), 2));
  const size_t retrain_every = static_cast<size_t>(
      std::max<long long>(flags.GetInt("retrain-every", 1), 1));
  const size_t jobs =
      static_cast<size_t>(std::max<long long>(flags.GetInt("jobs", 1), 1));
  const std::string json_path = flags.Get("json", "BENCH_core.json");
  // Optional gates (0 = off). CI smoke runs leave both off: timings are
  // not asserted there by design.
  const long long min_window_speedup =
      std::max<long long>(flags.GetInt("min-window-speedup", 0), 0);
  const double min_train_speedup =
      std::max(flags.GetDouble("min-train-speedup", 0.0), 0.0);

  // Algorithm list: --algorithm=X keeps its single-algorithm meaning and
  // wins over --algorithms; the default benches the paper's three ML
  // families side by side.
  std::vector<Algorithm> algorithms;
  const std::string single_alg = flags.Get("algorithm", "");
  const std::string alg_list =
      !single_alg.empty() ? single_alg
                          : flags.Get("algorithms", "LR,SVR,GB");
  for (const std::string& name : Split(alg_list, ',')) {
    bool found = false;
    for (int a = 0; a < kNumAlgorithms; ++a) {
      if (AlgorithmToString(static_cast<Algorithm>(a)) == name) {
        algorithms.push_back(static_cast<Algorithm>(a));
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown --algorithm=%s\n", name.c_str());
      return 2;
    }
    if (algorithms.back() == Algorithm::kLastValue ||
        algorithms.back() == Algorithm::kMovingAverage) {
      std::fprintf(stderr,
                   "core-bench needs an ML algorithm (baselines skip the "
                   "windowing pipeline), got --algorithm=%s\n",
                   name.c_str());
      return 2;
    }
  }
  if (algorithms.empty()) {
    std::fprintf(stderr, "empty --algorithms list\n");
    return 2;
  }

  EvaluationConfig cfg;
  cfg.forecaster.windowing.lookback_w = lookback;
  cfg.forecaster.selection.top_k = topk;
  cfg.eval_days = eval_days;
  cfg.retrain_every = retrain_every;
  cfg.train_window = train_window;

  const std::string metrics_format = ResolveMetricsFormat(flags);
  if (metrics_format.empty()) return 2;
  ScopedCliTracer cli_tracer(flags.Has("trace"));

  // Seeded fleet; datasets are prepared once (outside the timed region)
  // and shared by every path of every algorithm.
  Fleet fleet = Fleet::Generate(FleetConfig::Small(vehicles, seed));
  ExperimentRunner runner(&fleet);
  ExperimentOptions opts;
  opts.max_vehicles = max_vehicles;
  std::vector<size_t> selected = runner.SelectVehicles(opts);
  if (selected.empty()) {
    return Fail(Status::FailedPrecondition(
        "no eligible vehicles in the benchmark fleet"));
  }
  std::vector<const VehicleDataset*> datasets;
  for (size_t index : selected) {
    StatusOr<const VehicleDataset*> ds = runner.Dataset(index);
    if (!ds.ok()) return Fail(ds.status());
    datasets.push_back(ds.value());
  }

  std::vector<CoreAlgorithmReport> reports;
  for (Algorithm algorithm : algorithms) {
    CoreAlgorithmReport report;
    report.algorithm = algorithm;
    report.name = std::string(AlgorithmToString(algorithm));
    cfg.forecaster.algorithm = algorithm;

    // Reference path: full rebuild of the windowed matrix and training-span
    // ACF at every retrain step.
    EvaluationConfig naive_cfg = cfg;
    naive_cfg.forecaster.incremental_training = false;
    StatusOr<CorePathResult> naive = RunCorePath(datasets, naive_cfg, jobs);
    if (!naive.ok()) return Fail(naive.status());
    report.naive = std::move(naive.value());

    EvaluationConfig incremental_cfg = cfg;
    incremental_cfg.forecaster.incremental_training = true;
    StatusOr<CorePathResult> incremental =
        RunCorePath(datasets, incremental_cfg, jobs);
    if (!incremental.ok()) return Fail(incremental.status());
    report.incremental = std::move(incremental.value());

    // Equivalence assertion: every prediction and both error metrics must
    // match the naive rebuild bit for bit, per vehicle.
    for (size_t v = 0; v < datasets.size(); ++v) {
      const VehicleEvaluation& a = report.naive.evals[v];
      const VehicleEvaluation& b = report.incremental.evals[v];
      if (a.predictions.size() != b.predictions.size()) {
        return Fail(Status::Internal(StrFormat(
            "%s vehicle #%zu: prediction counts differ (%zu vs %zu)",
            report.name.c_str(), v, a.predictions.size(),
            b.predictions.size())));
      }
      for (size_t i = 0; i < a.predictions.size(); ++i) {
        if (!SameBits(a.predictions[i], b.predictions[i])) {
          return Fail(Status::Internal(StrFormat(
              "%s vehicle #%zu prediction %zu: incremental %.17g != naive "
              "%.17g",
              report.name.c_str(), v, i, b.predictions[i],
              a.predictions[i])));
        }
      }
      if (!SameBits(a.pe, b.pe) || !SameBits(a.mae, b.mae)) {
        return Fail(Status::Internal(StrFormat(
            "%s vehicle #%zu error metrics diverge: PE %.17g vs %.17g, MAE "
            "%.17g vs %.17g",
            report.name.c_str(), v, b.pe, a.pe, b.mae, a.mae)));
      }
      report.predictions += a.predictions.size();
    }

    // Opt-in third path: warm-started solvers, verified against the
    // incremental reference within the per-algorithm tolerances.
    report.warm_capable = AlgorithmSupportsWarmStart(algorithm);
    if (report.warm_capable) {
      const std::string alg_label = report.name;
      const obs::LabelSet warm_labels = {{"algorithm", alg_label}};
      obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
      EvaluationConfig warm_cfg = cfg;
      warm_cfg.forecaster.incremental_training = true;
      warm_cfg.forecaster.warm_start.enabled = true;
      StatusOr<CorePathResult> warm = RunCorePath(datasets, warm_cfg, jobs);
      if (!warm.ok()) return Fail(warm.status());
      report.warm = std::move(warm.value());
      obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
      auto delta = [&](std::string_view name) {
        return after.Value(name, warm_labels, 0.0) -
               before.Value(name, warm_labels, 0.0);
      };
      report.warm_hits = delta("vupred_train_warmstart_hits_total");
      report.warm_cold_starts =
          delta("vupred_train_warmstart_cold_starts_total");
      report.warm_invalidations =
          delta("vupred_train_warmstart_invalidations_total");

      const double tolerance = WarmPredictionToleranceFor(algorithm);
      for (size_t v = 0; v < datasets.size(); ++v) {
        const VehicleEvaluation& b = report.incremental.evals[v];
        const VehicleEvaluation& w = report.warm.evals[v];
        if (b.predictions.size() != w.predictions.size()) {
          return Fail(Status::Internal(StrFormat(
              "%s vehicle #%zu: warm prediction counts differ (%zu vs %zu)",
              report.name.c_str(), v, w.predictions.size(),
              b.predictions.size())));
        }
        for (size_t i = 0; i < b.predictions.size(); ++i) {
          report.warm_max_pred_delta =
              std::max(report.warm_max_pred_delta,
                       std::abs(w.predictions[i] - b.predictions[i]));
        }
        report.warm_max_pe_delta =
            std::max(report.warm_max_pe_delta, std::abs(w.pe - b.pe));
      }
      if (report.warm_max_pred_delta > tolerance) {
        return Fail(Status::Internal(StrFormat(
            "%s warm-start drifted past tolerance: max |dpred| %.4f "
            "(allowed %.4f), max |dPE| %.4f",
            report.name.c_str(), report.warm_max_pred_delta, tolerance,
            report.warm_max_pe_delta)));
      }
    }
    reports.push_back(std::move(report));
  }

  // ---- report ----------------------------------------------------------
  for (const CoreAlgorithmReport& r : reports) {
    const CoreStageSeconds& ns = r.naive.stages;
    const CoreStageSeconds& is = r.incremental.stages;
    const double window_speedup = StageSpeedup(ns.window, is.window);
    const double select_speedup = StageSpeedup(ns.select, is.select);
    // Train-stage share of the wall: the regressor fit dominates under SVR
    // and GB, so the per-algorithm fraction is what makes cross-algorithm
    // comparisons meaningful (windowing speedups wash out when fit is 99%).
    const double train_speedup = StageSpeedup(ns.train, is.train);
    const double naive_train_fraction =
        r.naive.wall_seconds > 0.0 ? ns.train / r.naive.wall_seconds : 0.0;
    const double incremental_train_fraction =
        r.incremental.wall_seconds > 0.0
            ? is.train / r.incremental.wall_seconds
            : 0.0;
    const double total_speedup =
        StageSpeedup(r.naive.wall_seconds, r.incremental.wall_seconds);

    std::printf("core-bench: fleet=%zu benched=%zu predictions=%zu "
                "algorithm=%s lookback=%zu topk=%zu train-window=%zu "
                "eval-days=%zu retrain-every=%zu jobs=%zu\n",
                vehicles, datasets.size(), r.predictions, r.name.c_str(),
                lookback, topk, train_window, eval_days, retrain_every,
                jobs);
    std::printf("stage          naive        incremental  speedup\n");
    std::printf("window     %9.3fms  %11.3fms  %6.1fx\n", ns.window * 1e3,
                is.window * 1e3, window_speedup);
    std::printf("select     %9.3fms  %11.3fms  %6.1fx\n", ns.select * 1e3,
                is.select * 1e3, select_speedup);
    std::printf("scale      %9.3fms  %11.3fms\n", ns.scale * 1e3,
                is.scale * 1e3);
    std::printf("train      %9.3fms  %11.3fms  %6.1fx (%.0f%% / %.0f%% of "
                "wall)\n",
                ns.train * 1e3, is.train * 1e3, train_speedup,
                naive_train_fraction * 100.0,
                incremental_train_fraction * 100.0);
    if (r.warm_capable) {
      std::printf("train-warm %9.3fms  %11.3fms  %6.1fx (vs incremental "
                  "train)\n",
                  is.train * 1e3, r.warm.stages.train * 1e3,
                  StageSpeedup(is.train, r.warm.stages.train));
    }
    std::printf("predict    %9.3fms  %11.3fms\n", ns.predict * 1e3,
                is.predict * 1e3);
    std::printf("wall       %9.3fms  %11.3fms  %6.2fx\n",
                r.naive.wall_seconds * 1e3, r.incremental.wall_seconds * 1e3,
                total_speedup);
    std::printf("verify: %zu predictions + error metrics byte-identical "
                "across %zu vehicles (exact)\n",
                r.predictions, datasets.size());
    if (r.warm_capable) {
      std::printf("verify: warm-start within tolerance, max |dpred|=%.4f "
                  "max |dPE|=%.4f (hits=%.0f cold=%.0f invalidated=%.0f)\n",
                  r.warm_max_pred_delta, r.warm_max_pe_delta, r.warm_hits,
                  r.warm_cold_starts, r.warm_invalidations);
    }
  }

  std::ofstream json(json_path, std::ios::trunc);
  if (!json) return Fail(Status::Internal("cannot write " + json_path));
  json << StrFormat(
      "{\n"
      "  \"bench\": \"core\",\n"
      "  \"schema_version\": 2,\n"
      "  \"fleet_vehicles\": %zu,\n"
      "  \"benched_vehicles\": %zu,\n"
      "  \"predictions\": %zu,\n"
      "  \"lookback_w\": %zu,\n"
      "  \"top_k\": %zu,\n"
      "  \"train_window\": %zu,\n"
      "  \"eval_days\": %zu,\n"
      "  \"retrain_every\": %zu,\n"
      "  \"jobs\": %zu,\n"
      "  \"algorithms\": [\n",
      vehicles, datasets.size(), reports.front().predictions, lookback,
      topk, train_window, eval_days, retrain_every, jobs);
  for (size_t idx = 0; idx < reports.size(); ++idx) {
    const CoreAlgorithmReport& r = reports[idx];
    const CoreStageSeconds& ns = r.naive.stages;
    const CoreStageSeconds& is = r.incremental.stages;
    json << StrFormat(
        "    {\n"
        "      \"algorithm\": \"%s\",\n"
        "      \"naive_wall_seconds\": %.6f,\n"
        "      \"incremental_wall_seconds\": %.6f,\n"
        "      \"naive_window_seconds\": %.6f,\n"
        "      \"incremental_window_seconds\": %.6f,\n"
        "      \"naive_select_seconds\": %.6f,\n"
        "      \"incremental_select_seconds\": %.6f,\n"
        "      \"naive_scale_seconds\": %.6f,\n"
        "      \"incremental_scale_seconds\": %.6f,\n"
        "      \"naive_train_seconds\": %.6f,\n"
        "      \"incremental_train_seconds\": %.6f,\n"
        "      \"naive_predict_seconds\": %.6f,\n"
        "      \"incremental_predict_seconds\": %.6f,\n"
        "      \"window_stage_speedup\": %.2f,\n"
        "      \"select_stage_speedup\": %.2f,\n"
        "      \"train_stage_speedup\": %.2f,\n"
        "      \"naive_train_fraction\": %.4f,\n"
        "      \"incremental_train_fraction\": %.4f,\n"
        "      \"total_speedup\": %.3f,\n"
        "      \"warm_supported\": %s,\n",
        r.name.c_str(), r.naive.wall_seconds, r.incremental.wall_seconds,
        ns.window, is.window, ns.select, is.select, ns.scale, is.scale,
        ns.train, is.train, ns.predict, is.predict,
        StageSpeedup(ns.window, is.window),
        StageSpeedup(ns.select, is.select),
        StageSpeedup(ns.train, is.train),
        r.naive.wall_seconds > 0.0 ? ns.train / r.naive.wall_seconds : 0.0,
        r.incremental.wall_seconds > 0.0
            ? is.train / r.incremental.wall_seconds
            : 0.0,
        StageSpeedup(r.naive.wall_seconds, r.incremental.wall_seconds),
        r.warm_capable ? "true" : "false");
    if (r.warm_capable) {
      json << StrFormat(
          "      \"warm_wall_seconds\": %.6f,\n"
          "      \"warm_train_seconds\": %.6f,\n"
          "      \"warm_train_speedup\": %.2f,\n"
          "      \"warm_hits\": %.0f,\n"
          "      \"warm_cold_starts\": %.0f,\n"
          "      \"warm_invalidations\": %.0f,\n"
          "      \"warm_max_abs_prediction_delta\": %.6f,\n"
          "      \"warm_max_abs_pe_delta\": %.6f,\n"
          "      \"warm_verify\": \"tolerance-match\",\n",
          r.warm.wall_seconds, r.warm.stages.train,
          StageSpeedup(is.train, r.warm.stages.train), r.warm_hits,
          r.warm_cold_starts, r.warm_invalidations, r.warm_max_pred_delta,
          r.warm_max_pe_delta);
    }
    json << StrFormat("      \"verify\": \"exact-match\"\n    }%s\n",
                      idx + 1 < reports.size() ? "," : "");
  }
  json << "  ]\n}\n";
  if (!json) return Fail(Status::DataLoss("write failed: " + json_path));
  std::printf("wrote %s\n", json_path.c_str());

  const int metrics_rc = WriteMetricsOutput(
      flags, metrics_format, obs::MetricsRegistry::Global().Snapshot());
  if (metrics_rc != 0) return metrics_rc;

  int gate_rc = 0;
  for (const CoreAlgorithmReport& r : reports) {
    const double window_speedup =
        StageSpeedup(r.naive.stages.window, r.incremental.stages.window);
    if (min_window_speedup > 0 &&
        window_speedup < static_cast<double>(min_window_speedup)) {
      std::fprintf(
          stderr,
          "error: %s window-stage speedup %.1fx below required %lldx\n",
          r.name.c_str(), window_speedup, min_window_speedup);
      gate_rc = 1;
    }
    if (min_train_speedup > 0.0 && r.warm_capable) {
      const double warm_train_speedup =
          StageSpeedup(r.incremental.stages.train, r.warm.stages.train);
      if (warm_train_speedup < min_train_speedup) {
        std::fprintf(stderr,
                     "error: %s warm-start train-stage speedup %.2fx below "
                     "required %.2fx\n",
                     r.name.c_str(), warm_train_speedup, min_train_speedup);
        gate_rc = 1;
      }
    }
  }
  return gate_rc;
}

int RunIngestBench(const Flags& flags) {
  namespace fs = std::filesystem;
  const long long vehicles_arg = flags.GetInt("vehicles", 6);
  const long long days_arg = flags.GetInt("days", 30);
  if (vehicles_arg <= 0 || days_arg <= 0) {
    std::fprintf(stderr,
                 "error: --vehicles and --days must be positive, got "
                 "%lld and %lld\n",
                 vehicles_arg, days_arg);
    return 2;
  }
  const size_t vehicles = static_cast<size_t>(vehicles_arg);
  const size_t days = static_cast<size_t>(days_arg);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string json_path = flags.Get("json", "BENCH_ingest.json");
  const std::string wal_dir = flags.Get(
      "wal-dir",
      (fs::temp_directory_path() / "vupred_ingest_bench").string());

  const std::string metrics_format = ResolveMetricsFormat(flags);
  if (metrics_format.empty()) return 2;
  ScopedCliTracer tracer(flags.Has("trace"));

  // A dense seeded stream: every vehicle reports every 10-minute slot of
  // every day -- the sustained-uplink worst case for the ingest tier.
  Rng rng(seed);
  std::vector<AggregatedReport> reports;
  reports.reserve(vehicles * days * static_cast<size_t>(kSlotsPerDay));
  const Date d0 = Date::FromYmd(2017, 3, 6).value();
  for (size_t v = 1; v <= vehicles; ++v) {
    for (size_t d = 0; d < days; ++d) {
      for (int slot = 0; slot < kSlotsPerDay; ++slot) {
        AggregatedReport r;
        r.vehicle_id = static_cast<int64_t>(v);
        r.date = d0.AddDays(static_cast<int>(d));
        r.slot = slot;
        r.engine_on_fraction = rng.Uniform();
        r.avg_engine_rpm = rng.Uniform(600, 2200);
        r.avg_engine_load_pct = rng.Uniform(5, 95);
        r.avg_fuel_rate_lph = rng.Uniform(1, 35);
        r.avg_oil_pressure_kpa = rng.Uniform(150, 500);
        r.avg_coolant_temp_c = rng.Uniform(60, 105);
        r.avg_speed_kmh = rng.Uniform(0, 30);
        r.avg_hydraulic_temp_c = rng.Uniform(30, 90);
        r.fuel_level_pct = rng.Uniform(5, 100);
        r.engine_hours_total =
            1000.0 + static_cast<double>(v) * 10 + static_cast<double>(d);
        r.dtc_count = static_cast<int>(rng.UniformInt(0, 2));
        r.sample_count = static_cast<int>(rng.UniformInt(1, 60));
        reports.push_back(r);
      }
    }
  }

  const auto mb = [](size_t bytes) {
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
  };
  const auto seconds_since = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  // Stage 1: encode.
  std::string stream;
  const auto encode_t0 = std::chrono::steady_clock::now();
  size_t unframeable = 0;
  {
    Status s = wire::EncodeBatch(reports, &stream, &unframeable);
    if (!s.ok()) return Fail(s);
  }
  const double encode_s = seconds_since(encode_t0);
  if (unframeable != 0) {
    return Fail(Status::Internal(
        StrFormat("%zu clean reports unframeable", unframeable)));
  }

  // Stage 2: decode (no journaling, no store).
  size_t decoded_reports = 0;
  const auto decode_t0 = std::chrono::steady_clock::now();
  {
    wire::WireDecoder decoder;
    decoder.Feed({reinterpret_cast<const uint8_t*>(stream.data()),
                  stream.size()},
                 [&decoded_reports](const wire::DecodedFrame& f,
                                    std::span<const uint8_t>) {
                   decoded_reports += f.reports.size();
                 });
    if (decoder.stats().frames_rejected_corrupt != 0 ||
        decoder.pending_bytes() != 0) {
      return Fail(Status::DataLoss("clean stream failed to decode"));
    }
  }
  const double decode_s = seconds_since(decode_t0);
  if (decoded_reports != reports.size()) {
    return Fail(Status::Internal(
        StrFormat("decoded %zu of %zu reports", decoded_reports,
                  reports.size())));
  }

  // Stage 3: the full crash-safe path -- decode + WAL journal + ingest.
  std::error_code ec;
  fs::remove_all(wal_dir, ec);
  wire::StreamIngestor::Options options;
  options.dir = wal_dir;
  IngestionStore live;
  size_t wal_frames = 0;
  uint64_t live_digest = 0;
  const auto wal_t0 = std::chrono::steady_clock::now();
  {
    StatusOr<wire::StreamIngestor> ingestor =
        wire::StreamIngestor::Open(options, &live);
    if (!ingestor.ok()) return Fail(ingestor.status());
    Status s = ingestor.value().Feed(std::string_view(stream));
    if (!s.ok()) return Fail(s);
    wal_frames = ingestor.value().stats().frames_accepted;
  }
  const double wal_s = seconds_since(wal_t0);
  live_digest = live.ContentDigest();

  // Stage 4: crash recovery -- reopen and replay the WAL into an empty
  // store; equivalence is asserted bit for bit via the content digest.
  IngestionStore recovered;
  const auto recover_t0 = std::chrono::steady_clock::now();
  size_t recovered_reports = 0;
  {
    StatusOr<wire::StreamIngestor> reopened =
        wire::StreamIngestor::Open(options, &recovered);
    if (!reopened.ok()) return Fail(reopened.status());
    recovered_reports = reopened.value().stats().recovered_reports;
  }
  const double recover_s = seconds_since(recover_t0);
  if (recovered.ContentDigest() != live_digest) {
    return Fail(Status::DataLoss(
        "recovered store diverges from the live store"));
  }
  const size_t wal_bytes =
      fs::exists(fs::path(wal_dir) / "wal.log")
          ? static_cast<size_t>(
                fs::file_size(fs::path(wal_dir) / "wal.log"))
          : 0;
  if (!flags.Has("wal-dir")) fs::remove_all(wal_dir, ec);

  const double n_reports = static_cast<double>(reports.size());
  std::printf("ingest-bench: vehicles=%zu days=%zu reports=%zu frames=%zu "
              "stream=%.2fMB wal=%.2fMB seed=%llu\n",
              vehicles, days, reports.size(), wal_frames, mb(stream.size()),
              mb(wal_bytes), static_cast<unsigned long long>(seed));
  std::printf("stage              wall        MB/s     reports/s\n");
  std::printf("encode      %9.3fms  %9.1f  %12.0f\n", encode_s * 1e3,
              mb(stream.size()) / encode_s, n_reports / encode_s);
  std::printf("decode      %9.3fms  %9.1f  %12.0f\n", decode_s * 1e3,
              mb(stream.size()) / decode_s, n_reports / decode_s);
  std::printf("wal+ingest  %9.3fms  %9.1f  %12.0f\n", wal_s * 1e3,
              mb(stream.size()) / wal_s, n_reports / wal_s);
  std::printf("recover     %9.3fms  %9.1f  %12.0f\n", recover_s * 1e3,
              mb(wal_bytes) / recover_s, n_reports / recover_s);
  std::printf("verify: recovered store digest == live store digest "
              "(%zu reports replayed, exact)\n",
              recovered_reports);

  std::ofstream json(json_path, std::ios::trunc);
  if (!json) return Fail(Status::Internal("cannot write " + json_path));
  json << StrFormat(
      "{\n"
      "  \"bench\": \"ingest\",\n"
      "  \"schema_version\": 1,\n"
      "  \"vehicles\": %zu,\n"
      "  \"days\": %zu,\n"
      "  \"reports\": %zu,\n"
      "  \"frames\": %zu,\n"
      "  \"stream_bytes\": %zu,\n"
      "  \"wal_bytes\": %zu,\n"
      "  \"encode_seconds\": %.6f,\n"
      "  \"encode_mb_per_s\": %.1f,\n"
      "  \"encode_reports_per_s\": %.0f,\n"
      "  \"decode_seconds\": %.6f,\n"
      "  \"decode_mb_per_s\": %.1f,\n"
      "  \"decode_reports_per_s\": %.0f,\n"
      "  \"wal_ingest_seconds\": %.6f,\n"
      "  \"wal_ingest_mb_per_s\": %.1f,\n"
      "  \"wal_ingest_reports_per_s\": %.0f,\n"
      "  \"recover_seconds\": %.6f,\n"
      "  \"recover_mb_per_s\": %.1f,\n"
      "  \"recover_reports_per_s\": %.0f,\n"
      "  \"verify\": \"recovery-digest-match\"\n"
      "}\n",
      vehicles, days, reports.size(), wal_frames, stream.size(), wal_bytes,
      encode_s, mb(stream.size()) / encode_s, n_reports / encode_s,
      decode_s, mb(stream.size()) / decode_s, n_reports / decode_s, wal_s,
      mb(stream.size()) / wal_s, n_reports / wal_s, recover_s,
      mb(wal_bytes) / recover_s, n_reports / recover_s);
  if (!json) return Fail(Status::DataLoss("write failed: " + json_path));
  std::printf("wrote %s\n", json_path.c_str());

  return WriteMetricsOutput(flags, metrics_format,
                            obs::MetricsRegistry::Global().Snapshot());
}

// ---- cluster-bench ----------------------------------------------------

int RunClusterBench(const Flags& flags) {
  namespace fs = std::filesystem;
  const long long vehicles_flag = flags.GetInt("vehicles", 12);
  if (vehicles_flag < 2) {
    std::fprintf(stderr,
                 "cluster-bench needs at least 2 vehicles, got "
                 "--vehicles=%lld\n",
                 vehicles_flag);
    return 2;
  }
  const size_t vehicles = static_cast<size_t>(vehicles_flag);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t clusters = static_cast<size_t>(
      std::max<long long>(flags.GetInt("clusters", 3), 1));
  const size_t acf_lags = static_cast<size_t>(
      std::max<long long>(flags.GetInt("acf-lags", 14), 1));
  const size_t max_k = static_cast<size_t>(
      std::max<long long>(flags.GetInt("max-k", 6), 1));
  const size_t lookback = static_cast<size_t>(
      std::max<long long>(flags.GetInt("lookback", 21), 1));
  const size_t topk =
      static_cast<size_t>(std::max<long long>(flags.GetInt("topk", 7), 1));
  const size_t train_window = static_cast<size_t>(
      std::max<long long>(flags.GetInt("train-window", 140), 2));
  const size_t holdout_days = static_cast<size_t>(
      std::max<long long>(flags.GetInt("holdout-days", 28), 1));
  const size_t jobs =
      static_cast<size_t>(std::max<long long>(flags.GetInt("jobs", 1), 1));
  const std::string json_path = flags.Get("json", "BENCH_cluster.json");
  const std::string registry_dir = flags.Get(
      "registry-dir",
      (fs::temp_directory_path() / "vupred_cluster_bench").string());
  // Optional deterministic gate (seeded data, so no flakiness): fail when
  // pooled per-cluster mean PE exceeds this percentage of the per-vehicle
  // mean PE. 0 = report only.
  const long long max_pe_ratio_pct =
      std::max<long long>(flags.GetInt("max-pe-ratio-pct", 0), 0);

  ForecasterConfig forecaster_cfg;
  const std::string alg = flags.Get("algorithm", "Lasso");
  bool alg_found = false;
  for (int a = 0; a < kNumAlgorithms; ++a) {
    if (AlgorithmToString(static_cast<Algorithm>(a)) == alg) {
      forecaster_cfg.algorithm = static_cast<Algorithm>(a);
      alg_found = true;
    }
  }
  if (!alg_found) {
    std::fprintf(stderr, "unknown --algorithm=%s\n", alg.c_str());
    return 2;
  }
  if (forecaster_cfg.algorithm == Algorithm::kLastValue ||
      forecaster_cfg.algorithm == Algorithm::kMovingAverage) {
    std::fprintf(stderr,
                 "cluster-bench needs an ML algorithm (baselines have no "
                 "pooled fit), got --algorithm=%s\n",
                 alg.c_str());
    return 2;
  }
  forecaster_cfg.windowing.lookback_w = lookback;
  forecaster_cfg.selection.top_k = topk;

  const std::string metrics_format = ResolveMetricsFormat(flags);
  if (metrics_format.empty()) return 2;
  ScopedCliTracer tracer(flags.Has("trace"));

  // Seeded fleet; datasets owned here, in ascending vehicle_id order (the
  // canonical clustering order).
  Fleet fleet = Fleet::Generate(FleetConfig::Small(vehicles, seed));
  std::vector<VehicleDataset> datasets;
  datasets.reserve(fleet.size());
  for (size_t i = 0; i < fleet.size(); ++i) {
    StatusOr<VehicleDataset> ds = PrepareVehicleDataset(fleet, i);
    if (!ds.ok()) return Fail(ds.status());
    datasets.push_back(std::move(ds.value()));
  }
  std::sort(datasets.begin(), datasets.end(),
            [](const VehicleDataset& a, const VehicleDataset& b) {
              return a.info().vehicle_id < b.info().vehicle_id;
            });

  cluster::ProfileConfig profile_config;
  profile_config.acf_lags = acf_lags;
  cluster::KMeansConfig kmeans_config;
  kmeans_config.k = clusters;
  kmeans_config.seed = seed;

  // Stage 1: profile extraction on `jobs` workers, folded back in
  // vehicle_id order (extraction is a pure per-vehicle function, so the
  // fold order alone fixes the output bytes).
  const size_t n_vehicles = datasets.size();
  std::vector<StatusOr<cluster::UsageProfile>> slots(
      n_vehicles,
      StatusOr<cluster::UsageProfile>(Status::Internal("unextracted")));
  const auto extract_t0 = std::chrono::steady_clock::now();
  if (jobs <= 1) {
    for (size_t i = 0; i < n_vehicles; ++i) {
      slots[i] = cluster::ExtractProfile(datasets[i], profile_config);
    }
  } else {
    ThreadPool pool({jobs, n_vehicles + 1, "cluster-bench"});
    for (size_t i = 0; i < n_vehicles; ++i) {
      Status submitted = pool.Submit([&slots, &datasets, &profile_config,
                                      i]() -> Status {
        slots[i] = cluster::ExtractProfile(datasets[i], profile_config);
        return Status::OK();
      });
      if (!submitted.ok()) {
        slots[i] = cluster::ExtractProfile(datasets[i], profile_config);
      }
    }
    Status drained = pool.Shutdown();
    if (!drained.ok()) return Fail(drained);
  }
  const double extract_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    extract_t0)
          .count();
  std::vector<cluster::UsageProfile> profiles;
  profiles.reserve(n_vehicles);
  for (StatusOr<cluster::UsageProfile>& slot : slots) {
    if (!slot.ok()) return Fail(slot.status());
    profiles.push_back(std::move(slot.value()));
  }

  // Stage 2: standardize + seeded k-means.
  const auto kmeans_t0 = std::chrono::steady_clock::now();
  StatusOr<cluster::ClustersMeta> meta_or =
      cluster::ClusterProfiles(profiles, profile_config, kmeans_config);
  const double kmeans_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    kmeans_t0)
          .count();
  if (!meta_or.ok()) return Fail(meta_or.status());
  const cluster::ClustersMeta& meta = meta_or.value();

  // Determinism: the serial library path, run twice, must serialize to the
  // same bytes as the parallel-extraction path above.
  const std::string meta_bytes = meta.Serialize();
  for (int rerun = 0; rerun < 2; ++rerun) {
    StatusOr<cluster::ClustersMeta> again = cluster::BuildFleetClustering(
        datasets, profile_config, kmeans_config);
    if (!again.ok()) return Fail(again.status());
    if (again.value().Serialize() != meta_bytes) {
      return Fail(Status::Internal(StrFormat(
          "clustering is not deterministic: serial rerun %d diverges from "
          "the --jobs=%zu result",
          rerun, jobs)));
    }
  }

  StatusOr<std::vector<cluster::ElbowPoint>> elbow =
      cluster::FleetElbowSweep(datasets, profile_config, kmeans_config,
                               max_k);
  if (!elbow.ok()) return Fail(elbow.status());

  // Stage 3: pooled hierarchy training + per-level PE on the shared
  // trailing-holdout protocol.
  cluster::PooledTrainingOptions popts;
  popts.forecaster = forecaster_cfg;
  popts.train_window = train_window;
  popts.holdout_days = holdout_days;
  const auto eval_t0 = std::chrono::steady_clock::now();
  StatusOr<cluster::HierarchyEvaluation> eval_or =
      cluster::EvaluateHierarchy(datasets, meta, popts);
  const double eval_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    eval_t0)
          .count();
  if (!eval_or.ok()) return Fail(eval_or.status());
  const cluster::HierarchyEvaluation& eval = eval_or.value();
  if (eval.per_vehicle.vehicles == 0) {
    return Fail(Status::FailedPrecondition(
        "no vehicle was evaluable under the holdout schedule"));
  }
  const double pe_ratio =
      eval.per_vehicle.mean_pe > 0.0
          ? eval.per_cluster.mean_pe / eval.per_vehicle.mean_pe
          : 1.0;

  // Cold start: the highest-id vehicle whose cluster keeps at least one
  // warm member. It stays in clusters.meta but gets no per-vehicle bundle
  // and contributes nothing to the pooled fits.
  std::vector<size_t> cluster_sizes(meta.k(), 0);
  for (const cluster::VehicleAssignment& v : meta.vehicles) {
    ++cluster_sizes[static_cast<size_t>(v.cluster_id)];
  }
  int64_t cold_id = -1;
  int cold_cluster = -1;
  for (const cluster::VehicleAssignment& v : meta.vehicles) {
    if (cluster_sizes[static_cast<size_t>(v.cluster_id)] >= 2) {
      cold_id = v.vehicle_id;  // Ascending scan: last hit = max id.
      cold_cluster = v.cluster_id;
    }
  }
  if (cold_id < 0) {
    return Fail(Status::FailedPrecondition(
        "every cluster is a singleton; raise --vehicles or lower "
        "--clusters"));
  }
  const VehicleDataset* cold_ds = nullptr;
  std::vector<VehicleDataset> warm;
  warm.reserve(datasets.size() - 1);
  for (const VehicleDataset& ds : datasets) {
    if (ds.info().vehicle_id == cold_id) {
      cold_ds = &ds;
    } else {
      warm.push_back(ds);
    }
  }
  StatusOr<std::vector<cluster::PooledModel>> warm_pooled =
      cluster::TrainPooledHierarchy(warm, meta, popts);
  if (!warm_pooled.ok()) return Fail(warm_pooled.status());
  auto find_warm = [&warm_pooled](int64_t id) -> const VehicleForecaster* {
    for (const cluster::PooledModel& m : warm_pooled.value()) {
      if (m.model_id == id) return &m.forecaster;
    }
    return nullptr;
  };
  const VehicleForecaster* cold_cluster_model =
      find_warm(cluster::ClusterModelId(cold_cluster));
  const VehicleForecaster* cold_global_model =
      find_warm(cluster::kGlobalModelId);
  if (cold_cluster_model == nullptr || cold_global_model == nullptr) {
    return Fail(Status::FailedPrecondition(
        "warm fleet too short to train the pooled fallback models"));
  }

  // Cold-start accuracy: the never-seen vehicle's trailing holdout,
  // predicted by pooled models trained without it.
  const size_t cold_n = cold_ds->num_days();
  if (cold_n <= holdout_days) {
    return Fail(Status::FailedPrecondition(
        "cold-start vehicle shorter than the holdout"));
  }
  std::vector<double> cold_actuals, cold_cluster_pred, cold_global_pred;
  for (size_t t = cold_n - holdout_days; t < cold_n; ++t) {
    StatusOr<double> pc = cold_cluster_model->PredictTarget(*cold_ds, t);
    if (!pc.ok()) return Fail(pc.status());
    StatusOr<double> pg = cold_global_model->PredictTarget(*cold_ds, t);
    if (!pg.ok()) return Fail(pg.status());
    cold_actuals.push_back(cold_ds->hours()[t]);
    cold_cluster_pred.push_back(pc.value());
    cold_global_pred.push_back(pg.value());
  }
  const double cold_cluster_pe =
      PercentageError(cold_cluster_pred, cold_actuals);
  const double cold_global_pe =
      PercentageError(cold_global_pred, cold_actuals);
  if (!std::isfinite(cold_cluster_pe) || !std::isfinite(cold_global_pe)) {
    return Fail(Status::FailedPrecondition(
        "cold-start holdout is all-zero; PE undefined"));
  }

  // Publish warm per-vehicle bundles + the warm pooled hierarchy +
  // clusters.meta, then prove the serving chain: the cold vehicle must be
  // served at the cluster level and counted in
  // vupred_registry_fallback_total{level="cluster"}.
  std::error_code ec;
  fs::remove_all(registry_dir, ec);
  serve::ModelRegistry::Options reg_opts;
  reg_opts.directory = registry_dir;
  reg_opts.cache_capacity = 0;
  StatusOr<serve::ModelRegistry> registry =
      serve::ModelRegistry::Open(std::move(reg_opts));
  if (!registry.ok()) return Fail(registry.status());
  StatusOr<serve::GenerationPublisher> publisher =
      registry.value().NewGeneration();
  if (!publisher.ok()) return Fail(publisher.status());
  size_t warm_published = 0;
  for (const VehicleDataset& ds : warm) {
    const size_t n = ds.num_days();
    const size_t begin = n > train_window
                             ? std::max(n - train_window, lookback)
                             : lookback;
    VehicleForecaster own(forecaster_cfg);
    Status trained = own.Train(ds, begin, n);
    if (!trained.ok()) continue;  // Too short: served by the hierarchy.
    Status stored = publisher.value().Add(ds.info().vehicle_id, own);
    if (!stored.ok()) return Fail(stored);
    ++warm_published;
  }
  for (const cluster::PooledModel& model : warm_pooled.value()) {
    Status stored = publisher.value().Add(model.model_id, model.forecaster);
    if (!stored.ok()) return Fail(stored);
  }
  Status meta_written = cluster::WriteClustersMetaFile(
      publisher.value().staging_dir(), meta);
  if (!meta_written.ok()) return Fail(meta_written);
  serve::RegistryMeta reg_meta;
  reg_meta.fleet_seed = seed;
  reg_meta.fleet_vehicles = vehicles;
  reg_meta.algorithm = alg;
  Status committed = publisher.value().Commit(reg_meta);
  if (!committed.ok()) return Fail(committed);
  Status reloaded = registry.value().Reload();
  if (!reloaded.ok()) return Fail(reloaded);

  serve::PredictionService::Options service_opts;
  service_opts.hierarchy = &meta;
  serve::PredictionService service(&registry.value(), nullptr,
                                   service_opts);
  serve::PredictionRequest cold_request;
  cold_request.vehicle_id = cold_id;
  cold_request.dataset = cold_ds;
  cold_request.target_index = cold_n;  // One-step-ahead forecast.
  serve::PredictionResponse cold_response = service.Predict(cold_request);
  if (!cold_response.status.ok()) return Fail(cold_response.status);
  const serve::PredictionService::FallbackSnapshot fallback =
      service.fallback_counts();
  if (cold_response.level != serve::ServedLevel::kCluster ||
      fallback.cluster != 1) {
    return Fail(Status::Internal(StrFormat(
        "cold-start vehicle %lld served at level %s (fallback cluster "
        "counter %zu), expected cluster/1",
        static_cast<long long>(cold_id),
        std::string(serve::ServedLevelToString(cold_response.level))
            .c_str(),
        fallback.cluster)));
  }

  const double safe_extract = extract_s > 0.0 ? extract_s : 1e-9;
  const double profiles_per_s =
      static_cast<double>(n_vehicles) / safe_extract;
  std::printf("cluster-bench: fleet=%zu profiles=%zu dim=%zu k=%zu "
              "acf-lags=%zu algorithm=%s jobs=%zu seed=%llu\n",
              vehicles, n_vehicles,
              cluster::UsageProfile::Dimension(profile_config), meta.k(),
              acf_lags, alg.c_str(), jobs,
              static_cast<unsigned long long>(seed));
  std::printf("stage            wall\n");
  std::printf("extract   %9.3fms  %10.0f profiles/s\n", extract_s * 1e3,
              profiles_per_s);
  std::printf("kmeans    %9.3fms  inertia=%.4f\n", kmeans_s * 1e3,
              meta.inertia);
  std::printf("evaluate  %9.3fms\n", eval_s * 1e3);
  std::string elbow_line = "elbow:";
  for (const cluster::ElbowPoint& point : elbow.value()) {
    elbow_line += StrFormat(" k=%zu:%.2f", point.k, point.inertia);
  }
  std::printf("%s\n", elbow_line.c_str());
  std::printf("hierarchy PE: per-vehicle=%.2f%% per-cluster=%.2f%% "
              "(%.2fx of per-vehicle) global=%.2f%% evaluated=%zu "
              "skipped=%zu\n",
              eval.per_vehicle.mean_pe, eval.per_cluster.mean_pe, pe_ratio,
              eval.global.mean_pe, eval.per_vehicle.vehicles,
              eval.vehicles_skipped);
  std::printf("cold-start: vehicle %lld (no bundle, %zu warm published) "
              "served level=%s fallback_cluster=%zu cluster-PE=%.2f%% "
              "global-PE=%.2f%%\n",
              static_cast<long long>(cold_id), warm_published,
              std::string(serve::ServedLevelToString(cold_response.level))
                  .c_str(),
              fallback.cluster, cold_cluster_pe, cold_global_pe);
  std::printf("verify: clusters.meta byte-identical across 2 serial reruns "
              "and --jobs=%zu extraction\n",
              jobs);

  std::ofstream json(json_path, std::ios::trunc);
  if (!json) return Fail(Status::Internal("cannot write " + json_path));
  json << StrFormat(
      "{\n"
      "  \"bench\": \"cluster\",\n"
      "  \"schema_version\": 1,\n"
      "  \"fleet_vehicles\": %zu,\n"
      "  \"profiles\": %zu,\n"
      "  \"profile_dim\": %zu,\n"
      "  \"clusters\": %zu,\n"
      "  \"acf_lags\": %zu,\n"
      "  \"algorithm\": \"%s\",\n"
      "  \"jobs\": %zu,\n"
      "  \"train_window\": %zu,\n"
      "  \"holdout_days\": %zu,\n"
      "  \"extract_seconds\": %.6f,\n"
      "  \"profiles_per_second\": %.0f,\n"
      "  \"kmeans_seconds\": %.6f,\n"
      "  \"evaluate_seconds\": %.6f,\n"
      "  \"inertia\": %.6f,\n"
      "  \"per_vehicle_pe\": %.4f,\n"
      "  \"per_cluster_pe\": %.4f,\n"
      "  \"global_pe\": %.4f,\n"
      "  \"per_cluster_vs_vehicle_ratio\": %.4f,\n"
      "  \"vehicles_evaluated\": %zu,\n"
      "  \"vehicles_skipped\": %zu,\n"
      "  \"cold_start_vehicle\": %lld,\n"
      "  \"cold_start_level\": \"%s\",\n"
      "  \"cold_start_fallback_cluster_total\": %zu,\n"
      "  \"cold_start_cluster_pe\": %.4f,\n"
      "  \"cold_start_global_pe\": %.4f,\n"
      "  \"determinism\": \"byte-identical\",\n"
      "  \"verify\": \"cold-start-served-at-cluster-level\"\n"
      "}\n",
      vehicles, n_vehicles, cluster::UsageProfile::Dimension(profile_config),
      meta.k(), acf_lags, alg.c_str(), jobs, train_window, holdout_days,
      extract_s, static_cast<double>(n_vehicles) / safe_extract,
      kmeans_s, eval_s, meta.inertia, eval.per_vehicle.mean_pe,
      eval.per_cluster.mean_pe, eval.global.mean_pe, pe_ratio,
      eval.per_vehicle.vehicles, eval.vehicles_skipped,
      static_cast<long long>(cold_id),
      std::string(serve::ServedLevelToString(cold_response.level)).c_str(),
      fallback.cluster, cold_cluster_pe, cold_global_pe);
  if (!json) return Fail(Status::DataLoss("write failed: " + json_path));
  std::printf("wrote %s\n", json_path.c_str());

  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  service.CollectMetrics(&snapshot);
  registry.value().CollectMetrics(&snapshot);
  if (!flags.Has("registry-dir")) fs::remove_all(registry_dir, ec);
  const int metrics_rc =
      WriteMetricsOutput(flags, metrics_format, std::move(snapshot));
  if (metrics_rc != 0) return metrics_rc;

  if (max_pe_ratio_pct > 0 &&
      pe_ratio * 100.0 > static_cast<double>(max_pe_ratio_pct)) {
    std::fprintf(stderr,
                 "error: per-cluster PE is %.0f%% of per-vehicle PE, above "
                 "the required %lld%%\n",
                 pe_ratio * 100.0, max_pe_ratio_pct);
    return 1;
  }
  return 0;
}

// ---- Command registry -------------------------------------------------

struct Command {
  const char* name;
  const char* summary;
  const char* usage;
  std::vector<std::string> flags;      // Allowed flag keys.
  std::vector<std::string> required;   // Required flag keys.
  int (*run)(const Flags&);
};

const std::vector<Command>& Commands() {
  static const std::vector<Command>& commands = *new std::vector<Command>{
      {"generate", "write synthetic per-vehicle dataset CSVs",
       "usage: vupred generate --out=DIR [--vehicles=N] [--seed=S]\n"
       "  Generate a synthetic fleet and write one dataset CSV per vehicle\n"
       "  plus a manifest.csv describing the units.\n",
       {"out", "vehicles", "seed"},
       {"out"},
       RunGenerate},
      {"train", "train one per-vehicle forecaster and persist it",
       "usage: vupred train --data=FILE.csv --out=MODEL.txt\n"
       "  [--algorithm=GB] [--country=IT] [--lookback=60] [--topk=15]\n"
       "  [--train-days=200]\n"
       "  Train a per-vehicle forecaster on a dataset CSV and persist it.\n",
       {"data", "out", "algorithm", "country", "lookback", "topk",
        "train-days"},
       {"data", "out"},
       RunTrain},
      {"predict", "score a persisted forecaster on a dataset",
       "usage: vupred predict --data=FILE.csv --model=MODEL.txt\n"
       "  [--country=IT]\n"
       "  Load a persisted forecaster and forecast the day after the\n"
       "  series.\n",
       {"data", "model", "country"},
       {"data", "model"},
       RunPredict},
      {"evaluate", "walk-forward hold-out evaluation (Section 4.1)",
       "usage: vupred evaluate --data=FILE.csv [--algorithm=GB]\n"
       "  [--country=IT] [--scenario=next-day|next-working-day]\n"
       "  [--eval-days=60] [--retrain-every=7] [--train-window=140]\n"
       "  [--lookback=60] [--topk=15]\n"
       "  Walk-forward hold-out evaluation on one dataset.\n",
       {"data", "algorithm", "country", "scenario", "eval-days",
        "retrain-every", "train-window", "lookback", "topk"},
       {"data"},
       RunEvaluate},
      {"fleet", "fleet experiment with faults and --jobs parallelism",
       "usage: vupred fleet [--vehicles=N] [--seed=S] [--max-vehicles=M]\n"
       "  [--algorithm=Lasso] [--eval-days=20] [--retrain-every=10]\n"
       "  [--train-window=60] [--lookback=21] [--topk=7] [--jobs=N]\n"
       "  [--fault-profile=none|mild|severe] [--fault-seed=S] [--strict]\n"
       "  [--clusters=K] [--acf-lags=14] [--metrics-out=FILE]\n"
       "  [--metrics-format=prom|json] [--trace]\n"
       "  Fleet experiment on a demo fleet, optionally routed through the\n"
       "  telemetry fault injector. --jobs=N evaluates vehicles on N\n"
       "  worker threads with byte-identical output; --jobs=0 picks one\n"
       "  job per hardware thread (capped at 16). With --strict, exits\n"
       "  non-zero when any vehicle was quarantined. --clusters=K\n"
       "  additionally clusters the evaluated vehicles' usage profiles\n"
       "  (seeded k-means) and reports per-vehicle vs pooled per-cluster\n"
       "  vs pooled global PE on the shared holdout. --metrics-out writes\n"
       "  the metrics snapshot (Prometheus text, or JSON when the path\n"
       "  ends in .json or --metrics-format=json); --trace prints the\n"
       "  aggregated pipeline span tree.\n",
       {"vehicles", "seed", "max-vehicles", "algorithm", "eval-days",
        "retrain-every", "train-window", "lookback", "topk", "jobs",
        "fault-profile", "fault-seed", "strict", "clusters", "acf-lags",
        "metrics-out", "metrics-format", "trace"},
       {},
       RunFleet},
      {"publish", "train the fleet and publish bundles into a registry",
       "usage: vupred publish --out=DIR [--vehicles=N] [--seed=S]\n"
       "  [--max-vehicles=M] [--algorithm=Lasso] [--lookback=21]\n"
       "  [--topk=7] [--train-days=200] [--keep-generations=2]\n"
       "  [--clusters=K] [--acf-lags=14] [--validate]\n"
       "  [--canary-fraction=F] [--rollback] [--compact]\n"
       "  Train one forecaster per eligible fleet vehicle and write the\n"
       "  bundles plus registry metadata into DIR as a new generation,\n"
       "  made live by an atomic CURRENT flip, ready for serve-bench (or\n"
       "  any ModelRegistry consumer). With --clusters=K the same\n"
       "  generation also carries clusters.meta plus pooled per-cluster /\n"
       "  per-type / global bundles under their reserved negative ids, so\n"
       "  serving falls back down the hierarchy for vehicles without a\n"
       "  bundle. Old generations beyond --keep-generations are pruned\n"
       "  (never the ones the rollback journal points at).\n"
       "  --validate gates the CURRENT flip: every staged bundle must\n"
       "  deserialize and survive finite/bounded sanity probes, and the\n"
       "  staged fleet must not regress holdout PE against the live\n"
       "  generation; a failing generation never leaves staging.\n"
       "  --canary-fraction=F shadow-scores the finalized generation\n"
       "  behind live traffic on the seeded F-slice of vehicles before\n"
       "  the flip; a canary breach aborts with CURRENT untouched.\n"
       "  --rollback (standalone) undoes the last journaled promotion\n"
       "  and exits: CURRENT flips back to the previous generation.\n"
       "  --compact additionally stages a .cfcst compact (mmap-able)\n"
       "  twin per bundle, checksummed by the same MANIFEST; a registry\n"
       "  opened with prefer_compact serves from the twins and falls\n"
       "  back to text where a twin is missing.\n",
       {"out", "vehicles", "seed", "max-vehicles", "algorithm", "lookback",
        "topk", "train-days", "keep-generations", "clusters", "acf-lags",
        "validate", "canary-fraction", "rollback", "compact"},
       {"out"},
       RunPublish},
      {"publish-bench", "time the guarded publish path end to end",
       "usage: vupred publish-bench [--vehicles=12] [--seed=42]\n"
       "  [--max-vehicles=6] [--train-days=200] [--lookback=21] [--topk=7]\n"
       "  [--clusters=3] [--acf-lags=14] [--json=BENCH_publish.json]\n"
       "  [--registry-dir=DIR] [--metrics-out=FILE]\n"
       "  [--metrics-format=prom|json]\n"
       "  Drive the guarded publish path on a seeded fleet: publish two\n"
       "  differently trained generations through validate -> canary ->\n"
       "  promote, bit-rot one live bundle and let the scrubber catch and\n"
       "  quarantine it (the victim must come back from the pooled\n"
       "  hierarchy, never the corrupt bundle), then roll the promotion\n"
       "  back and prove serving returns generation A's exact\n"
       "  predictions. Reports per-stage wall times, always verifies the\n"
       "  quarantine + rollback invariants (exits non-zero on any\n"
       "  divergence; timings are never gated) and writes the JSON report\n"
       "  to --json. --registry-dir keeps the scratch registry for\n"
       "  inspection.\n",
       {"vehicles", "seed", "max-vehicles", "train-days", "lookback",
        "topk", "clusters", "acf-lags", "json", "registry-dir",
        "metrics-out", "metrics-format"},
       {},
       RunPublishBench},
      {"serve-bench", "replay a request stream against the service",
       "usage: vupred serve-bench --registry=DIR [--workers=4]\n"
       "  [--batch=64] [--requests=512] [--cache=32] [--cache-mb=0]\n"
       "  [--shards=1] [--compact] [--stream-seed=7]\n"
       "  [--json=BENCH_serve.json] [--overload] [--overload-seed=7]\n"
       "  [--admission=N] [--shed-policy=block|shed-newest|shed-oldest]\n"
       "  [--deadline-ms=50] [--metrics-out=FILE]\n"
       "  [--metrics-format=prom|json] [--trace]\n"
       "synthetic: vupred serve-bench --vehicles=N [--shards=8]\n"
       "  [--compact] [--cache-mb=64] [--max-rss-mb=0] [--requests=N]\n"
       "  [--seed=42] [--stream-seed=7] [--lookback=21] [--topk=7]\n"
       "  [--registry=DIR] [--json=BENCH_serve.json]\n"
       "  Replay a deterministic request stream against the prediction\n"
       "  service at the given batch size and worker count; print a\n"
       "  latency/throughput report, verify serving == offline on a\n"
       "  sampled vehicle, and write the schema-v2 JSON report (per-shard\n"
       "  hit/miss/eviction slices included). --shards=S splits the\n"
       "  registry cache into S independently locked shards, --cache-mb\n"
       "  byte-budgets the resident models, --compact serves from the\n"
       "  .cfcst mmap twins where published. --overload drives offered\n"
       "  load past the admission capacity under a fake clock (seeded\n"
       "  expired deadlines, mid-run registry Reload) and reports shed /\n"
       "  deadline-exceeded / breaker counters -- deterministic per seed.\n"
       "  With --vehicles=N the bench switches to synthetic-registry\n"
       "  mode: one template forecaster per ML algorithm (LR, Lasso,\n"
       "  SVR, GB) is trained once and its bundle bytes stamped across N\n"
       "  vehicle ids (text + compact twins under --compact), then a\n"
       "  seeded Get() stream runs against the sharded registry. Reports\n"
       "  per-shard cache behavior, a Get-latency histogram, publish\n"
       "  wall time, and process RSS; gates ONLY on the --max-rss-mb\n"
       "  ceiling (0 disables) and on prediction parity: LR must match\n"
       "  the text bundle bitwise, float32-payload algorithms within\n"
       "  0.05. --metrics-out writes the unified metrics snapshot\n"
       "  (Prometheus text, or JSON when the path ends in .json or\n"
       "  --metrics-format=json); --trace prints the serving span tree.\n",
       {"registry", "workers", "batch", "requests", "cache", "cache-mb",
        "shards", "compact", "vehicles", "max-rss-mb", "seed", "lookback",
        "topk", "stream-seed", "json", "overload", "overload-seed",
        "admission", "shed-policy", "deadline-ms", "metrics-out",
        "metrics-format", "trace"},
       {},
       RunServeBench},
      {"core-bench",
       "time the evaluation pipeline, naive vs incremental vs warm",
       "usage: vupred core-bench [--vehicles=12] [--seed=42]\n"
       "  [--max-vehicles=3] [--algorithms=LR,SVR,GB] [--algorithm=X]\n"
       "  [--eval-days=100] [--lookback=120] [--topk=20]\n"
       "  [--train-window=140] [--retrain-every=1] [--jobs=1]\n"
       "  [--json=BENCH_core.json] [--min-window-speedup=0]\n"
       "  [--min-train-speedup=0] [--metrics-out=FILE]\n"
       "  [--metrics-format=prom|json] [--trace]\n"
       "  Run the walk-forward per-vehicle evaluation on a seeded\n"
       "  synthetic fleet, once per algorithm in --algorithms\n"
       "  (--algorithm=X restricts to one): a naive path rebuilding the\n"
       "  windowed matrix and training-span ACF from scratch at every\n"
       "  step, an incremental path advancing them in place, and -- for\n"
       "  Lasso/SVR/GB -- a warm-start path that also resumes each\n"
       "  solver from the previous window's state. Reports per-stage\n"
       "  (window/select/scale/train/predict) timings plus speedups per\n"
       "  algorithm. Always asserts the incremental path is\n"
       "  byte-identical to naive, and the warm path within the\n"
       "  per-algorithm tolerances of DESIGN.md section 14; exits\n"
       "  non-zero on any divergence. --min-window-speedup=N fails the\n"
       "  run when a windowing-stage speedup is below N;\n"
       "  --min-train-speedup=X fails it when a warm-capable algorithm's\n"
       "  warm train-stage speedup over the incremental path is below X\n"
       "  (both off by default; CI smoke checks the report schema only).\n"
       "  Writes the JSON report (schema_version 2, one entry per\n"
       "  algorithm) to --json; --metrics-out exports the metrics\n"
       "  snapshot (incremental advance/rebuild, warm-start decision and\n"
       "  kernel-cache counters included).\n",
       {"vehicles", "seed", "max-vehicles", "algorithm", "algorithms",
        "eval-days", "lookback", "topk", "train-window", "retrain-every",
        "jobs", "json", "min-window-speedup", "min-train-speedup",
        "metrics-out", "metrics-format", "trace"},
       {},
       RunCoreBench},
      {"ingest-bench", "time the binary wire ingest path end to end",
       "usage: vupred ingest-bench [--vehicles=6] [--days=30] [--seed=42]\n"
       "  [--json=BENCH_ingest.json] [--wal-dir=DIR] [--metrics-out=FILE]\n"
       "  [--metrics-format=prom|json] [--trace]\n"
       "  Generate a dense seeded report stream (every vehicle, every\n"
       "  10-minute slot), then time each stage of the wire ingest tier:\n"
       "  frame encode, defensive decode, the crash-safe WAL journal +\n"
       "  ingest path, and cold crash recovery from the journal. Reports\n"
       "  MB/s and reports/s per stage, always verifies that the recovered\n"
       "  store is bit-identical to the live store (exits non-zero on any\n"
       "  divergence; timings are never gated), and writes the JSON report\n"
       "  to --json. --wal-dir keeps the journal in DIR for inspection;\n"
       "  the default temp directory is cleaned up. --metrics-out exports\n"
       "  the metrics snapshot (vupred_wire_* counters included).\n",
       {"vehicles", "days", "seed", "json", "wal-dir", "metrics-out",
        "metrics-format", "trace"},
       {},
       RunIngestBench},
      {"cluster-bench", "profile/cluster throughput + cold-start fallback",
       "usage: vupred cluster-bench [--vehicles=12] [--seed=42]\n"
       "  [--clusters=3] [--acf-lags=14] [--max-k=6] [--algorithm=Lasso]\n"
       "  [--lookback=21] [--topk=7] [--train-window=140]\n"
       "  [--holdout-days=28] [--jobs=1] [--json=BENCH_cluster.json]\n"
       "  [--registry-dir=DIR] [--max-pe-ratio-pct=0]\n"
       "  [--metrics-out=FILE] [--metrics-format=prom|json] [--trace]\n"
       "  Benchmark the fleet clustering subsystem on a seeded synthetic\n"
       "  fleet: time profile extraction (--jobs workers) and seeded\n"
       "  k-means, print the k=1..max-k elbow, and compare per-vehicle vs\n"
       "  pooled per-cluster vs pooled global PE on a shared trailing\n"
       "  holdout. Always verifies that clusters.meta is byte-identical\n"
       "  across two serial reruns and the parallel extraction path, then\n"
       "  proves the cold-start chain end to end: the highest-id vehicle\n"
       "  is published without a per-vehicle bundle (and excluded from\n"
       "  the pooled fits), served through a real registry, and must come\n"
       "  back at level=cluster with the labeled fallback counter at 1;\n"
       "  exits non-zero otherwise. --max-pe-ratio-pct=N additionally\n"
       "  fails when pooled per-cluster PE exceeds N% of per-vehicle PE\n"
       "  (off by default; deterministic per seed, unlike timings, which\n"
       "  are never gated). Writes the JSON report to --json;\n"
       "  --registry-dir keeps the scratch registry for inspection.\n",
       {"vehicles", "seed", "clusters", "acf-lags", "max-k", "algorithm",
        "lookback", "topk", "train-window", "holdout-days", "jobs", "json",
        "registry-dir", "max-pe-ratio-pct", "metrics-out", "metrics-format",
        "trace"},
       {},
       RunClusterBench},
  };
  return commands;
}

void PrintGlobalUsage(std::FILE* to) {
  std::fprintf(to, "vupred -- industrial vehicle usage prediction\n");
  std::fprintf(to, "commands:\n");
  for (const Command& cmd : Commands()) {
    std::fprintf(to, "  %-12s %s\n", cmd.name, cmd.summary);
  }
  std::fprintf(to, "run `vupred <command> --help` for per-command flags\n");
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintGlobalUsage(stderr);
    return 2;
  }
  std::string name = argv[1];
  if (name == "--help" || name == "help") {
    PrintGlobalUsage(stdout);
    return 0;
  }
  for (const Command& cmd : Commands()) {
    if (name != cmd.name) continue;
    Flags flags(argc, argv, 2);
    if (flags.Has("help")) {
      std::fprintf(stdout, "%s", cmd.usage);
      return 0;
    }
    std::vector<std::string> unknown = flags.UnknownKeys(cmd.flags);
    if (!unknown.empty()) {
      for (const std::string& key : unknown) {
        std::fprintf(stderr, "error: unknown flag --%s\n", key.c_str());
      }
      std::fprintf(stderr, "%s", cmd.usage);
      return 2;
    }
    if (!flags.extra().empty()) {
      std::fprintf(stderr, "error: unexpected argument '%s'\n",
                   flags.extra().front().c_str());
      std::fprintf(stderr, "%s", cmd.usage);
      return 2;
    }
    for (const std::string& key : cmd.required) {
      if (!flags.Has(key)) {
        std::fprintf(stderr, "error: missing required flag --%s\n",
                     key.c_str());
        std::fprintf(stderr, "%s", cmd.usage);
        return 2;
      }
    }
    return cmd.run(flags);
  }
  std::fprintf(stderr, "unknown command: %s\n", name.c_str());
  PrintGlobalUsage(stderr);
  return 2;
}

}  // namespace
}  // namespace vup

int main(int argc, char** argv) { return vup::Main(argc, argv); }
